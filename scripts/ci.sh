#!/usr/bin/env bash
# Offline CI gate: build, test, lint, and smoke-test the experiment
# framework. Everything here must pass with no network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace --all-targets

echo "== cargo test =="
cargo test -q --release --workspace

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --release -- -D warnings

echo "== evaluate smoke test =="
smoke_dir="target/reports-ci-smoke"
rm -rf "$smoke_dir"
./target/release/evaluate fig11 --txs 200 --jobs 2 --json-dir "$smoke_dir" > /dev/null
report="$smoke_dir/fig11.json"
[ -f "$report" ] || { echo "FAIL: $report was not written" >&2; exit 1; }
./target/release/evaluate check "$report"
rm -rf "$smoke_dir"

echo "== crashfuzz smoke test =="
# Clean sweep: every scheme must recover consistently under all three
# fault models at event-indexed crash points.
clean=$(./target/release/evaluate crashfuzz --txs 16 --bench Hash --jobs 2)
echo "$clean" | grep -q "^total: 0 violations" \
  || { echo "FAIL: crashfuzz found violations in a correct scheme" >&2; exit 1; }
# Injected violation: an undersized battery must be caught, shrunk, and
# reported as a runnable repro command.
broken=$(./target/release/evaluate crashfuzz --txs 16 --bench Hash \
  --scheme Silo --fault battery --battery-bytes 64 --jobs 2)
echo "$broken" | grep -q "minimal repro: evaluate crashfuzz" \
  || { echo "FAIL: crashfuzz missed the injected battery violation" >&2; exit 1; }

echo "CI OK"
