#!/usr/bin/env bash
# Offline CI gate: build, test, lint, and smoke-test the experiment
# framework. Everything here must pass with no network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --release --workspace

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --release -- -D warnings

echo "== evaluate smoke test =="
smoke_dir="target/reports-ci-smoke"
rm -rf "$smoke_dir"
./target/release/evaluate fig11 --txs 200 --jobs 2 --json-dir "$smoke_dir" > /dev/null
report="$smoke_dir/fig11.json"
[ -f "$report" ] || { echo "FAIL: $report was not written" >&2; exit 1; }
./target/release/evaluate check "$report"
rm -rf "$smoke_dir"

echo "CI OK"
