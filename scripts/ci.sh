#!/usr/bin/env bash
# Offline CI gate: build, test, lint, and smoke-test the experiment
# framework. Everything here must pass with no network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace --all-targets

echo "== cargo test =="
cargo test -q --release --workspace

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --release -- -D warnings

echo "== evaluate smoke test =="
smoke_dir="target/reports-ci-smoke"
rm -rf "$smoke_dir"
./target/release/evaluate fig11 --txs 200 --jobs 2 --json-dir "$smoke_dir" > /dev/null
report="$smoke_dir/fig11.json"
[ -f "$report" ] || { echo "FAIL: $report was not written" >&2; exit 1; }
./target/release/evaluate check "$report"
rm -rf "$smoke_dir"

echo "== trace-cache smoke test =="
# Same small grid twice: cached across 8 workers vs uncached serial must
# print identical report bytes, and the cached run must generate each
# unique trace at most once (generated <= unique keys).
cache_dir="target/reports-ci-cache"
rm -rf "$cache_dir"
cached_err=$(./target/release/evaluate fig11 --txs 200 --jobs 8 \
  --json-dir "$cache_dir/cached" 2>&1 >"$cache_dir.cached.txt")
uncached_err=$(./target/release/evaluate fig11 --txs 200 --jobs 1 --no-trace-cache \
  --json-dir "$cache_dir/uncached" 2>&1 >"$cache_dir.uncached.txt")
cmp "$cache_dir.cached.txt" "$cache_dir.uncached.txt" \
  || { echo "FAIL: trace cache changed the experiment output" >&2; exit 1; }
keys=$(echo "$cached_err" | sed -n 's/^\[trace-cache\] \([0-9]*\) unique keys, .*/\1/p')
gens=$(echo "$cached_err" | sed -n 's/.* unique keys, \([0-9]*\) generated, .*/\1/p')
[ -n "$keys" ] && [ -n "$gens" ] && [ "$gens" -le "$keys" ] \
  || { echo "FAIL: cached run generated $gens traces for $keys keys" >&2; exit 1; }
echo "$uncached_err" | grep -q "(disabled)" \
  || { echo "FAIL: --no-trace-cache did not disable the cache" >&2; exit 1; }
rm -rf "$cache_dir" "$cache_dir.cached.txt" "$cache_dir.uncached.txt"

echo "== timed trace-cache benchmark =="
# Wall-clock data point for the perf trajectory: the same grid with and
# without trace sharing, from the reports' own wall_ms envelope field.
bench_dir="target/reports-ci-bench"
rm -rf "$bench_dir"
./target/release/evaluate fig11 --txs 500 --jobs 4 \
  --json-dir "$bench_dir/cached" > /dev/null 2>&1
./target/release/evaluate fig11 --txs 500 --jobs 4 --no-trace-cache \
  --json-dir "$bench_dir/uncached" > /dev/null 2>&1
cached_ms=$(sed -n 's/.*"wall_ms": *\([0-9.]*\).*/\1/p' "$bench_dir/cached/fig11.json")
uncached_ms=$(sed -n 's/.*"wall_ms": *\([0-9.]*\).*/\1/p' "$bench_dir/uncached/fig11.json")
printf '{"experiment": "fig11", "txs": 500, "jobs": 4, "cached_wall_ms": %s, "uncached_wall_ms": %s}\n' \
  "$cached_ms" "$uncached_ms" > BENCH_trace_cache.json
./target/release/evaluate check "$bench_dir/cached/fig11.json"
cat BENCH_trace_cache.json
rm -rf "$bench_dir"

echo "== crashfuzz smoke test =="
# Clean sweep: every scheme must recover consistently under all three
# fault models at event-indexed crash points.
clean=$(./target/release/evaluate crashfuzz --txs 16 --bench Hash --jobs 2)
echo "$clean" | grep -q "^total: 0 violations" \
  || { echo "FAIL: crashfuzz found violations in a correct scheme" >&2; exit 1; }
# Injected violation: an undersized battery must be caught, shrunk, and
# reported as a runnable repro command.
broken=$(./target/release/evaluate crashfuzz --txs 16 --bench Hash \
  --scheme Silo --fault battery --battery-bytes 64 --jobs 2)
echo "$broken" | grep -q "minimal repro: evaluate crashfuzz" \
  || { echo "FAIL: crashfuzz missed the injected battery violation" >&2; exit 1; }

echo "CI OK"
