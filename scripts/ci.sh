#!/usr/bin/env bash
# Offline CI gate: build, test, lint, and smoke-test the experiment
# framework. Everything here must pass with no network access.
#
# Stages are runnable individually so the CI workflow can fan them out as
# separate jobs (and so a developer can re-run just the piece that failed):
#
#   scripts/ci.sh build        compile the workspace (all targets)
#   scripts/ci.sh test         run the test suite
#   scripts/ci.sh lint         rustfmt + clippy
#   scripts/ci.sh smoke        experiment smoke tests + determinism gates
#   scripts/ci.sh fuzz         coverage-guided crash-search gate
#   scripts/ci.sh serve        daemon end-to-end gate (byte identity, warm
#                              hit rate, backpressure)
#   scripts/ci.sh bench        timed benchmarks + perf-regression gate
#   scripts/ci.sh all          everything above, in order (the default)
#
# `smoke`, `fuzz`, and `bench` expect `build` to have run first (they use
# target/release/evaluate directly so a stale debug build can't skew the
# timings).
set -euo pipefail
cd "$(dirname "$0")/.."

EVALUATE=./target/release/evaluate

build_stage() {
  echo "== cargo build --release =="
  cargo build --release --workspace --all-targets
}

test_stage() {
  echo "== cargo test =="
  cargo test -q --release --workspace
}

lint_stage() {
  echo "== cargo fmt --check =="
  cargo fmt --check

  echo "== cargo clippy -D warnings =="
  cargo clippy --workspace --all-targets --release -- -D warnings
}

smoke_stage() {
  echo "== evaluate smoke test =="
  smoke_dir="target/reports-ci-smoke"
  rm -rf "$smoke_dir"
  "$EVALUATE" fig11 --txs 200 --jobs 2 --json-dir "$smoke_dir" > /dev/null
  report="$smoke_dir/fig11.json"
  [ -f "$report" ] || { echo "FAIL: $report was not written" >&2; exit 1; }
  "$EVALUATE" check "$report"
  rm -rf "$smoke_dir"

  echo "== trace-cache smoke test =="
  # Same small grid twice: cached across 8 workers vs uncached serial must
  # print identical report bytes, and the cached run must generate each
  # unique trace at most once (generated <= unique keys).
  cache_dir="target/reports-ci-cache"
  rm -rf "$cache_dir"
  cached_err=$("$EVALUATE" fig11 --txs 200 --jobs 8 \
    --json-dir "$cache_dir/cached" 2>&1 >"$cache_dir.cached.txt")
  uncached_err=$("$EVALUATE" fig11 --txs 200 --jobs 1 --no-trace-cache \
    --json-dir "$cache_dir/uncached" 2>&1 >"$cache_dir.uncached.txt")
  cmp "$cache_dir.cached.txt" "$cache_dir.uncached.txt" \
    || { echo "FAIL: trace cache changed the experiment output" >&2; exit 1; }
  keys=$(echo "$cached_err" | sed -n 's/^\[trace-cache\] \([0-9]*\) unique keys, .*/\1/p')
  gens=$(echo "$cached_err" | sed -n 's/.* unique keys, \([0-9]*\) generated, .*/\1/p')
  [ -n "$keys" ] && [ -n "$gens" ] && [ "$gens" -le "$keys" ] \
    || { echo "FAIL: cached run generated $gens traces for $keys keys" >&2; exit 1; }
  echo "$uncached_err" | grep -q "(disabled)" \
    || { echo "FAIL: --no-trace-cache did not disable the cache" >&2; exit 1; }
  rm -rf "$cache_dir" "$cache_dir.cached.txt" "$cache_dir.uncached.txt"

  echo "== result-store smoke test =="
  # Cold then warm on a scratch store: the warm run must serve >= 90% of
  # its cells from the store, finish in well under 25% of the cold wall
  # time, and print byte-identical stdout and report bytes (modulo the
  # jobs/wall_ms envelope).
  store_dir="target/ci-result-store"
  store_rep="target/reports-ci-store"
  rm -rf "$store_dir" "$store_rep" target/ci-store.*.txt
  SILO_RESULT_STORE="$store_dir" "$EVALUATE" fig11 --txs 200 --jobs 4 \
    --json-dir "$store_rep/cold" > target/ci-store.cold.txt 2>/dev/null
  warm_err=$(SILO_RESULT_STORE="$store_dir" "$EVALUATE" fig11 --txs 200 --jobs 4 \
    --json-dir "$store_rep/warm" 2>&1 >target/ci-store.warm.txt)
  cmp target/ci-store.cold.txt target/ci-store.warm.txt \
    || { echo "FAIL: result store changed the experiment output" >&2; exit 1; }
  strip_envelope='s/,"jobs":[0-9]*,"wall_ms":[0-9.eE+-]*}$/}/'
  diff <(sed "$strip_envelope" "$store_rep/cold/fig11.json") \
       <(sed "$strip_envelope" "$store_rep/warm/fig11.json") > /dev/null \
    || { echo "FAIL: result store changed the report body" >&2; exit 1; }
  hits=$(echo "$warm_err" | sed -n 's/^\[result-store\] \([0-9]*\) hits, .*/\1/p')
  misses=$(echo "$warm_err" | sed -n 's/^\[result-store\] [0-9]* hits, \([0-9]*\) misses, .*/\1/p')
  [ -n "$hits" ] && [ -n "$misses" ] && [ "$hits" -gt 0 ] \
    && [ "$((misses * 9))" -le "$hits" ] \
    || { echo "FAIL: warm run hit rate below 90% ($hits hits, $misses misses)" >&2; exit 1; }
  cold_ms=$(sed -n 's/.*"wall_ms": *\([0-9.]*\).*/\1/p' "$store_rep/cold/fig11.json")
  warm_ms=$(sed -n 's/.*"wall_ms": *\([0-9.]*\).*/\1/p' "$store_rep/warm/fig11.json")
  awk -v cold="$cold_ms" -v warm="$warm_ms" \
    'BEGIN { exit !(warm < cold / 4) }' \
    || { echo "FAIL: warm run ($warm_ms ms) not under 25% of cold ($cold_ms ms)" >&2; exit 1; }
  echo "warm store: $hits hits, $misses misses; ${warm_ms} ms vs ${cold_ms} ms cold"
  rm -rf "$store_dir" "$store_rep" target/ci-store.cold.txt target/ci-store.warm.txt

  echo "== cycle-accounting smoke test =="
  # The profile experiment hard-asserts sum(categories) == core cycles for
  # every cell; `evaluate check` then re-validates the invariant from the
  # report JSON alone, so a malformed breakdown fails twice over.
  prof_dir="target/reports-ci-profile"
  rm -rf "$prof_dir"
  "$EVALUATE" profile --txs 120 --jobs 2 --json-dir "$prof_dir" > /dev/null
  "$EVALUATE" check "$prof_dir/profile.json" | tee "$prof_dir.check.txt"
  grep -q "breakdowns validated" "$prof_dir.check.txt" \
    || { echo "FAIL: check did not validate any cycle breakdowns" >&2; exit 1; }
  rm -rf "$prof_dir" "$prof_dir.check.txt"

  echo "== event-timeline smoke test =="
  # --trace-events must emit a schema header plus well-formed JSONL event
  # records for a short run.
  events="target/ci-events.jsonl"
  rm -f "$events"
  "$EVALUATE" profile --txs 60 --bench Hash --jobs 2 --trace-events "$events" \
    --json-dir target/reports-ci-events > /dev/null
  head -n 1 "$events" | grep -q '"stream":"silo-events"' \
    || { echo "FAIL: event trace is missing its schema header" >&2; exit 1; }
  grep -q '"kind":"tx_commit"' "$events" \
    || { echo "FAIL: event trace recorded no commits" >&2; exit 1; }
  rm -rf "$events" target/reports-ci-events

  echo "== determinism gate =="
  # The profile grid at 1 worker vs 8 workers must print byte-identical
  # stdout. (The report *files* legitimately differ in their jobs/wall_ms
  # envelope fields, so the gate compares the rendered text.)
  det_dir="target/reports-ci-det"
  rm -rf "$det_dir"
  "$EVALUATE" profile --txs 120 --jobs 1 --json-dir "$det_dir/j1" \
    > "$det_dir.j1.txt" 2>/dev/null
  "$EVALUATE" profile --txs 120 --jobs 8 --json-dir "$det_dir/j8" \
    > "$det_dir.j8.txt" 2>/dev/null
  cmp "$det_dir.j1.txt" "$det_dir.j8.txt" \
    || { echo "FAIL: profile output depends on worker count" >&2; exit 1; }
  rm -rf "$det_dir" "$det_dir.j1.txt" "$det_dir.j8.txt"

  echo "== open-system latency determinism gate =="
  # The arrival layer's schedules and the exact percentile recorder are
  # integer-only and seed-deterministic, so the latency sweep must print
  # byte-identical stdout at 1 worker and 8 — and the report files must
  # match too once the host-dependent jobs/wall_ms envelope is stripped.
  lat_dir="target/reports-ci-lat"
  rm -rf "$lat_dir"
  "$EVALUATE" latency --txs 240 --bench Hash --jobs 1 --no-result-store \
    --json-dir "$lat_dir/j1" > "$lat_dir.j1.txt" 2>/dev/null
  "$EVALUATE" latency --txs 240 --bench Hash --jobs 8 --no-result-store \
    --json-dir "$lat_dir/j8" > "$lat_dir.j8.txt" 2>/dev/null
  cmp "$lat_dir.j1.txt" "$lat_dir.j8.txt" \
    || { echo "FAIL: latency output depends on worker count" >&2; exit 1; }
  for j in j1 j8; do
    sed 's/,"jobs":[0-9]*,"wall_ms":[0-9.eE+-]*}$/}/' "$lat_dir/$j/latency.json" \
      > "$lat_dir.$j.stripped"
  done
  cmp "$lat_dir.j1.stripped" "$lat_dir.j8.stripped" \
    || { echo "FAIL: latency report depends on worker count" >&2; exit 1; }
  "$EVALUATE" check "$lat_dir/j1/latency.json" > /dev/null \
    || { echo "FAIL: latency report failed validation" >&2; exit 1; }
  rm -rf "$lat_dir" "$lat_dir".j?.txt "$lat_dir".j?.stripped

  echo "== crashfuzz golden-report gate =="
  # One crashfuzz cell's report, stripped of its host-dependent envelope
  # fields (jobs/wall_ms), must hash to the committed golden digest: the
  # crash surface, oracle verdicts, and per-point PM image digests are
  # fully deterministic, so any drift is a behavioural change. The sweep
  # runs four ways — checkpointed resimulation on and off, 1 worker and
  # 8 — and every variant must produce the same bytes: checkpoints and
  # scheduling may only trade time, never answers. The variants bypass
  # the result store so each one actually simulates its points.
  gold_dir="target/reports-ci-gold"
  rm -rf "$gold_dir"
  for variant in "ckpt-j2 --jobs 2" "nockpt-j2 --no-checkpoints --jobs 2" \
                 "ckpt-j1 --jobs 1" "ckpt-j8 --jobs 8"; do
    set -- $variant
    name="$1"; shift
    "$EVALUATE" crashfuzz --txs 16 --bench Hash --no-result-store "$@" \
      --json-dir "$gold_dir/$name" > /dev/null
    sed 's/,"jobs":[0-9]*,"wall_ms":[0-9.eE+-]*}$/}/' "$gold_dir/$name/crashfuzz.json" \
      | sha256sum | awk '{print $1}' > "$gold_dir.$name.digest"
    diff "$gold_dir.$name.digest" scripts/crashfuzz_smoke.sha256 \
      || { echo "FAIL: crashfuzz smoke report ($name) drifted from the golden digest" >&2
           echo "      (if intentional: cp $gold_dir.$name.digest scripts/crashfuzz_smoke.sha256)" >&2
           exit 1; }
  done
  rm -rf "$gold_dir" "$gold_dir".*.digest

  echo "== crashfuzz smoke test =="
  # Clean sweep: every scheme must recover consistently under all three
  # fault models at event-indexed crash points.
  clean=$("$EVALUATE" crashfuzz --txs 16 --bench Hash --jobs 2)
  echo "$clean" | grep -q "^total: 0 violations" \
    || { echo "FAIL: crashfuzz found violations in a correct scheme" >&2; exit 1; }
  # Injected violation: an undersized battery must be caught, shrunk, and
  # reported as a runnable repro command.
  broken=$("$EVALUATE" crashfuzz --txs 16 --bench Hash \
    --scheme Silo --fault battery --battery-bytes 64 --jobs 2)
  echo "$broken" | grep -q "minimal repro: evaluate crashfuzz" \
    || { echo "FAIL: crashfuzz missed the injected battery violation" >&2; exit 1; }
  # Workload-zoo sweeps: the pointer-chasing structures and the zipfian
  # mix must also recover consistently across every scheme and fault
  # model. zipfmix is the workload that shrank the Silo pending-IPU
  # admission race to 16 transactions, so it stays in the gate.
  for zoo in msqueue treiber zipfmix; do
    zoo_out=$("$EVALUATE" crashfuzz --txs 16 --bench "$zoo" --jobs 2)
    echo "$zoo_out" | grep -q "^total: 0 violations" \
      || { echo "FAIL: crashfuzz found violations on $zoo" >&2; exit 1; }
  done
}

fuzz_stage() {
  echo "== fuzz injected-violation gate =="
  # A fixed-seed, fixed-budget search must rediscover the planted
  # undersized-battery violation on Silo and print a runnable repro.
  broken=$("$EVALUATE" fuzz --txs 16 --bench Hash --scheme Silo \
    --fault battery --battery-bytes 64 --execs 8 --no-corpus --jobs 2)
  echo "$broken" | grep -q "minimal repro: evaluate fuzz" \
    || { echo "FAIL: fuzz missed the injected battery violation" >&2; exit 1; }
  # ... and the repro command itself, run verbatim, must reproduce it:
  # the printed command is the contract, not the sweep that found it.
  repro=$(echo "$broken" | sed -n 's/^  minimal repro: evaluate //p' | head -n 1)
  # shellcheck disable=SC2086
  repro_out=$("$EVALUATE" $repro)
  echo "$repro_out" | grep -q "^total: [1-9]" \
    || { echo "FAIL: emitted fuzz repro did not reproduce the violation" >&2; exit 1; }

  echo "== fuzz determinism gate =="
  # The full clean scheme x workload matrix must find nothing, and the
  # whole search — stdout, report body, and the persisted corpus — must
  # be byte-identical at 1 worker and 8. Each run gets its own scratch
  # corpus root so the comparison covers the persistence layer too.
  fuzz_dir="target/reports-ci-fuzz"
  rm -rf "$fuzz_dir" "$fuzz_dir".j?.txt "$fuzz_dir".j?.stripped \
    target/ci-fuzz-corpus-j1 target/ci-fuzz-corpus-j8
  "$EVALUATE" fuzz --txs 16 --execs 6 --jobs 1 --no-result-store \
    --corpus target/ci-fuzz-corpus-j1 --json-dir "$fuzz_dir/j1" \
    > "$fuzz_dir.j1.txt" 2>/dev/null
  "$EVALUATE" fuzz --txs 16 --execs 6 --jobs 8 --no-result-store \
    --corpus target/ci-fuzz-corpus-j8 --json-dir "$fuzz_dir/j8" \
    > "$fuzz_dir.j8.txt" 2>/dev/null
  cmp "$fuzz_dir.j1.txt" "$fuzz_dir.j8.txt" \
    || { echo "FAIL: fuzz output depends on worker count" >&2; exit 1; }
  for j in j1 j8; do
    sed 's/,"jobs":[0-9]*,"wall_ms":[0-9.eE+-]*}$/}/' "$fuzz_dir/$j/fuzz.json" \
      > "$fuzz_dir.$j.stripped"
  done
  cmp "$fuzz_dir.j1.stripped" "$fuzz_dir.j8.stripped" \
    || { echo "FAIL: fuzz report depends on worker count" >&2; exit 1; }
  diff -r target/ci-fuzz-corpus-j1 target/ci-fuzz-corpus-j8 > /dev/null \
    || { echo "FAIL: fuzz corpus depends on worker count" >&2; exit 1; }
  grep -q "^total: 0 violations" "$fuzz_dir.j1.txt" \
    || { echo "FAIL: fuzz found violations in a correct scheme" >&2; exit 1; }
  rm -rf "$fuzz_dir" "$fuzz_dir".j?.txt "$fuzz_dir".j?.stripped \
    target/ci-fuzz-corpus-j1 target/ci-fuzz-corpus-j8
}

serve_stage() {
  echo "== serve daemon end-to-end gate =="
  # A long-lived daemon must answer experiment submissions with output
  # byte-identical to the CLI, serve a repeated submission almost entirely
  # from its caches, drain cleanly on shutdown, and push back with 429
  # when its queue cannot hold a whole experiment.
  serve_dir="target/ci-serve"
  rm -rf "$serve_dir"
  mkdir -p "$serve_dir"

  # CLI reference runs on a scratch store (cold, so they really simulate).
  SILO_RESULT_STORE="$serve_dir/cli-store" "$EVALUATE" fig11 --txs 200 --jobs 4 \
    --json-dir "$serve_dir/cli" > "$serve_dir/cli-fig11.txt" 2>/dev/null
  SILO_RESULT_STORE="$serve_dir/cli-store" "$EVALUATE" profile --txs 120 --jobs 4 \
    --json-dir "$serve_dir/cli" > "$serve_dir/cli-profile.txt" 2>/dev/null

  # Daemon on an OS-assigned port with its own scratch store.
  "$EVALUATE" serve --addr 127.0.0.1:0 --store-dir "$serve_dir/daemon-store" \
    > "$serve_dir/daemon.out" 2> "$serve_dir/daemon.err" &
  daemon_pid=$!
  addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/^serving on //p' "$serve_dir/daemon.out")
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null \
      || { echo "FAIL: serve daemon died at startup" >&2; cat "$serve_dir/daemon.err" >&2; exit 1; }
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "FAIL: serve daemon never announced its address" >&2; exit 1; }

  strip_envelope='s/,"jobs":[0-9]*,"wall_ms":[0-9.eE+-]*}$/}/'
  # Cold pass: the daemon simulates; stdout and the (envelope-stripped)
  # report must match the CLI byte for byte.
  for exp in "fig11 200" "profile 120"; do
    set -- $exp
    name="$1"; txs="$2"
    "$EVALUATE" serve-submit "$name" --addr "$addr" --txs "$txs" \
      --report-out "$serve_dir/daemon-$name.json" \
      > "$serve_dir/daemon-$name.txt" 2>/dev/null \
      || { echo "FAIL: serve-submit $name failed" >&2; exit 1; }
    cmp "$serve_dir/cli-$name.txt" "$serve_dir/daemon-$name.txt" \
      || { echo "FAIL: daemon $name text differs from the CLI" >&2; exit 1; }
    diff <(sed "$strip_envelope" "$serve_dir/cli/$name.json") "$serve_dir/daemon-$name.json" \
      > /dev/null \
      || { echo "FAIL: daemon $name report differs from the CLI" >&2; exit 1; }
  done
  "$EVALUATE" serve-stats --addr "$addr" > "$serve_dir/stats-cold.json"

  # Warm pass: resubmitting must serve >= 90% of cells from the caches
  # (the delta against the cold-pass stats isolates the warm submissions).
  for exp in "fig11 200" "profile 120"; do
    set -- $exp
    "$EVALUATE" serve-submit "$1" --addr "$addr" --txs "$2" \
      > "$serve_dir/warm-$1.txt" 2>/dev/null
    cmp "$serve_dir/cli-$1.txt" "$serve_dir/warm-$1.txt" \
      || { echo "FAIL: warm daemon $1 text differs from the CLI" >&2; exit 1; }
  done
  "$EVALUATE" serve-stats --addr "$addr" > "$serve_dir/stats-warm.json"
  store_hits() { sed -n 's/.*"store":{"hits":\([0-9]*\),"misses":\([0-9]*\).*/\1 \2/p' "$1"; }
  read -r hits0 misses0 <<EOF
$(store_hits "$serve_dir/stats-cold.json")
EOF
  read -r hits1 misses1 <<EOF
$(store_hits "$serve_dir/stats-warm.json")
EOF
  warm_hits=$((hits1 - hits0))
  warm_misses=$((misses1 - misses0))
  [ "$warm_hits" -gt 0 ] && [ "$((warm_misses * 9))" -le "$warm_hits" ] \
    || { echo "FAIL: warm serve hit rate below 90% ($warm_hits hits, $warm_misses misses)" >&2
         exit 1; }
  echo "warm serve: $warm_hits hits, $warm_misses misses"

  # Graceful shutdown: the daemon drains and the process exits.
  "$EVALUATE" serve-stop --addr "$addr" > /dev/null
  wait "$daemon_pid" \
    || { echo "FAIL: serve daemon exited non-zero after shutdown" >&2; exit 1; }

  # Backpressure: a queue too small for a whole experiment answers 429
  # with Retry-After instead of partially admitting it.
  "$EVALUATE" serve --addr 127.0.0.1:0 --serve-workers 1 --queue-cap 1 \
    --store-dir "$serve_dir/tiny-store" \
    > "$serve_dir/tiny.out" 2> "$serve_dir/tiny.err" &
  tiny_pid=$!
  tiny_addr=""
  for _ in $(seq 1 100); do
    tiny_addr=$(sed -n 's/^serving on //p' "$serve_dir/tiny.out")
    [ -n "$tiny_addr" ] && break
    sleep 0.1
  done
  [ -n "$tiny_addr" ] || { echo "FAIL: tiny serve daemon never started" >&2; exit 1; }
  if "$EVALUATE" serve-submit fig11 --addr "$tiny_addr" --txs 200 \
    > /dev/null 2> "$serve_dir/tiny-submit.err"; then
    echo "FAIL: tiny-queue daemon accepted a whole experiment" >&2
    exit 1
  fi
  grep -q "queue full (Retry-After:" "$serve_dir/tiny-submit.err" \
    || { echo "FAIL: rejection did not carry Retry-After" >&2
         cat "$serve_dir/tiny-submit.err" >&2; exit 1; }
  "$EVALUATE" serve-stop --addr "$tiny_addr" > /dev/null
  wait "$tiny_pid"
  rm -rf "$serve_dir"
}

bench_stage() {
  echo "== timed trace-cache benchmark =="
  # Wall-clock data point for the perf trajectory: the same grid with and
  # without trace sharing, from the reports' own wall_ms envelope field.
  fresh_dir="target/bench-fresh"
  rm -rf "$fresh_dir"
  mkdir -p "$fresh_dir"
  bench_dir="target/reports-ci-bench"
  rm -rf "$bench_dir"
  # --no-result-store everywhere wall-clock is measured: a warm store
  # would replay cells and time nothing but disk reads.
  "$EVALUATE" fig11 --txs 500 --jobs 4 --no-result-store \
    --json-dir "$bench_dir/cached" > /dev/null 2>&1
  "$EVALUATE" fig11 --txs 500 --jobs 4 --no-trace-cache --no-result-store \
    --json-dir "$bench_dir/uncached" > /dev/null 2>&1
  cached_ms=$(sed -n 's/.*"wall_ms": *\([0-9.]*\).*/\1/p' "$bench_dir/cached/fig11.json")
  uncached_ms=$(sed -n 's/.*"wall_ms": *\([0-9.]*\).*/\1/p' "$bench_dir/uncached/fig11.json")
  printf '{"experiment": "fig11", "txs": 500, "jobs": 4, "cached_wall_ms": %s, "uncached_wall_ms": %s}\n' \
    "$cached_ms" "$uncached_ms" > "$fresh_dir/BENCH_trace_cache.json"
  "$EVALUATE" check "$bench_dir/cached/fig11.json"
  cat "$fresh_dir/BENCH_trace_cache.json"

  echo "== timed profile benchmark =="
  # Both a wall-clock data point and a simulation-cycle fingerprint: the
  # summed total_cycles over the whole scheme x workload grid is
  # deterministic, so any drift is a real perf change in the simulated
  # machine, not host noise.
  "$EVALUATE" profile --txs 400 --jobs 4 --no-result-store \
    --json-dir "$bench_dir/profile" > /dev/null 2>&1
  prof_ms=$(sed -n 's/.*"wall_ms": *\([0-9.]*\).*/\1/p' "$bench_dir/profile/profile.json")
  total_cycles=$(grep -o '"total_cycles": *[0-9]*' "$bench_dir/profile/profile.json" \
    | awk -F: '{s += $2} END {printf "%d", s}')
  printf '{"experiment": "profile", "txs": 400, "jobs": 4, "wall_ms": %s, "total_cycles_sum": %s}\n' \
    "$prof_ms" "$total_cycles" > "$fresh_dir/BENCH_profile.json"
  cat "$fresh_dir/BENCH_profile.json"

  echo "== timed engine benchmark =="
  # The rawest engine hot loop (full runs, no cycle accounting): a
  # wall-clock data point for the allocation/hashing hot paths plus the
  # deterministic summed per-core cycles as a behavioural fingerprint.
  "$EVALUATE" bench-engine --txs 600 --jobs 4 --no-result-store \
    --json-dir "$bench_dir/engine" > /dev/null 2>&1
  eng_ms=$(sed -n 's/.*"wall_ms": *\([0-9.]*\).*/\1/p' "$bench_dir/engine/bench-engine.json")
  eng_cycles=$(grep -o '"total_cycles": *[0-9]*' "$bench_dir/engine/bench-engine.json" \
    | awk -F: '{s += $2} END {printf "%d", s}')
  printf '{"experiment": "bench-engine", "txs": 600, "jobs": 4, "wall_ms": %s, "total_cycles_sum": %s}\n' \
    "$eng_ms" "$eng_cycles" > "$fresh_dir/BENCH_engine.json"
  cat "$fresh_dir/BENCH_engine.json"

  echo "== timed crashfuzz benchmark =="
  # Checkpointed crash resimulation vs from-scratch resimulation on the
  # same dense crash-point scan: one long-horizon Silo cell, 96 crash
  # points on the op-boundary cycle axis. Per-point work is what the
  # checkpoint machinery amortizes (a from-scratch point replays the
  # whole crash prefix, a resumed point only the suffix past the nearest
  # checkpoint), so the point count dominates and the wall-clock pair is
  # the perf trajectory of resume itself. crash_runs is deterministic
  # and pins the sweep shape. The speedup gate below holds the headline
  # claim: the checkpointed scan must stay >= 3x faster than
  # re-simulating every prefix from t=0.
  "$EVALUATE" crashfuzz --txs 8000 --points 96 --jobs 1 --scheme Silo \
    --bench Hash --fault op-boundary --no-result-store \
    --json-dir "$bench_dir/crashfuzz-ckpt" > /dev/null 2>&1
  "$EVALUATE" crashfuzz --txs 8000 --points 96 --jobs 1 --scheme Silo \
    --bench Hash --fault op-boundary --no-result-store --no-checkpoints \
    --json-dir "$bench_dir/crashfuzz-nockpt" > /dev/null 2>&1
  ckpt_ms=$(sed -n 's/.*"wall_ms": *\([0-9.]*\).*/\1/p' "$bench_dir/crashfuzz-ckpt/crashfuzz.json")
  nockpt_ms=$(sed -n 's/.*"wall_ms": *\([0-9.]*\).*/\1/p' "$bench_dir/crashfuzz-nockpt/crashfuzz.json")
  runs=$(sed -n 's/.*"crash_runs": *\([0-9]*\).*/\1/p' "$bench_dir/crashfuzz-ckpt/crashfuzz.json")
  printf '{"experiment": "crashfuzz", "txs": 8000, "points": 96, "jobs": 1, "crash_runs": %s, "checkpointed_wall_ms": %s, "scratch_wall_ms": %s}\n' \
    "$runs" "$ckpt_ms" "$nockpt_ms" > "$fresh_dir/BENCH_crashfuzz.json"
  cat "$fresh_dir/BENCH_crashfuzz.json"
  awk -v ckpt="$ckpt_ms" -v scratch="$nockpt_ms" \
    'BEGIN { exit !(ckpt * 3 <= scratch) }' \
    || { echo "FAIL: checkpointed crashfuzz ($ckpt_ms ms) not >= 3x faster than scratch ($nockpt_ms ms)" >&2
         exit 1; }

  echo "== timed latency benchmark =="
  # The open-system arrival layer end to end: Poisson admission, the
  # per-core sojourn recorder, and the exact percentile reduction. The
  # summed p99 over every row of the sweep is integer-exact and
  # deterministic, so it fingerprints the arrival schedules, the
  # admission semantics, and the percentile math at once; wall-clock
  # tracks the admission layer's cost in the engine hot loop.
  "$EVALUATE" latency --txs 240 --bench Hash --jobs 4 --no-result-store \
    --json-dir "$bench_dir/latency" > /dev/null 2>&1
  lat_ms=$(sed -n 's/.*"wall_ms": *\([0-9.]*\).*/\1/p' "$bench_dir/latency/latency.json")
  p99_sum=$(grep -o '"p99": *[0-9]*' "$bench_dir/latency/latency.json" \
    | awk -F: '{s += $2} END {printf "%d", s}')
  printf '{"experiment": "latency", "txs": 240, "jobs": 4, "wall_ms": %s, "p99_sum": %s}\n' \
    "$lat_ms" "$p99_sum" > "$fresh_dir/BENCH_latency.json"
  cat "$fresh_dir/BENCH_latency.json"

  echo "== timed fuzz benchmark =="
  # The coverage-guided crash search end to end: per-candidate crash
  # resimulation with the spec machine and the signature recorder
  # enabled. Executions and the summed coverage-bit count over the full
  # scheme x workload matrix are deterministic fingerprints of the
  # search itself; wall-clock tracks the per-candidate overhead of the
  # two observers.
  "$EVALUATE" fuzz --txs 16 --execs 6 --jobs 4 --no-result-store --no-corpus \
    --json-dir "$bench_dir/fuzz" > /dev/null 2>&1
  fuzz_ms=$(sed -n 's/.*"wall_ms": *\([0-9.]*\).*/\1/p' "$bench_dir/fuzz/fuzz.json")
  fuzz_execs=$(sed -n 's/.*"executions": *\([0-9]*\).*/\1/p' "$bench_dir/fuzz/fuzz.json")
  cov_sum=$(grep -o '"coverage_bits": *[0-9]*' "$bench_dir/fuzz/fuzz.json" \
    | awk -F: '{s += $2} END {printf "%d", s}')
  printf '{"experiment": "fuzz", "txs": 16, "jobs": 4, "executions": %s, "coverage_sum": %s, "wall_ms": %s}\n' \
    "$fuzz_execs" "$cov_sum" "$fuzz_ms" > "$fresh_dir/BENCH_fuzz.json"
  cat "$fresh_dir/BENCH_fuzz.json"

  echo "== timed result-store benchmark =="
  # Cold vs warm on a scratch store: the perf trajectory of incremental
  # evaluate itself. Cold pays simulation + persistence, warm pays trace
  # fingerprinting + replay.
  store_dir="target/bench-result-store"
  rm -rf "$store_dir"
  SILO_RESULT_STORE="$store_dir" "$EVALUATE" fig11 --txs 500 --jobs 4 \
    --json-dir "$bench_dir/store-cold" > /dev/null 2>&1
  SILO_RESULT_STORE="$store_dir" "$EVALUATE" fig11 --txs 500 --jobs 4 \
    --json-dir "$bench_dir/store-warm" > /dev/null 2>&1
  cold_ms=$(sed -n 's/.*"wall_ms": *\([0-9.]*\).*/\1/p' "$bench_dir/store-cold/fig11.json")
  warm_ms=$(sed -n 's/.*"wall_ms": *\([0-9.]*\).*/\1/p' "$bench_dir/store-warm/fig11.json")
  printf '{"experiment": "fig11", "txs": 500, "jobs": 4, "cold_wall_ms": %s, "warm_wall_ms": %s}\n' \
    "$cold_ms" "$warm_ms" > "$fresh_dir/BENCH_store.json"
  cat "$fresh_dir/BENCH_store.json"
  rm -rf "$store_dir" "$bench_dir"

  echo "== timed serve benchmark =="
  # The daemon's load driver: cold vs warm grid submission plus the
  # request-level latency distribution of cached single-cell serves. The
  # explicit gates below hold the headline claims — a warm submission
  # costs <= 10% of a cold one, and a cached cell answers in under a
  # millisecond at the median.
  "$EVALUATE" serve-bench --txs 500 --store-dir target/serve-bench-store \
    --out "$fresh_dir/BENCH_serve.json" 2>/dev/null
  cat "$fresh_dir/BENCH_serve.json"
  rm -rf target/serve-bench-store
  serve_cold=$(sed -n 's/.*"grid_cold_wall_ms": *\([0-9.]*\).*/\1/p' "$fresh_dir/BENCH_serve.json")
  serve_warm=$(sed -n 's/.*"grid_warm_wall_ms": *\([0-9.]*\).*/\1/p' "$fresh_dir/BENCH_serve.json")
  serve_p50=$(sed -n 's/.*"cached_p50_wall_ms": *\([0-9.]*\).*/\1/p' "$fresh_dir/BENCH_serve.json")
  awk -v cold="$serve_cold" -v warm="$serve_warm" \
    'BEGIN { exit !(warm * 10 <= cold) }' \
    || { echo "FAIL: warm serve ($serve_warm ms) not <= 10% of cold ($serve_cold ms)" >&2
         exit 1; }
  awk -v p50="$serve_p50" 'BEGIN { exit !(p50 < 1.0) }' \
    || { echo "FAIL: cached serve p50 ($serve_p50 ms) not under 1 ms" >&2; exit 1; }

  echo "== perf-regression gate =="
  scripts/check_bench.sh "$fresh_dir"
}

stage="${1:-all}"
case "$stage" in
  build) build_stage ;;
  test) test_stage ;;
  lint) lint_stage ;;
  smoke) smoke_stage ;;
  fuzz) fuzz_stage ;;
  serve) serve_stage ;;
  bench) bench_stage ;;
  all)
    build_stage
    test_stage
    lint_stage
    smoke_stage
    fuzz_stage
    serve_stage
    bench_stage
    echo "CI OK"
    ;;
  *)
    echo "usage: scripts/ci.sh [build|test|lint|smoke|fuzz|serve|bench|all]" >&2
    exit 2
    ;;
esac
