#!/usr/bin/env bash
# Perf-regression gate: compare freshly measured BENCH_*.json files against
# the baselines committed at the repo root.
#
#   scripts/check_bench.sh <fresh-dir>            compare, exit 1 on regression
#   scripts/check_bench.sh --bless <fresh-dir>    copy fresh results over the
#                                                 committed baselines
#
# Wall-clock fields (`*wall_ms`) are host-dependent, so they get a relative
# tolerance (BENCH_TOLERANCE_PCT, default 15%) plus a small absolute slack
# (BENCH_SLACK_MS, default 250 ms) so sub-second timings aren't judged on
# noise. Simulation-cycle fields (`total_cycles_sum`) are deterministic and
# must match exactly: the simulated machine is the same no matter how fast
# the host is, so any drift there is a real behavioural change.
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE_PCT="${BENCH_TOLERANCE_PCT:-15}"
SLACK_MS="${BENCH_SLACK_MS:-250}"

bless=0
if [ "${1:-}" = "--bless" ]; then
  bless=1
  shift
fi
fresh_dir="${1:-}"
[ -n "$fresh_dir" ] && [ -d "$fresh_dir" ] || {
  echo "usage: scripts/check_bench.sh [--bless] <fresh-dir>" >&2
  exit 2
}

# json_num FILE KEY -> numeric value of a flat "key": number field.
json_num() {
  sed -n "s/.*\"$2\": *\([0-9.]*\).*/\1/p" "$1"
}

failures=0

check_file() {
  local name="$1"
  local fresh="$fresh_dir/$name"
  local base="./$name"
  [ -f "$fresh" ] || { echo "FAIL: $fresh was not produced" >&2; failures=$((failures + 1)); return; }

  if [ "$bless" -eq 1 ]; then
    cp "$fresh" "$base"
    echo "blessed $base"
    return
  fi
  [ -f "$base" ] || {
    echo "FAIL: no committed baseline $base (run with --bless to create it)" >&2
    failures=$((failures + 1))
    return
  }

  # Every numeric field present in the baseline is checked in the fresh
  # result: *wall_ms within tolerance, everything else exact.
  local keys
  # [a-z0-9_]: keys with digits (p99_sum) must be gated too, not
  # silently skipped by a too-narrow character class.
  keys=$(grep -o '"[a-z0-9_]*": *[0-9]' "$base" | sed 's/"\([a-z0-9_]*\)".*/\1/')
  for key in $keys; do
    local want got
    want=$(json_num "$base" "$key")
    got=$(json_num "$fresh" "$key")
    [ -n "$got" ] || {
      echo "FAIL: $name is missing field $key" >&2
      failures=$((failures + 1))
      continue
    }
    case "$key" in
      *wall_ms)
        awk -v want="$want" -v got="$got" -v tol="$TOLERANCE_PCT" -v slack="$SLACK_MS" \
          -v name="$name" -v key="$key" 'BEGIN {
            limit = want * (1 + tol / 100) + slack
            if (got > limit) {
              printf "FAIL: %s %s regressed: %.0f ms vs baseline %.0f ms (limit %.0f ms, +%s%% +%s ms)\n",
                name, key, got, want, limit, tol, slack
              exit 1
            }
            printf "ok:   %s %s = %.0f ms (baseline %.0f ms, limit %.0f ms)\n",
              name, key, got, want, limit
          }' || failures=$((failures + 1))
        ;;
      *)
        if [ "$want" = "$got" ]; then
          echo "ok:   $name $key = $got (exact)"
        else
          echo "FAIL: $name $key changed: $got vs baseline $want (must match exactly)" >&2
          failures=$((failures + 1))
        fi
        ;;
    esac
  done
}

checked=""
check() {
  checked="$checked $1"
  check_file "$1"
}

check "BENCH_trace_cache.json"
check "BENCH_profile.json"
check "BENCH_engine.json"
check "BENCH_store.json"
check "BENCH_crashfuzz.json"
check "BENCH_latency.json"
check "BENCH_fuzz.json"
check "BENCH_serve.json"

if [ "$bless" -eq 1 ]; then
  exit 0
fi

# A fresh metric nobody compares is a gate that silently stopped gating:
# every BENCH_*.json the bench stage produced must be in the checked list
# above (and check_file already fails if its committed baseline is gone).
for fresh in "$fresh_dir"/BENCH_*.json; do
  [ -e "$fresh" ] || continue
  name=$(basename "$fresh")
  case " $checked " in
    *" $name "*) ;;
    *)
      echo "FAIL: fresh metric $name has no baseline check (add it to scripts/check_bench.sh and bless a baseline)" >&2
      failures=$((failures + 1))
      ;;
  esac
done
if [ "$failures" -gt 0 ]; then
  echo "perf gate: $failures failure(s); if intentional, re-baseline with" >&2
  echo "  scripts/ci.sh bench && scripts/check_bench.sh --bless target/bench-fresh" >&2
  exit 1
fi
echo "perf gate: all benchmarks within tolerance"
