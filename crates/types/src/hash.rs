//! A small, seed-free, deterministic multiply-xor hasher for hot-path maps.
//!
//! The simulator's inner loop is dominated by map lookups keyed by small
//! integers (media line indices, word addresses, transaction tags). The
//! standard library's default SipHash is DoS-resistant but an order of
//! magnitude slower than necessary for trusted keys. This module provides an
//! FxHash-style hasher (the rustc / Firefox multiply-rotate-xor scheme)
//! implemented in-tree so the workspace keeps building offline with no new
//! dependencies.
//!
//! Determinism: the hasher is seed-free, so a given key set always produces
//! the same table layout and the same iteration order within one build. No
//! simulator output may *depend* on that order — reports must stay
//! byte-identical under any hasher — which is what [`set_scramble_seed`]
//! exists to verify: tests flip the seed to force a different bucket order
//! and assert the rendered reports do not change.
//!
//! # Examples
//!
//! ```
//! use silo_types::FxHashMap;
//!
//! let mut m: FxHashMap<u64, u64> = FxHashMap::default();
//! m.insert(7, 42);
//! assert_eq!(m[&7], 42);
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// The multiplier from the FNV-inspired Fx scheme: a large odd constant with
/// well-mixed bits (`0x51_7c_c1_b7_27_22_0a_95`), chosen so sequential keys
/// spread across buckets.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Process-wide scramble seed, 0 in normal operation. Tests set it non-zero
/// to start every hasher from a different state, which permutes bucket
/// (iteration) order without changing lookup semantics — the lever for the
/// hash-order-independence tests.
static SCRAMBLE: AtomicU64 = AtomicU64::new(0);

/// Sets the process-wide scramble seed picked up by every
/// [`FxBuildHasher`] created afterwards. **Test-only lever**: production code
/// must leave it at 0 so runs stay deterministic; tests use it to prove that
/// no rendered output depends on map iteration order.
pub fn set_scramble_seed(seed: u64) {
    SCRAMBLE.store(seed, Ordering::Relaxed);
}

/// Returns the current process-wide scramble seed (0 in normal operation).
pub fn scramble_seed() -> u64 {
    SCRAMBLE.load(Ordering::Relaxed)
}

/// The streaming hasher state: `state = (rotl5(state) ^ chunk) * K` per
/// 8-byte chunk, the classic Fx recurrence.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            let (chunk, tail) = rest.split_at(8);
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
            rest = tail;
        }
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Fold the tail length in so "ab" + "" and "a" + "b" differ.
            self.add(u64::from_le_bytes(buf) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// Builds [`FxHasher`]s. `Default` snapshots the process-wide scramble seed
/// (0 outside tests), so every map created in normal operation hashes
/// identically across runs, builds, and platforms.
#[derive(Clone, Copy, Debug)]
pub struct FxBuildHasher {
    seed: u64,
}

impl Default for FxBuildHasher {
    #[inline]
    fn default() -> Self {
        FxBuildHasher {
            seed: scramble_seed(),
        }
    }
}

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher { hash: self.seed }
    }
}

/// A `HashMap` using the deterministic in-tree Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the deterministic in-tree Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher { seed: 0 }.hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&0xdead_beefu64), hash_of(&0xdead_beefu64));
        assert_eq!(hash_of(&"silo"), hash_of(&"silo"));
    }

    #[test]
    fn distinct_small_keys_hash_distinctly() {
        // Sequential media line indices are the common key shape; they must
        // not collapse onto one bucket chain.
        let hashes: std::collections::HashSet<u64> = (0u64..1024).map(|k| hash_of(&k)).collect();
        assert_eq!(hashes.len(), 1024);
    }

    #[test]
    fn byte_tail_is_length_sensitive() {
        let a = {
            let mut h = FxHasher::default();
            h.write(b"ab");
            h.finish()
        };
        let b = {
            let mut h = FxHasher::default();
            h.write(b"ab\0");
            h.finish()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let s: FxHashSet<u64> = [1, 2, 3].into_iter().collect();
        assert!(s.contains(&3));
    }

    #[test]
    fn scramble_seed_changes_hashes_not_semantics() {
        let base = hash_of(&42u64);
        set_scramble_seed(0x9e37_79b9_7f4a_7c15);
        let scrambled = FxBuildHasher::default().hash_one(42u64);
        set_scramble_seed(0);
        assert_ne!(base, scrambled, "seed must perturb bucket placement");
        // Lookup semantics are untouched: a map built under one seed still
        // resolves its own keys.
        set_scramble_seed(7);
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for k in 0..64 {
            m.insert(k, k * 2);
        }
        set_scramble_seed(0);
        for k in 0..64 {
            assert_eq!(m[&k], k * 2);
        }
    }
}
