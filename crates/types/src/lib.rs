//! Common value types for the Silo persistent-memory simulator.
//!
//! This crate is the bottom of the workspace dependency graph. It defines the
//! vocabulary every other crate speaks:
//!
//! * [`PhysAddr`] — a byte-granular physical address into simulated persistent
//!   memory, with word/line/buffer-line alignment helpers.
//! * [`Word`] — the 8-byte unit of a CPU store, the granularity at which the
//!   Silo log records data (paper §III-B, Fig 6).
//! * [`ThreadId`] / [`TxId`] / [`TxTag`] — the 8-bit thread id and 16-bit
//!   transaction id carried in every log entry, and their pairing used as the
//!   commit "ID tuple" during recovery (paper §III-G).
//! * [`Cycles`] — simulation time at the paper's 2 GHz clock, with nanosecond
//!   conversions for the Table II latencies.
//! * [`SplitMix64`] / [`Xoshiro256`] — small deterministic RNGs so that every
//!   simulation run is exactly reproducible from a seed.
//! * [`FxHashMap`] / [`FxHashSet`] — hot-path maps over the in-tree,
//!   seed-free [`hash::FxHasher`], an order of magnitude cheaper than
//!   SipHash for the simulator's small integer keys.
//!
//! # Examples
//!
//! ```
//! use silo_types::{PhysAddr, Word, WORD_BYTES, LINE_BYTES};
//!
//! let a = PhysAddr::new(0x1234);
//! assert_eq!(a.word_aligned(), PhysAddr::new(0x1230));
//! assert_eq!(a.line_index(), 0x1234 / LINE_BYTES as u64);
//! assert_eq!(Word::from_le_bytes([1, 0, 0, 0, 0, 0, 0, 0]).as_u64(), 1);
//! assert_eq!(WORD_BYTES, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod cycles;
pub mod hash;
mod ids;
pub mod json;
mod rng;
mod snapshot;
mod word;

pub use addr::{LineAddr, PhysAddr, BUF_LINE_BYTES, LINE_BYTES, WORD_BYTES};
pub use cycles::{Cycles, CLOCK_GHZ};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{CoreId, ThreadId, TxId, TxTag};
pub use json::{JsonObject, JsonValue};
pub use rng::{SplitMix64, Xoshiro256};
pub use snapshot::Snapshot;
pub use word::Word;
