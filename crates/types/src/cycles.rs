//! Simulation time, measured in cycles of the paper's 2 GHz clock.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub};

/// Simulated core clock frequency in GHz (paper Table II: "8 cores, x86-64,
/// 2 GHz").
pub const CLOCK_GHZ: f64 = 2.0;

/// A duration or timestamp in CPU cycles at [`CLOCK_GHZ`].
///
/// The paper specifies memory latencies in nanoseconds (Table II: PM read /
/// write = 50 / 150 ns) and on-chip latencies in cycles (L1 = 4 cycles, log
/// buffer = 8 cycles); [`Cycles::from_ns`] converts the former at the 2 GHz
/// clock so 50 ns = 100 cycles and 150 ns = 300 cycles.
///
/// # Examples
///
/// ```
/// use silo_types::Cycles;
///
/// assert_eq!(Cycles::from_ns(50.0), Cycles::new(100));
/// assert_eq!(Cycles::from_ns(150.0), Cycles::new(300));
/// assert_eq!(Cycles::new(3) + Cycles::new(4), Cycles::new(7));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycles(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Converts a nanosecond latency at the 2 GHz clock (rounding to the
    /// nearest cycle).
    #[inline]
    pub fn from_ns(ns: f64) -> Self {
        Cycles((ns * CLOCK_GHZ).round() as u64)
    }

    /// This duration in nanoseconds.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / CLOCK_GHZ
    }

    /// The later of two timestamps.
    #[inline]
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// The difference `self - other`, or zero if `other` is later
    /// (saturating, so "time remaining" computations never underflow).
    #[inline]
    pub fn saturating_sub(self, other: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(other.0))
    }

    /// Scales the duration by an integer factor.
    #[inline]
    pub fn scaled(self, factor: u64) -> Cycles {
        Cycles(self.0 * factor)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    /// # Panics
    ///
    /// Panics in debug builds on underflow; use
    /// [`Cycles::saturating_sub`] when `rhs` may be later.
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Debug for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cycles({})", self.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(v: u64) -> Cycles {
        Cycles(v)
    }
}

impl From<Cycles> for u64 {
    fn from(c: Cycles) -> u64 {
        c.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_latencies_convert_exactly() {
        assert_eq!(Cycles::from_ns(50.0).as_u64(), 100);
        assert_eq!(Cycles::from_ns(150.0).as_u64(), 300);
    }

    #[test]
    fn ns_round_trip() {
        let c = Cycles::new(300);
        assert!((c.as_ns() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let mut c = Cycles::new(10);
        c += Cycles::new(5);
        assert_eq!(c, Cycles::new(15));
        assert_eq!(c - Cycles::new(5), Cycles::new(10));
        assert_eq!(c.max(Cycles::new(100)), Cycles::new(100));
        assert_eq!(Cycles::new(3).saturating_sub(Cycles::new(9)), Cycles::ZERO);
        assert_eq!(Cycles::new(4).scaled(3), Cycles::new(12));
    }

    #[test]
    fn sums_over_iterators() {
        let total: Cycles = (1..=4).map(Cycles::new).sum();
        assert_eq!(total, Cycles::new(10));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", Cycles::new(8)), "8 cyc");
        assert_eq!(format!("{:?}", Cycles::ZERO), "Cycles(0)");
    }
}
