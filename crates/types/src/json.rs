//! A dependency-free JSON value: builder, serializer, and a small parser.
//!
//! The crates-io registry is unreachable in this repository's build
//! environment, so the experiment reports (`target/reports/<name>.json`)
//! are produced without serde. [`JsonValue`] covers exactly what the
//! reports need: objects with ordered keys, arrays, strings with correct
//! escaping, unsigned integers (the statistics counters), and floats
//! (derived metrics). The parser exists so reports can be validated
//! round-trip by tests and by `evaluate check`.
//!
//! # Examples
//!
//! ```
//! use silo_types::JsonValue;
//!
//! let v = JsonValue::object()
//!     .field("name", "fig11")
//!     .field("cells", JsonValue::array([1u64, 2, 3]))
//!     .build();
//! let text = v.to_string();
//! assert_eq!(text, r#"{"name":"fig11","cells":[1,2,3]}"#);
//! assert_eq!(JsonValue::parse(&text).unwrap(), v);
//! ```

use std::fmt;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (statistics counters are `u64`).
    Uint(u64),
    /// A float. Non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Uint(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Uint(v as u64)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

/// Chained builder for [`JsonValue::Obj`].
#[derive(Default)]
pub struct JsonObject {
    fields: Vec<(String, JsonValue)>,
}

impl JsonObject {
    /// Appends a field.
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> JsonValue {
        JsonValue::Obj(self.fields)
    }
}

impl JsonValue {
    /// Starts an object builder.
    pub fn object() -> JsonObject {
        JsonObject::default()
    }

    /// Builds an array from anything convertible to values.
    pub fn array<T: Into<JsonValue>>(items: impl IntoIterator<Item = T>) -> JsonValue {
        JsonValue::Arr(items.into_iter().map(Into::into).collect())
    }

    /// The value of `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Uint(n) => Some(*n as f64),
            JsonValue::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The exact unsigned value if this is an integer. Unlike
    /// [`JsonValue::as_f64`], counters above 2^53 survive without
    /// rounding, which is what the stats deserializers require.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Uint(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses a JSON document. Accepts exactly what [`fmt::Display`]
    /// emits plus ordinary whitespace and signed/scientific numbers.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn escape_into(out: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_str("\"")
}

impl fmt::Display for JsonValue {
    /// Compact serialization (no insignificant whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Uint(n) => write!(f, "{n}"),
            JsonValue::Float(x) if !x.is_finite() => f.write_str("null"),
            // Rust's shortest round-trip float formatting; force a decimal
            // point so floats stay floats across a round trip.
            JsonValue::Float(x) if x.fract() == 0.0 && x.abs() < 1e15 => write!(f, "{x:.1}"),
            JsonValue::Float(x) => write!(f, "{x}"),
            JsonValue::Str(s) => escape_into(f, s),
            JsonValue::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape_into(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs never occur in this crate's output.
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one full UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if !text.contains(['.', 'e', 'E', '-']) {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(JsonValue::Uint(n));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::Float)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_display() {
        let v = JsonValue::object()
            .field("a", 1u64)
            .field("b", 2.5)
            .field("c", "x")
            .field("d", JsonValue::array(["y", "z"]))
            .field("e", JsonValue::Null)
            .build();
        assert_eq!(
            v.to_string(),
            r#"{"a":1,"b":2.5,"c":"x","d":["y","z"],"e":null}"#
        );
    }

    #[test]
    fn escaping_covers_specials_and_controls() {
        let v = JsonValue::Str("a\"b\\c\nd\te\u{1}f".to_string());
        assert_eq!(v.to_string(), r#""a\"b\\c\nd\te\u0001f""#);
    }

    #[test]
    fn round_trip_is_identity() {
        let v = JsonValue::object()
            .field("name", "weird \"chars\" \\ \n\t ключ")
            .field("uint", u64::MAX)
            .field("float", 0.1_f64)
            .field("whole_float", 3.0_f64)
            .field("neg", -1.5_f64)
            .field("flag", true)
            .field("none", JsonValue::Null)
            .field(
                "nested",
                JsonValue::array([JsonValue::object().field("k", 7u64).build()]),
            )
            .build();
        let text = v.to_string();
        let back = JsonValue::parse(&text).expect("parses");
        assert_eq!(back, v);
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn whole_floats_stay_floats() {
        let text = JsonValue::Float(64.0).to_string();
        assert_eq!(text, "64.0");
        assert_eq!(JsonValue::parse(&text).unwrap(), JsonValue::Float(64.0));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::Float(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn accessors() {
        let v = JsonValue::parse(r#"{"a": [1, 2.5, "s"], "b": {"c": null}}"#).unwrap();
        let arr = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("s"));
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn as_u64_is_exact_and_integer_only() {
        assert_eq!(JsonValue::Uint(u64::MAX).as_u64(), Some(u64::MAX));
        assert_eq!(JsonValue::Float(3.0).as_u64(), None);
        assert_eq!(JsonValue::Str("3".into()).as_u64(), None);
        // Round-trips through text without the f64 precision cliff.
        let big = u64::MAX - 1;
        let back = JsonValue::parse(&JsonValue::Uint(big).to_string()).unwrap();
        assert_eq!(back.as_u64(), Some(big));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }
}
