//! Restorable component state for shared-prefix resimulation.
//!
//! Crashfuzz re-simulates the same clean prefix for every crash point; the
//! [`Snapshot`] trait lets each machine component capture its full state at
//! a quiescent engine boundary and later restore it exactly, so a crash run
//! can resume from the nearest checkpoint instead of t=0. The contract is
//! strict byte-identity: a component restored from a snapshot must behave
//! exactly as if the prefix had just been simulated — same observable state,
//! same counters, same subsequent event stream.

/// A component whose complete state can be captured and restored.
///
/// Implementations must guarantee that after `restore(&s)` the component is
/// indistinguishable from its state at the moment `s = snapshot()` was
/// taken. For Arc-COW backed components (the paged PM media) a snapshot is a
/// pointer bump; for flat slabs (the caches) it is a sparse copy of the
/// occupied entries.
pub trait Snapshot {
    /// The captured state. `Send + Sync` so checkpoint sets can be shared
    /// across sweep worker threads behind an `Arc`.
    type State: Send + Sync;

    /// Capture the component's complete state.
    fn snapshot(&self) -> Self::State;

    /// Restore the component to exactly the captured state.
    fn restore(&mut self, state: &Self::State);
}

/// Implements [`Snapshot`] with `State = Self` for a `Clone` type.
///
/// Correct whenever `Clone` captures the complete component state — true
/// for every plain-data component (and for the Arc-COW media, where clone
/// is a reference bump and the pages copy lazily on the next write).
#[macro_export]
macro_rules! impl_snapshot_via_clone {
    ($($ty:ty),+ $(,)?) => {$(
        impl $crate::Snapshot for $ty {
            type State = $ty;

            fn snapshot(&self) -> $ty {
                self.clone()
            }

            fn restore(&mut self, state: &$ty) {
                self.clone_from(state);
            }
        }
    )+};
}
