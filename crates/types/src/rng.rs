//! Small deterministic pseudo-random number generators.
//!
//! Every simulation in this workspace must be exactly reproducible from a
//! seed (the determinism integration test depends on it), so workload
//! generators use these fixed-algorithm RNGs rather than an external crate
//! whose stream could change across versions.

/// Sebastiano Vigna's SplitMix64: a tiny, high-quality 64-bit generator,
/// used directly for cheap decisions and as the seeder for [`Xoshiro256`].
///
/// # Examples
///
/// ```
/// use silo_types::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style widening multiply; the tiny modulo bias of the plain
        // form is irrelevant for workload generation, but this form is
        // cheaper than rejection sampling and has far less bias than `%`.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    #[inline]
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// xoshiro256** 1.0 (Blackman & Vigna): the workhorse generator for workload
/// address and value streams.
///
/// # Examples
///
/// ```
/// use silo_types::Xoshiro256;
///
/// let mut r = Xoshiro256::seeded(7);
/// let x = r.next_u64();
/// let y = r.next_u64();
/// assert_ne!(x, y);
/// assert_eq!(Xoshiro256::seeded(7).next_u64(), x);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator whose 256-bit state is expanded from `seed` with
    /// [`SplitMix64`], per the reference implementation's advice.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot emit
        // four consecutive zeros, so this is unreachable, but keep the guard
        // to document the invariant.
        debug_assert!(s.iter().any(|&x| x != 0));
        Xoshiro256 { s }
    }

    /// The next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// `true` with probability `percent / 100`.
    #[inline]
    pub fn percent(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 0 (from the public-domain reference
        // implementation).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(r.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(r.next_u64(), 0x06c45d188009454f);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256::seeded(123);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256::seeded(123);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Xoshiro256::seeded(124);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Xoshiro256::seeded(9);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
        let mut s = SplitMix64::new(9);
        for _ in 0..10_000 {
            assert!(s.below(3) < 3);
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = Xoshiro256::seeded(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = Xoshiro256::seeded(2);
        for _ in 0..10_000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        Xoshiro256::seeded(0).below(0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Xoshiro256::seeded(0).range(5, 5);
    }

    #[test]
    fn percent_extremes() {
        let mut r = Xoshiro256::seeded(3);
        for _ in 0..100 {
            assert!(!r.percent(0));
            assert!(r.percent(100));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(3);
        for _ in 0..100 {
            assert!(!r.chance(0, 10));
            assert!(r.chance(10, 10));
        }
    }

    #[test]
    fn percent_is_roughly_calibrated() {
        let mut r = Xoshiro256::seeded(4);
        let hits = (0..100_000).filter(|_| r.percent(20)).count();
        assert!((15_000..25_000).contains(&hits), "hits = {hits}");
    }
}
