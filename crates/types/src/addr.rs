//! Physical addresses and the alignment granularities of the memory system.

use core::fmt;

/// Size in bytes of one CPU word — the granularity of a store and of the
/// old/new data recorded in a Silo log entry (paper Fig 6: "1 word, e.g. 8B
/// in 64-bit CPUs").
pub const WORD_BYTES: usize = 8;

/// Size in bytes of one cacheline, shared by all three cache levels
/// (paper Table II: "64B per line").
pub const LINE_BYTES: usize = 64;

/// Size in bytes of one line of the on-PM buffer inside the PM DIMM
/// (paper §III-E: "the line size of the on-PM buffer is larger (e.g.,
/// 256B)"). Overflowed undo-log batches are sized to fill one such line.
pub const BUF_LINE_BYTES: usize = 256;

/// A byte-granular physical address into simulated persistent memory.
///
/// The paper's log entries carry a 48-bit physical address (Fig 6); we store
/// the full `u64` but [`PhysAddr::new`] debug-asserts the 48-bit bound so the
/// hardware field width is honoured by construction.
///
/// # Examples
///
/// ```
/// use silo_types::PhysAddr;
///
/// let a = PhysAddr::new(0x1fff);
/// assert!(!a.is_word_aligned());
/// assert_eq!(a.word_aligned().as_u64(), 0x1ff8);
/// assert_eq!(a.line_aligned().as_u64(), 0x1fc0);
/// assert_eq!(a.offset_in_line(), 0x3f);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// The lowest representable address.
    pub const ZERO: PhysAddr = PhysAddr(0);

    /// Maximum representable address: the log-entry `addr` field is 48 bits.
    pub const MAX: PhysAddr = PhysAddr((1 << 48) - 1);

    /// Creates an address from a raw byte offset.
    ///
    /// # Panics
    ///
    /// Debug-panics if `raw` does not fit in the 48-bit hardware field.
    #[inline]
    pub fn new(raw: u64) -> Self {
        debug_assert!(
            raw < (1 << 48),
            "physical address exceeds 48 bits: {raw:#x}"
        );
        PhysAddr(raw)
    }

    /// Returns the raw byte offset.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the raw byte offset as a `usize` index.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Returns the address rounded down to the containing word.
    #[inline]
    pub fn word_aligned(self) -> PhysAddr {
        PhysAddr(self.0 & !(WORD_BYTES as u64 - 1))
    }

    /// Returns the address rounded down to the containing cacheline.
    #[inline]
    pub fn line_aligned(self) -> PhysAddr {
        PhysAddr(self.0 & !(LINE_BYTES as u64 - 1))
    }

    /// Returns the address rounded down to the containing on-PM buffer line.
    #[inline]
    pub fn buf_line_aligned(self) -> PhysAddr {
        PhysAddr(self.0 & !(BUF_LINE_BYTES as u64 - 1))
    }

    /// Returns `true` if the address is word-aligned.
    #[inline]
    pub fn is_word_aligned(self) -> bool {
        self.0.is_multiple_of(WORD_BYTES as u64)
    }

    /// Returns `true` if the address is cacheline-aligned.
    #[inline]
    pub fn is_line_aligned(self) -> bool {
        self.0.is_multiple_of(LINE_BYTES as u64)
    }

    /// Index of the containing cacheline (address divided by [`LINE_BYTES`]).
    ///
    /// This is the quantity the flush-bit comparators match on: "shifting the
    /// addr field" to compare line addresses (paper §III-D).
    #[inline]
    pub fn line_index(self) -> u64 {
        self.0 / LINE_BYTES as u64
    }

    /// Index of the containing on-PM buffer line.
    #[inline]
    pub fn buf_line_index(self) -> u64 {
        self.0 / BUF_LINE_BYTES as u64
    }

    /// Byte offset within the containing cacheline.
    #[inline]
    pub fn offset_in_line(self) -> usize {
        (self.0 % LINE_BYTES as u64) as usize
    }

    /// Byte offset within the containing on-PM buffer line.
    #[inline]
    pub fn offset_in_buf_line(self) -> usize {
        (self.0 % BUF_LINE_BYTES as u64) as usize
    }

    /// The address `bytes` past this one.
    ///
    /// Deliberately named like pointer arithmetic; `PhysAddr` does not
    /// implement `std::ops::Add`, so there is no ambiguity at call sites.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn add(self, bytes: u64) -> PhysAddr {
        PhysAddr::new(self.0 + bytes)
    }

    /// The cacheline address as a typed value.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.line_aligned().0)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhysAddr({:#x})", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<PhysAddr> for u64 {
    fn from(a: PhysAddr) -> u64 {
        a.0
    }
}

/// A cacheline-aligned physical address, used as the key for cache tags,
/// eviction notices, and flush-bit matching.
///
/// # Examples
///
/// ```
/// use silo_types::{LineAddr, PhysAddr};
///
/// let l = LineAddr::containing(PhysAddr::new(0x1234));
/// assert_eq!(l.base().as_u64(), 0x1200);
/// assert!(l.contains(PhysAddr::new(0x123f)));
/// assert!(!l.contains(PhysAddr::new(0x1240)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// The cacheline containing `addr`.
    #[inline]
    pub fn containing(addr: PhysAddr) -> LineAddr {
        addr.line()
    }

    /// The base (first byte) address of the line.
    #[inline]
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0)
    }

    /// The line index (base address divided by the line size).
    #[inline]
    pub fn index(self) -> u64 {
        self.0 / LINE_BYTES as u64
    }

    /// Whether `addr` falls inside this line.
    #[inline]
    pub fn contains(self, addr: PhysAddr) -> bool {
        addr.line_aligned().0 == self.0
    }

    /// Iterator over the word-aligned addresses of the line, in order.
    pub fn words(self) -> impl Iterator<Item = PhysAddr> {
        let base = self.0;
        (0..LINE_BYTES / WORD_BYTES).map(move |i| PhysAddr(base + (i * WORD_BYTES) as u64))
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_alignment_rounds_down() {
        assert_eq!(PhysAddr::new(0).word_aligned(), PhysAddr::new(0));
        assert_eq!(PhysAddr::new(7).word_aligned(), PhysAddr::new(0));
        assert_eq!(PhysAddr::new(8).word_aligned(), PhysAddr::new(8));
        assert_eq!(PhysAddr::new(15).word_aligned(), PhysAddr::new(8));
    }

    #[test]
    fn line_alignment_rounds_down() {
        assert_eq!(PhysAddr::new(63).line_aligned(), PhysAddr::new(0));
        assert_eq!(PhysAddr::new(64).line_aligned(), PhysAddr::new(64));
        assert_eq!(PhysAddr::new(130).line_aligned(), PhysAddr::new(128));
    }

    #[test]
    fn buf_line_alignment() {
        assert_eq!(PhysAddr::new(255).buf_line_aligned(), PhysAddr::new(0));
        assert_eq!(PhysAddr::new(256).buf_line_aligned(), PhysAddr::new(256));
        assert_eq!(PhysAddr::new(511).buf_line_index(), 1);
    }

    #[test]
    fn offsets_within_lines() {
        let a = PhysAddr::new(0x1234);
        assert_eq!(a.offset_in_line(), 0x34);
        assert_eq!(a.offset_in_buf_line(), 0x34);
        let b = PhysAddr::new(0x1334);
        assert_eq!(b.offset_in_buf_line(), 0x134 % 256);
    }

    #[test]
    fn line_contains_its_bytes_only() {
        let l = LineAddr::containing(PhysAddr::new(128));
        for off in 0..64u64 {
            assert!(l.contains(PhysAddr::new(128 + off)));
        }
        assert!(!l.contains(PhysAddr::new(127)));
        assert!(!l.contains(PhysAddr::new(192)));
    }

    #[test]
    fn line_words_enumerates_eight_words() {
        let l = LineAddr::containing(PhysAddr::new(0x40));
        let words: Vec<_> = l.words().collect();
        assert_eq!(words.len(), 8);
        assert_eq!(words[0], PhysAddr::new(0x40));
        assert_eq!(words[7], PhysAddr::new(0x78));
        assert!(words.iter().all(|w| w.is_word_aligned()));
    }

    #[test]
    fn alignment_predicates() {
        assert!(PhysAddr::new(0).is_word_aligned());
        assert!(PhysAddr::new(64).is_line_aligned());
        assert!(!PhysAddr::new(8).is_line_aligned());
        assert!(PhysAddr::new(8).is_word_aligned());
    }

    #[test]
    #[should_panic(expected = "48 bits")]
    #[cfg(debug_assertions)]
    fn rejects_addresses_beyond_48_bits() {
        let _ = PhysAddr::new(1 << 48);
    }

    #[test]
    fn add_advances_bytes() {
        assert_eq!(PhysAddr::new(10).add(22), PhysAddr::new(32));
    }

    #[test]
    fn display_and_debug_are_nonempty_hex() {
        let a = PhysAddr::new(0xabc);
        assert_eq!(format!("{a}"), "0xabc");
        assert_eq!(format!("{a:?}"), "PhysAddr(0xabc)");
        assert_eq!(format!("{:x}", a), "abc");
        let l = a.line();
        assert_eq!(format!("{l}"), "0xa80");
    }
}
