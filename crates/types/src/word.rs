//! The 8-byte word: the granularity of CPU stores and Silo log data.

use core::fmt;

use crate::WORD_BYTES;

/// One CPU word (8 bytes), the unit of old/new data in a Silo log entry.
///
/// The paper's log generator captures "the data change made by a CPU store
/// instruction" (Fig 6) at word granularity; [`Word`] is that datum. It is a
/// thin newtype over `u64` in little-endian byte order, with helpers for the
/// byte-level splicing the on-PM buffer performs when coalescing partial
/// overwrites (paper §III-E case 1).
///
/// # Examples
///
/// ```
/// use silo_types::Word;
///
/// let w = Word::new(0x1122_3344_5566_7788);
/// assert_eq!(w.byte(0), 0x88); // little-endian: byte 0 is the low byte
/// assert_eq!(w.to_le_bytes()[7], 0x11);
/// assert_eq!(Word::from_le_bytes(w.to_le_bytes()), w);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Word(u64);

impl Word {
    /// The all-zero word.
    pub const ZERO: Word = Word(0);

    /// Creates a word from its integer value.
    #[inline]
    pub const fn new(value: u64) -> Self {
        Word(value)
    }

    /// Returns the integer value.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The word as little-endian bytes (the memory image).
    #[inline]
    pub fn to_le_bytes(self) -> [u8; WORD_BYTES] {
        self.0.to_le_bytes()
    }

    /// Reconstructs a word from its little-endian memory image.
    #[inline]
    pub fn from_le_bytes(bytes: [u8; WORD_BYTES]) -> Self {
        Word(u64::from_le_bytes(bytes))
    }

    /// Byte `i` of the little-endian image (byte 0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    #[inline]
    pub fn byte(self, i: usize) -> u8 {
        assert!(i < WORD_BYTES, "byte index out of range: {i}");
        self.to_le_bytes()[i]
    }

    /// Number of bits that differ from `other` — the quantity a bit-level
    /// data-comparison-write scheme (paper \[62\]) would actually program.
    #[inline]
    pub fn bit_diff(self, other: Word) -> u32 {
        (self.0 ^ other.0).count_ones()
    }
}

impl fmt::Debug for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Word({:#018x})", self.0)
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

impl fmt::LowerHex for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Word {
    fn from(v: u64) -> Word {
        Word(v)
    }
}

impl From<Word> for u64 {
    fn from(w: Word) -> u64 {
        w.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_bytes() {
        let w = Word::new(0xdead_beef_cafe_f00d);
        assert_eq!(Word::from_le_bytes(w.to_le_bytes()), w);
    }

    #[test]
    fn byte_indexing_is_little_endian() {
        let w = Word::new(0x0102_0304_0506_0708);
        assert_eq!(w.byte(0), 0x08);
        assert_eq!(w.byte(7), 0x01);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn byte_index_out_of_range_panics() {
        let _ = Word::ZERO.byte(8);
    }

    #[test]
    fn bit_diff_counts_flipped_bits() {
        assert_eq!(Word::new(0).bit_diff(Word::new(0)), 0);
        assert_eq!(Word::new(0b1011).bit_diff(Word::new(0b0001)), 2);
        assert_eq!(Word::new(u64::MAX).bit_diff(Word::new(0)), 64);
    }

    #[test]
    fn conversions_and_default() {
        assert_eq!(u64::from(Word::from(42u64)), 42);
        assert_eq!(Word::default(), Word::ZERO);
    }

    #[test]
    fn debug_and_display_are_nonempty() {
        assert_eq!(format!("{}", Word::new(1)), "0x0000000000000001");
        assert!(format!("{:?}", Word::ZERO).starts_with("Word("));
    }
}
