//! Thread, transaction, and core identifiers carried in log metadata.

use core::fmt;

/// The 8-bit thread id recorded in every log entry (paper Fig 6).
///
/// # Examples
///
/// ```
/// use silo_types::ThreadId;
///
/// let t = ThreadId::new(3);
/// assert_eq!(t.as_u8(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct ThreadId(u8);

impl ThreadId {
    /// Creates a thread id.
    #[inline]
    pub const fn new(raw: u8) -> Self {
        ThreadId(raw)
    }

    /// Returns the raw 8-bit value.
    #[inline]
    pub const fn as_u8(self) -> u8 {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// The 16-bit transaction id recorded in every log entry (paper Fig 6).
///
/// The log generator "increases the value stored in a specific register as
/// the txid" at every `Tx_begin` (paper §III-B); [`TxId::next`] models that
/// register increment, wrapping at 16 bits like the hardware field would.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct TxId(u16);

impl TxId {
    /// Creates a transaction id.
    #[inline]
    pub const fn new(raw: u16) -> Self {
        TxId(raw)
    }

    /// Returns the raw 16-bit value.
    #[inline]
    pub const fn as_u16(self) -> u16 {
        self.0
    }

    /// The next transaction id (wrapping 16-bit increment, as the hardware
    /// register would).
    #[inline]
    pub const fn next(self) -> TxId {
        TxId(self.0.wrapping_add(1))
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tx{}", self.0)
    }
}

/// The `(tid, txid)` pair: the "ID tuple" written to the log region on a
/// crash to mark committed transactions (paper §III-G), and the key by which
/// recovery classifies surviving logs as redo (committed) or undo
/// (uncommitted).
///
/// # Examples
///
/// ```
/// use silo_types::{ThreadId, TxId, TxTag};
///
/// let tag = TxTag::new(ThreadId::new(1), TxId::new(3));
/// assert_eq!(format!("{tag}"), "(T1, Tx3)");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct TxTag {
    tid: ThreadId,
    txid: TxId,
}

impl TxTag {
    /// Pairs a thread id with a transaction id.
    #[inline]
    pub const fn new(tid: ThreadId, txid: TxId) -> Self {
        TxTag { tid, txid }
    }

    /// The thread id component.
    #[inline]
    pub const fn tid(self) -> ThreadId {
        self.tid
    }

    /// The transaction id component.
    #[inline]
    pub const fn txid(self) -> TxId {
        self.txid
    }
}

impl fmt::Display for TxTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.tid, self.txid)
    }
}

/// Index of a simulated CPU core (the paper evaluates 1–8 cores, one thread
/// per core).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct CoreId(usize);

impl CoreId {
    /// Creates a core index.
    #[inline]
    pub const fn new(raw: usize) -> Self {
        CoreId(raw)
    }

    /// Returns the raw index.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0
    }

    /// The thread id of the (single) thread pinned to this core.
    #[inline]
    pub fn thread(self) -> ThreadId {
        ThreadId::new(self.0 as u8)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txid_increments_and_wraps() {
        assert_eq!(TxId::new(0).next(), TxId::new(1));
        assert_eq!(TxId::new(u16::MAX).next(), TxId::new(0));
    }

    #[test]
    fn tag_components_round_trip() {
        let tag = TxTag::new(ThreadId::new(7), TxId::new(42));
        assert_eq!(tag.tid(), ThreadId::new(7));
        assert_eq!(tag.txid(), TxId::new(42));
    }

    #[test]
    fn core_to_thread_mapping_is_identity() {
        assert_eq!(CoreId::new(5).thread(), ThreadId::new(5));
    }

    #[test]
    fn displays_match_paper_notation() {
        assert_eq!(format!("{}", ThreadId::new(1)), "T1");
        assert_eq!(format!("{}", TxId::new(3)), "Tx3");
        assert_eq!(
            format!("{}", TxTag::new(ThreadId::new(1), TxId::new(3))),
            "(T1, Tx3)"
        );
        assert_eq!(format!("{}", CoreId::new(0)), "core0");
    }

    #[test]
    fn ordering_is_lexicographic_on_tid_then_txid() {
        let a = TxTag::new(ThreadId::new(0), TxId::new(9));
        let b = TxTag::new(ThreadId::new(1), TxId::new(0));
        assert!(a < b);
    }
}
