//! TATP: the telecom application transaction processing benchmark
//! (paper Fig 4, \[21\]).

use silo_sim::Transaction;
use silo_types::{PhysAddr, Xoshiro256, WORD_BYTES};

use crate::heap::TxRecorder;
use crate::registry::core_base;
use crate::Workload;

/// Words per subscriber record (256 B: ids, bit/hex/byte2 fields, vlr).
const SUBSCRIBER_WORDS: u64 = 32;
/// Words per call-forwarding slot (4 per subscriber).
const CF_WORDS: u64 = 4;

/// TATP's update transactions over a subscriber table: the classic
/// telecom OLTP workload with very small write sets (1–4 words per
/// transaction), the smallest bar of the paper's Fig 4.
///
/// Mix (update transactions of the standard TATP blend, renormalized):
/// 70 % `UPDATE_LOCATION` (1 word), 20 % `UPDATE_SUBSCRIBER_DATA`
/// (2 words), 5 % `INSERT_CALL_FORWARDING` (4 words), 5 %
/// `DELETE_CALL_FORWARDING` (1 word).
#[derive(Clone, Debug)]
pub struct TatpWorkload {
    /// Subscribers per core.
    pub subscribers: usize,
}

impl Default for TatpWorkload {
    fn default() -> Self {
        TatpWorkload { subscribers: 8192 }
    }
}

impl TatpWorkload {
    fn subscriber(base: u64, s: u64) -> PhysAddr {
        PhysAddr::new(base + s * SUBSCRIBER_WORDS * WORD_BYTES as u64)
    }

    fn call_forwarding(&self, base: u64, s: u64, slot: u64) -> PhysAddr {
        let cf_base = base + self.subscribers as u64 * SUBSCRIBER_WORDS * WORD_BYTES as u64;
        PhysAddr::new(cf_base + (s * 4 + slot) * CF_WORDS * WORD_BYTES as u64)
    }
}

impl Workload for TatpWorkload {
    fn name(&self) -> &'static str {
        "TATP"
    }

    fn trace_ident(&self) -> String {
        format!("TATP/subscribers={}", self.subscribers)
    }

    fn raw_streams(&self, cores: usize, txs_per_core: usize, seed: u64) -> Vec<Vec<Transaction>> {
        (0..cores)
            .map(|core| {
                let base = core_base(core);
                let mut rng = Xoshiro256::seeded(seed ^ (core as u64).wrapping_mul(0x7a7a));
                let mut rec = TxRecorder::new();
                let mut txs = Vec::with_capacity(txs_per_core + 1);

                // Setup: populate subscriber ids and vlr locations.
                for s in 0..self.subscribers as u64 {
                    let sub = Self::subscriber(base, s);
                    rec.write_u64(sub, s + 1); // s_id
                    rec.write_u64(sub.add(8), rng.next_u64()); // sub_nbr
                    rec.write_u64(sub.add(16), rng.next_u64()); // vlr_location
                }
                txs.push(rec.finish_tx());

                for _ in 0..txs_per_core {
                    let s = rng.below(self.subscribers as u64);
                    let sub = Self::subscriber(base, s);
                    rec.compute(20); // index probe
                    let dice = rng.below(100);
                    if dice < 70 {
                        // UPDATE_LOCATION: one word.
                        rec.read_u64(sub);
                        rec.write_u64(sub.add(16), rng.next_u64());
                    } else if dice < 90 {
                        // UPDATE_SUBSCRIBER_DATA: bit field + hex field.
                        rec.read_u64(sub);
                        rec.write_u64(sub.add(24), rng.below(2));
                        rec.write_u64(sub.add(32), rng.below(16));
                    } else if dice < 95 {
                        // INSERT_CALL_FORWARDING: a 4-word record.
                        let cf = self.call_forwarding(base, s, rng.below(4));
                        rec.write_u64(cf, s + 1);
                        rec.write_u64(cf.add(8), rng.below(24)); // start_time
                        rec.write_u64(cf.add(16), rng.below(24)); // end_time
                        rec.write_u64(cf.add(24), rng.next_u64()); // numberx
                    } else {
                        // DELETE_CALL_FORWARDING: clear the record head.
                        let cf = self.call_forwarding(base, s, rng.below(4));
                        rec.read_u64(cf);
                        rec.write_u64(cf, 0);
                    }
                    txs.push(rec.finish_tx());
                }
                txs
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_sets_are_tiny() {
        let streams = TatpWorkload::default().raw_streams(1, 500, 61);
        let mut max = 0;
        let mut sum = 0;
        for tx in &streams[0][1..] {
            let w = tx.write_set_words();
            assert!((1..=4).contains(&w), "write set {w}");
            max = max.max(w);
            sum += w;
        }
        assert_eq!(max, 4);
        let avg = sum as f64 / 500.0;
        assert!(
            avg < 2.0,
            "TATP avg write set {avg} words (smallest in Fig 4)"
        );
    }

    #[test]
    fn subscriber_records_do_not_collide_with_cf() {
        let w = TatpWorkload { subscribers: 16 };
        let last_sub = TatpWorkload::subscriber(0, 15).as_u64() + SUBSCRIBER_WORDS * 8;
        let first_cf = w.call_forwarding(0, 0, 0).as_u64();
        assert!(first_cf >= last_sub);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            TatpWorkload::default().raw_streams(1, 10, 7),
            TatpWorkload::default().raw_streams(1, 10, 7)
        );
    }
}
