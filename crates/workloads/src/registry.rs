//! Workload lookup and the per-core PM partitioning.

use crate::{
    ArrayWorkload, BankWorkload, BtreeWorkload, CtrieWorkload, HashWorkload, QueueWorkload,
    RbtreeWorkload, RtreeWorkload, TatpWorkload, TpccWorkload, Workload, YcsbWorkload,
};

/// Bytes of private PM data region per core (64 MiB). Cores touch disjoint
/// regions, satisfying the paper's §III-A isolation assumption.
pub const CORE_REGION_BYTES: u64 = 64 << 20;

/// Base address of `core`'s private region.
///
/// # Panics
///
/// Panics if the region would reach the log region (8 GiB boundary).
pub(crate) fn core_base(core: usize) -> u64 {
    let base = core as u64 * CORE_REGION_BYTES;
    assert!(
        base + CORE_REGION_BYTES <= 8 << 30,
        "core {core} region exceeds the data region"
    );
    base
}

/// The seven benchmarks of Fig 11 / Fig 12 / Fig 13 / Fig 14 / Fig 15.
pub fn fig11_set() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(ArrayWorkload::default()),
        Box::new(BtreeWorkload::default()),
        Box::new(HashWorkload::default()),
        Box::new(QueueWorkload::default()),
        Box::new(RbtreeWorkload::default()),
        Box::new(TpccWorkload::default()),
        Box::new(YcsbWorkload::default()),
    ]
}

/// The eleven workloads of the Fig 4 write-size study.
pub fn fig4_set() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(ArrayWorkload::default()),
        Box::new(BtreeWorkload::default()),
        Box::new(HashWorkload::default()),
        Box::new(QueueWorkload::default()),
        Box::new(RbtreeWorkload::default()),
        Box::new(TpccWorkload::default()),
        Box::new(YcsbWorkload::default()),
        Box::new(RtreeWorkload::default()),
        Box::new(CtrieWorkload::default()),
        Box::new(TatpWorkload::default()),
        Box::new(BankWorkload::default()),
    ]
}

/// Looks up a workload by its figure-row name (case-insensitive).
pub fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    let w: Box<dyn Workload> = match name.to_ascii_lowercase().as_str() {
        "array" => Box::new(ArrayWorkload::default()),
        "btree" => Box::new(BtreeWorkload::default()),
        "hash" => Box::new(HashWorkload::default()),
        "queue" => Box::new(QueueWorkload::default()),
        "rbtree" => Box::new(RbtreeWorkload::default()),
        "tpcc" => Box::new(TpccWorkload::default()),
        "tpcc-mix" => Box::new(TpccWorkload::all_types()),
        "ycsb" => Box::new(YcsbWorkload::default()),
        "rtree" => Box::new(RtreeWorkload::default()),
        "ctrie" => Box::new(CtrieWorkload::default()),
        "tatp" => Box::new(TatpWorkload::default()),
        "bank" => Box::new(BankWorkload::default()),
        _ => return None,
    };
    Some(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig_sets_have_paper_cardinalities() {
        assert_eq!(fig11_set().len(), 7);
        assert_eq!(fig4_set().len(), 11);
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for w in fig4_set() {
            assert!(seen.insert(w.name().to_string()), "duplicate {}", w.name());
            assert!(
                workload_by_name(w.name()).is_some(),
                "unresolvable {}",
                w.name()
            );
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(workload_by_name("nope").is_none());
    }

    #[test]
    fn core_regions_are_disjoint() {
        assert_eq!(core_base(0), 0);
        assert_eq!(core_base(1), 64 << 20);
        assert!(core_base(7) + CORE_REGION_BYTES <= 8 << 30);
    }

    #[test]
    #[should_panic(expected = "exceeds the data region")]
    fn oversized_core_index_panics() {
        core_base(1000);
    }
}
