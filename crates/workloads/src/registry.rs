//! Workload lookup and the per-core PM partitioning.

use crate::{
    ArrayWorkload, BankWorkload, BtreeWorkload, CtrieWorkload, HashWorkload, MixWorkload,
    MsQueueWorkload, QueueWorkload, RbtreeWorkload, RtreeWorkload, TatpWorkload, TpccWorkload,
    TreiberWorkload, Workload, YcsbWorkload,
};

/// Bytes of private PM data region per core (64 MiB). Cores touch disjoint
/// regions, satisfying the paper's §III-A isolation assumption.
pub const CORE_REGION_BYTES: u64 = 64 << 20;

/// Base address of `core`'s private region.
///
/// # Panics
///
/// Panics if the region would reach the log region (8 GiB boundary).
pub(crate) fn core_base(core: usize) -> u64 {
    let base = core as u64 * CORE_REGION_BYTES;
    assert!(
        base + CORE_REGION_BYTES <= 8 << 30,
        "core {core} region exceeds the data region"
    );
    base
}

/// One row of the workload table: lookup name, figure-set membership, and
/// a constructor. Adding a workload is one new row here — `fig11_set`,
/// `fig4_set`, and `workload_by_name` are all views over this table.
struct WorkloadDesc {
    /// Lookup key (case-insensitive) and, for figure-set members, the
    /// display order key.
    name: &'static str,
    /// Member of the seven-benchmark Fig 11 set.
    fig11: bool,
    /// Member of the eleven-workload Fig 4 write-size set.
    fig4: bool,
    make: fn() -> Box<dyn Workload>,
}

/// Rows are in figure order: the Fig 11 seven first, then the four extra
/// Fig 4 workloads, then lookup-only rows — the tpcc-mix alias and the
/// memento-style zoo (msqueue, treiber, zipfmix, zipfmix-mt), which are
/// not paper figures but flow through the same crashfuzz/latency matrices.
const WORKLOADS: &[WorkloadDesc] = &[
    WorkloadDesc {
        name: "array",
        fig11: true,
        fig4: true,
        make: || Box::new(ArrayWorkload::default()),
    },
    WorkloadDesc {
        name: "btree",
        fig11: true,
        fig4: true,
        make: || Box::new(BtreeWorkload::default()),
    },
    WorkloadDesc {
        name: "hash",
        fig11: true,
        fig4: true,
        make: || Box::new(HashWorkload::default()),
    },
    WorkloadDesc {
        name: "queue",
        fig11: true,
        fig4: true,
        make: || Box::new(QueueWorkload::default()),
    },
    WorkloadDesc {
        name: "rbtree",
        fig11: true,
        fig4: true,
        make: || Box::new(RbtreeWorkload::default()),
    },
    WorkloadDesc {
        name: "tpcc",
        fig11: true,
        fig4: true,
        make: || Box::new(TpccWorkload::default()),
    },
    WorkloadDesc {
        name: "ycsb",
        fig11: true,
        fig4: true,
        make: || Box::new(YcsbWorkload::default()),
    },
    WorkloadDesc {
        name: "rtree",
        fig11: false,
        fig4: true,
        make: || Box::new(RtreeWorkload::default()),
    },
    WorkloadDesc {
        name: "ctrie",
        fig11: false,
        fig4: true,
        make: || Box::new(CtrieWorkload::default()),
    },
    WorkloadDesc {
        name: "tatp",
        fig11: false,
        fig4: true,
        make: || Box::new(TatpWorkload::default()),
    },
    WorkloadDesc {
        name: "bank",
        fig11: false,
        fig4: true,
        make: || Box::new(BankWorkload::default()),
    },
    WorkloadDesc {
        name: "tpcc-mix",
        fig11: false,
        fig4: false,
        make: || Box::new(TpccWorkload::all_types()),
    },
    WorkloadDesc {
        name: "msqueue",
        fig11: false,
        fig4: false,
        make: || Box::new(MsQueueWorkload::default()),
    },
    WorkloadDesc {
        name: "treiber",
        fig11: false,
        fig4: false,
        make: || Box::new(TreiberWorkload::default()),
    },
    WorkloadDesc {
        name: "zipfmix",
        fig11: false,
        fig4: false,
        make: || Box::new(MixWorkload::default()),
    },
    WorkloadDesc {
        name: "zipfmix-mt",
        fig11: false,
        fig4: false,
        make: || Box::new(MixWorkload::multi_tenant()),
    },
];

/// The seven benchmarks of Fig 11 / Fig 12 / Fig 13 / Fig 14 / Fig 15.
pub fn fig11_set() -> Vec<Box<dyn Workload>> {
    WORKLOADS
        .iter()
        .filter(|d| d.fig11)
        .map(|d| (d.make)())
        .collect()
}

/// The eleven workloads of the Fig 4 write-size study.
pub fn fig4_set() -> Vec<Box<dyn Workload>> {
    WORKLOADS
        .iter()
        .filter(|d| d.fig4)
        .map(|d| (d.make)())
        .collect()
}

/// Looks up a workload by its figure-row name (case-insensitive).
pub fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    let lower = name.to_ascii_lowercase();
    WORKLOADS
        .iter()
        .find(|d| d.name == lower)
        .map(|d| (d.make)())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig_sets_have_paper_cardinalities() {
        assert_eq!(fig11_set().len(), 7);
        assert_eq!(fig4_set().len(), 11);
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for w in fig4_set() {
            assert!(seen.insert(w.name().to_string()), "duplicate {}", w.name());
            assert!(
                workload_by_name(w.name()).is_some(),
                "unresolvable {}",
                w.name()
            );
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(workload_by_name("nope").is_none());
    }

    #[test]
    fn zoo_workloads_resolve_outside_the_figure_sets() {
        for name in ["msqueue", "treiber", "zipfmix", "zipfmix-mt"] {
            let w = workload_by_name(name).unwrap_or_else(|| panic!("unresolvable {name}"));
            assert!(
                !fig11_set()
                    .iter()
                    .any(|f| f.trace_ident() == w.trace_ident()),
                "{name} must not join the Fig 11 seven"
            );
        }
        assert_eq!(
            workload_by_name("zipfmix-mt").unwrap().name(),
            workload_by_name("zipfmix").unwrap().name(),
            "both mixes share a display name"
        );
    }

    #[test]
    fn tpcc_mix_resolves_to_the_five_type_mix() {
        let mix = workload_by_name("tpcc-mix").expect("tpcc-mix resolvable");
        assert_eq!(mix.name(), "TPCC");
        assert_ne!(
            mix.trace_ident(),
            workload_by_name("tpcc").unwrap().trace_ident(),
            "mix must not alias New-Order-only in trace identity"
        );
    }

    #[test]
    fn trace_idents_are_unique_across_the_table() {
        let mut seen = std::collections::HashSet::new();
        for d in WORKLOADS {
            let ident = (d.make)().trace_ident();
            assert!(seen.insert(ident.clone()), "duplicate trace ident {ident}");
        }
    }

    #[test]
    fn core_regions_are_disjoint() {
        assert_eq!(core_base(0), 0);
        assert_eq!(core_base(1), 64 << 20);
        assert!(core_base(7) + CORE_REGION_BYTES <= 8 << 30);
    }

    #[test]
    #[should_panic(expected = "exceeds the data region")]
    fn oversized_core_index_panics() {
        core_base(1000);
    }
}
