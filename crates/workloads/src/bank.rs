//! Bank: balance transfers (paper Fig 4, from \[4\]).

use silo_sim::Transaction;
use silo_types::{PhysAddr, Xoshiro256, WORD_BYTES};

use crate::heap::TxRecorder;
use crate::registry::core_base;
use crate::Workload;

/// Words per account record: balance + last-update stamp.
const ACCOUNT_WORDS: u64 = 2;

/// The banking workload: each transaction transfers between two accounts
/// (debit, credit, two update stamps, one audit counter) — a classic
/// small-write-set OLTP transaction (5 words ≈ 40 B, paper Fig 4).
#[derive(Clone, Debug)]
pub struct BankWorkload {
    /// Accounts per core.
    pub accounts: usize,
    /// Initial balance per account.
    pub initial_balance: u64,
}

impl Default for BankWorkload {
    fn default() -> Self {
        BankWorkload {
            accounts: 4096,
            initial_balance: 1_000,
        }
    }
}

impl BankWorkload {
    fn account(base: u64, a: u64) -> PhysAddr {
        // +1 word: the audit counter sits at the region base.
        PhysAddr::new(base + (1 + a * ACCOUNT_WORDS) * WORD_BYTES as u64)
    }

    /// The physical address of `account`'s balance word in `core`'s
    /// region (the update stamp is the following word). Exported so crash
    /// tests can audit recovered balances without duplicating the layout.
    pub fn account_addr(&self, core: usize, account: u64) -> PhysAddr {
        Self::account(core_base(core), account)
    }
}

impl Workload for BankWorkload {
    fn name(&self) -> &'static str {
        "Bank"
    }

    fn trace_ident(&self) -> String {
        format!(
            "Bank/accounts={},balance={}",
            self.accounts, self.initial_balance
        )
    }

    fn raw_streams(&self, cores: usize, txs_per_core: usize, seed: u64) -> Vec<Vec<Transaction>> {
        (0..cores)
            .map(|core| {
                let base = core_base(core);
                let mut rng = Xoshiro256::seeded(seed ^ (core as u64).wrapping_mul(0xbeef));
                let mut rec = TxRecorder::new();
                let mut txs = Vec::with_capacity(txs_per_core + 1);

                for a in 0..self.accounts as u64 {
                    rec.write_u64(Self::account(base, a), self.initial_balance);
                }
                txs.push(rec.finish_tx());

                for stamp in 0..txs_per_core as u64 {
                    let from = rng.below(self.accounts as u64);
                    let mut to = rng.below(self.accounts as u64);
                    if to == from {
                        to = (to + 1) % self.accounts as u64;
                    }
                    let amount = rng.range(1, 100);
                    let fa = Self::account(base, from);
                    let ta = Self::account(base, to);
                    rec.compute(10);
                    let fb = rec.read_u64(fa);
                    let tb = rec.read_u64(ta);
                    // Transfers may overdraw (no branch in the trace); the
                    // invariant checked below is conservation.
                    rec.write_u64(fa, fb.wrapping_sub(amount));
                    rec.write_u64(ta, tb.wrapping_add(amount));
                    rec.write_u64(fa.add(8), stamp + 1);
                    rec.write_u64(ta.add(8), stamp + 1);
                    let audit = PhysAddr::new(base);
                    let n = rec.read_u64(audit);
                    rec.write_u64(audit, n + 1);
                    txs.push(rec.finish_tx());
                }
                txs
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn money_is_conserved() {
        let w = BankWorkload {
            accounts: 64,
            initial_balance: 500,
        };
        let streams = w.raw_streams(1, 300, 71);
        let mut rec = TxRecorder::new();
        for tx in &streams[0] {
            for op in tx.ops() {
                if let silo_sim::Op::Write(a, v) = op {
                    rec.write_u64(*a, v.as_u64());
                }
            }
        }
        let total: u64 = (0..64u64)
            .map(|a| rec.peek_u64(w.account_addr(0, a)))
            .fold(0, |acc, b| acc.wrapping_add(b));
        assert_eq!(total, 64 * 500);
        assert_eq!(
            rec.peek_u64(PhysAddr::new(core_base(0))),
            300,
            "audit count"
        );
    }

    #[test]
    fn transfers_write_five_words() {
        let streams = BankWorkload::default().raw_streams(1, 50, 72);
        for tx in &streams[0][1..] {
            assert_eq!(tx.write_set_words(), 5);
            assert_eq!(tx.write_set_bytes(), 40);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            BankWorkload::default().raw_streams(1, 10, 8),
            BankWorkload::default().raw_streams(1, 10, 8)
        );
    }
}
