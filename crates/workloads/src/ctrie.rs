//! Ctrie: crit-bit trie inserts, as in PMDK's `ctree` example (paper
//! Fig 4).

use silo_sim::Transaction;
use silo_types::{PhysAddr, Xoshiro256, WORD_BYTES};

use crate::heap::{PmHeap, TxRecorder};
use crate::registry::{core_base, CORE_REGION_BYTES};
use crate::Workload;

/// Internal node: crit-bit index, left child, right child, parent-tag
/// padding (4 words).
const INNER_WORDS: usize = 4;
/// Leaf: key + 7 payload words (64 B element).
const LEAF_WORDS: usize = 8;

/// Pointers tag their lowest bit to distinguish leaves (1) from inner
/// nodes (0); all allocations are ≥8-byte aligned so the bit is free.
fn tag_leaf(addr: u64) -> u64 {
    addr | 1
}

fn is_leaf(ptr: u64) -> bool {
    ptr & 1 == 1
}

fn untag(ptr: u64) -> u64 {
    ptr & !1
}

/// The crit-bit trie workload: each transaction inserts one 64 B element.
/// Inserts walk to the closest leaf, find the differing bit, and splice a
/// fresh inner node into the path — a small, pointer-heavy write set.
#[derive(Clone, Debug)]
pub struct CtrieWorkload {
    /// Inserts during setup.
    pub setup_inserts: usize,
}

impl Default for CtrieWorkload {
    fn default() -> Self {
        CtrieWorkload { setup_inserts: 64 }
    }
}

struct Ctrie<'a> {
    rec: &'a mut TxRecorder,
    heap: &'a mut PmHeap,
    root_ptr: PhysAddr,
}

impl<'a> Ctrie<'a> {
    fn new_leaf(&mut self, key: u64) -> u64 {
        let leaf = self
            .heap
            .alloc_aligned((LEAF_WORDS * WORD_BYTES) as u64, 64);
        self.rec.write_u64(leaf, key);
        for w in 1..LEAF_WORDS {
            self.rec.write_u64(
                leaf.add((w * WORD_BYTES) as u64),
                key.wrapping_mul(w as u64 + 1),
            );
        }
        tag_leaf(leaf.as_u64())
    }

    fn insert(&mut self, key: u64) {
        let root = self.rec.read_u64(self.root_ptr);
        if root == 0 {
            let leaf = self.new_leaf(key);
            self.rec.write_u64(self.root_ptr, leaf);
            return;
        }
        // Walk to the nearest leaf, keys decide left/right by crit bits.
        let mut ptr = root;
        while !is_leaf(ptr) {
            let node = untag(ptr);
            let bit = self.rec.read_u64(PhysAddr::new(node));
            let side = (key >> bit) & 1;
            ptr = self
                .rec
                .read_u64(PhysAddr::new(node + (1 + side) * WORD_BYTES as u64));
        }
        let existing_key = self.rec.read_u64(PhysAddr::new(untag(ptr)));
        if existing_key == key {
            // Duplicate: overwrite one payload word.
            self.rec
                .write_u64(PhysAddr::new(untag(ptr) + 8), key.wrapping_mul(7));
            return;
        }
        // Find the highest differing bit and re-descend to the splice
        // point.
        let crit = 63 - (existing_key ^ key).leading_zeros() as u64;
        let leaf = self.new_leaf(key);
        let mut parent_slot = self.root_ptr;
        let mut cur = self.rec.read_u64(parent_slot);
        while !is_leaf(cur) {
            let node = untag(cur);
            let bit = self.rec.read_u64(PhysAddr::new(node));
            if bit < crit {
                break;
            }
            let side = (key >> bit) & 1;
            parent_slot = PhysAddr::new(node + (1 + side) * WORD_BYTES as u64);
            cur = self.rec.read_u64(parent_slot);
        }
        let inner = self
            .heap
            .alloc_aligned((INNER_WORDS * WORD_BYTES) as u64, 32);
        self.rec.write_u64(inner, crit);
        let side = (key >> crit) & 1;
        self.rec
            .write_u64(inner.add((1 + side) * WORD_BYTES as u64), leaf);
        self.rec
            .write_u64(inner.add((2 - side) * WORD_BYTES as u64), cur);
        self.rec.write_u64(parent_slot, inner.as_u64());
    }
}

impl Workload for CtrieWorkload {
    fn name(&self) -> &'static str {
        "Ctrie"
    }

    fn trace_ident(&self) -> String {
        format!("Ctrie/setup={}", self.setup_inserts)
    }

    fn raw_streams(&self, cores: usize, txs_per_core: usize, seed: u64) -> Vec<Vec<Transaction>> {
        (0..cores)
            .map(|core| {
                let base = core_base(core);
                let mut rng = Xoshiro256::seeded(seed ^ (core as u64).wrapping_mul(0x2468));
                let mut rec = TxRecorder::new();
                let mut heap = PmHeap::new(base + 64, CORE_REGION_BYTES - 64);
                let root_ptr = PhysAddr::new(base);
                let mut txs = Vec::with_capacity(txs_per_core + 1);

                for _ in 0..self.setup_inserts {
                    let key = rng.below(1 << 32);
                    Ctrie {
                        rec: &mut rec,
                        heap: &mut heap,
                        root_ptr,
                    }
                    .insert(key);
                }
                txs.push(rec.finish_tx());

                for _ in 0..txs_per_core {
                    let key = rng.below(1 << 32);
                    Ctrie {
                        rec: &mut rec,
                        heap: &mut heap,
                        root_ptr,
                    }
                    .insert(key);
                    rec.compute(12);
                    txs.push(rec.finish_tx());
                }
                txs
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup(rec: &TxRecorder, root_ptr: PhysAddr, key: u64) -> Option<u64> {
        let mut ptr = rec.peek_u64(root_ptr);
        if ptr == 0 {
            return None;
        }
        while !is_leaf(ptr) {
            let node = untag(ptr);
            let bit = rec.peek_u64(PhysAddr::new(node));
            let side = (key >> bit) & 1;
            ptr = rec.peek_u64(PhysAddr::new(node + (1 + side) * 8));
        }
        let found = rec.peek_u64(PhysAddr::new(untag(ptr)));
        (found == key).then_some(found)
    }

    #[test]
    fn all_inserted_keys_are_findable() {
        let mut rec = TxRecorder::new();
        let mut heap = PmHeap::new(4096, 1 << 20);
        let root_ptr = PhysAddr::new(0);
        let keys = [5u64, 9, 1, 0x8000_0001, 12345, 6, 7];
        for &k in &keys {
            Ctrie {
                rec: &mut rec,
                heap: &mut heap,
                root_ptr,
            }
            .insert(k);
        }
        for &k in &keys {
            assert_eq!(lookup(&rec, root_ptr, k), Some(k), "key {k}");
        }
        assert_eq!(lookup(&rec, root_ptr, 999_999), None);
    }

    #[test]
    fn insert_write_sets_are_small() {
        let streams = CtrieWorkload::default().raw_streams(1, 50, 51);
        for tx in &streams[0][1..] {
            let w = tx.write_set_words();
            assert!((1..=13).contains(&w), "write set {w}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            CtrieWorkload::default().raw_streams(1, 10, 6),
            CtrieWorkload::default().raw_streams(1, 10, 6)
        );
    }
}
