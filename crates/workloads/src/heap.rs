//! The simulated PM heap and the transaction recorder workloads build on.

use silo_sim::{Op, Transaction};
use silo_types::{FxHashMap, PhysAddr, Word, WORD_BYTES};

/// A bump allocator over one core's private slice of the PM data region.
///
/// Real PM programs allocate from a persistent heap (the paper's workloads
/// use PMDK's `libpmemobj`); a bump allocator reproduces the property that
/// matters for the memory system — consecutive allocations land at
/// increasing, non-reused addresses — without the allocator's own metadata
/// traffic, which the paper's evaluation also excludes.
///
/// # Examples
///
/// ```
/// use silo_workloads::PmHeap;
///
/// let mut heap = PmHeap::new(0x100_0000, 1 << 20);
/// let a = heap.alloc(24);
/// let b = heap.alloc(8);
/// assert!(b.as_u64() >= a.as_u64() + 24);
/// assert!(a.is_word_aligned());
/// ```
#[derive(Clone, Debug)]
pub struct PmHeap {
    cursor: u64,
    end: u64,
}

impl PmHeap {
    /// Creates a heap over `[base, base + size)`.
    ///
    /// # Panics
    ///
    /// Panics if the region is empty or `base` is not word-aligned.
    pub fn new(base: u64, size: u64) -> Self {
        assert!(size > 0, "empty heap region");
        assert_eq!(
            base % WORD_BYTES as u64,
            0,
            "heap base must be word-aligned"
        );
        PmHeap {
            cursor: base,
            end: base + size,
        }
    }

    /// Allocates `bytes`, word-aligned.
    ///
    /// # Panics
    ///
    /// Panics when the region is exhausted.
    pub fn alloc(&mut self, bytes: u64) -> PhysAddr {
        self.alloc_aligned(bytes, WORD_BYTES as u64)
    }

    /// Allocates `bytes` at an `align`-byte boundary (power of two).
    ///
    /// # Panics
    ///
    /// Panics when the region is exhausted or `align` is not a power of
    /// two.
    pub fn alloc_aligned(&mut self, bytes: u64, align: u64) -> PhysAddr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.cursor + align - 1) & !(align - 1);
        let rounded = (bytes.max(1) + WORD_BYTES as u64 - 1) & !(WORD_BYTES as u64 - 1);
        assert!(base + rounded <= self.end, "PM heap exhausted");
        self.cursor = base + rounded;
        PhysAddr::new(base)
    }

    /// Bytes still available.
    pub fn remaining(&self) -> u64 {
        self.end - self.cursor
    }
}

/// Records a workload's execution into transaction traces.
///
/// The recorder holds the workload's logical view of PM (so data-structure
/// code can read back what it wrote across transactions) and captures
/// every access as an [`Op`]. Setup writes can bypass op recording is NOT
/// offered on purpose: everything the structure does is a transaction, as
/// in the paper's benchmarks.
///
/// # Examples
///
/// ```
/// use silo_workloads::TxRecorder;
/// use silo_types::PhysAddr;
///
/// let mut rec = TxRecorder::new();
/// rec.write_u64(PhysAddr::new(8), 42);
/// assert_eq!(rec.read_u64(PhysAddr::new(8)), 42);
/// let tx = rec.finish_tx();
/// assert_eq!(tx.ops().len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TxRecorder {
    mem: FxHashMap<u64, u64>,
    ops: Vec<Op>,
}

impl TxRecorder {
    /// Creates an empty recorder (all PM logically zero).
    pub fn new() -> Self {
        TxRecorder::default()
    }

    /// Reads a word, recording the load.
    pub fn read_u64(&mut self, addr: PhysAddr) -> u64 {
        let a = addr.word_aligned();
        self.ops.push(Op::Read(a));
        self.mem.get(&a.as_u64()).copied().unwrap_or(0)
    }

    /// Reads a word *without* recording a load (for generator-internal
    /// decisions that real hardware would have made from registers).
    pub fn peek_u64(&self, addr: PhysAddr) -> u64 {
        self.mem
            .get(&addr.word_aligned().as_u64())
            .copied()
            .unwrap_or(0)
    }

    /// Writes a word, recording the store.
    pub fn write_u64(&mut self, addr: PhysAddr, value: u64) {
        let a = addr.word_aligned();
        self.ops.push(Op::Write(a, Word::new(value)));
        self.mem.insert(a.as_u64(), value);
    }

    /// Records pure compute cycles (hash computation, comparisons...).
    pub fn compute(&mut self, cycles: u32) {
        self.ops.push(Op::Compute(cycles));
    }

    /// Closes the current transaction and returns it.
    pub fn finish_tx(&mut self) -> Transaction {
        Transaction::new(std::mem::take(&mut self.ops))
    }

    /// Ops recorded in the current (unfinished) transaction.
    pub fn pending_ops(&self) -> usize {
        self.ops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_is_monotonic_and_aligned() {
        let mut h = PmHeap::new(0, 1 << 16);
        let mut last = 0;
        for i in 1..50 {
            let a = h.alloc(i);
            assert!(a.is_word_aligned());
            assert!(a.as_u64() >= last);
            last = a.as_u64() + i;
        }
    }

    #[test]
    fn aligned_alloc_respects_alignment() {
        let mut h = PmHeap::new(0, 1 << 16);
        h.alloc(3);
        let a = h.alloc_aligned(64, 64);
        assert_eq!(a.as_u64() % 64, 0);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn heap_exhaustion_panics() {
        let mut h = PmHeap::new(0, 64);
        h.alloc(65);
    }

    #[test]
    fn recorder_round_trips_values() {
        let mut r = TxRecorder::new();
        assert_eq!(r.read_u64(PhysAddr::new(0)), 0);
        r.write_u64(PhysAddr::new(0), 7);
        assert_eq!(r.read_u64(PhysAddr::new(0)), 7);
        assert_eq!(r.peek_u64(PhysAddr::new(0)), 7);
    }

    #[test]
    fn recorder_emits_program_order() {
        let mut r = TxRecorder::new();
        r.write_u64(PhysAddr::new(8), 1);
        r.compute(3);
        r.read_u64(PhysAddr::new(8));
        let tx = r.finish_tx();
        assert!(matches!(tx.ops()[0], Op::Write(_, _)));
        assert!(matches!(tx.ops()[1], Op::Compute(3)));
        assert!(matches!(tx.ops()[2], Op::Read(_)));
        assert_eq!(r.pending_ops(), 0, "finish_tx drains the buffer");
    }

    #[test]
    fn values_persist_across_transactions() {
        let mut r = TxRecorder::new();
        r.write_u64(PhysAddr::new(16), 9);
        let _tx1 = r.finish_tx();
        assert_eq!(r.peek_u64(PhysAddr::new(16)), 9);
    }

    #[test]
    fn unaligned_addresses_are_word_rounded() {
        let mut r = TxRecorder::new();
        r.write_u64(PhysAddr::new(13), 5);
        assert_eq!(r.read_u64(PhysAddr::new(8)), 5);
    }
}
