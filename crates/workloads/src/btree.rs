//! Btree: random inserts into a persistent B-tree (paper Table III).

use silo_sim::Transaction;
use silo_types::{PhysAddr, Xoshiro256, WORD_BYTES};

use crate::heap::{PmHeap, TxRecorder};
use crate::registry::{core_base, CORE_REGION_BYTES};
use crate::Workload;

/// Maximum keys per node (order-8 B-tree).
const MAX_KEYS: usize = 7;
/// Minimum keys in a non-root node after deletion rebalancing.
const MIN_KEYS: usize = 3;
/// Node layout: header word, 7 key words, 8 child/value words = 128 B.
const NODE_BYTES: u64 = 16 * WORD_BYTES as u64;

/// The B-tree micro-benchmark: each transaction inserts one random 64 B
/// element (8-word payload plus the index update, with node splits when
/// needed). With `delete_percent > 0`, that fraction of transactions
/// deletes a random live key instead (full B-tree delete with borrow and
/// merge rebalancing).
#[derive(Clone, Debug)]
pub struct BtreeWorkload {
    /// Elements inserted during setup.
    pub setup_inserts: usize,
    /// Percent of measured transactions that delete instead of insert
    /// (paper figures use 0: insert-only).
    pub delete_percent: u64,
}

impl Default for BtreeWorkload {
    fn default() -> Self {
        BtreeWorkload {
            setup_inserts: 128,
            delete_percent: 0,
        }
    }
}

struct Btree<'a> {
    rec: &'a mut TxRecorder,
    heap: &'a mut PmHeap,
    /// PM word holding the root pointer.
    root_ptr: PhysAddr,
}

impl<'a> Btree<'a> {
    fn header(count: usize, leaf: bool) -> u64 {
        count as u64 | (u64::from(leaf) << 32)
    }

    fn parse(header: u64) -> (usize, bool) {
        ((header & 0xffff_ffff) as usize, (header >> 32) & 1 != 0)
    }

    fn key_addr(node: PhysAddr, i: usize) -> PhysAddr {
        node.add(((1 + i) * WORD_BYTES) as u64)
    }

    fn child_addr(node: PhysAddr, i: usize) -> PhysAddr {
        node.add(((8 + i) * WORD_BYTES) as u64)
    }

    fn alloc_node(&mut self, leaf: bool) -> PhysAddr {
        let n = self.heap.alloc_aligned(NODE_BYTES, 64);
        self.rec.write_u64(n, Self::header(0, leaf));
        n
    }

    fn ensure_root(&mut self) -> PhysAddr {
        let root = self.rec.read_u64(self.root_ptr);
        if root != 0 {
            return PhysAddr::new(root);
        }
        let n = self.alloc_node(true);
        self.rec.write_u64(self.root_ptr, n.as_u64());
        n
    }

    /// Splits full child `ci` of `parent`; returns the promoted key.
    fn split_child(&mut self, parent: PhysAddr, ci: usize) {
        let child = PhysAddr::new(self.rec.read_u64(Self::child_addr(parent, ci)));
        let (ccount, cleaf) = Self::parse(self.rec.read_u64(child));
        debug_assert_eq!(ccount, MAX_KEYS);
        let mid = MAX_KEYS / 2;
        let promoted = self.rec.read_u64(Self::key_addr(child, mid));
        let right = self.alloc_node(cleaf);
        // Move upper keys (and children) to the new right sibling.
        let moved = MAX_KEYS - mid - 1;
        for i in 0..moved {
            let k = self.rec.read_u64(Self::key_addr(child, mid + 1 + i));
            self.rec.write_u64(Self::key_addr(right, i), k);
        }
        if cleaf {
            // Leaf: value pointers travel with keys; the middle key stays
            // in the left leaf too (simplified B-tree, middle value kept).
            for i in 0..moved {
                let v = self.rec.read_u64(Self::child_addr(child, mid + 1 + i));
                self.rec.write_u64(Self::child_addr(right, i), v);
            }
            self.rec.write_u64(right, Self::header(moved, true));
            self.rec.write_u64(child, Self::header(mid + 1, true));
        } else {
            for i in 0..=moved {
                let c = self.rec.read_u64(Self::child_addr(child, mid + 1 + i));
                self.rec.write_u64(Self::child_addr(right, i), c);
            }
            self.rec.write_u64(right, Self::header(moved, false));
            self.rec.write_u64(child, Self::header(mid, false));
        }
        // Shift the parent's keys/children right of ci and link the pair.
        let (pcount, pleaf) = Self::parse(self.rec.read_u64(parent));
        debug_assert!(!pleaf && pcount < MAX_KEYS);
        for i in (ci..pcount).rev() {
            let k = self.rec.read_u64(Self::key_addr(parent, i));
            self.rec.write_u64(Self::key_addr(parent, i + 1), k);
            let c = self.rec.read_u64(Self::child_addr(parent, i + 1));
            self.rec.write_u64(Self::child_addr(parent, i + 2), c);
        }
        self.rec.write_u64(Self::key_addr(parent, ci), promoted);
        self.rec
            .write_u64(Self::child_addr(parent, ci + 1), right.as_u64());
        self.rec.write_u64(parent, Self::header(pcount + 1, false));
    }

    /// Inserts `key -> value_ptr`, splitting full nodes on the way down.
    fn insert(&mut self, key: u64, value_ptr: u64) {
        let mut node = self.ensure_root();
        let (count, _) = Self::parse(self.rec.read_u64(node));
        if count == MAX_KEYS {
            // Grow a new root above the full old root.
            let old_root = node;
            let new_root = self.alloc_node(false);
            self.rec
                .write_u64(Self::child_addr(new_root, 0), old_root.as_u64());
            self.rec.write_u64(self.root_ptr, new_root.as_u64());
            self.split_child(new_root, 0);
            node = new_root;
        }
        loop {
            let (count, leaf) = Self::parse(self.rec.read_u64(node));
            // Find the insertion position among the keys.
            let mut pos = 0;
            while pos < count && self.rec.read_u64(Self::key_addr(node, pos)) < key {
                pos += 1;
            }
            if leaf {
                // Seqlock-style dirty mark before mutating the node; the
                // final header write clears it (merged on chip).
                self.rec
                    .write_u64(node, Self::header(count, true) | 1 << 40);
                for i in (pos..count).rev() {
                    let k = self.rec.read_u64(Self::key_addr(node, i));
                    self.rec.write_u64(Self::key_addr(node, i + 1), k);
                    let v = self.rec.read_u64(Self::child_addr(node, i));
                    self.rec.write_u64(Self::child_addr(node, i + 1), v);
                }
                self.rec.write_u64(Self::key_addr(node, pos), key);
                self.rec.write_u64(Self::child_addr(node, pos), value_ptr);
                self.rec.write_u64(node, Self::header(count + 1, true));
                return;
            }
            let mut child = PhysAddr::new(self.rec.read_u64(Self::child_addr(node, pos)));
            let (ccount, _) = Self::parse(self.rec.read_u64(child));
            if ccount == MAX_KEYS {
                self.split_child(node, pos);
                // Re-read the separator to pick the correct side.
                let sep = self.rec.read_u64(Self::key_addr(node, pos));
                let next = if key < sep { pos } else { pos + 1 };
                child = PhysAddr::new(self.rec.read_u64(Self::child_addr(node, next)));
            }
            node = child;
        }
    }
}

impl<'a> Btree<'a> {
    /// Finds `key`; returns its value pointer if present. Used by tests
    /// and available to library users building read/write mixes.
    #[allow(dead_code)]
    fn lookup(&mut self, key: u64) -> Option<u64> {
        let mut node = {
            let root = self.rec.read_u64(self.root_ptr);
            if root == 0 {
                return None;
            }
            PhysAddr::new(root)
        };
        loop {
            let (count, leaf) = Self::parse(self.rec.read_u64(node));
            let mut pos = 0;
            while pos < count && self.rec.read_u64(Self::key_addr(node, pos)) < key {
                pos += 1;
            }
            if leaf {
                return (pos < count && self.rec.read_u64(Self::key_addr(node, pos)) == key)
                    .then(|| self.rec.read_u64(Self::child_addr(node, pos)));
            }
            node = PhysAddr::new(self.rec.read_u64(Self::child_addr(node, pos)));
        }
    }
}

impl<'a> Btree<'a> {
    /// Overwrites the payload of `key`'s element (an OLTP-style update).
    /// Returns whether the key was found.
    #[allow(dead_code)]
    fn update(&mut self, key: u64, stamp: u64) -> bool {
        let Some(ptr) = self.lookup(key) else {
            return false;
        };
        // Rewrite the element's payload words (key word untouched).
        for w in 1..8u64 {
            self.rec
                .write_u64(PhysAddr::new(ptr + w * WORD_BYTES as u64), stamp ^ w);
        }
        true
    }

    /// In-order scan of up to `limit` keys starting at the smallest key
    /// `>= from` (a TPC-C stock-level-style range read). Returns the keys
    /// visited.
    #[allow(dead_code)]
    fn scan(&mut self, from: u64, limit: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(limit);
        let root = self.rec.read_u64(self.root_ptr);
        if root != 0 {
            self.scan_node(PhysAddr::new(root), from, limit, &mut out);
        }
        out
    }

    fn scan_node(&mut self, node: PhysAddr, from: u64, limit: usize, out: &mut Vec<u64>) {
        if out.len() >= limit {
            return;
        }
        let (count, leaf) = Self::parse(self.rec.read_u64(node));
        if leaf {
            for i in 0..count {
                if out.len() >= limit {
                    return;
                }
                let k = self.rec.read_u64(Self::key_addr(node, i));
                if k >= from {
                    out.push(k);
                }
            }
            return;
        }
        for i in 0..count {
            let sep = self.rec.read_u64(Self::key_addr(node, i));
            if sep >= from || i == count - 1 {
                let child = self.rec.read_u64(Self::child_addr(node, i));
                self.scan_node(PhysAddr::new(child), from, limit, out);
            }
            if out.len() >= limit {
                return;
            }
        }
        let last = self.rec.read_u64(Self::child_addr(node, count));
        self.scan_node(PhysAddr::new(last), from, limit, out);
    }
}

impl<'a> Btree<'a> {
    /// Deletes `key` (and its value pointer) from the tree; returns whether
    /// it was present. Full B-tree deletion with borrow/merge rebalancing;
    /// separators follow the B+-style convention of this tree (a separator
    /// is a copy of the maximum key of its left subtree, so equal keys
    /// descend left).
    #[allow(dead_code)]
    fn delete(&mut self, key: u64) -> bool {
        let root_raw = self.rec.read_u64(self.root_ptr);
        if root_raw == 0 {
            return false;
        }
        let root = PhysAddr::new(root_raw);
        let found = self.delete_rec(root, key);
        // Shrink the root when an internal root loses its last separator.
        let (count, leaf) = Self::parse(self.rec.read_u64(root));
        if !leaf && count == 0 {
            let only_child = self.rec.read_u64(Self::child_addr(root, 0));
            self.rec.write_u64(self.root_ptr, only_child);
        } else if leaf && count == 0 {
            self.rec.write_u64(self.root_ptr, 0);
        }
        found
    }

    fn delete_rec(&mut self, node: PhysAddr, key: u64) -> bool {
        let (count, leaf) = Self::parse(self.rec.read_u64(node));
        if leaf {
            let mut pos = 0;
            while pos < count && self.rec.read_u64(Self::key_addr(node, pos)) < key {
                pos += 1;
            }
            if pos == count || self.rec.read_u64(Self::key_addr(node, pos)) != key {
                return false;
            }
            // Shift the tail left over the removed slot.
            for i in pos..count - 1 {
                let k = self.rec.read_u64(Self::key_addr(node, i + 1));
                self.rec.write_u64(Self::key_addr(node, i), k);
                let v = self.rec.read_u64(Self::child_addr(node, i + 1));
                self.rec.write_u64(Self::child_addr(node, i), v);
            }
            self.rec.write_u64(node, Self::header(count - 1, true));
            return true;
        }
        // Descend (equal keys live in the left subtree).
        let mut pos = 0;
        while pos < count && self.rec.read_u64(Self::key_addr(node, pos)) < key {
            pos += 1;
        }
        let child = PhysAddr::new(self.rec.read_u64(Self::child_addr(node, pos)));
        let found = self.delete_rec(child, key);
        if found {
            let (ccount, _) = Self::parse(self.rec.read_u64(child));
            if ccount < MIN_KEYS {
                self.rebalance(node, pos);
            }
        }
        found
    }

    /// Restores the minimum-occupancy invariant of `parent`'s child `ci`
    /// by borrowing from a sibling or merging with one.
    fn rebalance(&mut self, parent: PhysAddr, ci: usize) {
        let (pcount, _) = Self::parse(self.rec.read_u64(parent));
        let child = PhysAddr::new(self.rec.read_u64(Self::child_addr(parent, ci)));
        let (_, cleaf) = Self::parse(self.rec.read_u64(child));

        // Try the left sibling first, then the right.
        if ci > 0 {
            let left = PhysAddr::new(self.rec.read_u64(Self::child_addr(parent, ci - 1)));
            let (lcount, _) = Self::parse(self.rec.read_u64(left));
            if lcount > MIN_KEYS {
                self.borrow_from_left(parent, ci, left, child, cleaf);
                return;
            }
        }
        if ci < pcount {
            let right = PhysAddr::new(self.rec.read_u64(Self::child_addr(parent, ci + 1)));
            let (rcount, _) = Self::parse(self.rec.read_u64(right));
            if rcount > MIN_KEYS {
                self.borrow_from_right(parent, ci, child, right, cleaf);
                return;
            }
        }
        // Merge with a sibling (into the left of the pair).
        if ci > 0 {
            let left = PhysAddr::new(self.rec.read_u64(Self::child_addr(parent, ci - 1)));
            self.merge_children(parent, ci - 1, left, child, cleaf);
        } else {
            let right = PhysAddr::new(self.rec.read_u64(Self::child_addr(parent, ci + 1)));
            self.merge_children(parent, ci, child, right, cleaf);
        }
    }

    fn borrow_from_left(
        &mut self,
        parent: PhysAddr,
        ci: usize,
        left: PhysAddr,
        child: PhysAddr,
        leaf: bool,
    ) {
        let (lcount, _) = Self::parse(self.rec.read_u64(left));
        let (ccount, _) = Self::parse(self.rec.read_u64(child));
        // Make room at the child's front.
        for i in (0..ccount).rev() {
            let k = self.rec.read_u64(Self::key_addr(child, i));
            self.rec.write_u64(Self::key_addr(child, i + 1), k);
        }
        let child_slots = if leaf { ccount } else { ccount + 1 };
        for i in (0..child_slots).rev() {
            let c = self.rec.read_u64(Self::child_addr(child, i));
            self.rec.write_u64(Self::child_addr(child, i + 1), c);
        }
        if leaf {
            // Move the left sibling's last (key, value) over.
            let k = self.rec.read_u64(Self::key_addr(left, lcount - 1));
            let v = self.rec.read_u64(Self::child_addr(left, lcount - 1));
            self.rec.write_u64(Self::key_addr(child, 0), k);
            self.rec.write_u64(Self::child_addr(child, 0), v);
            // New separator: the left sibling's new maximum.
            let new_sep = self.rec.read_u64(Self::key_addr(left, lcount - 2));
            self.rec.write_u64(Self::key_addr(parent, ci - 1), new_sep);
        } else {
            // Rotate through the parent.
            let sep = self.rec.read_u64(Self::key_addr(parent, ci - 1));
            self.rec.write_u64(Self::key_addr(child, 0), sep);
            let moved_child = self.rec.read_u64(Self::child_addr(left, lcount));
            self.rec.write_u64(Self::child_addr(child, 0), moved_child);
            let up = self.rec.read_u64(Self::key_addr(left, lcount - 1));
            self.rec.write_u64(Self::key_addr(parent, ci - 1), up);
        }
        self.rec.write_u64(left, Self::header(lcount - 1, leaf));
        self.rec.write_u64(child, Self::header(ccount + 1, leaf));
    }

    fn borrow_from_right(
        &mut self,
        parent: PhysAddr,
        ci: usize,
        child: PhysAddr,
        right: PhysAddr,
        leaf: bool,
    ) {
        let (rcount, _) = Self::parse(self.rec.read_u64(right));
        let (ccount, _) = Self::parse(self.rec.read_u64(child));
        if leaf {
            // Move the right sibling's first (key, value) to the child's end.
            let k = self.rec.read_u64(Self::key_addr(right, 0));
            let v = self.rec.read_u64(Self::child_addr(right, 0));
            self.rec.write_u64(Self::key_addr(child, ccount), k);
            self.rec.write_u64(Self::child_addr(child, ccount), v);
            // Separator between child and right becomes the moved key.
            self.rec.write_u64(Self::key_addr(parent, ci), k);
        } else {
            let sep = self.rec.read_u64(Self::key_addr(parent, ci));
            self.rec.write_u64(Self::key_addr(child, ccount), sep);
            let moved_child = self.rec.read_u64(Self::child_addr(right, 0));
            self.rec
                .write_u64(Self::child_addr(child, ccount + 1), moved_child);
            let up = self.rec.read_u64(Self::key_addr(right, 0));
            self.rec.write_u64(Self::key_addr(parent, ci), up);
        }
        // Compact the right sibling.
        for i in 0..rcount - 1 {
            let k = self.rec.read_u64(Self::key_addr(right, i + 1));
            self.rec.write_u64(Self::key_addr(right, i), k);
        }
        let right_slots = if leaf { rcount - 1 } else { rcount };
        for i in 0..right_slots {
            let c = self.rec.read_u64(Self::child_addr(right, i + 1));
            self.rec.write_u64(Self::child_addr(right, i), c);
        }
        self.rec.write_u64(right, Self::header(rcount - 1, leaf));
        self.rec.write_u64(child, Self::header(ccount + 1, leaf));
    }

    /// Merges `parent`'s children `li` and `li + 1` into the left one and
    /// removes the separating key from the parent.
    fn merge_children(
        &mut self,
        parent: PhysAddr,
        li: usize,
        left: PhysAddr,
        right: PhysAddr,
        leaf: bool,
    ) {
        let (lcount, _) = Self::parse(self.rec.read_u64(left));
        let (rcount, _) = Self::parse(self.rec.read_u64(right));
        let mut dst = lcount;
        if !leaf {
            // The parent separator descends between the merged halves.
            let sep = self.rec.read_u64(Self::key_addr(parent, li));
            self.rec.write_u64(Self::key_addr(left, dst), sep);
            dst += 1;
        }
        for i in 0..rcount {
            let k = self.rec.read_u64(Self::key_addr(right, i));
            self.rec.write_u64(Self::key_addr(left, dst + i), k);
        }
        let right_slots = if leaf { rcount } else { rcount + 1 };
        let child_dst = if leaf { lcount } else { lcount + 1 };
        for i in 0..right_slots {
            let c = self.rec.read_u64(Self::child_addr(right, i));
            self.rec.write_u64(Self::child_addr(left, child_dst + i), c);
        }
        self.rec.write_u64(left, Self::header(dst + rcount, leaf));
        // Remove separator li and child li+1 from the parent.
        let (pcount, _) = Self::parse(self.rec.read_u64(parent));
        for i in li..pcount - 1 {
            let k = self.rec.read_u64(Self::key_addr(parent, i + 1));
            self.rec.write_u64(Self::key_addr(parent, i), k);
        }
        for i in li + 1..pcount {
            let c = self.rec.read_u64(Self::child_addr(parent, i + 1));
            self.rec.write_u64(Self::child_addr(parent, i), c);
        }
        self.rec.write_u64(parent, Self::header(pcount - 1, false));
    }
}

impl Workload for BtreeWorkload {
    fn name(&self) -> &'static str {
        "Btree"
    }

    fn trace_ident(&self) -> String {
        format!(
            "Btree/setup={},delete={}",
            self.setup_inserts, self.delete_percent
        )
    }

    fn raw_streams(&self, cores: usize, txs_per_core: usize, seed: u64) -> Vec<Vec<Transaction>> {
        (0..cores)
            .map(|core| {
                let base = core_base(core);
                let mut rng = Xoshiro256::seeded(seed ^ (core as u64).wrapping_mul(0xb7e1));
                let mut rec = TxRecorder::new();
                let mut heap = PmHeap::new(base + 64, CORE_REGION_BYTES - 64);
                let root_ptr = PhysAddr::new(base);
                let mut txs = Vec::with_capacity(txs_per_core + 1);

                let do_insert = |rec: &mut TxRecorder, heap: &mut PmHeap, key: u64| {
                    // The 64B data element: key + 7 payload words.
                    let elem = heap.alloc_aligned(64, 64);
                    rec.write_u64(elem, key);
                    for w in 1..8 {
                        rec.write_u64(elem.add((w * WORD_BYTES) as u64), key.rotate_left(w as u32));
                    }
                    let mut tree = Btree {
                        rec,
                        heap,
                        root_ptr,
                    };
                    tree.insert(key, elem.as_u64());
                };

                // Setup inserts in one transaction.
                let mut live: Vec<u64> = Vec::new();
                for _ in 0..self.setup_inserts {
                    let key = rng.next_u64() >> 16;
                    do_insert(&mut rec, &mut heap, key);
                    live.push(key);
                }
                txs.push(rec.finish_tx());

                for _ in 0..txs_per_core {
                    if !live.is_empty() && rng.percent(self.delete_percent) {
                        let idx = rng.below(live.len() as u64) as usize;
                        let key = live.swap_remove(idx);
                        Btree {
                            rec: &mut rec,
                            heap: &mut heap,
                            root_ptr,
                        }
                        .delete(key);
                    } else {
                        let key = rng.next_u64() >> 16;
                        do_insert(&mut rec, &mut heap, key);
                        live.push(key);
                    }
                    rec.compute(30);
                    txs.push(rec.finish_tx());
                }
                txs
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replays the generated traces into a recorder and walks the tree,
    /// checking the B-tree ordering invariant and that every key is
    /// findable.
    fn check_tree(streams: &[Vec<Transaction>]) -> usize {
        let mut rec = TxRecorder::new();
        let mut keys = Vec::new();
        for tx in &streams[0] {
            for op in tx.ops() {
                if let silo_sim::Op::Write(a, v) = op {
                    rec.write_u64(*a, v.as_u64());
                }
            }
        }
        // In-order walk.
        fn walk(rec: &TxRecorder, node: PhysAddr, out: &mut Vec<u64>) {
            let (count, leaf) = Btree::parse(rec.peek_u64(node));
            if leaf {
                for i in 0..count {
                    out.push(rec.peek_u64(Btree::key_addr(node, i)));
                }
                return;
            }
            // Internal keys are separator copies of leaf keys; count only
            // leaf keys so the total equals the insert count.
            for i in 0..count {
                walk(
                    rec,
                    PhysAddr::new(rec.peek_u64(Btree::child_addr(node, i))),
                    out,
                );
            }
            walk(
                rec,
                PhysAddr::new(rec.peek_u64(Btree::child_addr(node, count))),
                out,
            );
        }
        let root = rec.peek_u64(PhysAddr::new(core_base(0)));
        assert_ne!(root, 0, "tree was built");
        walk(&rec, PhysAddr::new(root), &mut keys);
        assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "in-order walk must be sorted"
        );
        keys.len()
    }

    #[test]
    fn tree_invariants_hold_after_many_inserts() {
        let w = BtreeWorkload {
            setup_inserts: 64,
            delete_percent: 0,
        };
        let streams = w.raw_streams(1, 200, 5);
        let n = check_tree(&streams);
        assert_eq!(n, 64 + 200);
    }

    #[test]
    fn mixed_insert_delete_stream_stays_sorted() {
        let w = BtreeWorkload {
            setup_inserts: 64,
            delete_percent: 35,
        };
        let streams = w.raw_streams(1, 400, 31);
        let n = check_tree(&streams);
        assert!(n < 64 + 400, "deletes removed keys (live = {n})");
        assert!(n > 100, "inserts outnumber deletes");
    }

    #[test]
    fn insert_transactions_have_plausible_write_sets() {
        let streams = BtreeWorkload::default().raw_streams(1, 100, 6);
        for tx in &streams[0][1..] {
            let words = tx.write_set_words();
            assert!(
                (9..=60).contains(&words),
                "unexpected write set: {words} words"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = BtreeWorkload::default().raw_streams(2, 20, 9);
        let b = BtreeWorkload::default().raw_streams(2, 20, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn update_rewrites_payload_in_place() {
        let mut rec = TxRecorder::new();
        let mut heap = PmHeap::new(1024, 1 << 20);
        let root_ptr = PhysAddr::new(0);
        let elem = heap.alloc_aligned(64, 64);
        rec.write_u64(elem, 77);
        Btree {
            rec: &mut rec,
            heap: &mut heap,
            root_ptr,
        }
        .insert(77, elem.as_u64());
        assert!(Btree {
            rec: &mut rec,
            heap: &mut heap,
            root_ptr
        }
        .update(77, 0xABCD));
        assert_eq!(rec.peek_u64(elem.add(8)), 0xABCD ^ 1);
        assert_eq!(rec.peek_u64(elem), 77, "key word untouched");
        assert!(!Btree {
            rec: &mut rec,
            heap: &mut heap,
            root_ptr
        }
        .update(78, 0));
    }

    #[test]
    fn scan_returns_sorted_range() {
        let mut rec = TxRecorder::new();
        let mut heap = PmHeap::new(1024, 1 << 20);
        let root_ptr = PhysAddr::new(0);
        let mut keys: Vec<u64> = (0..60).map(|i| (i * 37) % 100).collect();
        keys.dedup();
        for &k in &keys {
            let elem = heap.alloc_aligned(64, 64);
            rec.write_u64(elem, k);
            Btree {
                rec: &mut rec,
                heap: &mut heap,
                root_ptr,
            }
            .insert(k, elem.as_u64());
        }
        let got = Btree {
            rec: &mut rec,
            heap: &mut heap,
            root_ptr,
        }
        .scan(40, 10);
        assert_eq!(got.len(), 10);
        assert!(got.windows(2).all(|w| w[0] <= w[1]), "sorted: {got:?}");
        assert!(got.iter().all(|&k| k >= 40), "range respected: {got:?}");
    }

    #[test]
    fn lookup_finds_inserted_keys_and_their_elements() {
        let mut rec = TxRecorder::new();
        let mut heap = PmHeap::new(1024, 1 << 20);
        let root_ptr = PhysAddr::new(0);
        let keys = [90u64, 10, 50, 30, 70, 20, 60, 40, 80, 100, 5, 95];
        for &k in &keys {
            let elem = heap.alloc_aligned(64, 64);
            rec.write_u64(elem, k);
            let mut t = Btree {
                rec: &mut rec,
                heap: &mut heap,
                root_ptr,
            };
            t.insert(k, elem.as_u64());
        }
        for &k in &keys {
            let mut t = Btree {
                rec: &mut rec,
                heap: &mut heap,
                root_ptr,
            };
            let ptr = t.lookup(k).unwrap_or_else(|| panic!("key {k} missing"));
            assert_eq!(rec.peek_u64(PhysAddr::new(ptr)), k, "element holds its key");
        }
        let mut t = Btree {
            rec: &mut rec,
            heap: &mut heap,
            root_ptr,
        };
        assert_eq!(t.lookup(999), None);
    }
}

#[cfg(test)]
mod delete_tests {
    use super::*;
    use silo_types::SplitMix64;

    struct Harness {
        rec: TxRecorder,
        heap: PmHeap,
        root_ptr: PhysAddr,
    }

    impl Harness {
        fn new() -> Self {
            Harness {
                rec: TxRecorder::new(),
                heap: PmHeap::new(1024, 32 << 20),
                root_ptr: PhysAddr::new(0),
            }
        }

        fn insert(&mut self, key: u64) {
            let elem = self.heap.alloc_aligned(64, 64);
            self.rec.write_u64(elem, key);
            Btree {
                rec: &mut self.rec,
                heap: &mut self.heap,
                root_ptr: self.root_ptr,
            }
            .insert(key, elem.as_u64());
        }

        fn delete(&mut self, key: u64) -> bool {
            Btree {
                rec: &mut self.rec,
                heap: &mut self.heap,
                root_ptr: self.root_ptr,
            }
            .delete(key)
        }

        fn lookup(&mut self, key: u64) -> bool {
            Btree {
                rec: &mut self.rec,
                heap: &mut self.heap,
                root_ptr: self.root_ptr,
            }
            .lookup(key)
            .is_some()
        }

        /// Walks the tree checking sortedness, occupancy, and uniform leaf
        /// depth; returns the leaf-key count.
        fn check(&self) -> usize {
            let root = self.rec.peek_u64(self.root_ptr);
            if root == 0 {
                return 0;
            }
            let mut keys = Vec::new();
            let mut leaf_depths = Vec::new();
            self.walk(PhysAddr::new(root), 0, true, &mut keys, &mut leaf_depths);
            assert!(keys.windows(2).all(|w| w[0] <= w[1]), "unsorted walk");
            assert!(
                leaf_depths.windows(2).all(|w| w[0] == w[1]),
                "leaves at unequal depths: {leaf_depths:?}"
            );
            keys.len()
        }

        fn walk(
            &self,
            node: PhysAddr,
            depth: usize,
            is_root: bool,
            keys: &mut Vec<u64>,
            leaf_depths: &mut Vec<usize>,
        ) {
            let (count, leaf) = Btree::parse(self.rec.peek_u64(node));
            if !is_root {
                assert!(count >= MIN_KEYS, "underfull node: {count} keys");
            }
            assert!(count <= MAX_KEYS, "overfull node: {count} keys");
            if leaf {
                leaf_depths.push(depth);
                for i in 0..count {
                    keys.push(self.rec.peek_u64(Btree::key_addr(node, i)));
                }
                return;
            }
            for i in 0..=count {
                let child = self.rec.peek_u64(Btree::child_addr(node, i));
                assert_ne!(child, 0, "missing child {i} of internal node");
                self.walk(PhysAddr::new(child), depth + 1, false, keys, leaf_depths);
            }
        }
    }

    #[test]
    fn random_insert_delete_preserves_btree_invariants() {
        let mut h = Harness::new();
        let mut rng = SplitMix64::new(77);
        let mut live: Vec<u64> = Vec::new();
        for round in 0..3_000u64 {
            if live.is_empty() || rng.chance(3, 5) {
                let key = rng.next_u64() >> 16;
                h.insert(key);
                live.push(key);
            } else {
                let idx = rng.below(live.len() as u64) as usize;
                let key = live.swap_remove(idx);
                assert!(h.delete(key), "round {round}: key {key} present");
                assert!(!h.lookup(key), "round {round}: key {key} still findable");
            }
            if round % 131 == 0 {
                assert_eq!(h.check(), live.len(), "round {round}");
            }
        }
        // Every surviving key is still findable; then drain to empty.
        for &key in &live {
            assert!(h.lookup(key), "surviving key {key} lost");
        }
        for key in live.drain(..) {
            assert!(h.delete(key));
        }
        assert_eq!(h.check(), 0);
        assert_eq!(h.rec.peek_u64(PhysAddr::new(0)), 0, "root reset");
    }

    #[test]
    fn delete_on_empty_tree_is_noop() {
        let mut h = Harness::new();
        assert!(!h.delete(1));
    }

    #[test]
    fn delete_missing_key_is_noop() {
        let mut h = Harness::new();
        for k in [10u64, 20, 30] {
            h.insert(k);
        }
        assert!(!h.delete(25));
        assert_eq!(h.check(), 3);
    }

    #[test]
    fn sequential_fill_and_drain() {
        let mut h = Harness::new();
        for k in 0..500u64 {
            h.insert(k * 3);
        }
        assert_eq!(h.check(), 500);
        // Drain in a different order than insertion.
        for k in (0..500u64).rev() {
            assert!(h.delete(k * 3), "key {}", k * 3);
        }
        assert_eq!(h.check(), 0);
    }
}
