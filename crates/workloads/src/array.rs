//! Array: randomly swap two 64 B elements (paper Table III).

use silo_sim::Transaction;
use silo_types::{PhysAddr, Xoshiro256, LINE_BYTES, WORD_BYTES};

use crate::heap::TxRecorder;
use crate::registry::core_base;
use crate::Workload;

/// The array micro-benchmark: each transaction swaps two random 64 B
/// elements.
///
/// A swap copies all 8 words of each element, but real array elements
/// share most of their content (headers, padding, common fields) — the
/// paper measures that "many words are not actually modified and 90.4 %
/// of logs are ignored" (§VI-D). We model each element as one
/// distinguishing word plus seven words of common fill, so a swap's 16
/// stores contain 14 value-identical ones that Silo's log ignorance
/// drops.
#[derive(Clone, Debug)]
pub struct ArrayWorkload {
    /// Elements per core.
    pub elements: usize,
}

impl Default for ArrayWorkload {
    fn default() -> Self {
        ArrayWorkload { elements: 1024 }
    }
}

/// The shared fill pattern occupying words 1..8 of every element.
const FILL: u64 = 0x5f5f_5f5f_5f5f_5f5f;

fn element_addr(base: u64, idx: usize) -> PhysAddr {
    PhysAddr::new(base + (idx * LINE_BYTES) as u64)
}

impl Workload for ArrayWorkload {
    fn name(&self) -> &'static str {
        "Array"
    }

    fn trace_ident(&self) -> String {
        format!("Array/elements={}", self.elements)
    }

    fn raw_streams(&self, cores: usize, txs_per_core: usize, seed: u64) -> Vec<Vec<Transaction>> {
        (0..cores)
            .map(|core| {
                let base = core_base(core);
                let mut rng = Xoshiro256::seeded(seed ^ (core as u64).wrapping_mul(0x9e37));
                let mut rec = TxRecorder::new();
                let mut txs = Vec::with_capacity(txs_per_core + 1);

                // Setup: initialize every element (one tx).
                for i in 0..self.elements {
                    let e = element_addr(base, i);
                    rec.write_u64(e, 1_000_000 + i as u64); // distinguishing word
                    for w in 1..LINE_BYTES / WORD_BYTES {
                        rec.write_u64(e.add((w * WORD_BYTES) as u64), FILL);
                    }
                }
                txs.push(rec.finish_tx());

                for _ in 0..txs_per_core {
                    let i = rng.below(self.elements as u64) as usize;
                    let mut j = rng.below(self.elements as u64) as usize;
                    if i == j {
                        j = (j + 1) % self.elements;
                    }
                    let (a, b) = (element_addr(base, i), element_addr(base, j));
                    // memcpy-style swap of whole elements, word by word.
                    let words = LINE_BYTES / WORD_BYTES;
                    let av: Vec<u64> = (0..words)
                        .map(|w| rec.read_u64(a.add((w * WORD_BYTES) as u64)))
                        .collect();
                    let bv: Vec<u64> = (0..words)
                        .map(|w| rec.read_u64(b.add((w * WORD_BYTES) as u64)))
                        .collect();
                    for (w, &value) in bv.iter().enumerate() {
                        rec.write_u64(a.add((w * WORD_BYTES) as u64), value);
                    }
                    for (w, &value) in av.iter().enumerate() {
                        rec.write_u64(b.add((w * WORD_BYTES) as u64), value);
                    }
                    rec.compute(20);
                    txs.push(rec.finish_tx());
                }
                txs
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_transactions_write_sixteen_words() {
        let streams = ArrayWorkload::default().raw_streams(1, 5, 1);
        for tx in &streams[0][1..] {
            assert_eq!(tx.store_count(), 16);
            assert_eq!(tx.write_set_bytes(), 128);
        }
    }

    #[test]
    fn most_swap_words_are_value_identical() {
        // 14 of 16 stores rewrite the FILL pattern over itself.
        let streams = ArrayWorkload::default().raw_streams(1, 20, 2);
        for tx in &streams[0][1..] {
            let unchanged = tx
                .final_writes()
                .iter()
                .filter(|(_, w)| w.as_u64() == FILL)
                .count();
            assert_eq!(unchanged, 14);
        }
    }

    #[test]
    fn swaps_actually_exchange_ids() {
        let w = ArrayWorkload { elements: 4 };
        let streams = w.raw_streams(1, 50, 3);
        // Replay logically and check the multiset of ids is preserved.
        let mut rec = TxRecorder::new();
        for tx in &streams[0] {
            for op in tx.ops() {
                if let silo_sim::Op::Write(a, v) = op {
                    rec.write_u64(*a, v.as_u64());
                }
            }
        }
        let mut ids: Vec<u64> = (0..4)
            .map(|i| rec.peek_u64(element_addr(core_base(0), i)))
            .collect();
        ids.sort();
        assert_eq!(ids, vec![1_000_000, 1_000_001, 1_000_002, 1_000_003]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ArrayWorkload::default().raw_streams(2, 10, 7);
        let b = ArrayWorkload::default().raw_streams(2, 10, 7);
        assert_eq!(a, b);
        let c = ArrayWorkload::default().raw_streams(2, 10, 8);
        assert_ne!(a, c);
    }
}
