//! Rtree: radix-tree inserts, as in PMDK's `rtree` example (paper Fig 4).

use silo_sim::Transaction;
use silo_types::{PhysAddr, Xoshiro256, WORD_BYTES};

use crate::heap::{PmHeap, TxRecorder};
use crate::registry::{core_base, CORE_REGION_BYTES};
use crate::Workload;

/// Radix per level (16-ary tree over 16-bit keys: 4 levels).
const FANOUT: u64 = 16;
const LEVELS: u32 = 4;
/// Leaf: key + 7 payload words (64 B element).
const LEAF_WORDS: usize = 8;

/// The PMDK radix-tree workload: each transaction inserts one 64 B element
/// under a random 16-bit key, creating interior nodes on demand (one child
/// pointer write per level, plus the node allocations on first descent).
#[derive(Clone, Debug)]
pub struct RtreeWorkload {
    /// Inserts during setup.
    pub setup_inserts: usize,
}

impl Default for RtreeWorkload {
    fn default() -> Self {
        RtreeWorkload { setup_inserts: 64 }
    }
}

fn child_slot(node: PhysAddr, nibble: u64) -> PhysAddr {
    node.add(nibble * WORD_BYTES as u64)
}

fn insert(rec: &mut TxRecorder, heap: &mut PmHeap, root: PhysAddr, key: u64, payload: u64) {
    let mut node = root;
    for level in (1..LEVELS).rev() {
        let nibble = (key >> (4 * level)) & (FANOUT - 1);
        let slot = child_slot(node, nibble);
        let child = rec.read_u64(slot);
        node = if child == 0 {
            let fresh = heap.alloc_aligned(FANOUT * WORD_BYTES as u64, 64);
            rec.write_u64(slot, fresh.as_u64());
            fresh
        } else {
            PhysAddr::new(child)
        };
    }
    // Last level points at the leaf element.
    let slot = child_slot(node, key & (FANOUT - 1));
    let leaf = heap.alloc_aligned((LEAF_WORDS * WORD_BYTES) as u64, 64);
    rec.write_u64(leaf, key);
    for w in 1..LEAF_WORDS {
        rec.write_u64(
            leaf.add((w * WORD_BYTES) as u64),
            payload.rotate_left(w as u32),
        );
    }
    rec.write_u64(slot, leaf.as_u64());
}

impl Workload for RtreeWorkload {
    fn name(&self) -> &'static str {
        "Rtree"
    }

    fn trace_ident(&self) -> String {
        format!("Rtree/setup={}", self.setup_inserts)
    }

    fn raw_streams(&self, cores: usize, txs_per_core: usize, seed: u64) -> Vec<Vec<Transaction>> {
        (0..cores)
            .map(|core| {
                let base = core_base(core);
                let mut rng = Xoshiro256::seeded(seed ^ (core as u64).wrapping_mul(0x1357));
                let mut rec = TxRecorder::new();
                let root_bytes = FANOUT * WORD_BYTES as u64;
                let mut heap = PmHeap::new(base + root_bytes, CORE_REGION_BYTES - root_bytes);
                let root = PhysAddr::new(base);
                let mut txs = Vec::with_capacity(txs_per_core + 1);

                for _ in 0..self.setup_inserts {
                    insert(
                        &mut rec,
                        &mut heap,
                        root,
                        rng.below(1 << 16),
                        rng.next_u64(),
                    );
                }
                txs.push(rec.finish_tx());

                for _ in 0..txs_per_core {
                    insert(
                        &mut rec,
                        &mut heap,
                        root,
                        rng.below(1 << 16),
                        rng.next_u64(),
                    );
                    rec.compute(15);
                    txs.push(rec.finish_tx());
                }
                txs
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserted_keys_are_findable() {
        let mut rec = TxRecorder::new();
        let mut heap = PmHeap::new(4096, 1 << 20);
        let root = PhysAddr::new(0);
        for key in [0x1234u64, 0xffff, 0x0000, 0x1235] {
            insert(&mut rec, &mut heap, root, key, key * 3);
        }
        // Walk down for 0x1234.
        let mut node = root;
        for level in (1..LEVELS).rev() {
            let nibble = (0x1234u64 >> (4 * level)) & 15;
            node = PhysAddr::new(rec.peek_u64(child_slot(node, nibble)));
            assert_ne!(node.as_u64(), 0);
        }
        let leaf = rec.peek_u64(child_slot(node, 4));
        assert_eq!(rec.peek_u64(PhysAddr::new(leaf)), 0x1234);
    }

    #[test]
    fn path_sharing_reduces_writes_over_time() {
        let streams = RtreeWorkload { setup_inserts: 512 }.raw_streams(1, 50, 41);
        // After setup most interior nodes exist: measured inserts write the
        // leaf (8 words) + 1-3 pointer slots.
        for tx in &streams[0][1..] {
            let w = tx.write_set_words();
            assert!((9..=12).contains(&w), "write set {w}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            RtreeWorkload::default().raw_streams(1, 10, 5),
            RtreeWorkload::default().raw_streams(1, 10, 5)
        );
    }
}
