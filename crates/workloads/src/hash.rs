//! Hash: random inserts into a chained hash table (paper Table III).

use silo_sim::Transaction;
use silo_types::{PhysAddr, Xoshiro256, WORD_BYTES};

use crate::heap::{PmHeap, TxRecorder};
use crate::registry::{core_base, CORE_REGION_BYTES};
use crate::Workload;

/// Words per hash node: key, next pointer, and the value payload.
const NODE_WORDS: usize = 26;
/// Trailing payload words deliberately zero (record padding) — their
/// stores are value-identical on fresh PM and exercise log ignorance.
const ZERO_PAD_WORDS: usize = 8;

/// Operation mix for the hash workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HashMix {
    /// Insert-only, the paper's Table III configuration.
    InsertOnly,
    /// 60 % inserts, 30 % lookups, 10 % deletes — a library-user mix that
    /// exercises the chase-and-unlink paths too.
    Mixed,
}

/// The hash-table micro-benchmark: each transaction inserts one element
/// into a chained hash table (write the node, link it at the bucket head,
/// bump the element counter). [`HashMix::Mixed`] adds lookups and deletes.
///
/// This is the workload with the paper's largest surviving log footprint —
/// Fig 13 shows Hash peaks at 20 remaining entries per transaction, which
/// is exactly why the log buffer holds 20 entries (§VI-D). The node layout
/// (26 words, 8 of them zero padding) reproduces that footprint: ~28
/// stores per insert, ~8 ignored, ~20 surviving.
#[derive(Clone, Debug)]
pub struct HashWorkload {
    /// Bucket count per core (power of two).
    pub buckets: usize,
    /// Inserts during setup.
    pub setup_inserts: usize,
    /// Operation mix (paper figures use [`HashMix::InsertOnly`]).
    pub mix: HashMix,
}

impl Default for HashWorkload {
    fn default() -> Self {
        HashWorkload {
            buckets: 4096,
            setup_inserts: 128,
            mix: HashMix::InsertOnly,
        }
    }
}

impl HashWorkload {
    fn insert(&self, rec: &mut TxRecorder, heap: &mut PmHeap, bucket_base: PhysAddr, key: u64) {
        let bucket = (key % self.buckets as u64) as usize;
        let head_addr = bucket_base.add((bucket * WORD_BYTES) as u64);
        rec.compute(8); // hash computation
        let old_head = rec.read_u64(head_addr);
        let node = heap.alloc_aligned((NODE_WORDS * WORD_BYTES) as u64, 64);
        rec.write_u64(node, key);
        rec.write_u64(node.add(WORD_BYTES as u64), old_head); // next
        for w in 2..NODE_WORDS {
            let value = if w >= NODE_WORDS - ZERO_PAD_WORDS {
                0 // padding: value-identical store on fresh PM
            } else {
                key.wrapping_mul(w as u64)
            };
            rec.write_u64(node.add((w * WORD_BYTES) as u64), value);
        }
        rec.write_u64(head_addr, node.as_u64());
        // Element counter lives in the word just before the buckets.
        let count_addr = bucket_base.add(self.buckets as u64 * WORD_BYTES as u64);
        let count = rec.read_u64(count_addr);
        rec.write_u64(count_addr, count + 1);
    }

    /// Chases the chain for `key`; returns the node address if present.
    fn lookup(&self, rec: &mut TxRecorder, bucket_base: PhysAddr, key: u64) -> Option<PhysAddr> {
        let bucket = (key % self.buckets as u64) as usize;
        rec.compute(8);
        let mut node = rec.read_u64(bucket_base.add((bucket * WORD_BYTES) as u64));
        while node != 0 {
            if rec.read_u64(PhysAddr::new(node)) == key {
                return Some(PhysAddr::new(node));
            }
            node = rec.read_u64(PhysAddr::new(node + WORD_BYTES as u64));
        }
        None
    }

    /// Unlinks the first node with `key`; returns whether one was removed.
    fn delete(&self, rec: &mut TxRecorder, bucket_base: PhysAddr, key: u64) -> bool {
        let bucket = (key % self.buckets as u64) as usize;
        rec.compute(8);
        let head_addr = bucket_base.add((bucket * WORD_BYTES) as u64);
        let mut prev: Option<PhysAddr> = None;
        let mut node = rec.read_u64(head_addr);
        while node != 0 {
            let next = rec.read_u64(PhysAddr::new(node + WORD_BYTES as u64));
            if rec.read_u64(PhysAddr::new(node)) == key {
                match prev {
                    Some(p) => rec.write_u64(p.add(WORD_BYTES as u64), next),
                    None => rec.write_u64(head_addr, next),
                }
                let count_addr = bucket_base.add(self.buckets as u64 * WORD_BYTES as u64);
                let count = rec.read_u64(count_addr);
                rec.write_u64(count_addr, count - 1);
                return true;
            }
            prev = Some(PhysAddr::new(node)); // unlink writes prev's next slot
            node = next;
        }
        false
    }
}

impl Workload for HashWorkload {
    fn name(&self) -> &'static str {
        "Hash"
    }

    fn trace_ident(&self) -> String {
        format!(
            "Hash/buckets={},setup={},mix={:?}",
            self.buckets, self.setup_inserts, self.mix
        )
    }

    fn raw_streams(&self, cores: usize, txs_per_core: usize, seed: u64) -> Vec<Vec<Transaction>> {
        (0..cores)
            .map(|core| {
                let base = core_base(core);
                let mut rng = Xoshiro256::seeded(seed ^ (core as u64).wrapping_mul(0xc2b2));
                let mut rec = TxRecorder::new();
                let table_bytes = ((self.buckets + 1) * WORD_BYTES) as u64;
                let mut heap = PmHeap::new(base + table_bytes, CORE_REGION_BYTES - table_bytes);
                let bucket_base = PhysAddr::new(base);
                let mut txs = Vec::with_capacity(txs_per_core + 1);

                for _ in 0..self.setup_inserts {
                    self.insert(&mut rec, &mut heap, bucket_base, rng.next_u64());
                }
                txs.push(rec.finish_tx());

                let mut inserted: Vec<u64> = Vec::new();
                for _ in 0..txs_per_core {
                    match self.mix {
                        HashMix::InsertOnly => {
                            self.insert(&mut rec, &mut heap, bucket_base, rng.next_u64());
                        }
                        HashMix::Mixed => {
                            let dice = rng.below(10);
                            if dice < 6 || inserted.is_empty() {
                                let key = rng.next_u64();
                                self.insert(&mut rec, &mut heap, bucket_base, key);
                                inserted.push(key);
                            } else if dice < 9 {
                                let key = inserted[rng.below(inserted.len() as u64) as usize];
                                let _ = self.lookup(&mut rec, bucket_base, key);
                            } else {
                                let idx = rng.below(inserted.len() as u64) as usize;
                                let key = inserted.swap_remove(idx);
                                self.delete(&mut rec, bucket_base, key);
                            }
                        }
                    }
                    txs.push(rec.finish_tx());
                }
                txs
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_write_set_matches_fig13_footprint() {
        let streams = HashWorkload::default().raw_streams(1, 50, 11);
        for tx in &streams[0][1..] {
            // node (26) + head + counter = 28 distinct words.
            assert_eq!(tx.write_set_words(), 28);
            // 8 of them are zero padding over fresh (zero) PM.
            let zeros = tx
                .final_writes()
                .iter()
                .filter(|(_, w)| w.as_u64() == 0)
                .count();
            // The chain's next pointer is also zero when the bucket was
            // empty, so allow one extra.
            assert!(
                (ZERO_PAD_WORDS..=ZERO_PAD_WORDS + 1).contains(&zeros),
                "{zeros}"
            );
        }
    }

    #[test]
    fn chains_link_correctly() {
        let w = HashWorkload {
            buckets: 4,
            setup_inserts: 0,
            mix: HashMix::InsertOnly,
        };
        let streams = w.raw_streams(1, 40, 12);
        let mut rec = TxRecorder::new();
        for tx in &streams[0] {
            for op in tx.ops() {
                if let silo_sim::Op::Write(a, v) = op {
                    rec.write_u64(*a, v.as_u64());
                }
            }
        }
        // Walk all 4 chains; every key must hash to its bucket.
        let base = PhysAddr::new(core_base(0));
        let mut found = 0;
        for b in 0..4u64 {
            let mut node = rec.peek_u64(base.add(b * 8));
            while node != 0 {
                let key = rec.peek_u64(PhysAddr::new(node));
                assert_eq!(key % 4, b, "key in wrong bucket");
                node = rec.peek_u64(PhysAddr::new(node + 8));
                found += 1;
            }
        }
        assert_eq!(found, 40);
        let counter = rec.peek_u64(base.add(4 * 8));
        assert_eq!(counter, 40);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = HashWorkload::default().raw_streams(1, 10, 3);
        let b = HashWorkload::default().raw_streams(1, 10, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_mode_lookups_and_deletes_work() {
        let w = HashWorkload {
            buckets: 8,
            setup_inserts: 0,
            mix: HashMix::Mixed,
        };
        let streams = w.raw_streams(1, 300, 99);
        // Replay and verify the element counter matches the chain lengths.
        let mut rec = TxRecorder::new();
        for tx in &streams[0] {
            for op in tx.ops() {
                if let silo_sim::Op::Write(a, v) = op {
                    rec.write_u64(*a, v.as_u64());
                }
            }
        }
        let base = PhysAddr::new(core_base(0));
        let mut chained = 0u64;
        for b in 0..8u64 {
            let mut node = rec.peek_u64(base.add(b * 8));
            while node != 0 {
                chained += 1;
                node = rec.peek_u64(PhysAddr::new(node + 8));
            }
        }
        assert_eq!(
            chained,
            rec.peek_u64(base.add(8 * 8)),
            "counter matches chains"
        );
        // Mixed mode contains read-only (lookup) transactions.
        let read_only = streams[0][1..].iter().filter(|t| t.is_read_only()).count();
        assert!(read_only > 0, "lookups appear in the mix");
    }

    #[test]
    fn delete_unlinks_mid_chain_nodes() {
        let w = HashWorkload {
            buckets: 1, // one chain: forces mid-chain unlinks
            setup_inserts: 0,
            mix: HashMix::InsertOnly,
        };
        let mut rec = TxRecorder::new();
        let mut heap = PmHeap::new(1024, 1 << 20);
        let base = PhysAddr::new(0);
        for key in [10u64, 20, 30] {
            w.insert(&mut rec, &mut heap, base, key);
        }
        assert!(w.delete(&mut rec, base, 20), "mid-chain delete");
        assert!(w.lookup(&mut rec, base, 10).is_some());
        assert!(w.lookup(&mut rec, base, 20).is_none());
        assert!(w.lookup(&mut rec, base, 30).is_some());
        assert!(!w.delete(&mut rec, base, 20), "already gone");
        assert_eq!(rec.peek_u64(base.add(8)), 2, "counter decremented");
    }
}
