//! RBtree: random inserts into a red-black tree (paper Table III).

use silo_sim::Transaction;
use silo_types::{PhysAddr, Xoshiro256, WORD_BYTES};

use crate::heap::{PmHeap, TxRecorder};
use crate::registry::{core_base, CORE_REGION_BYTES};
use crate::Workload;

/// Node layout (8 words = 64 B): key, meta (color), left, right, parent,
/// and three payload words.
const NODE_WORDS: usize = 8;
const OFF_KEY: u64 = 0;
const OFF_META: u64 = 8;
const OFF_LEFT: u64 = 16;
const OFF_RIGHT: u64 = 24;
const OFF_PARENT: u64 = 32;
const RED: u64 = 1;
const BLACK: u64 = 0;

/// The red-black-tree micro-benchmark: each transaction inserts one 64 B
/// node and runs the standard recolor/rotate fixup. Fixups revisit the
/// same parent/color words repeatedly, which exercises Silo's on-chip
/// log merging. With `delete_percent > 0`, that fraction of transactions
/// deletes a random live key instead (full CLRS delete with fixup).
#[derive(Clone, Debug)]
pub struct RbtreeWorkload {
    /// Inserts during setup.
    pub setup_inserts: usize,
    /// Percent of measured transactions that delete instead of insert
    /// (paper figures use 0: insert-only).
    pub delete_percent: u64,
}

impl Default for RbtreeWorkload {
    fn default() -> Self {
        RbtreeWorkload {
            setup_inserts: 128,
            delete_percent: 0,
        }
    }
}

struct Rbt<'a> {
    rec: &'a mut TxRecorder,
    root_ptr: PhysAddr,
}

impl<'a> Rbt<'a> {
    fn get(&mut self, node: u64, off: u64) -> u64 {
        self.rec.read_u64(PhysAddr::new(node + off))
    }

    fn set(&mut self, node: u64, off: u64, v: u64) {
        self.rec.write_u64(PhysAddr::new(node + off), v);
    }

    fn root(&mut self) -> u64 {
        self.rec.read_u64(self.root_ptr)
    }

    fn rotate(&mut self, x: u64, left: bool) {
        // rotate_left(x) when `left`, rotate_right(x) otherwise.
        let (a, b) = if left {
            (OFF_RIGHT, OFF_LEFT)
        } else {
            (OFF_LEFT, OFF_RIGHT)
        };
        let y = self.get(x, a);
        let y_b = self.get(y, b);
        self.set(x, a, y_b);
        if y_b != 0 {
            self.set(y_b, OFF_PARENT, x);
        }
        let xp = self.get(x, OFF_PARENT);
        self.set(y, OFF_PARENT, xp);
        if xp == 0 {
            self.rec.write_u64(self.root_ptr, y);
        } else if self.get(xp, OFF_LEFT) == x {
            self.set(xp, OFF_LEFT, y);
        } else {
            self.set(xp, OFF_RIGHT, y);
        }
        self.set(y, b, x);
        self.set(x, OFF_PARENT, y);
    }

    fn insert(&mut self, node: u64, key: u64) {
        // BST insert.
        let mut parent = 0u64;
        let mut cur = self.root();
        while cur != 0 {
            parent = cur;
            cur = if key < self.get(cur, OFF_KEY) {
                self.get(cur, OFF_LEFT)
            } else {
                self.get(cur, OFF_RIGHT)
            };
        }
        self.set(node, OFF_PARENT, parent);
        self.set(node, OFF_META, RED);
        if parent == 0 {
            self.rec.write_u64(self.root_ptr, node);
        } else if key < self.get(parent, OFF_KEY) {
            self.set(parent, OFF_LEFT, node);
        } else {
            self.set(parent, OFF_RIGHT, node);
        }
        // Fixup.
        let mut z = node;
        loop {
            let zp = self.get(z, OFF_PARENT);
            if zp == 0 || self.get(zp, OFF_META) == BLACK {
                break;
            }
            let zpp = self.get(zp, OFF_PARENT);
            if zpp == 0 {
                break;
            }
            let zp_is_left = self.get(zpp, OFF_LEFT) == zp;
            let uncle = if zp_is_left {
                self.get(zpp, OFF_RIGHT)
            } else {
                self.get(zpp, OFF_LEFT)
            };
            if uncle != 0 && self.get(uncle, OFF_META) == RED {
                self.set(zp, OFF_META, BLACK);
                self.set(uncle, OFF_META, BLACK);
                self.set(zpp, OFF_META, RED);
                z = zpp;
                continue;
            }
            let z_is_left = self.get(zp, OFF_LEFT) == z;
            if zp_is_left && !z_is_left {
                self.rotate(zp, true);
                z = zp;
            } else if !zp_is_left && z_is_left {
                self.rotate(zp, false);
                z = zp;
            }
            let zp2 = self.get(z, OFF_PARENT);
            let zpp2 = self.get(zp2, OFF_PARENT);
            self.set(zp2, OFF_META, BLACK);
            if zpp2 != 0 {
                self.set(zpp2, OFF_META, RED);
                self.rotate(zpp2, !zp_is_left);
            }
            break;
        }
        let root = self.root();
        if self.get(root, OFF_META) != BLACK {
            self.set(root, OFF_META, BLACK);
        }
    }

    /// Smallest-key node in `node`'s subtree.
    fn minimum(&mut self, mut node: u64) -> u64 {
        loop {
            let left = self.get(node, OFF_LEFT);
            if left == 0 {
                return node;
            }
            node = left;
        }
    }

    /// Replaces subtree `u` with subtree `v` in `u`'s parent (v may be 0).
    fn transplant(&mut self, u: u64, v: u64) {
        let up = self.get(u, OFF_PARENT);
        if up == 0 {
            self.rec.write_u64(self.root_ptr, v);
        } else if self.get(up, OFF_LEFT) == u {
            self.set(up, OFF_LEFT, v);
        } else {
            self.set(up, OFF_RIGHT, v);
        }
        if v != 0 {
            self.set(v, OFF_PARENT, up);
        }
    }

    /// Finds the node holding `key`, if any.
    fn find(&mut self, key: u64) -> Option<u64> {
        let mut cur = self.root();
        while cur != 0 {
            let k = self.get(cur, OFF_KEY);
            if k == key {
                return Some(cur);
            }
            cur = if key < k {
                self.get(cur, OFF_LEFT)
            } else {
                self.get(cur, OFF_RIGHT)
            };
        }
        None
    }

    /// Deletes the node holding `key`; returns whether one was removed.
    /// Standard CLRS delete with a (child, parent) pair standing in for
    /// the nil sentinel during fixup.
    fn delete(&mut self, key: u64) -> bool {
        let Some(z) = self.find(key) else {
            return false;
        };
        let mut y_color = self.get(z, OFF_META);
        let x;
        let xp;
        let zl = self.get(z, OFF_LEFT);
        let zr = self.get(z, OFF_RIGHT);
        if zl == 0 {
            x = zr;
            xp = self.get(z, OFF_PARENT);
            self.transplant(z, zr);
        } else if zr == 0 {
            x = zl;
            xp = self.get(z, OFF_PARENT);
            self.transplant(z, zl);
        } else {
            let y = self.minimum(zr);
            y_color = self.get(y, OFF_META);
            x = self.get(y, OFF_RIGHT);
            if self.get(y, OFF_PARENT) == z {
                xp = y;
            } else {
                xp = self.get(y, OFF_PARENT);
                let yr = self.get(y, OFF_RIGHT);
                self.transplant(y, yr);
                let zr_now = self.get(z, OFF_RIGHT);
                self.set(y, OFF_RIGHT, zr_now);
                self.set(zr_now, OFF_PARENT, y);
            }
            self.transplant(z, y);
            let zl_now = self.get(z, OFF_LEFT);
            self.set(y, OFF_LEFT, zl_now);
            self.set(zl_now, OFF_PARENT, y);
            let zc = self.get(z, OFF_META);
            self.set(y, OFF_META, zc);
        }
        if y_color == BLACK {
            self.delete_fixup(x, xp);
        }
        true
    }

    fn delete_fixup(&mut self, mut x: u64, mut xp: u64) {
        while xp != 0 && (x == 0 || self.get(x, OFF_META) == BLACK) {
            let x_is_left = self.get(xp, OFF_LEFT) == x;
            let (side_a, side_b) = if x_is_left {
                (OFF_RIGHT, OFF_LEFT)
            } else {
                (OFF_LEFT, OFF_RIGHT)
            };
            let mut w = self.get(xp, side_a);
            if w != 0 && self.get(w, OFF_META) == RED {
                self.set(w, OFF_META, BLACK);
                self.set(xp, OFF_META, RED);
                self.rotate(xp, x_is_left);
                w = self.get(xp, side_a);
            }
            if w == 0 {
                // Degenerate: treat the missing sibling as black nil and
                // move the problem up.
                x = xp;
                xp = self.get(xp, OFF_PARENT);
                continue;
            }
            let wa = self.get(w, side_a);
            let wb = self.get(w, side_b);
            let wa_black = wa == 0 || self.get(wa, OFF_META) == BLACK;
            let wb_black = wb == 0 || self.get(wb, OFF_META) == BLACK;
            if wa_black && wb_black {
                self.set(w, OFF_META, RED);
                x = xp;
                xp = self.get(xp, OFF_PARENT);
            } else {
                if wa_black {
                    if wb != 0 {
                        self.set(wb, OFF_META, BLACK);
                    }
                    self.set(w, OFF_META, RED);
                    self.rotate(w, !x_is_left);
                    w = self.get(xp, side_a);
                }
                let xp_color = self.get(xp, OFF_META);
                self.set(w, OFF_META, xp_color);
                self.set(xp, OFF_META, BLACK);
                let wa2 = self.get(w, side_a);
                if wa2 != 0 {
                    self.set(wa2, OFF_META, BLACK);
                }
                self.rotate(xp, x_is_left);
                // Terminate: set x to the root.
                x = self.root();
                xp = 0;
            }
        }
        if x != 0 {
            self.set(x, OFF_META, BLACK);
        }
    }
}

impl Workload for RbtreeWorkload {
    fn name(&self) -> &'static str {
        "RBtree"
    }

    fn trace_ident(&self) -> String {
        format!(
            "RBtree/setup={},delete={}",
            self.setup_inserts, self.delete_percent
        )
    }

    fn raw_streams(&self, cores: usize, txs_per_core: usize, seed: u64) -> Vec<Vec<Transaction>> {
        (0..cores)
            .map(|core| {
                let base = core_base(core);
                let mut rng = Xoshiro256::seeded(seed ^ (core as u64).wrapping_mul(0xe923));
                let mut rec = TxRecorder::new();
                let mut heap = PmHeap::new(base + 64, CORE_REGION_BYTES - 64);
                let root_ptr = PhysAddr::new(base);
                let mut txs = Vec::with_capacity(txs_per_core + 1);

                let do_insert = |rec: &mut TxRecorder, heap: &mut PmHeap, key: u64| {
                    let node = heap.alloc_aligned((NODE_WORDS * WORD_BYTES) as u64, 64);
                    rec.write_u64(node.add(OFF_KEY), key);
                    rec.write_u64(node.add(OFF_LEFT), 0);
                    rec.write_u64(node.add(OFF_RIGHT), 0);
                    for w in 5..NODE_WORDS {
                        rec.write_u64(node.add((w * WORD_BYTES) as u64), key ^ w as u64);
                    }
                    Rbt { rec, root_ptr }.insert(node.as_u64(), key);
                };

                let mut live: Vec<u64> = Vec::new();
                for _ in 0..self.setup_inserts {
                    let key = rng.next_u64() >> 8;
                    do_insert(&mut rec, &mut heap, key);
                    live.push(key);
                }
                txs.push(rec.finish_tx());

                for _ in 0..txs_per_core {
                    if !live.is_empty() && rng.percent(self.delete_percent) {
                        let idx = rng.below(live.len() as u64) as usize;
                        let key = live.swap_remove(idx);
                        Rbt {
                            rec: &mut rec,
                            root_ptr,
                        }
                        .delete(key);
                    } else {
                        let key = rng.next_u64() >> 8;
                        do_insert(&mut rec, &mut heap, key);
                        live.push(key);
                    }
                    rec.compute(25);
                    txs.push(rec.finish_tx());
                }
                txs
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replay(streams: &[Vec<Transaction>]) -> TxRecorder {
        let mut rec = TxRecorder::new();
        for tx in &streams[0] {
            for op in tx.ops() {
                if let silo_sim::Op::Write(a, v) = op {
                    rec.write_u64(*a, v.as_u64());
                }
            }
        }
        rec
    }

    /// Checks BST order and the red-black "no red child of red" and
    /// equal-black-height invariants; returns (node count, black height).
    fn check(rec: &TxRecorder, node: u64, lo: u64, hi: u64) -> (usize, usize) {
        if node == 0 {
            return (0, 1);
        }
        let key = rec.peek_u64(PhysAddr::new(node + OFF_KEY));
        assert!(key >= lo && key <= hi, "BST order violated");
        let color = rec.peek_u64(PhysAddr::new(node + OFF_META));
        let left = rec.peek_u64(PhysAddr::new(node + OFF_LEFT));
        let right = rec.peek_u64(PhysAddr::new(node + OFF_RIGHT));
        if color == RED {
            for child in [left, right] {
                if child != 0 {
                    assert_eq!(
                        rec.peek_u64(PhysAddr::new(child + OFF_META)),
                        BLACK,
                        "red node with red child"
                    );
                }
            }
        }
        let (ln, lb) = check(rec, left, lo, key);
        let (rn, rb) = check(rec, right, key, hi);
        assert_eq!(lb, rb, "black heights differ");
        (ln + rn + 1, lb + usize::from(color == BLACK))
    }

    #[test]
    fn red_black_invariants_hold() {
        let w = RbtreeWorkload {
            setup_inserts: 64,
            delete_percent: 0,
        };
        let streams = w.raw_streams(1, 300, 17);
        let rec = replay(&streams);
        let root = rec.peek_u64(PhysAddr::new(core_base(0)));
        assert_ne!(root, 0);
        assert_eq!(
            rec.peek_u64(PhysAddr::new(root + OFF_META)),
            BLACK,
            "root is black"
        );
        let (n, _) = check(&rec, root, 0, u64::MAX);
        assert_eq!(n, 64 + 300);
    }

    #[test]
    fn mixed_insert_delete_workload_keeps_invariants() {
        let w = RbtreeWorkload {
            setup_inserts: 64,
            delete_percent: 35,
        };
        let streams = w.raw_streams(1, 400, 23);
        let rec = replay(&streams);
        let root = rec.peek_u64(PhysAddr::new(core_base(0)));
        assert_ne!(root, 0);
        let (n, _) = check(&rec, root, 0, u64::MAX);
        assert!(n < 64 + 400, "deletes removed nodes (live = {n})");
        assert!(n > 100, "inserts outnumber deletes");
    }

    #[test]
    fn inserts_have_moderate_write_sets() {
        let streams = RbtreeWorkload::default().raw_streams(1, 100, 18);
        for tx in &streams[0][1..] {
            let w = tx.write_set_words();
            assert!((8..=40).contains(&w), "write set {w}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            RbtreeWorkload::default().raw_streams(1, 15, 2),
            RbtreeWorkload::default().raw_streams(1, 15, 2)
        );
    }
}

#[cfg(test)]
mod delete_tests {
    use super::*;
    use silo_types::SplitMix64;

    fn check_invariants(rec: &TxRecorder, node: u64, lo: u64, hi: u64) -> (usize, usize) {
        if node == 0 {
            return (0, 1);
        }
        let key = rec.peek_u64(PhysAddr::new(node + OFF_KEY));
        assert!(key >= lo && key <= hi, "BST order violated at {key}");
        let color = rec.peek_u64(PhysAddr::new(node + OFF_META));
        let left = rec.peek_u64(PhysAddr::new(node + OFF_LEFT));
        let right = rec.peek_u64(PhysAddr::new(node + OFF_RIGHT));
        for child in [left, right] {
            if child != 0 {
                assert_eq!(
                    rec.peek_u64(PhysAddr::new(child + OFF_PARENT)),
                    node,
                    "parent pointer broken"
                );
                if color == RED {
                    assert_eq!(
                        rec.peek_u64(PhysAddr::new(child + OFF_META)),
                        BLACK,
                        "red node with red child"
                    );
                }
            }
        }
        let (ln, lb) = check_invariants(rec, left, lo, key);
        let (rn, rb) = check_invariants(rec, right, key, hi);
        assert_eq!(lb, rb, "black heights differ under {key}");
        (ln + rn + 1, lb + usize::from(color == BLACK))
    }

    fn new_node(rec: &mut TxRecorder, heap: &mut PmHeap, key: u64) -> u64 {
        let node = heap.alloc_aligned((NODE_WORDS * WORD_BYTES) as u64, 64);
        rec.write_u64(node.add(OFF_KEY), key);
        rec.write_u64(node.add(OFF_LEFT), 0);
        rec.write_u64(node.add(OFF_RIGHT), 0);
        node.as_u64()
    }

    #[test]
    fn random_insert_delete_preserves_invariants() {
        let mut rec = TxRecorder::new();
        let mut heap = PmHeap::new(1024, 8 << 20);
        let root_ptr = PhysAddr::new(0);
        let mut rng = SplitMix64::new(1234);
        let mut live: Vec<u64> = Vec::new();

        for round in 0..2_000u64 {
            if live.is_empty() || rng.chance(3, 5) {
                let key = rng.next_u64() >> 40;
                let node = new_node(&mut rec, &mut heap, key);
                Rbt {
                    rec: &mut rec,
                    root_ptr,
                }
                .insert(node, key);
                live.push(key);
            } else {
                let idx = rng.below(live.len() as u64) as usize;
                let key = live.swap_remove(idx);
                let removed = Rbt {
                    rec: &mut rec,
                    root_ptr,
                }
                .delete(key);
                assert!(removed, "round {round}: key {key} should be present");
            }
            if round % 97 == 0 {
                let root = rec.peek_u64(root_ptr);
                if root != 0 {
                    assert_eq!(
                        rec.peek_u64(PhysAddr::new(root + OFF_META)),
                        BLACK,
                        "root must be black"
                    );
                    assert_eq!(rec.peek_u64(PhysAddr::new(root + OFF_PARENT)), 0);
                    let (n, _) = check_invariants(&rec, root, 0, u64::MAX);
                    assert_eq!(n, live.len(), "round {round}: node count");
                }
            }
        }
        // Drain the remainder and verify emptiness.
        for key in live.drain(..) {
            assert!(Rbt {
                rec: &mut rec,
                root_ptr
            }
            .delete(key));
        }
        assert_eq!(rec.peek_u64(root_ptr), 0, "tree fully emptied");
    }

    #[test]
    fn delete_missing_key_is_noop() {
        let mut rec = TxRecorder::new();
        let mut heap = PmHeap::new(1024, 1 << 20);
        let root_ptr = PhysAddr::new(0);
        assert!(!Rbt {
            rec: &mut rec,
            root_ptr
        }
        .delete(42));
        let node = new_node(&mut rec, &mut heap, 7);
        Rbt {
            rec: &mut rec,
            root_ptr,
        }
        .insert(node, 7);
        assert!(!Rbt {
            rec: &mut rec,
            root_ptr
        }
        .delete(42));
        assert!(Rbt {
            rec: &mut rec,
            root_ptr
        }
        .find(7)
        .is_some());
    }

    #[test]
    fn delete_root_of_single_node_tree() {
        let mut rec = TxRecorder::new();
        let mut heap = PmHeap::new(1024, 1 << 20);
        let root_ptr = PhysAddr::new(0);
        let node = new_node(&mut rec, &mut heap, 5);
        Rbt {
            rec: &mut rec,
            root_ptr,
        }
        .insert(node, 5);
        assert!(Rbt {
            rec: &mut rec,
            root_ptr
        }
        .delete(5));
        assert_eq!(rec.peek_u64(root_ptr), 0);
    }
}
