//! Open-system arrival processes and the [`OpenLoop`] workload wrapper.
//!
//! Every stock workload is a *closed loop*: each core retires its next
//! transaction the instant the previous one commits, so the simulator
//! reproduces the paper's throughput figures but says nothing about the
//! latency an individual request observes under load. An
//! [`ArrivalProcess`] turns any workload into an *open system*: each
//! measured transaction is stamped with an absolute arrival cycle, the
//! engine refuses to begin it earlier, and the per-transaction sojourn
//! (queue wait + service) feeds the exact percentile recorder in
//! `silo-sim::stats`.
//!
//! All processes are seed-deterministic and integer-exact: the exponential
//! sampler behind [`ArrivalProcess::Poisson`] uses von Neumann's
//! uniform-comparison algorithm instead of `-ln(U)`, so schedules are
//! bit-identical across machines, worker counts, and optimisation levels —
//! no floating-point transcendentals anywhere on the reproducibility path.

use std::sync::Arc;

use silo_sim::{ArrivalSchedule, TraceSet, Transaction};
use silo_types::Xoshiro256;

use crate::Workload;

/// Seed salt so arrival RNG streams never collide with workload RNG
/// streams derived from the same `(seed, core)` pair.
const ARRIVAL_SALT: u64 = 0x61_72_72_69_76_65; // "arrive"

/// When transactions arrive at a core, in cycles.
///
/// `mean_gap`-style parameters are *per-core inter-arrival means*: the
/// per-core offered load is `1 / mean_gap` transactions per cycle, and the
/// machine-wide offered load multiplies by the core count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// The classic closed loop: no schedule at all, next transaction starts
    /// at commit. Wrapping a workload with this is a no-op, which lets
    /// sweeps include the closed loop as a degenerate "infinite load"
    /// point without a separate code path.
    ClosedLoop,
    /// Memoryless arrivals with exponentially distributed inter-arrival
    /// gaps of mean `mean_gap` cycles (an M/D-ish open system; the "D" is
    /// whatever the scheme's service time turns out to be).
    Poisson {
        /// Mean inter-arrival gap in cycles.
        mean_gap: u64,
    },
    /// On-off traffic: bursts of `burst` arrivals with Poisson gaps of mean
    /// `mean_gap`, separated by fixed `idle_gap`-cycle silences — the
    /// pattern under which log buffers drain between bursts and the first
    /// transactions of a burst see a cold pipe.
    Bursty {
        /// Mean inter-arrival gap within a burst, cycles.
        mean_gap: u64,
        /// Arrivals per burst.
        burst: u64,
        /// Silence between bursts, cycles.
        idle_gap: u64,
    },
    /// A deterministic load ramp: the inter-arrival gap interpolates
    /// linearly from `start_gap` to `end_gap` across the measured
    /// transactions, modelling a diurnal swell (or ebb) within one run.
    Diurnal {
        /// Gap before the first measured transaction, cycles.
        start_gap: u64,
        /// Gap before the last measured transaction, cycles.
        end_gap: u64,
    },
}

impl ArrivalProcess {
    /// Compact stable identity, embedded in trace idents and spec hashes.
    /// Two processes with equal idents generate identical schedules for
    /// equal `(cores, txs, seed)`.
    pub fn ident(&self) -> String {
        match self {
            ArrivalProcess::ClosedLoop => "closed".into(),
            ArrivalProcess::Poisson { mean_gap } => format!("poisson{mean_gap}"),
            ArrivalProcess::Bursty {
                mean_gap,
                burst,
                idle_gap,
            } => format!("bursty{mean_gap}x{burst}i{idle_gap}"),
            ArrivalProcess::Diurnal { start_gap, end_gap } => {
                format!("diurnal{start_gap}-{end_gap}")
            }
        }
    }

    /// Parses an [`ident`](Self::ident) string back into its process —
    /// the exact inverse, so repro commands can carry arrival processes
    /// as one CLI token (`closed`, `poisson500`, `bursty100x8i5000`,
    /// `diurnal2000-100`). `None` on anything `ident` cannot produce.
    pub fn parse(ident: &str) -> Option<ArrivalProcess> {
        fn num(s: &str) -> Option<u64> {
            // Reject empty, signs, and leading-zero ambiguity-free enough:
            // plain decimal digits only, as `ident` formats them.
            if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
                return None;
            }
            s.parse().ok()
        }
        if ident == "closed" {
            return Some(ArrivalProcess::ClosedLoop);
        }
        if let Some(rest) = ident.strip_prefix("poisson") {
            return Some(ArrivalProcess::Poisson {
                mean_gap: num(rest)?,
            });
        }
        if let Some(rest) = ident.strip_prefix("bursty") {
            let (gap, rest) = rest.split_once('x')?;
            let (burst, idle) = rest.split_once('i')?;
            return Some(ArrivalProcess::Bursty {
                mean_gap: num(gap)?,
                burst: num(burst)?,
                idle_gap: num(idle)?,
            });
        }
        if let Some(rest) = ident.strip_prefix("diurnal") {
            let (start, end) = rest.split_once('-')?;
            return Some(ArrivalProcess::Diurnal {
                start_gap: num(start)?,
                end_gap: num(end)?,
            });
        }
        None
    }

    /// The arrival schedule for one core: one absolute nondecreasing cycle
    /// per transaction. The `setup` leading transactions arrive at cycle 0
    /// (they build the structure and are excluded from measurement);
    /// `measured` transactions follow. `None` for [`ClosedLoop`]
    /// (no admission control at all).
    ///
    /// [`ClosedLoop`]: ArrivalProcess::ClosedLoop
    pub fn schedule(
        &self,
        core: usize,
        setup: usize,
        measured: usize,
        seed: u64,
    ) -> Option<Vec<u64>> {
        if matches!(self, ArrivalProcess::ClosedLoop) {
            return None;
        }
        let mut rng = Xoshiro256::seeded(
            seed ^ ARRIVAL_SALT ^ (core as u64).wrapping_mul(0x9e37_79b9_97f4_a7c5),
        );
        let mut arrivals = vec![0u64; setup];
        arrivals.reserve(measured);
        let mut now = 0u64;
        match *self {
            ArrivalProcess::ClosedLoop => unreachable!("handled above"),
            ArrivalProcess::Poisson { mean_gap } => {
                for _ in 0..measured {
                    now = now.saturating_add(exp_gap(&mut rng, mean_gap));
                    arrivals.push(now);
                }
            }
            ArrivalProcess::Bursty {
                mean_gap,
                burst,
                idle_gap,
            } => {
                let burst = burst.max(1);
                for i in 0..measured as u64 {
                    if i > 0 && i % burst == 0 {
                        now = now.saturating_add(idle_gap);
                    }
                    now = now.saturating_add(exp_gap(&mut rng, mean_gap));
                    arrivals.push(now);
                }
            }
            ArrivalProcess::Diurnal { start_gap, end_gap } => {
                for i in 0..measured as u64 {
                    // Linear interpolation in u128 so huge gaps cannot
                    // overflow; i ranges over 0..measured, denominator is
                    // the last index (or 1 for a single transaction).
                    let den = (measured as u64).saturating_sub(1).max(1) as u128;
                    let (lo, hi) = (start_gap as u128, end_gap as u128);
                    let gap = if hi >= lo {
                        lo + (hi - lo) * i as u128 / den
                    } else {
                        lo - (lo - hi) * i as u128 / den
                    };
                    now = now.saturating_add(gap as u64);
                    arrivals.push(now);
                }
            }
        }
        Some(arrivals)
    }
}

/// An exponentially distributed inter-arrival gap with mean `mean_gap`
/// cycles, sampled by von Neumann's algorithm: draw uniforms and count the
/// length of the initial strictly-descending run; an odd run length
/// accepts `integer_part + first_uniform` as an Exp(1) variate, an even
/// one increments the integer part and retries. Only `u64` comparisons and
/// one `u128` multiply — no floats, so the result is exactly reproducible
/// everywhere.
fn exp_gap(rng: &mut Xoshiro256, mean_gap: u64) -> u64 {
    if mean_gap == 0 {
        return 0;
    }
    let mut whole = 0u64;
    let frac = loop {
        let first = rng.next_u64();
        let mut prev = first;
        let mut run = 1u64;
        loop {
            let next = rng.next_u64();
            if next < prev {
                prev = next;
                run += 1;
            } else {
                break;
            }
        }
        if run % 2 == 1 {
            break first;
        }
        whole += 1;
    };
    // gap = mean * (whole + frac/2^64), rounded down, in u128 to avoid
    // overflow for any realistic mean.
    let scaled = (mean_gap as u128 * frac as u128) >> 64;
    mean_gap.saturating_mul(whole).saturating_add(scaled as u64)
}

/// Wraps any workload with an [`ArrivalProcess`], producing open-system
/// traces: identical transaction content, plus a per-core arrival schedule
/// attached to the [`TraceSet`]. Setup transactions arrive at cycle 0 and
/// are excluded from latency measurement.
#[derive(Clone, Debug)]
pub struct OpenLoop<W> {
    inner: W,
    process: ArrivalProcess,
}

impl<W: Workload> OpenLoop<W> {
    /// Wraps `inner` with `process`.
    pub fn new(inner: W, process: ArrivalProcess) -> Self {
        OpenLoop { inner, process }
    }
}

impl<W: Workload> Workload for OpenLoop<W> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn trace_ident(&self) -> String {
        // ClosedLoop is a true no-op, so it keeps the inner ident and the
        // trace cache shares entries with unwrapped runs.
        match self.process {
            ArrivalProcess::ClosedLoop => self.inner.trace_ident(),
            _ => format!("{}@{}", self.inner.trace_ident(), self.process.ident()),
        }
    }

    fn raw_streams(&self, cores: usize, txs_per_core: usize, seed: u64) -> Vec<Vec<Transaction>> {
        self.inner.raw_streams(cores, txs_per_core, seed)
    }

    fn build_trace(&self, cores: usize, txs_per_core: usize, seed: u64) -> TraceSet {
        let base = TraceSet::new(
            self.trace_ident(),
            cores,
            txs_per_core,
            seed,
            self.inner.raw_streams(cores, txs_per_core, seed),
        );
        if matches!(self.process, ArrivalProcess::ClosedLoop) {
            return base;
        }
        let streams: Vec<Arc<[Transaction]>> = base.streams().to_vec();
        let scheds = streams
            .iter()
            .enumerate()
            .map(|(core, stream)| {
                let setup = stream.len() - txs_per_core;
                let arrivals = self
                    .process
                    .schedule(core, setup, txs_per_core, seed)
                    .expect("non-closed process always yields a schedule");
                ArrivalSchedule::new(arrivals, setup)
            })
            .collect();
        base.with_arrivals(scheds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueueWorkload;

    #[test]
    fn schedules_are_deterministic_per_seed_and_core() {
        for p in [
            ArrivalProcess::Poisson { mean_gap: 500 },
            ArrivalProcess::Bursty {
                mean_gap: 100,
                burst: 8,
                idle_gap: 5_000,
            },
            ArrivalProcess::Diurnal {
                start_gap: 2_000,
                end_gap: 100,
            },
        ] {
            let a = p.schedule(3, 1, 256, 42).expect("schedule");
            let b = p.schedule(3, 1, 256, 42).expect("schedule");
            assert_eq!(a, b, "{}", p.ident());
            if !matches!(p, ArrivalProcess::Diurnal { .. }) {
                // Randomized processes decorrelate cores; the diurnal ramp
                // is deliberately a synchronized machine-wide swell.
                let other_core = p.schedule(4, 1, 256, 42).expect("schedule");
                assert_ne!(a, other_core, "cores must not share schedules");
            }
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "nondecreasing");
            assert_eq!(a.len(), 257);
            assert_eq!(a[0], 0, "setup arrives at cycle 0");
        }
    }

    #[test]
    fn closed_loop_is_a_no_op() {
        assert_eq!(ArrivalProcess::ClosedLoop.schedule(0, 1, 10, 7), None);
        let plain = QueueWorkload::default().build_trace(2, 10, 42);
        let wrapped = OpenLoop::new(QueueWorkload::default(), ArrivalProcess::ClosedLoop)
            .build_trace(2, 10, 42);
        assert_eq!(plain.content_hash(), wrapped.content_hash());
        assert!(wrapped.arrivals().is_none());
        assert_eq!(
            plain.provenance().workload,
            wrapped.provenance().workload,
            "closed loop shares trace-cache entries with the unwrapped workload"
        );
    }

    #[test]
    fn open_traces_attach_schedules_without_changing_ops() {
        let w = OpenLoop::new(
            QueueWorkload::default(),
            ArrivalProcess::Poisson { mean_gap: 300 },
        );
        let trace = w.build_trace(2, 20, 42);
        let plain = QueueWorkload::default().build_trace(2, 20, 42);
        assert_eq!(trace.to_vecs(), plain.to_vecs(), "ops are untouched");
        assert_ne!(trace.content_hash(), plain.content_hash());
        let scheds = trace.arrivals().expect("schedules attached");
        assert_eq!(scheds.len(), 2);
        for (sched, stream) in scheds.iter().zip(trace.streams()) {
            assert_eq!(sched.arrivals.len(), stream.len());
            assert_eq!(sched.measure_from, stream.len() - 20);
        }
        assert!(w.trace_ident().contains("@poisson300"));
    }

    #[test]
    fn poisson_gaps_have_roughly_the_requested_mean() {
        let mut rng = Xoshiro256::seeded(9);
        let n = 20_000u64;
        let total: u64 = (0..n).map(|_| exp_gap(&mut rng, 1_000)).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (900.0..1100.0).contains(&mean),
            "sample mean {mean} far from 1000"
        );
    }

    #[test]
    fn bursty_inserts_idle_gaps_between_bursts() {
        let p = ArrivalProcess::Bursty {
            mean_gap: 10,
            burst: 4,
            idle_gap: 100_000,
        };
        let a = p.schedule(0, 0, 12, 1).expect("schedule");
        // Gaps at burst boundaries (indices 4 and 8) dwarf in-burst gaps.
        assert!(a[4] - a[3] >= 100_000);
        assert!(a[8] - a[7] >= 100_000);
        assert!(a[3] - a[0] < 1_000);
    }

    #[test]
    fn diurnal_ramps_monotonically() {
        let p = ArrivalProcess::Diurnal {
            start_gap: 1_000,
            end_gap: 100,
        };
        let a = p.schedule(0, 0, 100, 1).expect("schedule");
        let first_gap = a[1] - a[0];
        let last_gap = a[99] - a[98];
        assert!(first_gap > last_gap, "{first_gap} should exceed {last_gap}");
        assert!(last_gap >= 100);
        // The reverse ramp works too.
        let up = ArrivalProcess::Diurnal {
            start_gap: 100,
            end_gap: 1_000,
        };
        let b = up.schedule(0, 0, 100, 1).expect("schedule");
        assert!(b[99] - b[98] > b[1] - b[0]);
    }

    #[test]
    fn idents_are_unique_per_configuration() {
        let ids: Vec<String> = [
            ArrivalProcess::ClosedLoop,
            ArrivalProcess::Poisson { mean_gap: 100 },
            ArrivalProcess::Poisson { mean_gap: 200 },
            ArrivalProcess::Bursty {
                mean_gap: 100,
                burst: 4,
                idle_gap: 50,
            },
            ArrivalProcess::Bursty {
                mean_gap: 100,
                burst: 5,
                idle_gap: 50,
            },
            ArrivalProcess::Diurnal {
                start_gap: 1,
                end_gap: 2,
            },
        ]
        .iter()
        .map(ArrivalProcess::ident)
        .collect();
        let unique: std::collections::BTreeSet<&String> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len());
    }

    #[test]
    fn parse_round_trips_every_ident() {
        for p in [
            ArrivalProcess::ClosedLoop,
            ArrivalProcess::Poisson { mean_gap: 500 },
            ArrivalProcess::Bursty {
                mean_gap: 100,
                burst: 8,
                idle_gap: 5_000,
            },
            ArrivalProcess::Diurnal {
                start_gap: 2_000,
                end_gap: 100,
            },
            ArrivalProcess::Diurnal {
                start_gap: 0,
                end_gap: 0,
            },
        ] {
            let ident = p.ident();
            assert_eq!(
                ArrivalProcess::parse(&ident),
                Some(p),
                "ident {ident} must parse back"
            );
        }
    }

    #[test]
    fn parse_rejects_malformed_idents() {
        for bad in [
            "",
            "close",
            "closedx",
            "poisson",
            "poisson-5",
            "poisson5x",
            "bursty100",
            "bursty100x8",
            "burstyx8i5",
            "diurnal100",
            "diurnal-100-200",
            "diurnal100-",
            "uniform100",
        ] {
            assert_eq!(ArrivalProcess::parse(bad), None, "{bad:?} must not parse");
        }
    }
}
