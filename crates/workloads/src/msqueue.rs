//! Michael-Scott queue: the memento-style lock-free queue evaluation
//! workload, run as a trace generator.

use silo_sim::Transaction;
use silo_types::{PhysAddr, Xoshiro256, WORD_BYTES};

use crate::heap::{PmHeap, TxRecorder};
use crate::registry::{core_base, CORE_REGION_BYTES};
use crate::Workload;

/// The Michael-Scott two-lock-free queue shape from the memento evaluation
/// suite, replayed as a persistent-memory trace: a permanent dummy node,
/// `head` pointing at the dummy, `tail` at the last node. Unlike
/// [`QueueWorkload`](crate::QueueWorkload) (which pairs an enqueue and a
/// dequeue in every transaction and keeps a size counter), each measured
/// transaction here is a *single* randomly chosen operation — a 50/50
/// enqueue/dequeue mix — so write-set sizes vary per transaction and the
/// queue length random-walks, the traffic pattern of a producer/consumer
/// service rather than a fixed pipeline.
#[derive(Clone, Debug)]
pub struct MsQueueWorkload {
    /// Elements enqueued during setup, so early dequeues find work.
    pub setup_elements: usize,
    /// Percent of measured operations that enqueue (the rest dequeue).
    pub enqueue_percent: u64,
}

impl Default for MsQueueWorkload {
    fn default() -> Self {
        MsQueueWorkload {
            setup_elements: 64,
            enqueue_percent: 50,
        }
    }
}

/// Node: next pointer + 7 payload words (64 B, one cache line).
const NODE_WORDS: usize = 8;

struct MsQueue {
    /// PM word holding the pointer to the dummy node.
    head_ptr: PhysAddr,
    /// PM word holding the pointer to the last node.
    tail_ptr: PhysAddr,
}

impl MsQueue {
    /// Allocates the permanent dummy node and points head and tail at it.
    fn init(
        rec: &mut TxRecorder,
        heap: &mut PmHeap,
        head_ptr: PhysAddr,
        tail_ptr: PhysAddr,
    ) -> Self {
        let dummy = heap.alloc_aligned((NODE_WORDS * WORD_BYTES) as u64, 64);
        rec.write_u64(dummy, 0); // dummy.next = null
        rec.write_u64(head_ptr, dummy.as_u64());
        rec.write_u64(tail_ptr, dummy.as_u64());
        MsQueue { head_ptr, tail_ptr }
    }

    fn enqueue(&self, rec: &mut TxRecorder, heap: &mut PmHeap, value: u64) {
        let node = heap.alloc_aligned((NODE_WORDS * WORD_BYTES) as u64, 64);
        rec.write_u64(node, 0); // node.next = null
        for w in 1..NODE_WORDS {
            rec.write_u64(
                node.add((w * WORD_BYTES) as u64),
                value.wrapping_add(w as u64),
            );
        }
        // MS protocol: link tail.next to the new node, then swing tail.
        let tail = rec.read_u64(self.tail_ptr);
        rec.write_u64(PhysAddr::new(tail), node.as_u64());
        rec.write_u64(self.tail_ptr, node.as_u64());
    }

    fn dequeue(&self, rec: &mut TxRecorder) -> Option<u64> {
        // The dummy's successor holds the front value; dequeuing swings
        // head to it, making it the new dummy (the MS discipline — the
        // dequeued node's payload line is read, not freed).
        let dummy = rec.read_u64(self.head_ptr);
        let front = rec.read_u64(PhysAddr::new(dummy));
        if front == 0 {
            return None; // empty: dummy is also the tail
        }
        let payload = rec.read_u64(PhysAddr::new(front + WORD_BYTES as u64));
        rec.write_u64(self.head_ptr, front);
        Some(payload)
    }
}

impl Workload for MsQueueWorkload {
    fn name(&self) -> &'static str {
        "MSQueue"
    }

    fn trace_ident(&self) -> String {
        format!(
            "MSQueue/setup={},enq={}",
            self.setup_elements, self.enqueue_percent
        )
    }

    fn raw_streams(&self, cores: usize, txs_per_core: usize, seed: u64) -> Vec<Vec<Transaction>> {
        (0..cores)
            .map(|core| {
                let base = core_base(core);
                let mut rng = Xoshiro256::seeded(seed ^ (core as u64).wrapping_mul(0x5c1e));
                let mut rec = TxRecorder::new();
                let mut heap = PmHeap::new(base + 64, CORE_REGION_BYTES - 64);
                let mut txs = Vec::with_capacity(txs_per_core + 1);

                let q = MsQueue::init(
                    &mut rec,
                    &mut heap,
                    PhysAddr::new(base),
                    PhysAddr::new(base + WORD_BYTES as u64),
                );
                for _ in 0..self.setup_elements {
                    q.enqueue(&mut rec, &mut heap, rng.next_u64());
                }
                txs.push(rec.finish_tx());

                for _ in 0..txs_per_core {
                    if rng.percent(self.enqueue_percent) {
                        q.enqueue(&mut rec, &mut heap, rng.next_u64());
                    } else if q.dequeue(&mut rec).is_none() {
                        // Ran dry: produce instead, keeping every
                        // transaction a real mutation.
                        q.enqueue(&mut rec, &mut heap, rng.next_u64());
                    }
                    rec.compute(8);
                    txs.push(rec.finish_tx());
                }
                txs
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_through_the_dummy() {
        let mut rec = TxRecorder::new();
        let mut heap = PmHeap::new(1024, 1 << 20);
        let q = MsQueue::init(&mut rec, &mut heap, PhysAddr::new(0), PhysAddr::new(8));
        assert_eq!(q.dequeue(&mut rec), None);
        for v in [10u64, 20, 30] {
            q.enqueue(&mut rec, &mut heap, v);
        }
        assert_eq!(q.dequeue(&mut rec), Some(11)); // payload word = v + 1
        assert_eq!(q.dequeue(&mut rec), Some(21));
        assert_eq!(q.dequeue(&mut rec), Some(31));
        assert_eq!(q.dequeue(&mut rec), None);
        // Head and tail converge on the last dequeued node (new dummy).
        assert_eq!(
            rec.peek_u64(PhysAddr::new(0)),
            rec.peek_u64(PhysAddr::new(8))
        );
    }

    #[test]
    fn mixed_ops_have_varied_write_sets() {
        let streams = MsQueueWorkload::default().raw_streams(1, 200, 7);
        let sizes: std::collections::BTreeSet<usize> = streams[0][1..]
            .iter()
            .map(|tx| tx.write_set_words())
            .collect();
        // Enqueues write a whole node (+ links); dequeues write one pointer.
        assert!(sizes.len() >= 2, "write-set sizes should vary: {sizes:?}");
        assert!(
            sizes.contains(&1),
            "dequeue writes exactly the head pointer"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            MsQueueWorkload::default().raw_streams(2, 50, 3),
            MsQueueWorkload::default().raw_streams(2, 50, 3)
        );
        assert_ne!(
            MsQueueWorkload::default().raw_streams(2, 50, 3),
            MsQueueWorkload::default().raw_streams(2, 50, 4)
        );
    }
}
