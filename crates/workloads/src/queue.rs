//! Queue: enqueue/dequeue on a persistent linked queue (paper Table III).

use silo_sim::Transaction;
use silo_types::{PhysAddr, Xoshiro256, WORD_BYTES};

use crate::heap::{PmHeap, TxRecorder};
use crate::registry::{core_base, CORE_REGION_BYTES};
use crate::Workload;

/// The queue micro-benchmark: each transaction enqueues one 64 B element
/// and (once warm) dequeues one.
///
/// Every enqueue allocates a fresh node, so consecutive transactions touch
/// different cachelines — the low-spatial-locality behaviour the paper
/// calls out when explaining why LAD struggles on `Array` and `Queue`
/// (§VI-C: "these workloads exhibit low spatial locality, causing many
/// dirty cachelines per transaction").
#[derive(Clone, Debug)]
pub struct QueueWorkload {
    /// Elements enqueued during setup (so dequeues have work immediately).
    pub setup_elements: usize,
}

impl Default for QueueWorkload {
    fn default() -> Self {
        QueueWorkload { setup_elements: 32 }
    }
}

/// Node: 8 words = next pointer + 7 payload words (64 B element).
const NODE_WORDS: usize = 8;

struct Queue {
    /// PM words holding head and tail pointers.
    head_ptr: PhysAddr,
    tail_ptr: PhysAddr,
    /// PM word holding the element count; an enqueue+dequeue transaction
    /// writes it twice (+1 then -1), which Silo's log merging collapses to
    /// a no-op entry.
    size_ptr: PhysAddr,
}

impl Queue {
    fn enqueue(&self, rec: &mut TxRecorder, heap: &mut PmHeap, value: u64) {
        let node = heap.alloc_aligned((NODE_WORDS * WORD_BYTES) as u64, 64);
        rec.write_u64(node, 0); // next = null
        for w in 1..NODE_WORDS {
            rec.write_u64(
                node.add((w * WORD_BYTES) as u64),
                value.wrapping_add(w as u64),
            );
        }
        let tail = rec.read_u64(self.tail_ptr);
        if tail == 0 {
            rec.write_u64(self.head_ptr, node.as_u64());
        } else {
            rec.write_u64(PhysAddr::new(tail), node.as_u64()); // tail->next
        }
        rec.write_u64(self.tail_ptr, node.as_u64());
        let size = rec.read_u64(self.size_ptr);
        rec.write_u64(self.size_ptr, size + 1);
    }

    fn dequeue(&self, rec: &mut TxRecorder) -> Option<u64> {
        let head = rec.read_u64(self.head_ptr);
        if head == 0 {
            return None;
        }
        let next = rec.read_u64(PhysAddr::new(head));
        let payload = rec.read_u64(PhysAddr::new(head + WORD_BYTES as u64));
        rec.write_u64(self.head_ptr, next);
        if next == 0 {
            rec.write_u64(self.tail_ptr, 0);
        }
        let size = rec.read_u64(self.size_ptr);
        rec.write_u64(self.size_ptr, size - 1);
        Some(payload)
    }
}

impl Workload for QueueWorkload {
    fn name(&self) -> &'static str {
        "Queue"
    }

    fn trace_ident(&self) -> String {
        format!("Queue/setup={}", self.setup_elements)
    }

    fn raw_streams(&self, cores: usize, txs_per_core: usize, seed: u64) -> Vec<Vec<Transaction>> {
        (0..cores)
            .map(|core| {
                let base = core_base(core);
                let mut rng = Xoshiro256::seeded(seed ^ (core as u64).wrapping_mul(0xd1b5));
                let mut rec = TxRecorder::new();
                let mut heap = PmHeap::new(base + 64, CORE_REGION_BYTES - 64);
                let q = Queue {
                    head_ptr: PhysAddr::new(base),
                    tail_ptr: PhysAddr::new(base + WORD_BYTES as u64),
                    size_ptr: PhysAddr::new(base + 2 * WORD_BYTES as u64),
                };
                let mut txs = Vec::with_capacity(txs_per_core + 1);

                for _ in 0..self.setup_elements {
                    q.enqueue(&mut rec, &mut heap, rng.next_u64());
                }
                txs.push(rec.finish_tx());

                for _ in 0..txs_per_core {
                    q.enqueue(&mut rec, &mut heap, rng.next_u64());
                    let _ = q.dequeue(&mut rec);
                    rec.compute(10);
                    txs.push(rec.finish_tx());
                }
                txs
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut rec = TxRecorder::new();
        let mut heap = PmHeap::new(1024, 1 << 20);
        let q = Queue {
            head_ptr: PhysAddr::new(0),
            tail_ptr: PhysAddr::new(8),
            size_ptr: PhysAddr::new(16),
        };
        for v in [10u64, 20, 30] {
            q.enqueue(&mut rec, &mut heap, v);
        }
        assert_eq!(q.dequeue(&mut rec), Some(11)); // payload word = v + 1
        assert_eq!(q.dequeue(&mut rec), Some(21));
        assert_eq!(q.dequeue(&mut rec), Some(31));
        assert_eq!(q.dequeue(&mut rec), None);
        // Empty again: head and tail both null.
        assert_eq!(rec.peek_u64(PhysAddr::new(0)), 0);
        assert_eq!(rec.peek_u64(PhysAddr::new(8)), 0);
    }

    #[test]
    fn transactions_touch_distinct_lines() {
        let streams = QueueWorkload::default().raw_streams(1, 10, 4);
        let lines_per_tx: Vec<std::collections::BTreeSet<u64>> = streams[0][1..]
            .iter()
            .map(|tx| {
                tx.final_writes()
                    .iter()
                    .map(|(a, _)| a.line_index())
                    .collect()
            })
            .collect();
        // Consecutive transactions allocate fresh nodes: their node lines
        // differ.
        for pair in lines_per_tx.windows(2) {
            assert_ne!(pair[0], pair[1]);
        }
    }

    #[test]
    fn write_sets_are_small() {
        let streams = QueueWorkload::default().raw_streams(1, 20, 5);
        for tx in &streams[0][1..] {
            let w = tx.write_set_words();
            assert!((10..=13).contains(&w), "unexpected write set {w}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            QueueWorkload::default().raw_streams(1, 10, 1),
            QueueWorkload::default().raw_streams(1, 10, 1)
        );
    }
}
