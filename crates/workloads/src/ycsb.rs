//! YCSB: key-value workload, 20 % reads / 80 % updates (paper Table III).

use silo_sim::Transaction;
use silo_types::{PhysAddr, Xoshiro256, WORD_BYTES};

use crate::heap::TxRecorder;
use crate::registry::core_base;
use crate::Workload;

/// Words per value (64 B items).
const VALUE_WORDS: usize = 8;

/// The YCSB macro-benchmark configured like MorLog (§VI-A): each
/// transaction is one operation on a key-value store, 20 % reads and 80 %
/// updates of whole 64 B values. Key popularity is skewed (an 80/20
/// hot-set approximation of YCSB's zipfian), giving the temporal locality
/// that lets Silo merge repeated updates on chip ("the results on TPCC and
/// YCSB keep stable due to their good locality", §VI-F).
#[derive(Clone, Debug)]
pub struct YcsbWorkload {
    /// Keys per core.
    pub keys: usize,
    /// Percent of operations that are reads (paper: 20).
    pub read_percent: u64,
}

impl Default for YcsbWorkload {
    fn default() -> Self {
        YcsbWorkload {
            keys: 4096,
            read_percent: 20,
        }
    }
}

impl YcsbWorkload {
    fn value_addr(base: u64, key: u64) -> PhysAddr {
        PhysAddr::new(base + key * (VALUE_WORDS * WORD_BYTES) as u64)
    }

    fn pick_key(&self, rng: &mut Xoshiro256) -> u64 {
        // 80/20 hot-set zipf approximation.
        let n = self.keys as u64;
        if rng.percent(80) {
            rng.below((n / 5).max(1))
        } else {
            n / 5 + rng.below(n - n / 5)
        }
    }
}

impl Workload for YcsbWorkload {
    fn name(&self) -> &'static str {
        "YCSB"
    }

    fn trace_ident(&self) -> String {
        format!("YCSB/keys={},read={}", self.keys, self.read_percent)
    }

    fn raw_streams(&self, cores: usize, txs_per_core: usize, seed: u64) -> Vec<Vec<Transaction>> {
        (0..cores)
            .map(|core| {
                let base = core_base(core);
                let mut rng = Xoshiro256::seeded(seed ^ (core as u64).wrapping_mul(0xabcd));
                let mut rec = TxRecorder::new();
                let mut txs = Vec::with_capacity(txs_per_core + 1);

                // Setup: stamp every key's version word (whole-value loads
                // would swamp the measured phase; updates rewrite the other
                // fields anyway).
                for key in 0..self.keys as u64 {
                    rec.write_u64(Self::value_addr(base, key), key);
                }
                txs.push(rec.finish_tx());

                for _ in 0..txs_per_core {
                    let key = self.pick_key(&mut rng);
                    let v = Self::value_addr(base, key);
                    rec.compute(15); // index lookup
                    if rng.percent(self.read_percent) {
                        for w in 0..VALUE_WORDS {
                            rec.read_u64(v.add((w * WORD_BYTES) as u64));
                        }
                    } else {
                        // Whole-value update: a fresh version stamp plus the
                        // dependent field words. Half the fields keep their
                        // previous contents (structured records rarely change
                        // every field), exercising log ignorance.
                        let version = rec.read_u64(v).wrapping_add(1);
                        rec.write_u64(v, version);
                        let mut checksum = version;
                        for w in 1..VALUE_WORDS {
                            let addr = v.add((w * WORD_BYTES) as u64);
                            let value = if w % 2 == 0 {
                                rec.peek_u64(addr) // unchanged field rewritten
                            } else {
                                version ^ (w as u64) << 32
                            };
                            rec.write_u64(addr, value);
                            checksum ^= value.rotate_left(w as u32);
                        }
                        // Record checksum written last over its own slot
                        // (the last field word): a same-word rewrite that
                        // on-chip merging absorbs.
                        rec.write_u64(v.add(((VALUE_WORDS - 1) * WORD_BYTES) as u64), checksum);
                    }
                    txs.push(rec.finish_tx());
                }
                txs
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_update_mix_is_20_80() {
        let streams = YcsbWorkload::default().raw_streams(1, 2000, 31);
        let reads = streams[0][1..].iter().filter(|t| t.is_read_only()).count();
        let frac = reads as f64 / 2000.0;
        assert!((0.15..0.25).contains(&frac), "read fraction {frac}");
    }

    #[test]
    fn updates_write_whole_values() {
        let streams = YcsbWorkload::default().raw_streams(1, 200, 32);
        for tx in streams[0][1..].iter().filter(|t| !t.is_read_only()) {
            assert_eq!(tx.write_set_words(), VALUE_WORDS);
            assert_eq!(tx.write_set_bytes(), 64);
        }
    }

    #[test]
    fn hot_keys_dominate() {
        let w = YcsbWorkload::default();
        let mut rng = Xoshiro256::seeded(1);
        let hot = (0..10_000)
            .filter(|_| w.pick_key(&mut rng) < w.keys as u64 / 5)
            .count();
        assert!(hot > 7_000, "hot-set hits: {hot}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            YcsbWorkload::default().raw_streams(1, 10, 4),
            YcsbWorkload::default().raw_streams(1, 10, 4)
        );
    }
}
