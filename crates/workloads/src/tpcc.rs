//! TPCC: the TPC-C OLTP workload from Whisper (paper Table III).

use silo_sim::Transaction;
use silo_types::{PhysAddr, Xoshiro256, WORD_BYTES};

use crate::heap::{PmHeap, TxRecorder};
use crate::registry::{core_base, CORE_REGION_BYTES};
use crate::Workload;

/// Which TPC-C transaction types to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TpccMix {
    /// Only New-Order, the configuration of Fig 11/12 ("we run the
    /// New-Order transaction from TPCC", §VI-A, following MorLog).
    NewOrderOnly,
    /// All five types with the standard TPC-C mix (45 % New-Order, 43 %
    /// Payment, 4 % Order-Status, 4 % Delivery, 4 % Stock-Level) — used
    /// for the log-buffer capacity study (§VI-D: "we run all the five
    /// transaction types in TPCC").
    AllFive,
}

/// Simplified TPC-C over flat PM tables: a district record, a stock table,
/// a customer table, and append-only order / order-line / new-order /
/// history tables.
#[derive(Clone, Debug)]
pub struct TpccWorkload {
    /// Transaction-type mix.
    pub mix: TpccMix,
    /// Items in the per-core stock table.
    pub items: usize,
    /// Customers per core.
    pub customers: usize,
}

impl Default for TpccWorkload {
    fn default() -> Self {
        TpccWorkload {
            mix: TpccMix::NewOrderOnly,
            items: 4096,
            customers: 1024,
        }
    }
}

impl TpccWorkload {
    /// The five-type mix variant.
    pub fn all_types() -> Self {
        TpccWorkload {
            mix: TpccMix::AllFive,
            ..TpccWorkload::default()
        }
    }
}

/// Words per stock record: quantity, ytd, order_cnt + 5 info words.
const STOCK_WORDS: u64 = 8;
/// Words per customer record: balance, ytd_payment, payment_cnt,
/// delivery_cnt + 12 info words (128 B).
const CUSTOMER_WORDS: u64 = 16;
/// Words per order-line record.
const ORDER_LINE_WORDS: usize = 5;
/// Words per order header.
const ORDER_WORDS: usize = 8;

struct Tpcc {
    district: PhysAddr, // next_o_id, ytd, 6 info words
    stock: PhysAddr,
    customer: PhysAddr,
    items: u64,
    customers: u64,
}

impl Tpcc {
    fn stock_addr(&self, item: u64) -> PhysAddr {
        self.stock.add(item * STOCK_WORDS * WORD_BYTES as u64)
    }

    fn customer_addr(&self, c: u64) -> PhysAddr {
        self.customer.add(c * CUSTOMER_WORDS * WORD_BYTES as u64)
    }

    /// New-Order: bump the district's next_o_id, write the order header,
    /// the new-order record, `ol_cnt` order lines, and update each line's
    /// stock record.
    fn new_order(&self, rec: &mut TxRecorder, heap: &mut PmHeap, rng: &mut Xoshiro256) {
        rec.compute(60);
        let o_id = rec.read_u64(self.district);
        rec.write_u64(self.district, o_id + 1);
        let ol_cnt = rng.range(2, 7);
        let order = heap.alloc_aligned((ORDER_WORDS * WORD_BYTES) as u64, 64);
        let c_id = rng.below(self.customers);
        // Crash-consistency idiom: the record's status word is written
        // twice — invalid while the record is being built, valid at the
        // end. Hardware log merging collapses the pair.
        let status = order.add(((ORDER_WORDS - 1) * WORD_BYTES) as u64);
        rec.write_u64(status, 0);
        for w in 0..ORDER_WORDS - 1 {
            let v = match w {
                0 => o_id,
                1 => c_id,
                2 => ol_cnt,
                _ => 0x4f52_4445_5200 + w as u64, // entry-date/carrier stamps
            };
            rec.write_u64(order.add((w * WORD_BYTES) as u64), v);
        }
        // New-order record (o_id, c_id, flags).
        let no = heap.alloc((3 * WORD_BYTES) as u64);
        rec.write_u64(no, o_id);
        rec.write_u64(no.add(8), c_id);
        rec.write_u64(no.add(16), 1);
        rec.write_u64(status, 1); // order record becomes valid last
        for _ in 0..ol_cnt {
            let item = rng.below(self.items);
            let qty = rng.range(1, 11);
            let ol = heap.alloc((ORDER_LINE_WORDS * WORD_BYTES) as u64);
            let ol_status = ol.add(((ORDER_LINE_WORDS - 1) * WORD_BYTES) as u64);
            rec.write_u64(ol_status, 0); // building
            for w in 0..ORDER_LINE_WORDS - 1 {
                let v = match w {
                    0 => o_id,
                    1 => item,
                    2 => qty,
                    3 => qty * 100, // amount
                    _ => 0x4f4c_0000 + w as u64,
                };
                rec.write_u64(ol.add((w * WORD_BYTES) as u64), v);
            }
            rec.write_u64(ol_status, 1); // valid
                                         // Stock update: quantity and ytd.
            let s = self.stock_addr(item);
            let sq = rec.read_u64(s);
            let new_q = if sq >= qty + 10 {
                sq - qty
            } else {
                sq + 91 - qty
            };
            rec.write_u64(s, new_q);
            let ytd = rec.read_u64(s.add(8));
            rec.write_u64(s.add(8), ytd + qty);
        }
    }

    /// Payment: update district ytd, customer balance / ytd / count, and
    /// append a history record.
    fn payment(&self, rec: &mut TxRecorder, heap: &mut PmHeap, rng: &mut Xoshiro256) {
        rec.compute(40);
        let amount = rng.range(1, 5000);
        let ytd = rec.read_u64(self.district.add(8));
        rec.write_u64(self.district.add(8), ytd + amount);
        let c = self.customer_addr(rng.below(self.customers));
        let bal = rec.read_u64(c);
        rec.write_u64(c, bal.wrapping_sub(amount));
        let cytd = rec.read_u64(c.add(8));
        rec.write_u64(c.add(8), cytd + amount);
        let cnt = rec.read_u64(c.add(16));
        rec.write_u64(c.add(16), cnt + 1);
        let h = heap.alloc((4 * WORD_BYTES) as u64);
        for w in 0..4 {
            rec.write_u64(h.add(w * 8), amount + w);
        }
    }

    /// Order-Status: read-only (customer + last order).
    fn order_status(&self, rec: &mut TxRecorder, rng: &mut Xoshiro256) {
        rec.compute(30);
        let c = self.customer_addr(rng.below(self.customers));
        for w in 0..4 {
            rec.read_u64(c.add(w * 8));
        }
    }

    /// Delivery: mark a batch of orders delivered, credit the customers.
    fn delivery(&self, rec: &mut TxRecorder, rng: &mut Xoshiro256) {
        rec.compute(50);
        for _ in 0..4 {
            let c = self.customer_addr(rng.below(self.customers));
            let bal = rec.read_u64(c);
            rec.write_u64(c, bal.wrapping_add(100));
            let dcnt = rec.read_u64(c.add(24));
            rec.write_u64(c.add(24), dcnt + 1);
        }
    }

    /// Stock-Level: read-only scan of recent stock records.
    fn stock_level(&self, rec: &mut TxRecorder, rng: &mut Xoshiro256) {
        rec.compute(40);
        for _ in 0..12 {
            let s = self.stock_addr(rng.below(self.items));
            rec.read_u64(s);
        }
    }
}

impl Workload for TpccWorkload {
    fn name(&self) -> &'static str {
        "TPCC"
    }

    fn trace_ident(&self) -> String {
        // Both mixes display as "TPCC"; the mix must be part of the cache
        // identity or tpcc-mix traces would alias New-Order-only ones.
        format!(
            "TPCC/mix={:?},items={},customers={}",
            self.mix, self.items, self.customers
        )
    }

    fn raw_streams(&self, cores: usize, txs_per_core: usize, seed: u64) -> Vec<Vec<Transaction>> {
        (0..cores)
            .map(|core| {
                let base = core_base(core);
                let mut rng = Xoshiro256::seeded(seed ^ (core as u64).wrapping_mul(0xf00d));
                let mut rec = TxRecorder::new();
                let tables =
                    (8 + self.items as u64 * STOCK_WORDS + self.customers as u64 * CUSTOMER_WORDS)
                        * WORD_BYTES as u64;
                let mut heap = PmHeap::new(base + tables, CORE_REGION_BYTES - tables);
                let t = Tpcc {
                    district: PhysAddr::new(base),
                    stock: PhysAddr::new(base + 8 * WORD_BYTES as u64),
                    customer: PhysAddr::new(
                        base + (8 + self.items as u64 * STOCK_WORDS) * WORD_BYTES as u64,
                    ),
                    items: self.items as u64,
                    customers: self.customers as u64,
                };
                let mut txs = Vec::with_capacity(txs_per_core + 1);

                // Setup: district header and stock quantities.
                rec.write_u64(t.district, 1); // next_o_id
                for item in 0..self.items as u64 {
                    rec.write_u64(t.stock_addr(item), 50 + item % 41);
                }
                txs.push(rec.finish_tx());

                for _ in 0..txs_per_core {
                    match self.mix {
                        TpccMix::NewOrderOnly => t.new_order(&mut rec, &mut heap, &mut rng),
                        TpccMix::AllFive => {
                            let dice = rng.below(100);
                            if dice < 45 {
                                t.new_order(&mut rec, &mut heap, &mut rng)
                            } else if dice < 88 {
                                t.payment(&mut rec, &mut heap, &mut rng)
                            } else if dice < 92 {
                                t.order_status(&mut rec, &mut rng)
                            } else if dice < 96 {
                                t.delivery(&mut rec, &mut rng)
                            } else {
                                t.stock_level(&mut rec, &mut rng)
                            }
                        }
                    }
                    txs.push(rec.finish_tx());
                }
                txs
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_order_write_sets_match_fig4_scale() {
        let streams = TpccWorkload::default().raw_streams(1, 50, 21);
        for tx in &streams[0][1..] {
            let bytes = tx.write_set_bytes();
            // 2..6 order lines: district 1 + order 8 + new-order 3 +
            // lines*(5+2) words → 26..54 words → ~200..450 B (Fig 13's
            // TPCC generates ~37 logs per transaction).
            assert!((180..=480).contains(&bytes), "write set {bytes} B");
        }
    }

    #[test]
    fn district_counter_is_monotonic() {
        let streams = TpccWorkload::default().raw_streams(1, 30, 22);
        let mut rec = TxRecorder::new();
        for tx in &streams[0] {
            for op in tx.ops() {
                if let silo_sim::Op::Write(a, v) = op {
                    rec.write_u64(*a, v.as_u64());
                }
            }
        }
        // 30 New-Order transactions after setup (which wrote 1).
        assert_eq!(rec.peek_u64(PhysAddr::new(core_base(0))), 31);
    }

    #[test]
    fn all_five_mix_includes_read_only_types() {
        let streams = TpccWorkload::all_types().raw_streams(1, 400, 23);
        let read_only = streams[0][1..]
            .iter()
            .filter(|tx| tx.is_read_only())
            .count();
        assert!(
            read_only > 0,
            "order-status / stock-level appear in the mix"
        );
        // And the write sizes vary across types.
        let sizes: std::collections::BTreeSet<usize> = streams[0][1..]
            .iter()
            .map(|tx| tx.write_set_words())
            .collect();
        assert!(sizes.len() > 3, "heterogeneous transaction types");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            TpccWorkload::default().raw_streams(1, 10, 3),
            TpccWorkload::default().raw_streams(1, 10, 3)
        );
    }
}
