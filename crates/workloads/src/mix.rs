//! Zipfian multi-tenant key-value mix: thousands of simulated clients with
//! skewed popularity sharing each core.

use silo_sim::Transaction;
use silo_types::{PhysAddr, Xoshiro256, WORD_BYTES};

use crate::heap::TxRecorder;
use crate::registry::core_base;
use crate::Workload;

/// Words per record (64 B, one cache line).
const RECORD_WORDS: usize = 8;

/// The millions-of-users traffic shape scaled to a core: `clients`
/// independent tenants each own a few records, client popularity follows a
/// nested 80/20 zipf approximation (a handful of hot tenants dominate), and
/// each transaction serves one client request — a YCSB-skew read/update of
/// one record, or occasionally a two-record transfer within the client.
///
/// Compared to [`YcsbWorkload`](crate::YcsbWorkload) (one flat key space
/// per core), the tenant structure concentrates load *and* spreads the cold
/// tail across a much larger footprint, so cache hit rates, log merging,
/// and on-PM-buffer coalescing all see the hot-tenant/cold-tenant split a
/// shared service actually produces. Designed to be wrapped in an
/// [`OpenLoop`](crate::OpenLoop) arrival process for latency studies; runs
/// closed-loop like any other workload otherwise.
#[derive(Clone, Debug)]
pub struct MixWorkload {
    /// Simulated clients (tenants) per core.
    pub clients: usize,
    /// Records owned by each client.
    pub keys_per_client: usize,
    /// Percent of requests that only read (paper-YCSB default: 20).
    pub read_percent: u64,
    /// Percent of update requests that touch two records (transfer).
    pub transfer_percent: u64,
}

impl Default for MixWorkload {
    fn default() -> Self {
        MixWorkload {
            clients: 64,
            keys_per_client: 4,
            read_percent: 20,
            transfer_percent: 10,
        }
    }
}

impl MixWorkload {
    /// The multi-tenant configuration: thousands of clients per core, the
    /// scale at which the hot set no longer fits the cache hierarchy.
    pub fn multi_tenant() -> Self {
        MixWorkload {
            clients: 2048,
            ..MixWorkload::default()
        }
    }

    fn record_addr(&self, base: u64, client: u64, key: u64) -> PhysAddr {
        let idx = client * self.keys_per_client as u64 + key;
        PhysAddr::new(base + idx * (RECORD_WORDS * WORD_BYTES) as u64)
    }

    /// Nested 80/20 hot-set pick over `0..n`: 80 % of picks land in the top
    /// fifth, and within that fifth the rule recurses (up to three levels),
    /// approximating a zipfian tenant-popularity curve with integer
    /// arithmetic only.
    fn zipf_pick(rng: &mut Xoshiro256, n: u64) -> u64 {
        let mut lo = 0u64;
        let mut len = n;
        for _ in 0..3 {
            if len < 5 {
                break;
            }
            let hot = len / 5;
            if rng.percent(80) {
                len = hot;
            } else {
                lo += hot;
                len -= hot;
                break;
            }
        }
        lo + rng.below(len.max(1))
    }

    fn update(&self, rec: &mut TxRecorder, addr: PhysAddr) {
        let version = rec.read_u64(addr).wrapping_add(1);
        rec.write_u64(addr, version);
        for w in 1..RECORD_WORDS {
            let field = addr.add((w * WORD_BYTES) as u64);
            // Half the fields keep their contents (rewritten unchanged,
            // exercising log ignorance), half take version-derived values.
            let value = if w % 2 == 0 {
                rec.peek_u64(field)
            } else {
                version ^ (w as u64) << 32
            };
            rec.write_u64(field, value);
        }
    }
}

impl Workload for MixWorkload {
    fn name(&self) -> &'static str {
        "ZipfMix"
    }

    fn trace_ident(&self) -> String {
        format!(
            "ZipfMix/clients={},keys={},read={},transfer={}",
            self.clients, self.keys_per_client, self.read_percent, self.transfer_percent
        )
    }

    fn raw_streams(&self, cores: usize, txs_per_core: usize, seed: u64) -> Vec<Vec<Transaction>> {
        (0..cores)
            .map(|core| {
                let base = core_base(core);
                let mut rng = Xoshiro256::seeded(seed ^ (core as u64).wrapping_mul(0x21f5));
                let mut rec = TxRecorder::new();
                let mut txs = Vec::with_capacity(txs_per_core + 1);

                // Setup: stamp every record's version word.
                for client in 0..self.clients as u64 {
                    for key in 0..self.keys_per_client as u64 {
                        rec.write_u64(self.record_addr(base, client, key), client ^ key);
                    }
                }
                txs.push(rec.finish_tx());

                for _ in 0..txs_per_core {
                    let client = Self::zipf_pick(&mut rng, self.clients as u64);
                    let key = rng.below(self.keys_per_client as u64);
                    let addr = self.record_addr(base, client, key);
                    rec.compute(12); // tenant auth + index lookup
                    if rng.percent(self.read_percent) {
                        for w in 0..RECORD_WORDS {
                            rec.read_u64(addr.add((w * WORD_BYTES) as u64));
                        }
                    } else if rng.percent(self.transfer_percent) && self.keys_per_client > 1 {
                        // Transfer: debit one record, credit a sibling —
                        // the two-line atomicity case crash recovery must
                        // never tear.
                        let other = (key + 1) % self.keys_per_client as u64;
                        let dst = self.record_addr(base, client, other);
                        let a = rec.read_u64(addr);
                        let b = rec.read_u64(dst);
                        rec.write_u64(addr, a.wrapping_sub(1));
                        rec.write_u64(dst, b.wrapping_add(1));
                    } else {
                        self.update(&mut rec, addr);
                    }
                    txs.push(rec.finish_tx());
                }
                txs
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_clients_dominate() {
        let mut rng = Xoshiro256::seeded(1);
        let n = 2048u64;
        let hot = (0..10_000)
            .filter(|_| MixWorkload::zipf_pick(&mut rng, n) < n / 5)
            .count();
        assert!(hot > 7_000, "hot-fifth hits: {hot}");
        // The nested rule concentrates further inside the hot fifth.
        let mut rng = Xoshiro256::seeded(2);
        let very_hot = (0..10_000)
            .filter(|_| MixWorkload::zipf_pick(&mut rng, n) < n / 25)
            .count();
        assert!(very_hot > 5_000, "hot-25th hits: {very_hot}");
    }

    #[test]
    fn zipf_pick_stays_in_range() {
        let mut rng = Xoshiro256::seeded(3);
        for n in [1u64, 2, 4, 5, 100, 2048] {
            for _ in 0..500 {
                assert!(MixWorkload::zipf_pick(&mut rng, n) < n);
            }
        }
    }

    #[test]
    fn transactions_mix_reads_updates_and_transfers() {
        let streams = MixWorkload::default().raw_streams(1, 2000, 17);
        let measured = &streams[0][1..];
        let reads = measured.iter().filter(|t| t.is_read_only()).count();
        let transfers = measured.iter().filter(|t| t.write_set_words() == 2).count();
        let updates = measured
            .iter()
            .filter(|t| t.write_set_words() == RECORD_WORDS)
            .count();
        let frac = reads as f64 / measured.len() as f64;
        assert!((0.15..0.25).contains(&frac), "read fraction {frac}");
        assert!(transfers > 0, "transfers present");
        assert!(updates > transfers, "updates dominate writes");
    }

    #[test]
    fn multi_tenant_footprint_fits_the_core_region() {
        let w = MixWorkload::multi_tenant();
        assert_eq!(w.clients, 2048);
        let bytes = (w.clients * w.keys_per_client * RECORD_WORDS * WORD_BYTES) as u64;
        assert!(bytes <= crate::CORE_REGION_BYTES);
        // Distinct trace identity from the default configuration.
        assert_ne!(w.trace_ident(), MixWorkload::default().trace_ident());
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            MixWorkload::default().raw_streams(2, 50, 3),
            MixWorkload::default().raw_streams(2, 50, 3)
        );
    }
}
