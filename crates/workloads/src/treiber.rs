//! Treiber stack: the memento-style lock-free stack evaluation workload,
//! run as a trace generator.

use silo_sim::Transaction;
use silo_types::{PhysAddr, Xoshiro256, WORD_BYTES};

use crate::heap::{PmHeap, TxRecorder};
use crate::registry::{core_base, CORE_REGION_BYTES};
use crate::Workload;

/// A Treiber stack replayed as a persistent-memory trace: one `top`
/// pointer, push links a fresh node in front of it, pop swings it to the
/// popped node's successor. LIFO order means a push/pop-heavy phase churns
/// the *same* few node lines over and over — the inverse locality profile
/// of the queues, where the hot end permanently walks away from recently
/// written lines. That makes the stack the best case for on-chip log
/// merging and the worst case for schemes that pay per dirty-line.
#[derive(Clone, Debug)]
pub struct TreiberWorkload {
    /// Elements pushed during setup, so early pops find work.
    pub setup_elements: usize,
    /// Percent of measured operations that push (the rest pop).
    pub push_percent: u64,
}

impl Default for TreiberWorkload {
    fn default() -> Self {
        TreiberWorkload {
            setup_elements: 64,
            push_percent: 50,
        }
    }
}

/// Node: next pointer + 7 payload words (64 B, one cache line).
const NODE_WORDS: usize = 8;

struct Treiber {
    /// PM word holding the top-of-stack pointer (null = empty).
    top_ptr: PhysAddr,
}

impl Treiber {
    fn push(&self, rec: &mut TxRecorder, heap: &mut PmHeap, value: u64) {
        let node = heap.alloc_aligned((NODE_WORDS * WORD_BYTES) as u64, 64);
        let top = rec.read_u64(self.top_ptr);
        rec.write_u64(node, top); // node.next = old top
        for w in 1..NODE_WORDS {
            rec.write_u64(
                node.add((w * WORD_BYTES) as u64),
                value.wrapping_add(w as u64),
            );
        }
        rec.write_u64(self.top_ptr, node.as_u64());
    }

    fn pop(&self, rec: &mut TxRecorder) -> Option<u64> {
        let top = rec.read_u64(self.top_ptr);
        if top == 0 {
            return None;
        }
        let next = rec.read_u64(PhysAddr::new(top));
        let payload = rec.read_u64(PhysAddr::new(top + WORD_BYTES as u64));
        rec.write_u64(self.top_ptr, next);
        Some(payload)
    }
}

impl Workload for TreiberWorkload {
    fn name(&self) -> &'static str {
        "Treiber"
    }

    fn trace_ident(&self) -> String {
        format!(
            "Treiber/setup={},push={}",
            self.setup_elements, self.push_percent
        )
    }

    fn raw_streams(&self, cores: usize, txs_per_core: usize, seed: u64) -> Vec<Vec<Transaction>> {
        (0..cores)
            .map(|core| {
                let base = core_base(core);
                let mut rng = Xoshiro256::seeded(seed ^ (core as u64).wrapping_mul(0x7e1b));
                let mut rec = TxRecorder::new();
                let mut heap = PmHeap::new(base + 64, CORE_REGION_BYTES - 64);
                let stack = Treiber {
                    top_ptr: PhysAddr::new(base),
                };
                let mut txs = Vec::with_capacity(txs_per_core + 1);

                rec.write_u64(stack.top_ptr, 0);
                for _ in 0..self.setup_elements {
                    stack.push(&mut rec, &mut heap, rng.next_u64());
                }
                txs.push(rec.finish_tx());

                for _ in 0..txs_per_core {
                    // A pop on an empty stack falls back to a push so every
                    // transaction mutates persistent state.
                    if rng.percent(self.push_percent) || stack.pop(&mut rec).is_none() {
                        stack.push(&mut rec, &mut heap, rng.next_u64());
                    }
                    rec.compute(8);
                    txs.push(rec.finish_tx());
                }
                txs
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order_is_preserved() {
        let mut rec = TxRecorder::new();
        let mut heap = PmHeap::new(1024, 1 << 20);
        let stack = Treiber {
            top_ptr: PhysAddr::new(0),
        };
        rec.write_u64(stack.top_ptr, 0);
        assert_eq!(stack.pop(&mut rec), None);
        for v in [10u64, 20, 30] {
            stack.push(&mut rec, &mut heap, v);
        }
        assert_eq!(stack.pop(&mut rec), Some(31)); // payload word = v + 1
        assert_eq!(stack.pop(&mut rec), Some(21));
        assert_eq!(stack.pop(&mut rec), Some(11));
        assert_eq!(stack.pop(&mut rec), None);
        assert_eq!(rec.peek_u64(PhysAddr::new(0)), 0);
    }

    #[test]
    fn pops_write_only_the_top_pointer() {
        let streams = TreiberWorkload::default().raw_streams(1, 200, 9);
        let sizes: std::collections::BTreeSet<usize> = streams[0][1..]
            .iter()
            .map(|tx| tx.write_set_words())
            .collect();
        assert!(sizes.contains(&1), "pop writes exactly the top pointer");
        assert!(sizes.iter().any(|&s| s >= NODE_WORDS), "push writes a node");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            TreiberWorkload::default().raw_streams(2, 50, 3),
            TreiberWorkload::default().raw_streams(2, 50, 3)
        );
    }
}
