//! Zero-cost-when-off observability for the Silo simulator.
//!
//! Two production probes plug into the simulated machine through the
//! [`Probe`] trait and the [`ProbeHub`] that every `Machine` carries:
//!
//! * the [`CycleAccountant`] attributes **every** simulated cycle of every
//!   core to one of the closed [`CycleCategory`] set, with the invariant
//!   `sum(categories) == core's total cycles` enforced by construction
//!   (the engine wraps every clock mutation) and checked by debug
//!   assertions and tests;
//! * the [`JsonlTimeline`] records scheme-level [`ProbeEvent`]s (tx
//!   begin/commit, log merge/ignore, buffer drains, WPQ admissions,
//!   crash/recovery) into a bounded ring buffer, drained at run end as
//!   schema-versioned JSONL lines for post-hoc debugging of crash repros.
//!
//! Both probes are **off by default**: a disabled hub reduces every hook
//! to one `Option` discriminant check, so probe-off runs produce
//! byte-identical statistics and reports to a build without this crate.
//!
//! # Cycle attribution model
//!
//! The engine owns the only clock mutations, so it attributes by
//! difference: around every scheme hook it opens a *claim window*
//! ([`ProbeHub::begin_claim_window`]), lets the scheme claim fine-grained
//! sub-stalls ([`ProbeHub::claim`] — e.g. Silo charges its commit-stall
//! drain admissions to [`CycleCategory::Drain`]), and charges the
//! unclaimed remainder of the hook's clock advance to the hook's default
//! category ([`ProbeHub::charge_window`]). Cycles the engine advances
//! itself (op issue, cache latency, memory fills, writeback admission)
//! are charged directly. The sum of all categories therefore equals the
//! core's final clock exactly — not approximately.
//!
//! # Examples
//!
//! ```
//! use silo_probe::{CycleCategory, ProbeHub};
//!
//! let mut hub = ProbeHub::default();
//! hub.enable_accounting(1);
//! hub.charge(0, CycleCategory::Execute, 90);
//! hub.begin_claim_window();
//! hub.claim(0, CycleCategory::Drain, 4); // scheme-claimed sub-stall
//! hub.charge_window(0, CycleCategory::CommitStall, 10); // hook advanced 10
//! let b = hub.take_breakdown().expect("accounting enabled");
//! assert_eq!(b.core_total(0), 100);
//! assert_eq!(b.category_total(CycleCategory::Drain), 4);
//! assert_eq!(b.category_total(CycleCategory::CommitStall), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;

use silo_types::JsonValue;

/// Schema version stamped on every timeline JSONL line (`"v"` field).
pub const TIMELINE_SCHEMA_VERSION: u64 = 1;

/// Default ring capacity of a [`JsonlTimeline`] (events per run).
pub const DEFAULT_TIMELINE_CAPACITY: usize = 4096;

/// Where a simulated cycle went. The set is closed: every cycle of every
/// core belongs to exactly one category, and their per-core sum equals
/// the core's final local clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CycleCategory {
    /// Op issue, compute, cache access latency, and demand memory fills —
    /// the work a transaction would do with no durability scheme at all.
    Execute,
    /// `Tx_begin`/`Tx_end` hook stalls not claimed to a finer category:
    /// commit ACK round trips, log-buffer access on the commit path,
    /// baseline commit fences.
    CommitStall,
    /// Store-side stalls: log-buffer overflow back-pressure (Silo §III-F)
    /// and the baselines' synchronous per-store log writes.
    LogBufferFull,
    /// Write-pending-queue admission back-pressure reaching the core:
    /// eviction writebacks and scheme eviction hooks.
    WpqFull,
    /// Drain stalls a scheme explicitly claims: Silo's commit-stall
    /// in-place-update drain when the pending queue overflows its bound.
    Drain,
    /// Post-crash recovery work. Reserved: the crash model performs
    /// recovery in frozen time (battery/recovery writes are timing-free),
    /// so this stays 0 until recovery timing is modelled.
    Recovery,
}

impl CycleCategory {
    /// Every category, in report column order.
    pub const ALL: [CycleCategory; 6] = [
        CycleCategory::Execute,
        CycleCategory::CommitStall,
        CycleCategory::LogBufferFull,
        CycleCategory::WpqFull,
        CycleCategory::Drain,
        CycleCategory::Recovery,
    ];

    /// Number of categories (the width of a per-core counter row).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            CycleCategory::Execute => "execute",
            CycleCategory::CommitStall => "commit_stall",
            CycleCategory::LogBufferFull => "log_buffer_full",
            CycleCategory::WpqFull => "wpq_full",
            CycleCategory::Drain => "drain",
            CycleCategory::Recovery => "recovery",
        }
    }

    /// Index into a per-core counter row ([`CycleCategory::ALL`] order).
    pub fn index(self) -> usize {
        match self {
            CycleCategory::Execute => 0,
            CycleCategory::CommitStall => 1,
            CycleCategory::LogBufferFull => 2,
            CycleCategory::WpqFull => 3,
            CycleCategory::Drain => 4,
            CycleCategory::Recovery => 5,
        }
    }
}

/// The finished per-core cycle attribution of one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// One row per core, one counter per [`CycleCategory`] (in
    /// [`CycleCategory::ALL`] order).
    pub per_core: Vec<[u64; CycleCategory::COUNT]>,
}

impl CycleBreakdown {
    /// Sum of all categories on `core` — must equal the core's final
    /// local clock.
    pub fn core_total(&self, core: usize) -> u64 {
        self.per_core[core].iter().sum()
    }

    /// Sum of one category across all cores.
    pub fn category_total(&self, cat: CycleCategory) -> u64 {
        self.per_core.iter().map(|row| row[cat.index()]).sum()
    }

    /// Sum of everything: all cores, all categories.
    pub fn total(&self) -> u64 {
        self.per_core.iter().flatten().sum()
    }

    /// The breakdown as a JSON object: the category name list, the
    /// per-core rows, and per-category totals ending with `"total"`.
    pub fn to_json(&self) -> JsonValue {
        let mut totals = JsonValue::object();
        for cat in CycleCategory::ALL {
            totals = totals.field(cat.name(), self.category_total(cat));
        }
        JsonValue::object()
            .field(
                "categories",
                JsonValue::array(CycleCategory::ALL.iter().map(|c| c.name())),
            )
            .field(
                "per_core",
                JsonValue::Arr(
                    self.per_core
                        .iter()
                        .map(|row| JsonValue::array(row.iter().copied()))
                        .collect(),
                ),
            )
            .field("totals", totals.field("total", self.total()).build())
            .build()
    }

    /// Rebuilds a breakdown from its [`CycleBreakdown::to_json`] form.
    /// Only the `per_core` rows carry state — `categories` and `totals`
    /// are derived — but every row must hold exactly
    /// [`CycleCategory::COUNT`] exact integers. `None` on any mismatch
    /// (the result store treats that as a corrupt entry and recomputes).
    pub fn from_json(v: &JsonValue) -> Option<CycleBreakdown> {
        let rows = v.get("per_core")?.as_array()?;
        let mut per_core = Vec::with_capacity(rows.len());
        for row in rows {
            let cells = row.as_array()?;
            if cells.len() != CycleCategory::COUNT {
                return None;
            }
            let mut out = [0u64; CycleCategory::COUNT];
            for (slot, cell) in out.iter_mut().zip(cells) {
                *slot = cell.as_u64()?;
            }
            per_core.push(out);
        }
        Some(CycleBreakdown { per_core })
    }
}

/// What happened, for the event timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeEventKind {
    /// A transaction reached the log generator (`arg` = transaction id).
    TxBegin,
    /// A transaction committed (`arg` = transaction id).
    TxCommit,
    /// A log entry merged into an existing same-word entry (`arg` = log
    /// buffer occupancy after the merge).
    LogMerge,
    /// A log entry was dropped by log ignorance (`arg` = buffer occupancy).
    LogIgnore,
    /// A log-buffer overflow evicted a batch to PM (`arg` = batch size).
    LogOverflow,
    /// A pending in-place-update batch drained to PM (`arg` = words
    /// written).
    BufferDrain,
    /// A write was admitted to a WPQ (`arg` = admission stall cycles).
    WpqAdmit,
    /// Power failed (`arg` = durability events counted at the cut).
    Crash,
    /// Recovery completed (`arg` = recovery-time PM writes).
    Recovery,
}

impl ProbeEventKind {
    /// Every kind (golden-schema tests iterate this).
    pub const ALL: [ProbeEventKind; 9] = [
        ProbeEventKind::TxBegin,
        ProbeEventKind::TxCommit,
        ProbeEventKind::LogMerge,
        ProbeEventKind::LogIgnore,
        ProbeEventKind::LogOverflow,
        ProbeEventKind::BufferDrain,
        ProbeEventKind::WpqAdmit,
        ProbeEventKind::Crash,
        ProbeEventKind::Recovery,
    ];

    /// Stable snake_case name used in the JSONL `"kind"` field.
    pub fn name(self) -> &'static str {
        match self {
            ProbeEventKind::TxBegin => "tx_begin",
            ProbeEventKind::TxCommit => "tx_commit",
            ProbeEventKind::LogMerge => "log_merge",
            ProbeEventKind::LogIgnore => "log_ignore",
            ProbeEventKind::LogOverflow => "log_overflow",
            ProbeEventKind::BufferDrain => "buffer_drain",
            ProbeEventKind::WpqAdmit => "wpq_admit",
            ProbeEventKind::Crash => "crash",
            ProbeEventKind::Recovery => "recovery",
        }
    }
}

/// One timeline event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeEvent {
    /// Simulated cycle the event happened at.
    pub at: u64,
    /// Core the event belongs to (`None` for machine-level events such as
    /// WPQ admissions issued without a core context).
    pub core: Option<u32>,
    /// What happened.
    pub kind: ProbeEventKind,
    /// Kind-specific payload (see [`ProbeEventKind`]).
    pub arg: u64,
}

impl ProbeEvent {
    /// The event as one schema-versioned JSONL line (no trailing newline).
    /// Field set is fixed: `v`, `at`, `core` (integer or `null`), `kind`,
    /// `arg`.
    pub fn to_jsonl(&self) -> String {
        JsonValue::object()
            .field("v", TIMELINE_SCHEMA_VERSION)
            .field("at", JsonValue::Uint(self.at))
            .field(
                "core",
                match self.core {
                    Some(c) => JsonValue::Uint(c as u64),
                    None => JsonValue::Null,
                },
            )
            .field("kind", self.kind.name())
            .field("arg", self.arg)
            .build()
            .to_string()
    }
}

/// A probe attached to the simulated machine. Implementations must be
/// cheap enough to call on the hot path when enabled and are never called
/// when disabled (the [`ProbeHub`] gates every call).
pub trait Probe {
    /// `cycles` of core `core`'s clock advance belong to `cat`.
    fn stall(&mut self, core: usize, cat: CycleCategory, cycles: u64);

    /// A timeline event occurred.
    fn event(&mut self, event: ProbeEvent);

    /// Whether this probe wants [`Probe::event`] calls (lets emitters skip
    /// building event payloads entirely).
    fn wants_events(&self) -> bool {
        false
    }
}

/// Production probe #1: per-core, per-category cycle counters.
#[derive(Clone, Debug, Default)]
pub struct CycleAccountant {
    rows: Vec<[u64; CycleCategory::COUNT]>,
}

impl CycleAccountant {
    /// An accountant for `cores` cores, all counters zero.
    pub fn new(cores: usize) -> Self {
        CycleAccountant {
            rows: vec![[0; CycleCategory::COUNT]; cores],
        }
    }

    /// The finished attribution.
    pub fn breakdown(&self) -> CycleBreakdown {
        CycleBreakdown {
            per_core: self.rows.clone(),
        }
    }
}

impl Probe for CycleAccountant {
    fn stall(&mut self, core: usize, cat: CycleCategory, cycles: u64) {
        self.rows[core][cat.index()] += cycles;
    }

    fn event(&mut self, _event: ProbeEvent) {}
}

/// Production probe #2: a bounded ring buffer of timeline events, drained
/// as JSONL at run end. When the ring fills, the **oldest** events are
/// dropped (the interesting tail of a crash repro is the recent past) and
/// counted in [`JsonlTimeline::dropped`].
#[derive(Clone, Debug)]
pub struct JsonlTimeline {
    capacity: usize,
    events: VecDeque<ProbeEvent>,
    dropped: u64,
}

impl JsonlTimeline {
    /// A timeline holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "timeline capacity must be positive");
        JsonlTimeline {
            capacity,
            events: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
        }
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event was recorded (or all were dropped).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drains the buffered events as JSONL lines, oldest first.
    pub fn drain_lines(&mut self) -> Vec<String> {
        self.events.drain(..).map(|e| e.to_jsonl()).collect()
    }
}

impl Probe for JsonlTimeline {
    fn stall(&mut self, _core: usize, _cat: CycleCategory, _cycles: u64) {}

    fn event(&mut self, event: ProbeEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    fn wants_events(&self) -> bool {
        true
    }
}

/// The machine-level phase a probe event falls into, derived purely from
/// the event-kind stream by a deterministic state machine
/// ([`SignatureRecorder`]). Phases contextualize coverage features: a
/// `log_overflow` *during a drain* is a different behaviour than one in
/// steady state, even though the event kind is identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemePhase {
    /// No transaction has begun yet (or the last one committed).
    Idle,
    /// At least one transaction is executing (between `tx_begin` and the
    /// next `tx_commit`).
    InTx,
    /// A buffer drain or log overflow is in progress (sticky until the
    /// next transaction boundary).
    Drain,
    /// Power has failed; the battery-backed flush is running.
    Crashed,
    /// The scheme's recovery has run (terminal for one crash plan; a
    /// double crash stays here).
    Recovery,
}

impl SchemePhase {
    /// Every phase, in index order.
    pub const ALL: [SchemePhase; 5] = [
        SchemePhase::Idle,
        SchemePhase::InTx,
        SchemePhase::Drain,
        SchemePhase::Crashed,
        SchemePhase::Recovery,
    ];

    /// Number of phases (one axis of the coverage-feature space).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name (corpus files and reports).
    pub fn name(self) -> &'static str {
        match self {
            SchemePhase::Idle => "idle",
            SchemePhase::InTx => "in_tx",
            SchemePhase::Drain => "drain",
            SchemePhase::Crashed => "crashed",
            SchemePhase::Recovery => "recovery",
        }
    }

    /// Index into the feature space.
    pub fn index(self) -> usize {
        match self {
            SchemePhase::Idle => 0,
            SchemePhase::InTx => 1,
            SchemePhase::Drain => 2,
            SchemePhase::Crashed => 3,
            SchemePhase::Recovery => 4,
        }
    }

    /// The phase after observing `kind` in this phase. Deterministic and
    /// total: the same event stream always walks the same phase sequence.
    pub fn step(self, kind: ProbeEventKind) -> SchemePhase {
        match kind {
            ProbeEventKind::Crash => SchemePhase::Crashed,
            ProbeEventKind::Recovery => SchemePhase::Recovery,
            _ if matches!(self, SchemePhase::Crashed | SchemePhase::Recovery) => self,
            ProbeEventKind::TxBegin => SchemePhase::InTx,
            ProbeEventKind::TxCommit => SchemePhase::Idle,
            ProbeEventKind::LogOverflow | ProbeEventKind::BufferDrain => SchemePhase::Drain,
            _ => self,
        }
    }
}

/// Index of an event kind on the coverage-feature axes.
fn kind_index(kind: ProbeEventKind) -> usize {
    ProbeEventKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("every kind is in ALL")
}

/// Number of distinct coverage features: `(previous kind or none) x kind
/// x phase`. The "none" previous-kind slot covers the first event of a
/// run.
pub const SIGNATURE_BITS: usize =
    (ProbeEventKind::ALL.len() + 1) * ProbeEventKind::ALL.len() * SchemePhase::COUNT;

/// Words in the signature bitset.
const SIG_WORDS: usize = SIGNATURE_BITS.div_ceil(64);

/// A coverage signature: the set of `(previous event kind, event kind,
/// scheme phase)` features observed in one run's probe-event stream, as a
/// fixed-size bitset. Two runs that exercise the same local event
/// orderings in the same phases have equal signatures; a run that hits a
/// novel ordering (say, a `log_overflow` while already draining, or a
/// `wpq_admit` after the crash) sets bits no prior run set — the
/// feedback signal the coverage-guided crash search keeps corpus entries
/// for.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    bits: [u64; SIG_WORDS],
}

impl Default for Signature {
    fn default() -> Self {
        Signature {
            bits: [0; SIG_WORDS],
        }
    }
}

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Signature({} bits, {})", self.count(), self.digest())
    }
}

impl Signature {
    /// An empty signature.
    pub fn new() -> Self {
        Signature::default()
    }

    /// Sets the feature bit for `(prev, kind, phase)`; `prev = None`
    /// marks the first event of a run.
    pub fn insert(
        &mut self,
        prev: Option<ProbeEventKind>,
        kind: ProbeEventKind,
        phase: SchemePhase,
    ) {
        let prev_idx = prev.map(|k| kind_index(k) + 1).unwrap_or(0);
        let idx = (prev_idx * ProbeEventKind::ALL.len() + kind_index(kind)) * SchemePhase::COUNT
            + phase.index();
        debug_assert!(idx < SIGNATURE_BITS);
        self.bits[idx / 64] |= 1 << (idx % 64);
    }

    /// Number of features observed.
    pub fn count(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether no feature was observed.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|w| *w == 0)
    }

    /// Features in `self` that `other` does not have.
    pub fn new_bits(&self, other: &Signature) -> u32 {
        self.bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| (a & !b).count_ones())
            .sum()
    }

    /// Folds `other` into `self`, returning how many features were new.
    pub fn merge(&mut self, other: &Signature) -> u32 {
        let mut new = 0;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            new += (*b & !*a).count_ones();
            *a |= *b;
        }
        new
    }

    /// A stable 16-hex-digit digest of the bit pattern (FNV-1a 64 over
    /// the words). Equal signatures always produce equal digests, on any
    /// host.
    pub fn digest(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in &self.bits {
            for b in w.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        format!("{h:016x}")
    }
}

/// Observes the probe-event stream and accumulates a [`Signature`]:
/// tracks the previous event kind and the [`SchemePhase`] state machine,
/// setting one feature bit per event.
#[derive(Clone, Debug)]
pub struct SignatureRecorder {
    prev: Option<ProbeEventKind>,
    phase: SchemePhase,
    sig: Signature,
}

impl Default for SignatureRecorder {
    fn default() -> Self {
        SignatureRecorder {
            prev: None,
            phase: SchemePhase::Idle,
            sig: Signature::new(),
        }
    }
}

impl SignatureRecorder {
    /// Feeds one event kind through the phase machine and into the
    /// signature.
    pub fn observe(&mut self, kind: ProbeEventKind) {
        self.sig.insert(self.prev, kind, self.phase);
        self.phase = self.phase.step(kind);
        self.prev = Some(kind);
    }

    /// The accumulated signature.
    pub fn signature(&self) -> Signature {
        self.sig
    }
}

/// The probe socket every simulated machine carries. Holds the optional
/// production probes plus the engine's claim-window state; a default hub
/// is fully disabled and every hook is one `Option`/`bool` check.
#[derive(Clone, Debug, Default)]
pub struct ProbeHub {
    accountant: Option<CycleAccountant>,
    timeline: Option<JsonlTimeline>,
    signature: Option<SignatureRecorder>,
    claimed: u64,
}

impl ProbeHub {
    /// Attaches a [`CycleAccountant`] for `cores` cores.
    pub fn enable_accounting(&mut self, cores: usize) {
        self.accountant = Some(CycleAccountant::new(cores));
    }

    /// Attaches a [`JsonlTimeline`] with the given ring capacity.
    pub fn enable_timeline(&mut self, capacity: usize) {
        self.timeline = Some(JsonlTimeline::new(capacity));
    }

    /// Attaches a [`SignatureRecorder`] (coverage signature collection).
    pub fn enable_signature(&mut self) {
        self.signature = Some(SignatureRecorder::default());
    }

    /// Whether coverage-signature collection is on.
    pub fn signature_on(&self) -> bool {
        self.signature.is_some()
    }

    /// Detaches the signature recorder and returns its accumulated
    /// [`Signature`].
    pub fn take_signature(&mut self) -> Option<Signature> {
        self.signature.take().map(|r| r.signature())
    }

    /// Whether cycle accounting is on.
    pub fn accounting_on(&self) -> bool {
        self.accountant.is_some()
    }

    /// Whether the event timeline is on.
    pub fn events_on(&self) -> bool {
        self.timeline.is_some()
    }

    /// Charges `cycles` on `core` directly to `cat` (engine-advanced
    /// time: issue, cache latency, memory fills, writeback admission).
    pub fn charge(&mut self, core: usize, cat: CycleCategory, cycles: u64) {
        if cycles == 0 {
            return;
        }
        if let Some(acc) = &mut self.accountant {
            acc.stall(core, cat, cycles);
        }
    }

    /// Opens a claim window around a scheme hook: zeroes the claimed
    /// counter that [`ProbeHub::claim`] accumulates into.
    pub fn begin_claim_window(&mut self) {
        self.claimed = 0;
    }

    /// Scheme-side: claims `cycles` of the current hook's clock advance
    /// for `cat`. The engine charges the hook's unclaimed remainder to
    /// the hook's default category, so claimed cycles must be on the
    /// returned-clock path (never background work, which advances no
    /// core clock).
    pub fn claim(&mut self, core: usize, cat: CycleCategory, cycles: u64) {
        if self.accountant.is_none() || cycles == 0 {
            return;
        }
        self.claimed += cycles;
        self.charge(core, cat, cycles);
    }

    /// Engine-side: closes a claim window over a hook that advanced the
    /// core clock by `delta`, charging the unclaimed remainder to
    /// `default_cat`. Claims beyond `delta` are a scheme bug: caught by a
    /// debug assertion, saturated (never double-counted) in release.
    pub fn charge_window(&mut self, core: usize, default_cat: CycleCategory, delta: u64) {
        if self.accountant.is_none() {
            return;
        }
        debug_assert!(
            self.claimed <= delta,
            "scheme claimed {} cycles but the hook advanced only {delta}",
            self.claimed
        );
        let rest = delta.saturating_sub(self.claimed);
        self.claimed = 0;
        self.charge(core, default_cat, rest);
    }

    /// Records a timeline event (no-op unless the timeline or signature
    /// recorder is on).
    pub fn emit(&mut self, kind: ProbeEventKind, core: Option<u32>, at: u64, arg: u64) {
        if let Some(rec) = &mut self.signature {
            rec.observe(kind);
        }
        if let Some(tl) = &mut self.timeline {
            tl.event(ProbeEvent {
                at,
                core,
                kind,
                arg,
            });
        }
    }

    /// Detaches the accountant and returns its finished breakdown.
    pub fn take_breakdown(&mut self) -> Option<CycleBreakdown> {
        self.accountant.take().map(|a| a.breakdown())
    }

    /// Drains the timeline's buffered events as JSONL lines, returning
    /// `(lines, dropped)`. The timeline stays attached (subsequent events
    /// start a fresh ring).
    pub fn drain_timeline(&mut self) -> Option<(Vec<String>, u64)> {
        self.timeline
            .as_mut()
            .map(|tl| (tl.drain_lines(), tl.dropped()))
    }
}

impl Probe for ProbeHub {
    fn stall(&mut self, core: usize, cat: CycleCategory, cycles: u64) {
        self.claim(core, cat, cycles);
    }

    fn event(&mut self, event: ProbeEvent) {
        if let Some(rec) = &mut self.signature {
            rec.observe(event.kind);
        }
        if let Some(tl) = &mut self.timeline {
            tl.event(event);
        }
    }

    fn wants_events(&self) -> bool {
        self.events_on() || self.signature_on()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_are_closed_and_stable() {
        assert_eq!(CycleCategory::ALL.len(), CycleCategory::COUNT);
        for (i, cat) in CycleCategory::ALL.iter().enumerate() {
            assert_eq!(cat.index(), i, "{} out of order", cat.name());
        }
        let mut names: Vec<&str> = CycleCategory::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CycleCategory::COUNT, "names must be unique");
    }

    #[test]
    fn breakdown_totals_agree() {
        let mut acc = CycleAccountant::new(2);
        acc.stall(0, CycleCategory::Execute, 10);
        acc.stall(0, CycleCategory::Drain, 5);
        acc.stall(1, CycleCategory::Execute, 7);
        let b = acc.breakdown();
        assert_eq!(b.core_total(0), 15);
        assert_eq!(b.core_total(1), 7);
        assert_eq!(b.category_total(CycleCategory::Execute), 17);
        assert_eq!(b.total(), 22);
    }

    #[test]
    fn breakdown_json_has_categories_rows_and_totals() {
        let mut acc = CycleAccountant::new(1);
        acc.stall(0, CycleCategory::WpqFull, 3);
        let v = JsonValue::parse(&acc.breakdown().to_json().to_string()).expect("valid JSON");
        let cats = v
            .get("categories")
            .and_then(JsonValue::as_array)
            .expect("categories");
        assert_eq!(cats.len(), CycleCategory::COUNT);
        assert_eq!(
            v.get("per_core")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(1)
        );
        let totals = v.get("totals").expect("totals");
        assert_eq!(
            totals.get("wpq_full").and_then(JsonValue::as_f64),
            Some(3.0)
        );
        assert_eq!(totals.get("total").and_then(JsonValue::as_f64), Some(3.0));
    }

    #[test]
    fn claim_window_attributes_remainder_to_default() {
        let mut hub = ProbeHub::default();
        hub.enable_accounting(1);
        hub.begin_claim_window();
        hub.claim(0, CycleCategory::Drain, 12);
        hub.charge_window(0, CycleCategory::CommitStall, 40);
        let b = hub.take_breakdown().expect("enabled");
        assert_eq!(b.per_core[0][CycleCategory::Drain.index()], 12);
        assert_eq!(b.per_core[0][CycleCategory::CommitStall.index()], 28);
        assert_eq!(b.core_total(0), 40);
    }

    #[test]
    fn consecutive_windows_do_not_leak_claims() {
        let mut hub = ProbeHub::default();
        hub.enable_accounting(1);
        hub.begin_claim_window();
        hub.claim(0, CycleCategory::Drain, 5);
        hub.charge_window(0, CycleCategory::CommitStall, 5);
        hub.begin_claim_window();
        hub.charge_window(0, CycleCategory::LogBufferFull, 9);
        let b = hub.take_breakdown().expect("enabled");
        assert_eq!(b.per_core[0][CycleCategory::LogBufferFull.index()], 9);
        assert_eq!(b.core_total(0), 14);
    }

    #[test]
    fn disabled_hub_is_inert() {
        let mut hub = ProbeHub::default();
        assert!(!hub.accounting_on() && !hub.events_on() && !hub.signature_on());
        assert!(!hub.wants_events());
        hub.charge(0, CycleCategory::Execute, 100);
        hub.claim(0, CycleCategory::Drain, 100);
        hub.charge_window(0, CycleCategory::Execute, 100);
        hub.emit(ProbeEventKind::TxBegin, Some(0), 1, 1);
        assert_eq!(hub.take_breakdown(), None);
        assert!(hub.drain_timeline().is_none());
        assert!(hub.take_signature().is_none());
    }

    #[test]
    fn phase_machine_walks_expected_states() {
        use ProbeEventKind as K;
        use SchemePhase as P;
        let mut p = P::Idle;
        for (kind, expect) in [
            (K::TxBegin, P::InTx),
            (K::LogMerge, P::InTx),
            (K::LogOverflow, P::Drain),
            (K::TxCommit, P::Idle),
            (K::BufferDrain, P::Drain),
            (K::Crash, P::Crashed),
            (K::WpqAdmit, P::Crashed), // sticky after the crash
            (K::Recovery, P::Recovery),
            (K::TxBegin, P::Recovery), // sticky after recovery
        ] {
            p = p.step(kind);
            assert_eq!(p, expect, "after {}", kind.name());
        }
    }

    #[test]
    fn signature_features_are_distinct_and_deterministic() {
        let mut a = SignatureRecorder::default();
        let mut b = SignatureRecorder::default();
        let stream = [
            ProbeEventKind::TxBegin,
            ProbeEventKind::LogOverflow,
            ProbeEventKind::LogOverflow, // overflow-during-drain: new feature
            ProbeEventKind::TxCommit,
            ProbeEventKind::Crash,
        ];
        for k in stream {
            a.observe(k);
            b.observe(k);
        }
        let sa = a.signature();
        assert_eq!(sa, b.signature(), "same stream, same signature");
        assert_eq!(sa.digest(), b.signature().digest());
        assert_eq!(sa.count(), 5, "five distinct (prev, kind, phase) features");
        // A different ordering sets different bits.
        let mut c = SignatureRecorder::default();
        for k in [ProbeEventKind::LogOverflow, ProbeEventKind::TxBegin] {
            c.observe(k);
        }
        assert!(c.signature().new_bits(&sa) > 0);
    }

    #[test]
    fn signature_merge_reports_new_bits_once() {
        let mut base = Signature::new();
        let mut one = SignatureRecorder::default();
        one.observe(ProbeEventKind::TxBegin);
        one.observe(ProbeEventKind::TxCommit);
        assert_eq!(base.merge(&one.signature()), 2);
        assert_eq!(base.merge(&one.signature()), 0, "already covered");
        assert_eq!(base.count(), 2);
        assert!(!base.is_empty());
        assert!(Signature::new().is_empty());
    }

    #[test]
    fn hub_signature_observes_both_event_paths() {
        let mut hub = ProbeHub::default();
        hub.enable_signature();
        assert!(
            hub.wants_events(),
            "signature-only hubs must receive Probe::event calls"
        );
        assert!(!hub.events_on(), "timeline stays off");
        hub.emit(ProbeEventKind::TxBegin, Some(0), 1, 1);
        hub.event(ProbeEvent {
            at: 2,
            core: None,
            kind: ProbeEventKind::WpqAdmit,
            arg: 0,
        });
        let sig = hub.take_signature().expect("recorder attached");
        assert_eq!(sig.count(), 2);
        assert!(hub.take_signature().is_none(), "recorder detached");
    }

    #[test]
    fn timeline_ring_drops_oldest_and_counts() {
        let mut tl = JsonlTimeline::new(2);
        for i in 0..5u64 {
            tl.event(ProbeEvent {
                at: i,
                core: None,
                kind: ProbeEventKind::WpqAdmit,
                arg: i,
            });
        }
        assert_eq!(tl.len(), 2);
        assert_eq!(tl.dropped(), 3);
        let lines = tl.drain_lines();
        assert!(tl.is_empty());
        assert!(
            lines[0].contains("\"arg\":3"),
            "oldest kept is #3: {lines:?}"
        );
        assert!(lines[1].contains("\"arg\":4"));
    }

    #[test]
    fn jsonl_line_schema_is_fixed() {
        let e = ProbeEvent {
            at: 42,
            core: Some(3),
            kind: ProbeEventKind::TxCommit,
            arg: 7,
        };
        let line = e.to_jsonl();
        let v = JsonValue::parse(&line).expect("valid JSON");
        assert_eq!(v.get("v").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(v.get("at").and_then(JsonValue::as_f64), Some(42.0));
        assert_eq!(v.get("core").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("tx_commit"));
        assert_eq!(v.get("arg").and_then(JsonValue::as_f64), Some(7.0));
        // Core-less events serialize core as null, same field set.
        let machine_level = ProbeEvent { core: None, ..e }.to_jsonl();
        assert!(machine_level.contains("\"core\":null"), "{machine_level}");
    }

    #[test]
    fn event_kind_names_are_unique() {
        let mut names: Vec<&str> = ProbeEventKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ProbeEventKind::ALL.len());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_timeline_rejected() {
        let _ = JsonlTimeline::new(0);
    }
}
