//! Microbenchmarks of the on-PM buffer coalescing path (§III-E).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use silo_pm::{Media, OnPmBuffer, PmDevice, PmDeviceConfig};
use silo_types::PhysAddr;

fn bench_word_coalescing(c: &mut Criterion) {
    c.bench_function("onpm_buffer/64_words_same_line", |b| {
        b.iter_batched(
            || (Media::new(), OnPmBuffer::new(16)),
            |(mut media, mut buf)| {
                for i in 0..64u64 {
                    buf.write(PhysAddr::new((i % 32) * 8), &[i as u8; 8], &mut media);
                }
                buf.flush_all(&mut media);
                (media, buf)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_mixed_words_and_lines(c: &mut Criterion) {
    c.bench_function("onpm_buffer/fig9_mixed_traffic", |b| {
        b.iter_batched(
            || (Media::new(), OnPmBuffer::new(16)),
            |(mut media, mut buf)| {
                for i in 0..16u64 {
                    buf.write(PhysAddr::new(i * 320), &[1u8; 8], &mut media);
                    buf.write(PhysAddr::new(i * 320 + 64), &[2u8; 64], &mut media);
                }
                buf.flush_all(&mut media);
                (media, buf)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_write_through(c: &mut Criterion) {
    c.bench_function("pm_device/write_through_64B", |b| {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            pm.write_through(PhysAddr::new((i % 4096) * 64), &[i as u8; 64]);
            i += 1;
        })
    });
}

fn bench_staged_write(c: &mut Criterion) {
    c.bench_function("pm_device/staged_word_write", |b| {
        let mut pm = PmDevice::new(PmDeviceConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            pm.write(PhysAddr::new((i % 4096) * 8), &[i as u8; 8]);
            i += 1;
        })
    });
}

criterion_group!(
    benches,
    bench_word_coalescing,
    bench_mixed_words_and_lines,
    bench_write_through,
    bench_staged_write
);
criterion_main!(benches);
