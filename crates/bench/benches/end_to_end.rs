//! End-to-end simulator throughput: full engine runs per scheme, measuring
//! host-side simulation speed (simulated transactions per host second).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use silo_bench::{make_scheme, SCHEMES};
use silo_sim::{Engine, SimConfig};
use silo_workloads::{Workload, YcsbWorkload};

fn bench_schemes_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end/ycsb_2core_100tx");
    group.sample_size(20);
    for scheme_name in SCHEMES {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme_name),
            &scheme_name,
            |b, &name| {
                let config = SimConfig::table_ii(2);
                let workload = YcsbWorkload::default();
                b.iter(|| {
                    let mut scheme = make_scheme(name, &config);
                    let streams = workload.raw_streams(2, 100, 42);
                    Engine::new(&config, scheme.as_mut())
                        .run(streams, None)
                        .stats
                })
            },
        );
    }
    group.finish();
}

fn bench_crash_recovery(c: &mut Criterion) {
    c.bench_function("end_to_end/silo_crash_recovery", |b| {
        let config = SimConfig::table_ii(2);
        let workload = YcsbWorkload::default();
        b.iter(|| {
            let mut scheme = make_scheme("Silo", &config);
            let streams = workload.raw_streams(2, 100, 42);
            Engine::new(&config, scheme.as_mut())
                .run(streams, Some(silo_types::Cycles::new(50_000)))
        })
    });
}

criterion_group!(benches, bench_schemes_end_to_end, bench_crash_recovery);
criterion_main!(benches);
