//! Microbenchmarks of the cache hierarchy simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use silo_cache::{CacheHierarchy, HierarchyConfig};
use silo_types::{CoreId, LineAddr, PhysAddr, SplitMix64};

fn bench_l1_hits(c: &mut Criterion) {
    c.bench_function("cache/l1_hit_stream", |b| {
        let mut h = CacheHierarchy::new(HierarchyConfig::table_ii(1));
        let line = LineAddr::containing(PhysAddr::new(0));
        h.access(CoreId::new(0), line, true);
        b.iter(|| h.access(CoreId::new(0), line, true))
    });
}

fn bench_random_stream(c: &mut Criterion) {
    c.bench_function("cache/random_access_stream", |b| {
        let mut h = CacheHierarchy::new(HierarchyConfig::table_ii(4));
        let mut rng = SplitMix64::new(7);
        b.iter(|| {
            let line = LineAddr::containing(PhysAddr::new(rng.below(1 << 22) * 64));
            let core = CoreId::new(rng.below(4) as usize);
            h.access(core, line, rng.chance(1, 2))
        })
    });
}

fn bench_force_writeback(c: &mut Criterion) {
    c.bench_function("cache/force_writeback_1k_dirty", |b| {
        b.iter_with_setup(
            || {
                let mut h = CacheHierarchy::new(HierarchyConfig::table_ii(1));
                for i in 0..1024u64 {
                    h.access(
                        CoreId::new(0),
                        LineAddr::containing(PhysAddr::new(i * 64)),
                        true,
                    );
                }
                h
            },
            |mut h| {
                let swept = h.force_writeback_all();
                (h, swept)
            },
        )
    });
}

criterion_group!(
    benches,
    bench_l1_hits,
    bench_random_stream,
    bench_force_writeback
);
criterion_main!(benches);
