//! Microbenchmarks of the Silo log buffer: the per-store insert/merge path
//! and the flush-bit comparator match.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use silo_core::{LogBuffer, LogEntry};
use silo_types::{LineAddr, PhysAddr, ThreadId, TxId, TxTag, Word};

fn tag() -> TxTag {
    TxTag::new(ThreadId::new(0), TxId::new(1))
}

fn bench_insert_distinct(c: &mut Criterion) {
    c.bench_function("log_buffer/insert_20_distinct", |b| {
        b.iter_batched(
            || LogBuffer::new(20),
            |mut buf| {
                for i in 0..20u64 {
                    buf.insert(LogEntry::new(
                        tag(),
                        PhysAddr::new(i * 8),
                        Word::new(i),
                        Word::new(i + 1),
                    ));
                }
                buf
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_insert_merging(c: &mut Criterion) {
    c.bench_function("log_buffer/insert_100_same_word_merges", |b| {
        b.iter_batched(
            || LogBuffer::new(20),
            |mut buf| {
                for i in 0..100u64 {
                    buf.insert(LogEntry::new(
                        tag(),
                        PhysAddr::new(0),
                        Word::new(i),
                        Word::new(i + 1),
                    ));
                }
                buf
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_flush_bit_match(c: &mut Criterion) {
    c.bench_function("log_buffer/flush_bit_comparator_match", |b| {
        b.iter_batched(
            || {
                let mut buf = LogBuffer::new(20);
                for i in 0..20u64 {
                    buf.insert(LogEntry::new(
                        tag(),
                        PhysAddr::new(i * 8),
                        Word::ZERO,
                        Word::new(1),
                    ));
                }
                buf
            },
            |mut buf| {
                buf.mark_line_evicted(LineAddr::containing(PhysAddr::new(64)));
                buf
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_overflow_batch(c: &mut Criterion) {
    c.bench_function("log_buffer/take_overflow_batch_14", |b| {
        b.iter_batched(
            || {
                let mut buf = LogBuffer::new(20);
                for i in 0..20u64 {
                    buf.insert(LogEntry::new(
                        tag(),
                        PhysAddr::new(i * 8),
                        Word::ZERO,
                        Word::new(1),
                    ));
                }
                buf
            },
            |mut buf| {
                let batch = buf.take_overflow_batch(14);
                (buf, batch)
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_insert_distinct,
    bench_insert_merging,
    bench_flush_bit_match,
    bench_overflow_batch
);
criterion_main!(benches);
