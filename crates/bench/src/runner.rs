//! The parallel cell runner.
//!
//! An experiment's cells are independent simulations, so the runner fans
//! them out across `std::thread::scope` workers pulling from a shared
//! atomic cursor (no dependencies, no channels) and slots every outcome
//! back at its cell index. Output is therefore byte-identical to a serial
//! run regardless of worker count or scheduling: rendering only ever sees
//! the in-order slice.
//!
//! Every cell resolves through the process-wide
//! [`ResultStore`](crate::ResultStore): with the store enabled, a
//! previously computed `(spec, trace, code)` key skips the simulation
//! entirely; disabled (the default outside the CLI), the spec executes
//! directly. Either way the runner stamps the outcome's `origin` with the
//! cell label so downstream accessor failures name their cell.
//!
//! A [`PanicPolicy`] decides what a panicking cell does. The CLI keeps
//! the historical propagate-and-die behavior (a panic is a bug and should
//! be loud); the serve daemon — and the CLI under `--catch-cell-panics` —
//! captures the panic into a labeled failed outcome so one poisoned cell
//! neither kills the process nor loses the other slots.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::cellspec::CellSpec;
use crate::exp::{CellLabel, CellOutcome};
use crate::result_store::Served;
use crate::ResultStore;

/// The machine's available parallelism (the `--jobs` default).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// What a panic inside one cell does to the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PanicPolicy {
    /// Propagate to the caller: the historical CLI behavior, where a
    /// panicking cell is a bug that should kill the process.
    Propagate,
    /// Capture into a labeled [`CellOutcome::failed`] for that cell only;
    /// every other slot still completes. The serve daemon's isolation.
    Capture,
}

/// Runs one spec through `store`, converting a panic anywhere in the
/// trace/execute path into a labeled failed outcome. Used by every
/// [`PanicPolicy::Capture`] call site, including the serve workers.
pub(crate) fn run_spec_capturing(store: &ResultStore, spec: &CellSpec) -> (CellOutcome, Served) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        store.get_or_run_traced(spec)
    }));
    match result {
        Ok(out) => out,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".to_string());
            let outcome =
                CellOutcome::failed(format!("panic in cell {}: {msg}", spec.label.describe()));
            (outcome, Served::Executed)
        }
    }
}

fn run_spec(store: &ResultStore, spec: &CellSpec, policy: PanicPolicy) -> CellOutcome {
    match policy {
        PanicPolicy::Propagate => store.get_or_run(spec),
        PanicPolicy::Capture => run_spec_capturing(store, spec).0,
    }
}

/// Runs every cell spec and returns `(label, outcome)` pairs in cell
/// order.
///
/// `jobs <= 1` runs serially on the calling thread; any larger value
/// spawns `min(jobs, cells.len())` scoped workers. A panic inside a cell
/// propagates to the caller either way — see [`run_cells_with`] for the
/// capturing variant.
pub fn run_cells(cells: Vec<CellSpec>, jobs: usize) -> Vec<(CellLabel, CellOutcome)> {
    run_cells_with(cells, jobs, PanicPolicy::Propagate)
}

/// [`run_cells`] with an explicit [`PanicPolicy`].
///
/// Under [`PanicPolicy::Capture`] a panicking cell yields a
/// `CellOutcome::failed` naming the cell, and every other slot is still
/// filled — nothing propagates and no slot is lost.
pub fn run_cells_with(
    cells: Vec<CellSpec>,
    jobs: usize,
    policy: PanicPolicy,
) -> Vec<(CellLabel, CellOutcome)> {
    let store = ResultStore::global();
    let outcomes: Vec<CellOutcome> = if jobs <= 1 || cells.len() <= 1 {
        cells
            .iter()
            .map(|spec| run_spec(store, spec, policy))
            .collect()
    } else {
        let workers = jobs.min(cells.len());
        let slots: Vec<Mutex<Option<CellOutcome>>> =
            cells.iter().map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = cells.get(i) else { break };
                    let outcome = run_spec(store, spec, policy);
                    *slots[i].lock().unwrap() = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("worker filled every slot"))
            .collect()
    };

    cells
        .into_iter()
        .zip(outcomes)
        .map(|(spec, mut outcome)| {
            outcome.origin = spec.label.describe();
            (spec.label, outcome)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cellspec::CellWork;
    use crate::exp::CellLabel;

    /// Simulation-free cells with distinct workloads and uneven trace
    /// sizes, so parallel completion order scrambles but each outcome
    /// still carries its own index.
    fn counting_cells(n: usize) -> Vec<CellSpec> {
        (0..n)
            .map(|i| {
                CellSpec::new(
                    CellLabel::default().with_param(format!("i={i}")),
                    42,
                    CellWork::TraceStats {
                        workload: "Bank".into(),
                        txs: n - i,
                    },
                )
            })
            .collect()
    }

    /// A cell whose execution panics (unknown workload at trace time).
    fn poisoned_cell() -> CellSpec {
        CellSpec::new(
            CellLabel::default().with_param("poisoned"),
            42,
            CellWork::TraceStats {
                workload: "NoSuchWorkload".into(),
                txs: 1,
            },
        )
    }

    #[test]
    fn outcomes_slot_back_in_cell_order() {
        for jobs in [1, 2, 8] {
            let done = run_cells(counting_cells(17), jobs);
            assert_eq!(done.len(), 17);
            for (i, (label, outcome)) in done.iter().enumerate() {
                assert_eq!(label.param, format!("i={i}"), "jobs={jobs}");
                // txs = 17 - i measured transactions went into the trace.
                assert!(outcome.value("avg_b") > 0.0, "jobs={jobs} i={i}");
                assert_eq!(outcome.origin, format!("i={i}"), "jobs={jobs}");
            }
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = run_cells(counting_cells(9), 1);
        let parallel = run_cells(counting_cells(9), 8);
        for ((la, a), (lb, b)) in serial.iter().zip(&parallel) {
            assert_eq!(la.param, lb.param);
            assert_eq!(a.values, b.values);
        }
    }

    #[test]
    fn oversubscribed_jobs_are_capped() {
        let done = run_cells(counting_cells(3), 64);
        assert_eq!(done.len(), 3);
    }

    #[test]
    fn empty_grid_is_fine() {
        assert!(run_cells(Vec::new(), 8).is_empty());
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn missing_metric_panic_names_the_cell() {
        let done = run_cells(counting_cells(1), 1);
        let err = std::panic::catch_unwind(|| done[0].1.value("nope")).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("i=0"), "names the cell: {msg}");
        assert!(msg.contains("\"nope\""), "names the key: {msg}");
        assert!(msg.contains("avg_b"), "lists recorded keys: {msg}");
    }

    #[test]
    fn missing_stats_panic_names_the_cell() {
        let done = run_cells(counting_cells(1), 1);
        let err = std::panic::catch_unwind(|| done[0].1.stats().clone()).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("i=0"), "names the cell: {msg}");
        assert!(msg.contains("no simulation"), "{msg}");
    }

    #[test]
    fn captured_panic_keeps_the_other_slots() {
        for jobs in [1, 4] {
            let mut cells = counting_cells(4);
            cells.insert(2, poisoned_cell());
            let done = run_cells_with(cells, jobs, PanicPolicy::Capture);
            assert_eq!(done.len(), 5, "jobs={jobs}");
            for (i, (label, outcome)) in done.iter().enumerate() {
                if i == 2 {
                    let err = outcome.error.as_deref().expect("captured failure");
                    assert!(err.contains("panic in cell poisoned"), "{err}");
                    assert!(err.contains("NoSuchWorkload"), "labels the cause: {err}");
                } else {
                    assert!(outcome.error.is_none(), "jobs={jobs} {}", label.param);
                    assert!(outcome.value("avg_b") > 0.0, "jobs={jobs} i={i}");
                }
            }
        }
    }

    #[test]
    fn propagate_policy_still_dies() {
        let err = std::panic::catch_unwind(|| {
            run_cells_with(vec![poisoned_cell()], 1, PanicPolicy::Propagate)
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("NoSuchWorkload"), "{msg}");
    }
}
