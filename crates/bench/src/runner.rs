//! The parallel cell runner.
//!
//! An experiment's cells are independent simulations, so the runner fans
//! them out across `std::thread::scope` workers pulling from a shared
//! atomic cursor (no dependencies, no channels) and slots every outcome
//! back at its cell index. Output is therefore byte-identical to a serial
//! run regardless of worker count or scheduling: rendering only ever sees
//! the in-order slice.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::exp::{Cell, CellLabel, CellOutcome};

/// A cell's work closure, parked in the queue until a worker claims it.
type QueuedCell = Box<dyn FnOnce() -> CellOutcome + Send>;

/// The machine's available parallelism (the `--jobs` default).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs every cell and returns `(label, outcome)` pairs in cell order.
///
/// `jobs <= 1` runs serially on the calling thread; any larger value
/// spawns `min(jobs, cells.len())` scoped workers. A panic inside a cell
/// propagates to the caller either way.
pub fn run_cells(cells: Vec<Cell>, jobs: usize) -> Vec<(CellLabel, CellOutcome)> {
    let (labels, work): (Vec<CellLabel>, Vec<_>) =
        cells.into_iter().map(|c| (c.label, c.run)).unzip();

    let outcomes: Vec<CellOutcome> = if jobs <= 1 || work.len() <= 1 {
        work.into_iter().map(|run| run()).collect()
    } else {
        let workers = jobs.min(work.len());
        let slots: Vec<Mutex<Option<CellOutcome>>> =
            work.iter().map(|_| Mutex::new(None)).collect();
        let queue: Vec<Mutex<Option<QueuedCell>>> =
            work.into_iter().map(|run| Mutex::new(Some(run))).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(slot) = queue.get(i) else { break };
                    let run = slot.lock().unwrap().take().expect("cell taken once");
                    let outcome = run();
                    *slots[i].lock().unwrap() = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("worker filled every slot"))
            .collect()
    };

    labels.into_iter().zip(outcomes).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::CellLabel;

    fn counting_cells(n: usize) -> Vec<Cell> {
        (0..n)
            .map(|i| {
                Cell::new(
                    CellLabel::default().with_param(format!("i={i}")),
                    move || {
                        // Unequal work so parallel completion order scrambles.
                        let spin = (n - i) * 1000;
                        let mut acc = 0u64;
                        for k in 0..spin {
                            acc = acc.wrapping_add(k as u64);
                        }
                        CellOutcome::default()
                            .with_value("i", i as f64)
                            .with_value("spin", (acc % 2) as f64)
                    },
                )
            })
            .collect()
    }

    #[test]
    fn outcomes_slot_back_in_cell_order() {
        for jobs in [1, 2, 8] {
            let done = run_cells(counting_cells(17), jobs);
            assert_eq!(done.len(), 17);
            for (i, (label, outcome)) in done.iter().enumerate() {
                assert_eq!(label.param, format!("i={i}"), "jobs={jobs}");
                assert_eq!(outcome.value("i"), i as f64, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn oversubscribed_jobs_are_capped() {
        let done = run_cells(counting_cells(3), 64);
        assert_eq!(done.len(), 3);
    }

    #[test]
    fn empty_grid_is_fine() {
        assert!(run_cells(Vec::new(), 8).is_empty());
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
