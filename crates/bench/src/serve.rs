//! `evaluate serve`: simulation-as-a-service.
//!
//! A long-lived daemon serving memoized cells over HTTP/1.1 + JSON
//! ([`crate::http`] — `std` only, no async runtime). The execution core is
//! a work-conserving scheduler:
//!
//! * a **bounded FIFO queue** feeding a fixed worker pool, with
//!   backpressure: a submission that does not fit answers `429` with a
//!   `Retry-After` header and enqueues nothing (all-or-nothing, so a
//!   half-admitted experiment can never deadlock the queue);
//! * a **singleflight table**: identical in-flight specs (by
//!   [`CellSpec::spec_hash`] — the trace and code fingerprints are
//!   process-constant) share exactly one execution, every waiter gets the
//!   one outcome;
//! * the **two-tier result store**: a cell resident in the in-memory LRU
//!   is served in microseconds without touching the queue at all
//!   ([`ResultStore::peek`]); a disk entry is decoded by a worker; only a
//!   genuinely cold cell simulates ([`ResultStore::get_or_run_traced`]);
//! * **panic isolation**: a panicking cell becomes a labeled failed
//!   outcome for its request ([`PanicPolicy::Capture`] machinery), never a
//!   dead daemon.
//!
//! Endpoints: `POST /cell` (one [`CellSpec`], synchronous), `POST
//! /experiment` (a registry experiment by name with the CLI flag surface;
//! `"wait": false` detaches and returns a job id), `GET /progress/<id>`
//! and `GET /result/<id>` (per-cell progress — queued / running / done
//! with the probe-layer cycle and commit counters — and the final
//! report), `GET /stats` (queue depth, in-flight count, singleflight
//! merges, LRU occupancy, store and trace-cache counters), and `POST
//! /shutdown` (graceful drain; the crate forbids `unsafe`, so there is no
//! signal handler — `POST /shutdown` *is* the SIGINT equivalent).
//!
//! Responses are byte-identical (envelope-stripped) to the CLI: the
//! `"report"` field of an experiment response serializes exactly as the
//! report body `evaluate <name>` writes, and `"text"` is the CLI stdout.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use silo_types::JsonValue;

use crate::cellspec::CellSpec;
use crate::exp::{CellLabel, CellOutcome, ExpParams};
use crate::http::{read_request, respond, ParseError, Request};
use crate::report::{cell_json, render_finished_checked, ExperimentError};
use crate::result_store::Served;
use crate::runner::run_spec_capturing;
use crate::{registry, ResultStore, TraceCache};

/// How the daemon is set up; every field has a serving default.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bind address. Port 0 picks a free port (the chosen one is in
    /// [`Server::addr`] and on the `serving on` stdout line).
    pub addr: String,
    /// Worker pool size.
    pub workers: usize,
    /// Queue bound: a submission needing more free slots answers 429.
    pub queue_cap: usize,
    /// In-memory outcome LRU capacity (distinct cells resident).
    pub lru_cap: usize,
    /// Result-store directory override; `None` follows the CLI resolution
    /// (`SILO_RESULT_STORE`, then `target/result-store`).
    pub store_dir: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: crate::default_jobs(),
            queue_cap: 256,
            lru_cap: 4096,
            store_dir: None,
        }
    }
}

/// Flight status for progress reporting.
const FLIGHT_QUEUED: u8 = 0;
const FLIGHT_RUNNING: u8 = 1;
const FLIGHT_DONE: u8 = 2;

/// One in-flight (or queued) execution that any number of submitters wait
/// on: the singleflight unit.
struct Flight {
    status: AtomicU8,
    done: Mutex<Option<(CellOutcome, Served)>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Arc<Flight> {
        Arc::new(Flight {
            status: AtomicU8::new(FLIGHT_QUEUED),
            done: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    fn fill(&self, outcome: CellOutcome, served: Served) {
        let mut done = lock_clean(&self.done);
        *done = Some((outcome, served));
        self.status.store(FLIGHT_DONE, Ordering::Release);
        self.cv.notify_all();
    }

    fn wait(&self) -> (CellOutcome, Served) {
        let mut done = lock_clean(&self.done);
        loop {
            if let Some(result) = done.as_ref() {
                return result.clone();
            }
            done = self.cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn state_name(&self) -> &'static str {
        match self.status.load(Ordering::Acquire) {
            FLIGHT_QUEUED => "queued",
            FLIGHT_RUNNING => "running",
            _ => "done",
        }
    }
}

/// A queued unit of work.
struct QueuedJob {
    key: u64,
    spec: CellSpec,
    flight: Arc<Flight>,
}

/// Queue and singleflight table under one lock: admission decisions see a
/// consistent picture of both.
struct SchedState {
    queue: VecDeque<QueuedJob>,
    flights: HashMap<u64, Arc<Flight>>,
}

/// How one submitted cell will be satisfied.
enum Ticket {
    /// Served straight from the memory tier — never touched the queue.
    Ready(Box<CellOutcome>),
    /// Joined an execution another submission already owns.
    Merged(Arc<Flight>),
    /// Owns a fresh queue slot.
    Enqueued(Arc<Flight>),
}

impl Ticket {
    /// Blocks until the outcome exists. The label names how it was served,
    /// from this submission's point of view (`merged` hides the owner's
    /// actual tier on purpose: the point is that *this* request ran
    /// nothing).
    fn wait(&self) -> (CellOutcome, &'static str) {
        match self {
            Ticket::Ready(outcome) => ((**outcome).clone(), Served::Memory.name()),
            Ticket::Merged(flight) => (flight.wait().0, "merged"),
            Ticket::Enqueued(flight) => {
                let (outcome, served) = flight.wait();
                (outcome, served.name())
            }
        }
    }

    fn state_name(&self) -> &'static str {
        match self {
            Ticket::Ready(_) => "done",
            Ticket::Merged(flight) | Ticket::Enqueued(flight) => flight.state_name(),
        }
    }
}

/// A finished experiment: the rendered text, the report body, and the
/// per-tier served counts.
type JobResult = Result<(String, JsonValue, JsonValue), ExperimentError>;

/// One detached (`"wait": false`) experiment run.
struct JobState {
    name: &'static str,
    labels: Vec<String>,
    tickets: Vec<Ticket>,
    /// Per-cell completion info, filled in submission order as the job
    /// thread collects outcomes.
    cells_done: Mutex<Vec<Option<JsonValue>>>,
    /// The final render: `Ok((text, report, served-counts))` or the typed
    /// failure, `None` while cells are still running.
    result: Mutex<Option<JobResult>>,
}

struct ServerInner {
    store: ResultStore,
    addr: SocketAddr,
    workers: usize,
    queue_cap: usize,
    sched: Mutex<SchedState>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    inflight: AtomicUsize,
    merges: AtomicU64,
    rejected: AtomicU64,
    served_memory: AtomicU64,
    served_disk: AtomicU64,
    served_executed: AtomicU64,
    jobs: Mutex<HashMap<u64, Arc<JobState>>>,
    next_job: AtomicU64,
}

fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A running daemon: accept loop + worker pool. Dropping the handle does
/// not stop it; `POST /shutdown` (then [`Server::wait`]) does.
pub struct Server {
    inner: Arc<ServerInner>,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and the accept loop, and returns.
    /// The daemon keeps serving until `POST /shutdown`.
    pub fn start(options: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&options.addr)?;
        let addr = listener.local_addr()?;
        let store = match &options.store_dir {
            Some(dir) => ResultStore::new(dir.clone(), env!("SILO_CODE_FINGERPRINT")),
            None => {
                let dir = std::env::var_os("SILO_RESULT_STORE")
                    .map(PathBuf::from)
                    .unwrap_or_else(|| PathBuf::from("target/result-store"));
                ResultStore::new(dir, env!("SILO_CODE_FINGERPRINT"))
            }
        };
        store.set_enabled(true);
        store.set_memory_cap(options.lru_cap.max(1));
        let inner = Arc::new(ServerInner {
            store,
            addr,
            workers: options.workers.max(1),
            queue_cap: options.queue_cap.max(1),
            sched: Mutex::new(SchedState {
                queue: VecDeque::new(),
                flights: HashMap::new(),
            }),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            merges: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            served_memory: AtomicU64::new(0),
            served_disk: AtomicU64::new(0),
            served_executed: AtomicU64::new(0),
            jobs: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(1),
        });
        let workers = (0..inner.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(listener, &inner))
        };
        Ok(Server {
            inner,
            accept,
            workers,
        })
    }

    /// The bound address (the actual port when the options said `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Blocks until the daemon has shut down (via `POST /shutdown`) and
    /// every queued cell has drained.
    pub fn wait(self) {
        let _ = self.accept.join();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

fn worker_loop(inner: &ServerInner) {
    loop {
        let job = {
            let mut sched = lock_clean(&inner.sched);
            loop {
                if let Some(job) = sched.queue.pop_front() {
                    break job;
                }
                // Exit only with an empty queue: shutdown drains every
                // admitted cell, so no waiter hangs on a dead flight.
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                sched = inner.work_cv.wait(sched).unwrap_or_else(|e| e.into_inner());
            }
        };
        inner.inflight.fetch_add(1, Ordering::Relaxed);
        job.flight.status.store(FLIGHT_RUNNING, Ordering::Release);
        let (outcome, served) = run_spec_capturing(&inner.store, &job.spec);
        match served {
            Served::Memory => &inner.served_memory,
            Served::Disk => &inner.served_disk,
            Served::Executed => &inner.served_executed,
        }
        .fetch_add(1, Ordering::Relaxed);
        job.flight.fill(outcome, served);
        lock_clean(&inner.sched).flights.remove(&job.key);
        inner.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

fn accept_loop(listener: TcpListener, inner: &Arc<ServerInner>) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        if inner.shutdown.load(Ordering::Acquire) {
            // Drain mode: answer 503 and stop accepting. The connection
            // that woke us may be the shutdown handler's self-connect, in
            // which case the response goes nowhere — harmless.
            let _ = respond(&stream, 503, &[], &error_body("shutting down"));
            return;
        }
        let inner = Arc::clone(inner);
        std::thread::spawn(move || handle_connection(stream, &inner));
    }
}

fn error_body(message: &str) -> String {
    JsonValue::object()
        .field("error", message)
        .build()
        .to_string()
}

fn handle_connection(stream: TcpStream, inner: &Arc<ServerInner>) {
    let request = match read_request(&stream) {
        Ok(request) => request,
        Err(err) => {
            let status = match err {
                ParseError::TooLarge => 413,
                _ => 400,
            };
            let _ = respond(&stream, status, &[], &error_body(&err.to_string()));
            return;
        }
    };
    // Shutdown is answered before the drain is triggered: once the flag is
    // set the accept loop and workers race to exit, and the whole process
    // can be gone before a response written after that point reaches the
    // wire. Writing first puts the 200 in the kernel's send buffer, which
    // survives process exit on a gracefully closed socket.
    if request.method == "POST" && request.path == "/shutdown" {
        let (status, headers, body) = shutdown_body(inner);
        let _ = respond(&stream, status, &headers, &body);
        begin_shutdown(inner);
        return;
    }
    let (status, headers, body) = route(&request, inner);
    let _ = respond(&stream, status, &headers, &body);
}

type RouteResult = (u16, Vec<(&'static str, String)>, String);

fn route(request: &Request, inner: &Arc<ServerInner>) -> RouteResult {
    let path = request.path.as_str();
    let method = request.method.as_str();
    match (method, path) {
        ("POST", "/cell") => handle_cell(request, inner),
        ("POST", "/experiment") => handle_experiment(request, inner),
        ("GET", "/stats") => (200, Vec::new(), stats_body(inner)),
        ("GET", _) if path.starts_with("/progress/") => {
            handle_progress(&path["/progress/".len()..], inner)
        }
        ("GET", _) if path.starts_with("/result/") => {
            handle_result(&path["/result/".len()..], inner)
        }
        ("GET", "/cell") | ("GET", "/experiment") | ("GET", "/shutdown") => (
            405,
            Vec::new(),
            error_body(&format!("{path} wants POST, not GET")),
        ),
        _ => (
            404,
            Vec::new(),
            error_body(&format!("no such endpoint {method} {path}")),
        ),
    }
}

/// Classifies `specs` against the cache, singleflight table, and queue —
/// all-or-nothing: on `Err` (queue full) nothing was admitted. Cheap
/// lookups happen outside the scheduler lock; the lock only covers the
/// classify-and-admit step so admission stays atomic.
fn submit_cells(inner: &ServerInner, specs: &[CellSpec]) -> Result<Vec<Ticket>, usize> {
    // Memory-tier peeks first: hot cells never consume queue slots. This
    // also resolves each spec's trace fingerprint outside the lock.
    let peeked: Vec<Option<CellOutcome>> =
        specs.iter().map(|spec| inner.store.peek(spec)).collect();
    let mut sched = lock_clean(&inner.sched);
    let new_slots = specs
        .iter()
        .zip(&peeked)
        .filter(|(spec, hit)| hit.is_none() && !sched.flights.contains_key(&spec.spec_hash()))
        .count();
    // Duplicate keys within one submission: the first occurrence creates
    // the flight, later ones merge, so counting distinct keys would be
    // more precise — but counting occurrences is conservative (never
    // admits more than the cap) and simpler to reason about.
    if sched.queue.len() + new_slots > inner.queue_cap {
        inner.rejected.fetch_add(1, Ordering::Relaxed);
        return Err(sched.queue.len());
    }
    let mut tickets = Vec::with_capacity(specs.len());
    for (spec, hit) in specs.iter().zip(peeked) {
        if let Some(outcome) = hit {
            inner.served_memory.fetch_add(1, Ordering::Relaxed);
            tickets.push(Ticket::Ready(Box::new(outcome)));
            continue;
        }
        let key = spec.spec_hash();
        if let Some(flight) = sched.flights.get(&key) {
            inner.merges.fetch_add(1, Ordering::Relaxed);
            tickets.push(Ticket::Merged(Arc::clone(flight)));
            continue;
        }
        let flight = Flight::new();
        sched.flights.insert(key, Arc::clone(&flight));
        sched.queue.push_back(QueuedJob {
            key,
            spec: spec.clone(),
            flight: Arc::clone(&flight),
        });
        inner.work_cv.notify_one();
        tickets.push(Ticket::Enqueued(flight));
    }
    Ok(tickets)
}

fn queue_full_response(queued: usize, inner: &ServerInner) -> RouteResult {
    (
        429,
        vec![("Retry-After", "1".to_string())],
        JsonValue::object()
            .field("error", "queue full")
            .field("queued", queued)
            .field("queue_cap", inner.queue_cap)
            .build()
            .to_string(),
    )
}

fn handle_cell(request: &Request, inner: &Arc<ServerInner>) -> RouteResult {
    let Some(text) = request.body_text() else {
        return (400, Vec::new(), error_body("body is not UTF-8"));
    };
    let parsed = match JsonValue::parse(text) {
        Ok(parsed) => parsed,
        Err(err) => {
            return (
                400,
                Vec::new(),
                error_body(&format!("body is not JSON: {err}")),
            );
        }
    };
    let spec = match CellSpec::from_json(&parsed) {
        Ok(spec) => spec,
        Err(err) => return (400, Vec::new(), error_body(&err)),
    };
    if !spec.cacheable() {
        return (
            400,
            Vec::new(),
            error_body("fuzz cells mutate an on-disk corpus and cannot be served"),
        );
    }
    let tickets = match submit_cells(inner, std::slice::from_ref(&spec)) {
        Ok(tickets) => tickets,
        Err(queued) => return queue_full_response(queued, inner),
    };
    let (mut outcome, served) = tickets[0].wait();
    outcome.origin = spec.label.describe();
    if let Some(error) = &outcome.error {
        let body = JsonValue::object()
            .field("origin", "cell")
            .field("cell", spec.label.describe())
            .field("error", error.as_str())
            .build();
        return (500, Vec::new(), body.to_string());
    }
    let body = JsonValue::object()
        .field("served", served)
        .field("cell", cell_json(&spec.label, &outcome))
        .build();
    (200, Vec::new(), body.to_string())
}

/// The validated, whitelisted `POST /experiment` flag surface. Every
/// field is checked *before* the experiment's own `build` runs, because
/// build functions are CLI code: on a bad flag they call
/// `process::exit`, which must never happen inside the daemon.
struct ExperimentRequest {
    spec: crate::ExperimentSpec,
    params: ExpParams,
    wait: bool,
}

fn parse_experiment_request(parsed: &JsonValue) -> Result<ExperimentRequest, String> {
    const KNOWN: [&str; 14] = [
        "name",
        "txs",
        "seed",
        "jobs",
        "cores",
        "bench",
        "scheme",
        "points",
        "point",
        "fault",
        "torn_keep",
        "battery_bytes",
        "arrival",
        "wait",
    ];
    let JsonValue::Obj(fields) = parsed else {
        return Err("experiment request must be a JSON object".to_string());
    };
    for (key, _) in fields {
        if !KNOWN.contains(&key.as_str()) {
            return Err(format!(
                "unknown field {key:?} (known: {})",
                KNOWN.join(" ")
            ));
        }
    }
    let name = parsed
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or("experiment request needs a string \"name\"")?;
    let spec = registry::find(name).ok_or_else(|| {
        format!(
            "unknown experiment {name:?} (known: {})",
            registry::names().join(" ")
        )
    })?;
    if spec.name == "fuzz" {
        return Err(
            "fuzz mutates an on-disk corpus and is not memoizable; run it through the CLI"
                .to_string(),
        );
    }
    let uint = |key: &str| -> Result<Option<u64>, String> {
        match parsed.get(key) {
            None | Some(JsonValue::Null) => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("{key:?} must be a non-negative integer")),
        }
    };
    let names = |key: &str| -> Result<Option<Vec<String>>, String> {
        match parsed.get(key) {
            None | Some(JsonValue::Null) => Ok(None),
            Some(JsonValue::Str(list)) => Ok(Some(list.split(',').map(str::to_string).collect())),
            Some(JsonValue::Arr(items)) => items
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("{key:?} entries must be strings"))
                })
                .collect::<Result<Vec<String>, String>>()
                .map(Some),
            Some(_) => Err(format!("{key:?} must be a string or an array of strings")),
        }
    };

    let mut params = ExpParams::defaults(&spec);
    if let Some(txs) = uint("txs")? {
        params.txs = txs as usize;
    }
    if let Some(seed) = uint("seed")? {
        params.seed = seed;
    }
    if let Some(cores) = uint("cores")? {
        if cores == 0 {
            return Err("\"cores\" must be at least 1".to_string());
        }
        params.cores = cores as usize;
    }
    if let Some(jobs) = uint("jobs")? {
        // Accepted for CLI parity; the worker pool is the daemon's
        // concurrency, so the value only needs to be sane.
        if jobs == 0 {
            return Err("\"jobs\" must be at least 1".to_string());
        }
    }
    if let Some(benches) = names("bench")? {
        for bench in &benches {
            if silo_workloads::workload_by_name(bench).is_none() {
                return Err(format!("unknown workload {bench:?}"));
            }
        }
        params.benches = benches;
    }
    let mut extra: Vec<String> = Vec::new();
    if let Some(schemes) = names("scheme")? {
        for scheme in &schemes {
            if !crate::ALL_SCHEMES.contains(&scheme.as_str()) {
                return Err(format!(
                    "unknown scheme {scheme:?} (known: {})",
                    crate::ALL_SCHEMES.join(" ")
                ));
            }
        }
        extra.push("--scheme".to_string());
        extra.push(schemes.join(","));
    }
    let fault = match parsed.get("fault") {
        None | Some(JsonValue::Null) => None,
        Some(v) => {
            let fault = v.as_str().ok_or("\"fault\" must be a string")?;
            if !["op-boundary", "torn-line", "battery"].contains(&fault) {
                return Err(format!(
                    "unknown fault model {fault:?} (known: op-boundary torn-line battery)"
                ));
            }
            extra.push("--fault".to_string());
            extra.push(fault.to_string());
            Some(fault)
        }
    };
    if let Some(points) = uint("points")? {
        if points == 0 {
            return Err("\"points\" must be positive".to_string());
        }
        extra.push("--points".to_string());
        extra.push(points.to_string());
    }
    if let Some(point) = uint("point")? {
        if fault.is_none() {
            return Err(
                "\"point\" requires exactly one \"fault\": op-boundary points are cycles \
                 while torn-line/battery points are durability-event indices"
                    .to_string(),
            );
        }
        extra.push("--point".to_string());
        extra.push(point.to_string());
    }
    if let Some(keep) = uint("torn_keep")? {
        extra.push("--torn-keep".to_string());
        extra.push(keep.to_string());
    }
    if let Some(bytes) = uint("battery_bytes")? {
        extra.push("--battery-bytes".to_string());
        extra.push(bytes.to_string());
    }
    if let Some(arrival) = parsed.get("arrival") {
        if !matches!(arrival, JsonValue::Null) {
            let ident = arrival.as_str().ok_or("\"arrival\" must be a string")?;
            silo_workloads::ArrivalProcess::parse(ident)
                .ok_or_else(|| format!("unknown arrival process {ident:?}"))?;
            extra.push("--arrival".to_string());
            extra.push(ident.to_string());
        }
    }
    params.extra = extra;
    let wait = match parsed.get("wait") {
        None | Some(JsonValue::Null) => true,
        Some(v) => v.as_bool().ok_or("\"wait\" must be a boolean")?,
    };
    Ok(ExperimentRequest { spec, params, wait })
}

/// Tallies how a finished experiment's cells were served.
fn served_counts(labels: &[&'static str]) -> JsonValue {
    let count = |what: &str| labels.iter().filter(|l| **l == what).count();
    JsonValue::object()
        .field("memory", count("memory"))
        .field("disk", count("disk"))
        .field("executed", count("executed"))
        .field("merged", count("merged"))
        .build()
}

/// One finished cell's progress payload: how it was served plus the
/// probe-layer counters (simulated cycles, committed transactions) when a
/// simulation ran.
fn done_cell_json(label: &CellLabel, outcome: &CellOutcome, served: &'static str) -> JsonValue {
    let mut obj = JsonValue::object()
        .field("cell", label.describe())
        .field("state", "done")
        .field("served", served);
    if let Some(stats) = &outcome.stats {
        obj = obj
            .field("sim_cycles", stats.sim_cycles.as_u64())
            .field("txs_committed", stats.txs_committed);
    }
    if let Some(error) = &outcome.error {
        obj = obj.field("error", error.as_str());
    }
    obj.build()
}

fn handle_experiment(request: &Request, inner: &Arc<ServerInner>) -> RouteResult {
    let Some(text) = request.body_text() else {
        return (400, Vec::new(), error_body("body is not UTF-8"));
    };
    let parsed = match JsonValue::parse(text) {
        Ok(parsed) => parsed,
        Err(err) => {
            return (
                400,
                Vec::new(),
                error_body(&format!("body is not JSON: {err}")),
            );
        }
    };
    let req = match parse_experiment_request(&parsed) {
        Ok(req) => req,
        Err(err) => return (400, Vec::new(), error_body(&err)),
    };
    // The flag surface was validated, so `build` cannot hit its
    // `process::exit` paths; a panic here is still a daemon bug worth
    // surfacing as a 500 rather than a dead process.
    let cells = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        req.spec.build(&req.params)
    })) {
        Ok(cells) => cells,
        Err(_) => {
            return (
                500,
                Vec::new(),
                error_body(&format!("building {} panicked", req.spec.name)),
            );
        }
    };
    if cells.iter().any(|c| !c.cacheable()) {
        return (
            400,
            Vec::new(),
            error_body("experiment builds uncacheable cells; run it through the CLI"),
        );
    }
    let tickets = match submit_cells(inner, &cells) {
        Ok(tickets) => tickets,
        Err(queued) => return queue_full_response(queued, inner),
    };
    let job = Arc::new(JobState {
        name: req.spec.name,
        labels: cells.iter().map(|c| c.label.describe()).collect(),
        cells_done: Mutex::new(vec![None; tickets.len()]),
        tickets,
        result: Mutex::new(None),
    });
    if req.wait {
        collect_job(&job, &cells, &req.spec, &req.params);
        return job_response(&job);
    }
    let id = inner.next_job.fetch_add(1, Ordering::Relaxed);
    lock_clean(&inner.jobs).insert(id, Arc::clone(&job));
    {
        let job = Arc::clone(&job);
        let spec = req.spec;
        let params = req.params;
        std::thread::spawn(move || collect_job(&job, &cells, &spec, &params));
    }
    let body = JsonValue::object()
        .field("job", id)
        .field("experiment", job.name)
        .field("cells", job.labels.len())
        .build();
    (202, Vec::new(), body.to_string())
}

/// Waits every ticket in cell order, recording per-cell completion, then
/// renders and stores the final result.
fn collect_job(
    job: &JobState,
    cells: &[CellSpec],
    spec: &crate::ExperimentSpec,
    params: &ExpParams,
) {
    let mut finished: Vec<(CellLabel, CellOutcome)> = Vec::with_capacity(cells.len());
    let mut served: Vec<&'static str> = Vec::with_capacity(cells.len());
    for (i, (ticket, cell)) in job.tickets.iter().zip(cells).enumerate() {
        let (mut outcome, how) = ticket.wait();
        outcome.origin = cell.label.describe();
        lock_clean(&job.cells_done)[i] = Some(done_cell_json(&cell.label, &outcome, how));
        served.push(how);
        finished.push((cell.label.clone(), outcome));
    }
    let result = render_finished_checked(spec, params, &finished)
        .map(|run| (run.text, run.body, served_counts(&served)));
    *lock_clean(&job.result) = Some(result);
}

/// The final response for a finished (or failed) experiment job.
fn job_response(job: &JobState) -> RouteResult {
    let result = lock_clean(&job.result);
    match result.as_ref() {
        None => (
            202,
            Vec::new(),
            JsonValue::object()
                .field("experiment", job.name)
                .field("state", "running")
                .build()
                .to_string(),
        ),
        Some(Ok((text, report, served))) => {
            let body = JsonValue::object()
                .field("experiment", job.name)
                .field("text", text.as_str())
                .field("report", report.clone())
                .field("served", served.clone())
                .build();
            (200, Vec::new(), body.to_string())
        }
        Some(Err(err)) => {
            let mut obj = JsonValue::object()
                .field("experiment", job.name)
                .field("origin", err.origin_kind());
            if let ExperimentError::Cell { origin, .. } = err {
                obj = obj.field("cell", origin.as_str());
            }
            let body = obj.field("error", err.message()).build();
            (500, Vec::new(), body.to_string())
        }
    }
}

fn find_job(id_text: &str, inner: &ServerInner) -> Result<Arc<JobState>, RouteResult> {
    let Ok(id) = id_text.parse::<u64>() else {
        return Err((
            400,
            Vec::new(),
            error_body(&format!("bad job id {id_text:?}")),
        ));
    };
    match lock_clean(&inner.jobs).get(&id) {
        Some(job) => Ok(Arc::clone(job)),
        None => Err((404, Vec::new(), error_body(&format!("no such job {id}")))),
    }
}

fn handle_progress(id_text: &str, inner: &Arc<ServerInner>) -> RouteResult {
    let job = match find_job(id_text, inner) {
        Ok(job) => job,
        Err(resp) => return resp,
    };
    let done = lock_clean(&job.cells_done);
    let mut cells = Vec::with_capacity(job.tickets.len());
    let mut done_count = 0usize;
    for ((ticket, label), done_cell) in job.tickets.iter().zip(&job.labels).zip(done.iter()) {
        match done_cell {
            Some(cell) => {
                done_count += 1;
                cells.push(cell.clone());
            }
            None => {
                cells.push(
                    JsonValue::object()
                        .field("cell", label.as_str())
                        .field("state", ticket.state_name())
                        .build(),
                );
            }
        }
    }
    drop(done);
    let complete = lock_clean(&job.result).is_some();
    let body = JsonValue::object()
        .field("experiment", job.name)
        .field("done", done_count)
        .field("total", job.tickets.len())
        .field("complete", complete)
        .field("cells", JsonValue::Arr(cells))
        .build();
    (200, Vec::new(), body.to_string())
}

fn handle_result(id_text: &str, inner: &Arc<ServerInner>) -> RouteResult {
    match find_job(id_text, inner) {
        Ok(job) => job_response(&job),
        Err(resp) => resp,
    }
}

fn stats_body(inner: &ServerInner) -> String {
    let (queue_depth, flights) = {
        let sched = lock_clean(&inner.sched);
        (sched.queue.len(), sched.flights.len())
    };
    let store = inner.store.stats();
    let cache = TraceCache::global().stats();
    JsonValue::object()
        .field("workers", inner.workers)
        .field("queue_cap", inner.queue_cap)
        .field("queue_depth", queue_depth)
        .field("inflight", inner.inflight.load(Ordering::Relaxed))
        .field("flights", flights)
        .field("singleflight_merges", inner.merges.load(Ordering::Relaxed))
        .field("rejected", inner.rejected.load(Ordering::Relaxed))
        .field(
            "served",
            JsonValue::object()
                .field("memory", inner.served_memory.load(Ordering::Relaxed))
                .field("disk", inner.served_disk.load(Ordering::Relaxed))
                .field("executed", inner.served_executed.load(Ordering::Relaxed))
                .build(),
        )
        .field(
            "store",
            JsonValue::object()
                .field("hits", store.hits)
                .field("misses", store.misses)
                .field("invalidated", store.invalidated)
                .field("memory_hits", store.memory_hits)
                .field("memory_len", inner.store.memory_len())
                .build(),
        )
        .field(
            "trace_cache",
            JsonValue::object()
                .field("unique_keys", cache.unique_keys)
                .field("generations", cache.generations)
                .field("hits", cache.hits)
                .build(),
        )
        .field("jobs", lock_clean(&inner.jobs).len())
        .build()
        .to_string()
}

/// The `POST /shutdown` acknowledgement: a snapshot of what is left to
/// drain. Computed (and sent) before [`begin_shutdown`] flips the flag.
fn shutdown_body(inner: &Arc<ServerInner>) -> RouteResult {
    let queued = lock_clean(&inner.sched).queue.len();
    let body = JsonValue::object()
        .field("state", "draining")
        .field("queued", queued)
        .field("inflight", inner.inflight.load(Ordering::Relaxed))
        .build();
    (200, Vec::new(), body.to_string())
}

/// Flip the shutdown flag and wake everyone who needs to see it: idle
/// workers (condvar) and the accept loop (a self-connect it answers with
/// 503 and then exits on).
fn begin_shutdown(inner: &Arc<ServerInner>) {
    {
        let _sched = lock_clean(&inner.sched);
        inner.shutdown.store(true, Ordering::Release);
        inner.work_cv.notify_all();
    }
    let _ = TcpStream::connect(inner.addr);
}

impl From<Served> for JsonValue {
    fn from(served: Served) -> JsonValue {
        JsonValue::Str(served.name().to_string())
    }
}
