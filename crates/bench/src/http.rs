//! A minimal HTTP/1.1 subset for the serve daemon — `std` only.
//!
//! The daemon needs exactly one shape of conversation: a client connects,
//! sends one request (optionally with a JSON body), receives one response,
//! and the connection closes. So this module implements precisely that —
//! request-line + headers + `Content-Length` body parsing on the server
//! side, and a tiny blocking client for the CLI subcommands and tests.
//! `Transfer-Encoding`, keep-alive, and multipart are deliberately absent;
//! every response carries `Connection: close`.
//!
//! Size caps bound untrusted input: an oversized header block or body is
//! reported as [`ParseError::TooLarge`] so the daemon can answer 413
//! instead of buffering without limit.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Longest accepted request line + header block, in bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body, in bytes. Specs and experiment requests
/// are small; a megabyte is generous.
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method as sent (`GET`, `POST`, ...).
    pub method: String,
    /// The path component, query string included if any.
    pub path: String,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8, if it is UTF-8.
    pub fn body_text(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ParseError {
    /// Malformed request line, header syntax, or premature EOF.
    Malformed(String),
    /// Head or body exceeded the fixed size caps (HTTP 413).
    TooLarge,
    /// The underlying socket failed.
    Io(io::Error),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed(what) => write!(f, "malformed request: {what}"),
            ParseError::TooLarge => f.write_str("request too large"),
            ParseError::Io(err) => write!(f, "request I/O failed: {err}"),
        }
    }
}

/// Reads one request from `stream`.
pub fn read_request(stream: impl Read) -> Result<Request, ParseError> {
    let mut reader = BufReader::new(stream);
    let mut head = 0usize;
    let mut line = String::new();
    let mut read_line =
        |reader: &mut BufReader<_>, head: &mut usize| -> Result<String, ParseError> {
            line.clear();
            let n = reader.read_line(&mut line).map_err(ParseError::Io)?;
            if n == 0 {
                return Err(ParseError::Malformed("unexpected EOF".into()));
            }
            *head += n;
            if *head > MAX_HEAD_BYTES {
                return Err(ParseError::TooLarge);
            }
            Ok(line.trim_end_matches(['\r', '\n']).to_string())
        };

    let request_line = read_line(&mut reader, &mut head)?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::Malformed(format!(
            "bad request line {request_line:?}"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }
    let method = method.to_string();
    let path = path.to_string();

    let mut content_length = 0usize;
    loop {
        let header = read_line(&mut reader, &mut head)?;
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(ParseError::Malformed(format!("bad header {header:?}")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| ParseError::Malformed(format!("bad content-length {value:?}")))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(ParseError::Io)?;
    Ok(Request { method, path, body })
}

/// The standard reason phrase for the status codes the daemon uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Writes one `application/json` response with `Connection: close` and the
/// given extra headers (e.g. `Retry-After`).
pub fn respond(
    mut stream: impl Write,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &str,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// One parsed client-side response.
#[derive(Debug)]
pub struct Response {
    /// The HTTP status code.
    pub status: u16,
    /// Lower-cased `(name, value)` header pairs.
    pub headers: Vec<(String, String)>,
    /// The response body as text.
    pub body: String,
}

impl Response {
    /// The value of `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Blocking one-shot client: connects, sends `method path` with an
/// optional JSON body, reads the full response.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line {status_line:?}"),
            )
        })?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        let header = header.trim_end_matches(['\r', '\n']);
        if n == 0 || header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().ok();
            }
            headers.push((name, value));
        }
    }
    let mut body = String::new();
    match content_length {
        Some(len) => {
            let mut bytes = vec![0u8; len];
            reader.read_exact(&mut bytes)?;
            body = String::from_utf8(bytes)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
        }
        None => {
            reader.read_to_string(&mut body)?;
        }
    }
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /cell HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world";
        let req = read_request(Cursor::new(&raw[..])).expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/cell");
        assert_eq!(req.body_text(), Some("hello world"));
    }

    #[test]
    fn parses_a_bodyless_get() {
        let raw = b"GET /stats HTTP/1.1\r\n\r\n";
        let req = read_request(Cursor::new(&raw[..])).expect("parses");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stats");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        for raw in [
            &b"what even is this\r\n\r\n"[..],
            &b"GET /\r\n\r\n"[..],        // no version
            &b"GET / SPDY/9\r\n\r\n"[..], // wrong protocol
            &b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"[..], // truncated body
            &b"GET / HTTP/1.1\r\nbad header line\r\n\r\n"[..], // colonless header
            &b"POST / HTTP/1.1\r\nContent-Length: many\r\n\r\n"[..], // non-numeric length
            &b""[..],                     // instant EOF
        ] {
            assert!(
                read_request(Cursor::new(raw)).is_err(),
                "{:?} must not parse",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn oversized_head_and_body_report_too_large() {
        let huge_header = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "x".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(
            read_request(Cursor::new(huge_header.into_bytes())),
            Err(ParseError::TooLarge)
        ));
        let huge_body = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", u32::MAX);
        assert!(matches!(
            read_request(Cursor::new(huge_body.into_bytes())),
            Err(ParseError::TooLarge)
        ));
    }

    #[test]
    fn responses_carry_status_length_and_extra_headers() {
        let mut out = Vec::new();
        respond(
            &mut out,
            429,
            &[("Retry-After", "2".to_string())],
            "{\"error\":\"queue full\"}",
        )
        .expect("write");
        let text = String::from_utf8(out).expect("UTF-8");
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Content-Length: 22\r\n"), "{text}");
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(
            text.ends_with("\r\n\r\n{\"error\":\"queue full\"}"),
            "{text}"
        );
    }

    #[test]
    fn client_and_server_sides_round_trip_over_tcp() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let req = read_request(&stream).expect("server parses");
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/echo");
            let body = format!("{{\"got\":{}}}", req.body.len());
            respond(&stream, 200, &[], &body).expect("respond");
        });
        let resp = http_request(addr, "POST", "/echo", Some("0123456789")).expect("client");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "{\"got\":10}");
        assert_eq!(resp.header("connection"), Some("close"));
        server.join().expect("server thread");
    }
}
