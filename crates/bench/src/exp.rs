//! The declarative experiment layer: specs, grid sweeps, and cells.
//!
//! Every figure, table, ablation, and study in this repository is described
//! by an [`ExperimentSpec`]: a name, defaults, and either a declarative
//! [`GridSpec`] (scheme set × workload set × core counts with a metric
//! extractor and a normalization reference — the Fig 11/12 shape) or a
//! custom pair of functions that build the experiment's independent
//! simulation [`CellSpec`]s and render the finished results.
//!
//! The split into *build* → *run* → *render* is what makes the runner
//! parallel without changing a byte of output: cells carry no ordering
//! dependencies, the runner slots each outcome back at its cell index, and
//! rendering consumes outcomes strictly in cell order. Cells are pure data
//! ([`CellSpec`]), so the runner also memoizes them through the persistent
//! [`ResultStore`](crate::ResultStore).

use std::fmt::Write as _;

use silo_sim::SimStats;
use silo_types::JsonValue;

use crate::cellspec::{CellSpec, CellWork, RunSpec, WorkloadSpec};
use crate::format_normalized;

/// Runtime parameters of one experiment invocation.
#[derive(Clone, Debug)]
pub struct ExpParams {
    /// Transaction budget (each experiment interprets it exactly as its
    /// legacy binary did — usually total transactions split across cores).
    pub txs: usize,
    /// Workload generation seed.
    pub seed: u64,
    /// Core count override (used by `compare` only).
    pub cores: usize,
    /// Workload selection (used by `compare` and `crashfuzz`).
    pub benches: Vec<String>,
    /// The raw command line, for experiments with flags beyond the common
    /// set (`crashfuzz`'s fault-model selection). Empty by default;
    /// experiments parse it with [`try_arg`](crate::try_arg).
    pub extra: Vec<String>,
}

impl ExpParams {
    /// Defaults for a spec: its transaction budget, seed 42, and the
    /// `compare` extras at their legacy defaults.
    pub fn defaults(spec: &ExperimentSpec) -> Self {
        ExpParams {
            txs: spec.default_txs,
            seed: 42,
            cores: 8,
            benches: vec!["Hash".into(), "TPCC".into(), "YCSB".into()],
            extra: Vec::new(),
        }
    }
}

/// Identifies one independent simulation within an experiment's grid.
#[derive(Clone, Debug, Default)]
pub struct CellLabel {
    /// Scheme legend name (empty when not scheme-indexed).
    pub scheme: String,
    /// Workload name (empty when not workload-indexed).
    pub workload: String,
    /// Core count of the simulated machine (0 when no machine runs).
    pub cores: usize,
    /// Free-form extra coordinate, e.g. `latency=16` or `batch=4`.
    pub param: String,
}

impl CellLabel {
    /// Label for a scheme × workload × cores cell.
    pub fn swc(scheme: &str, workload: &str, cores: usize) -> Self {
        CellLabel {
            scheme: scheme.to_string(),
            workload: workload.to_string(),
            cores,
            ..CellLabel::default()
        }
    }

    /// Adds the free-form parameter coordinate.
    pub fn with_param(mut self, param: impl Into<String>) -> Self {
        self.param = param.into();
        self
    }

    /// Human-readable cell identity for error messages: the non-empty
    /// coordinates joined, e.g. `Silo/TPCC/8c/batch=4`.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if !self.scheme.is_empty() {
            parts.push(self.scheme.clone());
        }
        if !self.workload.is_empty() {
            parts.push(self.workload.clone());
        }
        if self.cores > 0 {
            parts.push(format!("{}c", self.cores));
        }
        if !self.param.is_empty() {
            parts.push(self.param.clone());
        }
        if parts.is_empty() {
            parts.push("<unlabeled>".to_string());
        }
        parts.join("/")
    }
}

/// What one cell produced: the raw run statistics (when a simulation ran)
/// plus any named metrics computed inside the cell.
#[derive(Clone, Debug, Default)]
pub struct CellOutcome {
    /// Raw statistics of the run, persisted in full into the JSON report.
    pub stats: Option<SimStats>,
    /// Named derived metrics (insertion-ordered).
    pub values: Vec<(String, f64)>,
    /// Set when the cell could not execute (e.g. a stale spec naming a
    /// renamed workload): the message carries the cell key so render
    /// functions can report the failure instead of panicking. Persisted
    /// through the result store like any other outcome field.
    pub error: Option<String>,
    /// Which cell produced this outcome ([`CellLabel::describe`]), stamped
    /// by the runner so accessor failures name the cell instead of dying
    /// anonymously. Display-only: never serialized, never compared.
    pub origin: String,
}

impl CellOutcome {
    /// Wraps a bare run.
    pub fn from_stats(stats: SimStats) -> Self {
        CellOutcome {
            stats: Some(stats),
            ..CellOutcome::default()
        }
    }

    /// A cell that failed to execute, with a message naming the cell key.
    pub fn failed(message: impl Into<String>) -> Self {
        CellOutcome {
            error: Some(message.into()),
            ..CellOutcome::default()
        }
    }

    /// Appends a named metric.
    pub fn with_value(mut self, key: &str, value: f64) -> Self {
        self.values.push((key.to_string(), value));
        self
    }

    /// Looks up a named metric.
    ///
    /// # Panics
    ///
    /// Panics if the metric was not recorded — that is a bug in the
    /// experiment's build/render pairing, not a runtime condition. The
    /// message names the cell, the requested key, and what *was* recorded.
    pub fn value(&self, key: &str) -> f64 {
        self.values
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| {
                let recorded: Vec<&str> = self.values.iter().map(|(k, _)| k.as_str()).collect();
                panic!(
                    "cell {origin}: metric {key:?} not recorded (recorded: {recorded:?})",
                    origin = self.origin_or_unknown(),
                )
            })
    }

    /// The run statistics.
    ///
    /// # Panics
    ///
    /// Panics if the cell carried no simulation; the message names the
    /// cell.
    pub fn stats(&self) -> &SimStats {
        self.stats.as_ref().unwrap_or_else(|| {
            panic!(
                "cell {origin}: ran no simulation, no stats recorded",
                origin = self.origin_or_unknown(),
            )
        })
    }

    fn origin_or_unknown(&self) -> &str {
        if self.origin.is_empty() {
            "<unknown>"
        } else {
            &self.origin
        }
    }
}

/// In-order reader over finished cells, for render functions that walk the
/// grid in the same nested-loop order the build function used.
pub struct Taken<'a> {
    cells: &'a [(CellLabel, CellOutcome)],
    next: usize,
}

impl<'a> Taken<'a> {
    /// Starts at the first cell.
    pub fn new(cells: &'a [(CellLabel, CellOutcome)]) -> Self {
        Taken { cells, next: 0 }
    }

    /// The next outcome in cell order.
    ///
    /// # Panics
    ///
    /// Panics if the build function produced fewer cells than the render
    /// function consumes.
    #[allow(clippy::should_implement_trait)] // not an Iterator: panics at the end by design
    pub fn next(&mut self) -> &'a CellOutcome {
        let cell = self
            .cells
            .get(self.next)
            .unwrap_or_else(|| panic!("render consumed more cells than built ({})", self.next));
        self.next += 1;
        &cell.1
    }

    /// The next outcome's run statistics.
    pub fn next_stats(&mut self) -> &'a SimStats {
        self.next().stats()
    }
}

/// The declarative scheme × workload × cores sweep (the paper's Fig 11/12
/// shape): every combination runs [`run_one_delta`], the chosen metric is
/// extracted, and each (workload, cores) row is normalized to the
/// reference scheme column.
pub struct GridSpec {
    /// Headline printed before the first table.
    pub title: &'static str,
    /// Scheme columns, legend order.
    pub schemes: &'static [&'static str],
    /// Workload rows, x-axis order.
    pub benchmarks: &'static [&'static str],
    /// One normalized table per core count.
    pub core_counts: &'static [usize],
    /// Metric key used in the JSON report.
    pub metric_name: &'static str,
    /// Extracts the plotted metric from a finished run.
    pub metric: fn(&SimStats) -> f64,
    /// Index into `schemes` of the normalization reference column.
    pub reference: usize,
}

/// How an experiment produces its cells and its output.
pub enum ExpKind {
    /// A declarative grid sweep.
    Grid(GridSpec),
    /// Hand-written build/render functions (ablations, studies, tables).
    Custom {
        /// Expands the parameters into independent cell specs.
        build: fn(&ExpParams) -> Vec<CellSpec>,
        /// Renders the text output (byte-identical to the legacy binary)
        /// and returns the experiment's derived values for the report.
        render: fn(&ExpParams, &[(CellLabel, CellOutcome)], &mut String) -> JsonValue,
    },
}

/// A registered experiment: everything `evaluate` needs to list, run,
/// render, and persist it.
pub struct ExperimentSpec {
    /// Registry name (`fig11`, `ablation_flushbit`, ...).
    pub name: &'static str,
    /// The legacy binary under `src/bin/` that this spec replaces; the
    /// binary is now a shim resolving itself through the registry.
    pub legacy_bin: &'static str,
    /// One-line description for `evaluate list`.
    pub description: &'static str,
    /// Default transaction budget (the legacy binary's default).
    pub default_txs: usize,
    /// Grid or custom behaviour.
    pub kind: ExpKind,
}

impl ExperimentSpec {
    /// Expands the parameters into this experiment's independent cell
    /// specs. Grid cells are steady-state deltas on the stock Table II
    /// machine — two grids sweeping the same axes (fig11/fig12) produce
    /// content-identical specs and share one set of memoized results.
    pub fn build(&self, p: &ExpParams) -> Vec<CellSpec> {
        match &self.kind {
            ExpKind::Custom { build, .. } => build(p),
            ExpKind::Grid(grid) => {
                let mut cells = Vec::new();
                for &cores in grid.core_counts {
                    let txs_per_core = (p.txs / cores).max(1);
                    for bench in grid.benchmarks {
                        for scheme in grid.schemes {
                            cells.push(CellSpec::new(
                                CellLabel::swc(scheme, bench, cores),
                                p.seed,
                                CellWork::Delta(RunSpec::table_ii(
                                    scheme,
                                    WorkloadSpec::plain(bench),
                                    cores,
                                    txs_per_core,
                                )),
                            ));
                        }
                    }
                }
                cells
            }
        }
    }

    /// Renders the finished cells into the experiment's text output and
    /// returns its derived (normalized) values for the JSON report.
    pub fn render(
        &self,
        p: &ExpParams,
        cells: &[(CellLabel, CellOutcome)],
        out: &mut String,
    ) -> JsonValue {
        match &self.kind {
            ExpKind::Custom { render, .. } => render(p, cells, out),
            ExpKind::Grid(grid) => {
                let mut taken = Taken::new(cells);
                writeln!(out, "{}", grid.title).unwrap();
                let mut tables = Vec::new();
                for &cores in grid.core_counts {
                    let mut rows = Vec::new();
                    for _bench in grid.benchmarks {
                        let row: Vec<f64> = grid
                            .schemes
                            .iter()
                            .map(|_| (grid.metric)(taken.next_stats()))
                            .collect();
                        rows.push(row);
                    }
                    out.push_str(&format_normalized(
                        &format!("({cores} core{})", if cores == 1 { "" } else { "s" }),
                        &grid
                            .benchmarks
                            .iter()
                            .map(|s| s.to_string())
                            .collect::<Vec<_>>(),
                        grid.schemes,
                        &rows,
                        grid.reference,
                    ));
                    tables.push(grid_table_json(grid, cores, &rows));
                }
                JsonValue::object()
                    .field("metric", grid.metric_name)
                    .field("reference", grid.schemes[grid.reference])
                    .field("tables", JsonValue::Arr(tables))
                    .build()
            }
        }
    }
}

/// One normalized per-core-count table as JSON.
fn grid_table_json(grid: &GridSpec, cores: usize, rows: &[Vec<f64>]) -> JsonValue {
    let norm_rows: Vec<JsonValue> = grid
        .benchmarks
        .iter()
        .zip(rows)
        .map(|(bench, row)| {
            let norm = row[grid.reference];
            JsonValue::object()
                .field("workload", *bench)
                .field("raw", JsonValue::array(row.iter().copied()))
                .field(
                    "normalized",
                    JsonValue::array(row.iter().map(|v| if norm == 0.0 { 0.0 } else { v / norm })),
                )
                .build()
        })
        .collect();
    JsonValue::object()
        .field("cores", cores)
        .field("schemes", JsonValue::array(grid.schemes.iter().copied()))
        .field("rows", JsonValue::Arr(norm_rows))
        .build()
}
