//! Shared harness and experiment framework for the evaluation binaries.
//!
//! Every experiment in this repository is an [`exp::ExperimentSpec`] in the
//! [`registry`]: a declarative description of the simulation grid plus a
//! render function reproducing the paper's tables. The [`runner`] fans the
//! independent grid cells across worker threads, [`report`] persists JSON
//! reports, and the `evaluate` binary (plus the per-figure shims under
//! `src/bin/`) drives it all through [`run_legacy`].
//!
//! The simulation primitives build on [`run_one`]: construct the Table II
//! machine, instantiate a scheme by name, generate a workload's per-core
//! transaction streams, run the engine, and return the statistics. Figures
//! normalize exactly as the paper does (to `Base`, or to a reference
//! configuration).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cellspec;
pub mod exp;
pub mod experiments;
pub mod http;
pub mod probe;
pub mod registry;
pub mod report;
pub mod result_store;
pub mod runner;
pub mod serve;
pub mod trace_cache;

pub use cellspec::{CellSpec, CellWork, ConfigDelta, FaultSpec, RunSpec, SchemeSpec, WorkloadSpec};
pub use exp::{CellLabel, CellOutcome, ExpKind, ExpParams, ExperimentSpec, GridSpec};
pub use probe::{run_profiled, EventTraceSink};
pub use report::{
    render_finished, render_finished_checked, run_experiment, run_experiment_checked, write_report,
    ExperimentError, ExperimentRun,
};
pub use result_store::{ResultStore, ResultStoreStats, Served};
pub use runner::{default_jobs, run_cells, run_cells_with, PanicPolicy};
pub use serve::{ServeOptions, Server};
pub use trace_cache::{TraceCache, TraceCacheStats, TraceKey};

use silo_baselines::{
    BaseScheme, EadrSwLogScheme, FwbScheme, LadScheme, MorLogScheme, SwLogScheme,
};
use silo_core::{SiloOptions, SiloScheme};
use silo_sim::{Engine, LoggingScheme, SimConfig, SimStats, Transaction, TxStreams};
use silo_workloads::Workload;

/// The evaluated designs, in the paper's legend order.
pub const SCHEMES: [&str; 5] = ["Base", "FWB", "MorLog", "LAD", "Silo"];

/// Every implemented scheme, including the software baselines that the
/// figure legends omit. This is the crash-fuzzing sweep set.
pub const ALL_SCHEMES: [&str; 7] = [
    "Base",
    "FWB",
    "MorLog",
    "LAD",
    "SwLog",
    "eADR-SwLog",
    "Silo",
];

/// The figure benchmarks, in the paper's x-axis order.
pub const FIG11_BENCHMARKS: [&str; 7] =
    ["Array", "Btree", "Hash", "Queue", "RBtree", "TPCC", "YCSB"];

/// Instantiates a scheme by its legend name.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn make_scheme(name: &str, config: &SimConfig) -> Box<dyn LoggingScheme> {
    match name {
        "Base" => Box::new(BaseScheme::new(config)),
        "FWB" => Box::new(FwbScheme::new(config)),
        "MorLog" => Box::new(MorLogScheme::new(config)),
        "LAD" => Box::new(LadScheme::new(config)),
        "SwLog" => Box::new(SwLogScheme::new(config)),
        "eADR-SwLog" => Box::new(EadrSwLogScheme::new(config)),
        "Silo" => Box::new(SiloScheme::new(config)),
        other => panic!("unknown scheme {other}"),
    }
}

/// Instantiates Silo with specific mechanisms toggled (ablation studies).
pub fn make_silo_with(config: &SimConfig, options: SiloOptions) -> Box<dyn LoggingScheme> {
    Box::new(SiloScheme::with_options(config, options))
}

/// Runs `workload` under `scheme_name` on the Table II machine. The trace
/// is resolved through the process-wide [`TraceCache`], so repeated calls
/// for the same `(workload, cores, txs, seed)` share one generated
/// artifact.
pub fn run_one(
    scheme_name: &str,
    workload: &dyn Workload,
    cores: usize,
    txs_per_core: usize,
    seed: u64,
) -> SimStats {
    let config = SimConfig::table_ii(cores);
    let trace = TraceCache::global().get_or_build(workload, cores, txs_per_core, seed);
    run_streams(scheme_name, &config, &trace)
}

/// Steady-state measurement of `workload` under `scheme_name`: runs the
/// deterministic workload twice (N and 2N transactions per core) and
/// returns the difference, which excludes the setup transaction and any
/// cold-start effects. This is how every figure generator measures.
pub fn run_one_delta(
    scheme_name: &str,
    workload: &dyn Workload,
    cores: usize,
    txs_per_core: usize,
    seed: u64,
) -> SimStats {
    let config = SimConfig::table_ii(cores);
    let cache = TraceCache::global();
    let short = run_streams(
        scheme_name,
        &config,
        cache.get_or_build(workload, cores, txs_per_core, seed),
    );
    let long = run_streams(
        scheme_name,
        &config,
        cache.get_or_build(workload, cores, txs_per_core * 2, seed),
    );
    long.delta_from(&short)
}

/// Steady-state delta measurement with an explicit scheme factory (for
/// ablations and parameter sweeps). The factory must produce equivalent
/// fresh schemes for both runs.
pub fn run_delta_with(
    config: &SimConfig,
    mut factory: impl FnMut() -> Box<dyn LoggingScheme>,
    workload: &dyn Workload,
    txs_per_core: usize,
    seed: u64,
) -> SimStats {
    let cache = TraceCache::global();
    let mut s1 = factory();
    let short = run_with_scheme(
        s1.as_mut(),
        config,
        cache.get_or_build(workload, config.cores, txs_per_core, seed),
    );
    let mut s2 = factory();
    let long = run_with_scheme(
        s2.as_mut(),
        config,
        cache.get_or_build(workload, config.cores, txs_per_core * 2, seed),
    );
    long.delta_from(&short)
}

/// Runs pre-generated streams (owned `Vec`s or a shared
/// [`silo_sim::TraceSet`]) under `scheme_name` and `config`.
pub fn run_streams(
    scheme_name: &str,
    config: &SimConfig,
    streams: impl Into<TxStreams>,
) -> SimStats {
    let mut scheme = make_scheme(scheme_name, config);
    run_with_scheme(scheme.as_mut(), config, streams)
}

/// Runs pre-generated streams under an explicit scheme instance. When the
/// process-wide [`EventTraceSink`] is enabled (`--trace-events`), the
/// run's event timeline drains into the trace file.
pub fn run_with_scheme(
    scheme: &mut dyn LoggingScheme,
    config: &SimConfig,
    streams: impl Into<TxStreams>,
) -> SimStats {
    let mut engine = Engine::new(config, scheme);
    EventTraceSink::global().attach(engine.machine_mut());
    let outcome = engine.run(streams, None);
    probe::sink_outcome(&outcome);
    outcome.stats
}

/// Renders a normalized table: one row per benchmark, one column per
/// scheme, each cell `value[bench][scheme] / value[bench][reference]`.
///
/// An empty benchmark list renders the title and header only — no
/// `Average` row, so no 0/0 `NaN` cells.
pub fn format_normalized(
    title: &str,
    benches: &[String],
    schemes: &[&str],
    values: &[Vec<f64>],
    reference: usize,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(out, "\n{title}").unwrap();
    write!(out, "{:<10}", "").unwrap();
    for s in schemes {
        write!(out, "{s:>9}").unwrap();
    }
    writeln!(out).unwrap();
    if benches.is_empty() {
        return out;
    }
    let mut sums = vec![0.0; schemes.len()];
    for (b, row) in benches.iter().zip(values) {
        write!(out, "{b:<10}").unwrap();
        let norm = row[reference];
        for (i, v) in row.iter().enumerate() {
            let x = if norm == 0.0 { 0.0 } else { v / norm };
            sums[i] += x;
            write!(out, "{x:>9.3}").unwrap();
        }
        writeln!(out).unwrap();
    }
    write!(out, "{:<10}", "Average").unwrap();
    for s in &sums {
        write!(out, "{:>9.3}", s / benches.len() as f64).unwrap();
    }
    writeln!(out).unwrap();
    out
}

/// Prints [`format_normalized`] to stdout.
pub fn print_normalized(
    title: &str,
    benches: &[String],
    schemes: &[&str],
    values: &[Vec<f64>],
    reference: usize,
) {
    print!(
        "{}",
        format_normalized(title, benches, schemes, values, reference)
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_workloads::workload_by_name;

    #[test]
    fn all_schemes_instantiate() {
        let cfg = SimConfig::table_ii(2);
        for s in ALL_SCHEMES {
            assert_eq!(make_scheme(s, &cfg).name(), s);
        }
        assert!(SCHEMES.iter().all(|s| ALL_SCHEMES.contains(s)));
    }

    #[test]
    #[should_panic(expected = "unknown scheme")]
    fn unknown_scheme_panics() {
        make_scheme("Nope", &SimConfig::table_ii(1));
    }

    #[test]
    fn smoke_run_every_scheme_on_one_workload() {
        let w = workload_by_name("Bank").expect("bank exists");
        for s in SCHEMES {
            let stats = run_one(s, w.as_ref(), 1, 20, 42);
            assert_eq!(stats.txs_committed, 21, "{s}: setup + 20 txs");
            assert!(stats.sim_cycles.as_u64() > 0);
        }
    }
}

/// Wraps a workload so that every `group` consecutive measured
/// transactions execute as **one** transaction, multiplying the write set —
/// the knob behind the paper's Fig 14 large-transaction study.
pub struct Batched<W> {
    inner: W,
    group: usize,
}

impl<W: Workload> Batched<W> {
    /// Groups `group` inner transactions per emitted transaction.
    ///
    /// # Panics
    ///
    /// Panics if `group` is zero.
    pub fn new(inner: W, group: usize) -> Self {
        assert!(group > 0, "group must be positive");
        Batched { inner, group }
    }
}

impl<W: Workload> Workload for Batched<W> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn trace_ident(&self) -> String {
        format!("{}[batch={}]", self.inner.trace_ident(), self.group)
    }

    fn raw_streams(&self, cores: usize, txs_per_core: usize, seed: u64) -> Vec<Vec<Transaction>> {
        // The inner trace resolves through the cache: the five Fig 14
        // batch multipliers often share the same inner stream.
        let raw = TraceCache::global()
            .get_or_build(&self.inner, cores, txs_per_core * self.group, seed)
            .to_vecs();
        raw.into_iter()
            .map(|stream| {
                let mut out = Vec::with_capacity(txs_per_core + 1);
                let mut iter = stream.into_iter();
                // The setup transaction stays as-is.
                if let Some(setup) = iter.next() {
                    out.push(setup);
                }
                let mut ops = Vec::new();
                let mut n = 0;
                for tx in iter {
                    ops.extend_from_slice(tx.ops());
                    n += 1;
                    if n == self.group {
                        out.push(Transaction::new(std::mem::take(&mut ops)));
                        n = 0;
                    }
                }
                if !ops.is_empty() {
                    out.push(Transaction::new(ops));
                }
                out
            })
            .collect()
    }
}

/// Parses a `--flag value` override from an argument list.
///
/// Returns `Ok(None)` when the flag is absent, `Ok(Some(v))` on a
/// well-formed value, and `Err` with a user-facing message when the flag
/// is present but the value is missing or malformed. Malformed overrides
/// must never be silently replaced by the default — an experiment would
/// quietly run with the wrong parameters.
pub fn try_arg<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    let Some(raw) = args.get(i + 1) else {
        return Err(format!("{flag} expects a value"));
    };
    raw.parse()
        .map(Some)
        .map_err(|_| format!("invalid value {raw:?} for {flag}"))
}

fn arg_or_exit<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match try_arg(args, flag) {
        Ok(Some(v)) => v,
        Ok(None) => default,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// Parses `--txs N` style overrides; returns `default` when the flag is
/// absent and exits with an error message on a malformed value.
pub fn arg_usize(args: &[String], flag: &str, default: usize) -> usize {
    arg_or_exit(args, flag, default)
}

/// Parses `--seed S` style `u64` overrides; returns `default` when the
/// flag is absent and exits with an error message on a malformed value.
pub fn arg_u64(args: &[String], flag: &str, default: u64) -> u64 {
    arg_or_exit(args, flag, default)
}

/// Parses a `--flag value` string override; `None` when absent, fatal
/// when the value is missing.
pub fn arg_string(args: &[String], flag: &str) -> Option<String> {
    match try_arg::<String>(args, flag) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// Drives one experiment spec from a parsed command line: applies the
/// `--txs/--seed/--cores/--bench/--jobs` overrides, runs the cells across
/// the workers, prints the rendered text (byte-identical to the serial
/// legacy binary), and, when `--json-dir` names a directory, writes the
/// JSON report there.
pub fn run_cli(spec: &ExperimentSpec, args: &[String]) {
    if args.iter().any(|a| a == "--no-trace-cache") {
        TraceCache::global().set_enabled(false);
    }
    let mut store_on = !args.iter().any(|a| a == "--no-result-store");
    if let Some(path) = arg_string(args, "--trace-events") {
        if let Err(err) = EventTraceSink::global().enable(std::path::Path::new(&path)) {
            eprintln!("error: opening event trace {path}: {err}");
            std::process::exit(1);
        }
        // A replayed outcome emits no events, so a run that asks for the
        // timeline must compute every cell fresh.
        store_on = false;
    }
    ResultStore::global().set_enabled(store_on);
    let mut params = ExpParams::defaults(spec);
    params.txs = arg_usize(args, "--txs", params.txs);
    params.seed = arg_u64(args, "--seed", params.seed);
    params.cores = arg_usize(args, "--cores", params.cores);
    if let Some(list) = arg_string(args, "--bench") {
        params.benches = list.split(',').map(str::to_string).collect();
    }
    params.extra = args.to_vec();
    let jobs = arg_usize(args, "--jobs", default_jobs());
    if jobs == 0 {
        eprintln!("error: --jobs must be at least 1");
        std::process::exit(2);
    }
    let start = std::time::Instant::now();
    let run = run_experiment(spec, &params, jobs);
    print!("{}", run.text);
    if let Some(dir) = arg_string(args, "--json-dir") {
        let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
        match write_report(&run, std::path::Path::new(&dir), jobs, wall_ms) {
            Ok(path) => eprintln!("report: {}", path.display()),
            Err(err) => {
                eprintln!("error: writing report to {dir}: {err}");
                std::process::exit(1);
            }
        }
    }
}

/// Entry point of the legacy shim binaries under `src/bin/`: resolves the
/// binary's own name through the registry and runs it with the process
/// arguments. Output is byte-identical to the pre-framework binary.
pub fn run_legacy(legacy_bin: &str) {
    let spec = registry::find(legacy_bin).unwrap_or_else(|| {
        eprintln!("error: {legacy_bin} is not in the experiment registry");
        std::process::exit(2);
    });
    let args: Vec<String> = std::env::args().collect();
    run_cli(&spec, &args);
}

#[cfg(test)]
mod batched_tests {
    use super::*;
    use silo_workloads::BankWorkload;

    #[test]
    fn batching_multiplies_write_sets() {
        let plain = BankWorkload::default().raw_streams(1, 8, 1);
        let batched = Batched::new(BankWorkload::default(), 4).raw_streams(1, 2, 1);
        // Same setup tx; 2 batched txs covering the same 8 inner txs.
        assert_eq!(batched[0].len(), 3);
        let plain_words: usize = plain[0][1..].iter().map(|t| t.store_count()).sum();
        let batched_words: usize = batched[0][1..].iter().map(|t| t.store_count()).sum();
        assert_eq!(plain_words, batched_words);
        assert!(batched[0][1].store_count() >= 3 * plain[0][1].store_count());
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn arg_parsing() {
        let args = argv(&["bin", "--txs", "500", "--seed", "9"]);
        assert_eq!(arg_usize(&args, "--txs", 100), 500);
        assert_eq!(arg_usize(&args, "--cores", 8), 8);
        assert_eq!(arg_u64(&args, "--seed", 42), 9);
        assert_eq!(arg_u64(&args, "--other", 42), 42);
    }

    #[test]
    fn malformed_arg_values_are_errors_not_defaults() {
        let args = argv(&["bin", "--txs", "5oo"]);
        let err = try_arg::<usize>(&args, "--txs").unwrap_err();
        assert!(err.contains("--txs"), "message names the flag: {err}");
        assert!(err.contains("5oo"), "message shows the bad value: {err}");
        // A flag at the end of the line is missing its value.
        let args = argv(&["bin", "--seed"]);
        let err = try_arg::<u64>(&args, "--seed").unwrap_err();
        assert!(err.contains("expects a value"), "{err}");
        // Negative numbers don't parse as unsigned overrides.
        let args = argv(&["bin", "--seed", "-1"]);
        assert!(try_arg::<u64>(&args, "--seed").is_err());
    }

    #[test]
    fn well_formed_and_absent_args_round_trip() {
        let args = argv(&["bin", "--txs", "500"]);
        assert_eq!(try_arg::<usize>(&args, "--txs").unwrap(), Some(500));
        assert_eq!(try_arg::<usize>(&args, "--cores").unwrap(), None);
        assert_eq!(arg_string(&args, "--bench"), None);
    }

    #[test]
    fn empty_benchmark_list_renders_without_nan() {
        let out = format_normalized("(0 cores)", &[], &["Base", "Silo"], &[], 0);
        assert!(out.contains("(0 cores)"));
        assert!(out.contains("Base"));
        assert!(!out.contains("NaN"), "no 0/0 Average row: {out:?}");
        assert!(!out.contains("Average"));
    }

    #[test]
    fn format_and_print_normalized_agree_on_populated_tables() {
        let benches = vec!["Hash".to_string(), "TPCC".to_string()];
        let values = vec![vec![10.0, 5.0], vec![8.0, 2.0]];
        let out = format_normalized("(2 cores)", &benches, &["Base", "Silo"], &values, 0);
        assert!(out.contains("Hash          1.000    0.500"));
        assert!(out.contains("Average       1.000    0.375"));
        assert!(out.ends_with('\n'));
    }
}
