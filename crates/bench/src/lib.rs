//! Shared harness for the figure/table generators and Criterion benches.
//!
//! Every evaluation binary in `src/bin/` builds on [`run_one`]: construct
//! the Table II machine, instantiate a scheme by name, generate a
//! workload's per-core transaction streams, run the engine, and return the
//! statistics. Figures normalize exactly as the paper does (to `Base`, or
//! to a reference configuration).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use silo_baselines::{BaseScheme, FwbScheme, LadScheme, MorLogScheme};
use silo_core::{SiloOptions, SiloScheme};
use silo_sim::{Engine, LoggingScheme, SimConfig, SimStats, Transaction};
use silo_workloads::Workload;

/// The evaluated designs, in the paper's legend order.
pub const SCHEMES: [&str; 5] = ["Base", "FWB", "MorLog", "LAD", "Silo"];

/// The figure benchmarks, in the paper's x-axis order.
pub const FIG11_BENCHMARKS: [&str; 7] =
    ["Array", "Btree", "Hash", "Queue", "RBtree", "TPCC", "YCSB"];

/// Instantiates a scheme by its legend name.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn make_scheme(name: &str, config: &SimConfig) -> Box<dyn LoggingScheme> {
    match name {
        "Base" => Box::new(BaseScheme::new(config)),
        "FWB" => Box::new(FwbScheme::new(config)),
        "MorLog" => Box::new(MorLogScheme::new(config)),
        "LAD" => Box::new(LadScheme::new(config)),
        "Silo" => Box::new(SiloScheme::new(config)),
        other => panic!("unknown scheme {other}"),
    }
}

/// Instantiates Silo with specific mechanisms toggled (ablation studies).
pub fn make_silo_with(config: &SimConfig, options: SiloOptions) -> Box<dyn LoggingScheme> {
    Box::new(SiloScheme::with_options(config, options))
}

/// Runs `workload` under `scheme_name` on the Table II machine.
pub fn run_one(
    scheme_name: &str,
    workload: &dyn Workload,
    cores: usize,
    txs_per_core: usize,
    seed: u64,
) -> SimStats {
    let config = SimConfig::table_ii(cores);
    run_streams(
        scheme_name,
        &config,
        workload.generate(cores, txs_per_core, seed),
    )
}

/// Steady-state measurement of `workload` under `scheme_name`: runs the
/// deterministic workload twice (N and 2N transactions per core) and
/// returns the difference, which excludes the setup transaction and any
/// cold-start effects. This is how every figure generator measures.
pub fn run_one_delta(
    scheme_name: &str,
    workload: &dyn Workload,
    cores: usize,
    txs_per_core: usize,
    seed: u64,
) -> SimStats {
    let config = SimConfig::table_ii(cores);
    let short = run_streams(scheme_name, &config, workload.generate(cores, txs_per_core, seed));
    let long = run_streams(
        scheme_name,
        &config,
        workload.generate(cores, txs_per_core * 2, seed),
    );
    long.delta_from(&short)
}

/// Steady-state delta measurement with an explicit scheme factory (for
/// ablations and parameter sweeps). The factory must produce equivalent
/// fresh schemes for both runs.
pub fn run_delta_with(
    config: &SimConfig,
    mut factory: impl FnMut() -> Box<dyn LoggingScheme>,
    workload: &dyn Workload,
    txs_per_core: usize,
    seed: u64,
) -> SimStats {
    let mut s1 = factory();
    let short = run_with_scheme(s1.as_mut(), config, workload.generate(config.cores, txs_per_core, seed));
    let mut s2 = factory();
    let long = run_with_scheme(
        s2.as_mut(),
        config,
        workload.generate(config.cores, txs_per_core * 2, seed),
    );
    long.delta_from(&short)
}

/// Runs pre-generated streams under `scheme_name` and `config`.
pub fn run_streams(
    scheme_name: &str,
    config: &SimConfig,
    streams: Vec<Vec<Transaction>>,
) -> SimStats {
    let mut scheme = make_scheme(scheme_name, config);
    Engine::new(config, scheme.as_mut()).run(streams, None).stats
}

/// Runs pre-generated streams under an explicit scheme instance.
pub fn run_with_scheme(
    scheme: &mut dyn LoggingScheme,
    config: &SimConfig,
    streams: Vec<Vec<Transaction>>,
) -> SimStats {
    Engine::new(config, scheme).run(streams, None).stats
}

/// Prints a normalized table: one row per benchmark, one column per
/// scheme, each cell `value[bench][scheme] / value[bench][reference]`.
pub fn print_normalized(
    title: &str,
    benches: &[String],
    schemes: &[&str],
    values: &[Vec<f64>],
    reference: usize,
) {
    println!("\n{title}");
    print!("{:<10}", "");
    for s in schemes {
        print!("{s:>9}");
    }
    println!();
    let mut sums = vec![0.0; schemes.len()];
    for (b, row) in benches.iter().zip(values) {
        print!("{b:<10}");
        let norm = row[reference];
        for (i, v) in row.iter().enumerate() {
            let x = if norm == 0.0 { 0.0 } else { v / norm };
            sums[i] += x;
            print!("{x:>9.3}");
        }
        println!();
    }
    print!("{:<10}", "Average");
    for s in &sums {
        print!("{:>9.3}", s / benches.len() as f64);
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_workloads::workload_by_name;

    #[test]
    fn all_schemes_instantiate() {
        let cfg = SimConfig::table_ii(2);
        for s in SCHEMES {
            assert_eq!(make_scheme(s, &cfg).name(), s);
        }
    }

    #[test]
    #[should_panic(expected = "unknown scheme")]
    fn unknown_scheme_panics() {
        make_scheme("Nope", &SimConfig::table_ii(1));
    }

    #[test]
    fn smoke_run_every_scheme_on_one_workload() {
        let w = workload_by_name("Bank").expect("bank exists");
        for s in SCHEMES {
            let stats = run_one(s, w.as_ref(), 1, 20, 42);
            assert_eq!(stats.txs_committed, 21, "{s}: setup + 20 txs");
            assert!(stats.sim_cycles.as_u64() > 0);
        }
    }
}

/// Wraps a workload so that every `group` consecutive measured
/// transactions execute as **one** transaction, multiplying the write set —
/// the knob behind the paper's Fig 14 large-transaction study.
pub struct Batched<W> {
    inner: W,
    group: usize,
}

impl<W: Workload> Batched<W> {
    /// Groups `group` inner transactions per emitted transaction.
    ///
    /// # Panics
    ///
    /// Panics if `group` is zero.
    pub fn new(inner: W, group: usize) -> Self {
        assert!(group > 0, "group must be positive");
        Batched { inner, group }
    }
}

impl<W: Workload> Workload for Batched<W> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn generate(
        &self,
        cores: usize,
        txs_per_core: usize,
        seed: u64,
    ) -> Vec<Vec<Transaction>> {
        let raw = self.inner.generate(cores, txs_per_core * self.group, seed);
        raw.into_iter()
            .map(|stream| {
                let mut out = Vec::with_capacity(txs_per_core + 1);
                let mut iter = stream.into_iter();
                // The setup transaction stays as-is.
                if let Some(setup) = iter.next() {
                    out.push(setup);
                }
                let mut ops = Vec::new();
                let mut n = 0;
                for tx in iter {
                    ops.extend_from_slice(tx.ops());
                    n += 1;
                    if n == self.group {
                        out.push(Transaction::new(std::mem::take(&mut ops)));
                        n = 0;
                    }
                }
                if !ops.is_empty() {
                    out.push(Transaction::new(ops));
                }
                out
            })
            .collect()
    }
}

/// Parses `--txs N` style overrides from a binary's argument list; returns
/// `default` when absent.
pub fn arg_usize(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod batched_tests {
    use super::*;
    use silo_workloads::BankWorkload;

    #[test]
    fn batching_multiplies_write_sets() {
        let plain = BankWorkload::default().generate(1, 8, 1);
        let batched = Batched::new(BankWorkload::default(), 4).generate(1, 2, 1);
        // Same setup tx; 2 batched txs covering the same 8 inner txs.
        assert_eq!(batched[0].len(), 3);
        let plain_words: usize = plain[0][1..].iter().map(|t| t.store_count()).sum();
        let batched_words: usize = batched[0][1..].iter().map(|t| t.store_count()).sum();
        assert_eq!(plain_words, batched_words);
        assert!(batched[0][1].store_count() >= 3 * plain[0][1].store_count());
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["bin", "--txs", "500"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg_usize(&args, "--txs", 100), 500);
        assert_eq!(arg_usize(&args, "--cores", 8), 8);
    }
}
