//! Experiment execution and JSON report persistence.
//!
//! [`run_experiment`] is the one entry point both `evaluate` and the
//! legacy shim binaries use: build cells, fan them out, render. The
//! resulting [`ExperimentRun`] carries the text output (byte-identical to
//! the pre-framework serial binaries) and the deterministic report body;
//! [`write_report`] stamps on the non-deterministic envelope (wall time,
//! worker count) and writes `<dir>/<name>.json`.

use std::io;
use std::path::{Path, PathBuf};

use silo_sim::SimConfig;
use silo_types::JsonValue;

use crate::exp::{CellLabel, CellOutcome, ExpParams, ExperimentSpec};
use crate::runner::{run_cells_with, PanicPolicy};

/// Everything one experiment invocation produced.
pub struct ExperimentRun {
    /// Registry name of the experiment.
    pub name: &'static str,
    /// The rendered text tables, exactly as the legacy binary printed them.
    pub text: String,
    /// The deterministic report body: params, config fingerprint, per-cell
    /// raw stats, and the experiment's derived (normalized) values.
    /// Identical for identical `(spec, params)` regardless of `jobs`.
    pub body: JsonValue,
}

/// Why an experiment run failed, with enough provenance to map onto an
/// exit code (CLI) or a 500-with-origin body (daemon).
#[derive(Clone, Debug)]
pub enum ExperimentError {
    /// A cell failed to execute (a captured panic or a recorded error) and
    /// rendering could not proceed.
    Cell {
        /// The failing cell's label, as [`CellLabel::describe`] prints it.
        origin: String,
        /// The cell's recorded error message.
        message: String,
    },
    /// Every cell succeeded but the render step itself panicked.
    Render {
        /// The captured panic message.
        message: String,
    },
}

impl ExperimentError {
    /// `"cell"` or `"render"`: the `origin` field of daemon error bodies.
    pub fn origin_kind(&self) -> &'static str {
        match self {
            ExperimentError::Cell { .. } => "cell",
            ExperimentError::Render { .. } => "render",
        }
    }

    /// The human-readable failure message.
    pub fn message(&self) -> &str {
        match self {
            ExperimentError::Cell { message, .. } => message,
            ExperimentError::Render { message } => message,
        }
    }
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Cell { origin, message } => {
                write!(f, "cell {origin} failed: {message}")
            }
            ExperimentError::Render { message } => write!(f, "render failed: {message}"),
        }
    }
}

/// Builds, runs (across `jobs` workers), and renders one experiment.
pub fn run_experiment(spec: &ExperimentSpec, params: &ExpParams, jobs: usize) -> ExperimentRun {
    let cells = spec.build(params);
    let finished = run_cells_with(cells, jobs, PanicPolicy::Propagate);
    render_finished(spec, params, &finished)
}

/// [`run_experiment`] with explicit panic handling: cells run under
/// `policy`, and render failures come back as a typed
/// [`ExperimentError`] instead of a propagating panic. The CLI maps the
/// two variants to distinct exit codes; the daemon maps them to
/// 500-with-origin JSON bodies.
pub fn run_experiment_checked(
    spec: &ExperimentSpec,
    params: &ExpParams,
    jobs: usize,
    policy: PanicPolicy,
) -> Result<ExperimentRun, ExperimentError> {
    let cells = spec.build(params);
    let finished = run_cells_with(cells, jobs, policy);
    render_finished_checked(spec, params, &finished)
}

/// Renders already-executed cells into an [`ExperimentRun`]. A panic in
/// the experiment's render function propagates; see
/// [`render_finished_checked`].
pub fn render_finished(
    spec: &ExperimentSpec,
    params: &ExpParams,
    finished: &[(CellLabel, CellOutcome)],
) -> ExperimentRun {
    let mut text = String::new();
    let derived = spec.render(params, finished, &mut text);
    ExperimentRun {
        name: spec.name,
        text,
        body: report_body(spec, params, finished, derived),
    }
}

/// [`render_finished`] with the render step guarded: a panic while
/// rendering is attributed to the first failed cell when one exists
/// (render functions panic when they unwrap a failed outcome's metrics),
/// otherwise reported as a genuine render failure.
///
/// Tests can force the render-failure path with the
/// `SILO_TEST_RENDER_PANIC` environment variable.
pub fn render_finished_checked(
    spec: &ExperimentSpec,
    params: &ExpParams,
    finished: &[(CellLabel, CellOutcome)],
) -> Result<ExperimentRun, ExperimentError> {
    let rendered = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if std::env::var_os("SILO_TEST_RENDER_PANIC").is_some() {
            panic!("forced render panic (SILO_TEST_RENDER_PANIC)");
        }
        render_finished(spec, params, finished)
    }));
    match rendered {
        Ok(run) => Ok(run),
        Err(payload) => {
            if let Some((label, outcome)) = finished.iter().find(|(_, o)| o.error.is_some()) {
                return Err(ExperimentError::Cell {
                    origin: label.describe(),
                    message: outcome.error.clone().unwrap_or_default(),
                });
            }
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".to_string());
            Err(ExperimentError::Render { message })
        }
    }
}

pub(crate) fn cell_json(label: &CellLabel, outcome: &CellOutcome) -> JsonValue {
    let mut obj = JsonValue::object();
    if !label.scheme.is_empty() {
        obj = obj.field("scheme", label.scheme.as_str());
    }
    if !label.workload.is_empty() {
        obj = obj.field("workload", label.workload.as_str());
    }
    if label.cores > 0 {
        obj = obj.field("cores", label.cores);
    }
    if !label.param.is_empty() {
        obj = obj.field("param", label.param.as_str());
    }
    if !outcome.values.is_empty() {
        obj = obj.field(
            "values",
            JsonValue::Obj(
                outcome
                    .values
                    .iter()
                    .map(|(k, v)| (k.clone(), JsonValue::Float(*v)))
                    .collect(),
            ),
        );
    }
    if let Some(stats) = &outcome.stats {
        obj = obj.field("stats", stats.to_json());
    }
    obj.build()
}

fn report_body(
    spec: &ExperimentSpec,
    params: &ExpParams,
    finished: &[(CellLabel, CellOutcome)],
    derived: JsonValue,
) -> JsonValue {
    JsonValue::object()
        .field("experiment", spec.name)
        .field("description", spec.description)
        .field("legacy_bin", spec.legacy_bin)
        .field(
            "params",
            JsonValue::object()
                .field("txs", params.txs)
                .field("seed", params.seed)
                .build(),
        )
        .field("config_fingerprint", SimConfig::table_ii(8).fingerprint())
        .field(
            "cells",
            JsonValue::Arr(finished.iter().map(|(l, o)| cell_json(l, o)).collect()),
        )
        .field("derived", derived)
        .build()
}

/// Writes `<dir>/<name>.json`: the deterministic body plus the run
/// envelope (worker count, wall-clock milliseconds). Creates `dir` as
/// needed and returns the report path.
pub fn write_report(
    run: &ExperimentRun,
    dir: &Path,
    jobs: usize,
    wall_ms: f64,
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let mut fields = match &run.body {
        JsonValue::Obj(fields) => fields.clone(),
        other => vec![("body".to_string(), other.clone())],
    };
    fields.push(("jobs".to_string(), JsonValue::Uint(jobs as u64)));
    fields.push(("wall_ms".to_string(), JsonValue::Float(wall_ms)));
    let path = dir.join(format!("{}.json", run.name));
    std::fs::write(&path, format!("{}\n", JsonValue::Obj(fields)))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn runner_determinism_jobs_1_vs_8_byte_identical() {
        // The acceptance-criteria check: same spec + seed must render the
        // same bytes and the same report body at any worker count.
        let spec = registry::find("fig11").expect("fig11 registered");
        let params = ExpParams {
            txs: 60,
            ..ExpParams::defaults(&spec)
        };
        let serial = run_experiment(&spec, &params, 1);
        let parallel = run_experiment(&spec, &params, 8);
        assert_eq!(serial.text, parallel.text);
        assert_eq!(serial.body.to_string(), parallel.body.to_string());
        assert!(!serial.text.is_empty());
    }

    #[test]
    fn report_round_trips_and_carries_raw_stats() {
        let spec = registry::find("study_multi_mc").expect("registered");
        let params = ExpParams {
            txs: 40,
            ..ExpParams::defaults(&spec)
        };
        let run = run_experiment(&spec, &params, 4);
        let dir = std::env::temp_dir().join("silo-report-test");
        let path = write_report(&run, &dir, 4, 12.5).expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        let v = JsonValue::parse(&text).expect("well-formed JSON");
        assert_eq!(
            v.get("experiment").and_then(JsonValue::as_str),
            Some("study_multi_mc")
        );
        assert_eq!(v.get("jobs").and_then(JsonValue::as_f64), Some(4.0));
        let cells = v.get("cells").and_then(JsonValue::as_array).expect("cells");
        assert!(!cells.is_empty());
        let first = &cells[0];
        assert!(
            first.get("stats").and_then(|s| s.get("pm")).is_some(),
            "cells carry full raw stats"
        );
        assert!(v
            .get("config_fingerprint")
            .and_then(JsonValue::as_str)
            .is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
