//! Bench-layer plumbing for the observability subsystem.
//!
//! Two pieces live here:
//!
//! * [`EventTraceSink`] — the process-wide JSONL writer behind the
//!   `--trace-events <path>` flag. Engine runs drain their ring-buffered
//!   timelines into [`silo_sim::RunOutcome::timeline`]; the run helpers in
//!   this crate hand those lines to the sink, which serializes appends
//!   from concurrent `--jobs` workers under one mutex. The trace file is
//!   a debugging artifact, not a report: worker interleaving makes the
//!   *run order* nondeterministic under `--jobs > 1`, so CI determinism
//!   gates compare report bytes, never trace files.
//! * [`run_profiled`] — the cycle-accounting run used by the `profile`
//!   experiment: a **full** (non-delta) run with the machine's
//!   [`CycleAccountant`](silo_sim::ProbeHub) enabled, so the breakdown
//!   invariant `sum(categories) == total cycles` holds exactly.
//!
//! Accounting is enabled per-run, never via global state: `evaluate all`
//! runs `profile` in the same process as the byte-pinned figure
//! experiments, and a leaked flag would grow a `breakdown` field into
//! their reports.

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::{Mutex, OnceLock};

use silo_sim::{
    Engine, Machine, SimConfig, SimStats, DEFAULT_TIMELINE_CAPACITY, TIMELINE_SCHEMA_VERSION,
};
use silo_workloads::Workload;

use crate::{make_scheme, TraceCache};

/// Process-wide sink for drained event timelines (`--trace-events`).
///
/// Disabled (the default) it is inert: [`EventTraceSink::attach`] leaves
/// machines untouched, so engines never record events and runs stay
/// byte-identical to a build without the observability layer.
pub struct EventTraceSink {
    writer: Mutex<Option<BufWriter<File>>>,
}

impl EventTraceSink {
    /// The process-wide instance.
    pub fn global() -> &'static EventTraceSink {
        static GLOBAL: OnceLock<EventTraceSink> = OnceLock::new();
        GLOBAL.get_or_init(|| EventTraceSink {
            writer: Mutex::new(None),
        })
    }

    /// Opens (truncating) the trace file and writes the schema header
    /// line. Every subsequent engine run in this process records and
    /// appends its timeline.
    pub fn enable(&self, path: &Path) -> std::io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        writeln!(
            w,
            "{{\"v\":{TIMELINE_SCHEMA_VERSION},\"stream\":\"silo-events\"}}"
        )?;
        *self.writer.lock().expect("sink lock") = Some(w);
        Ok(())
    }

    /// Whether a trace file is open.
    pub fn is_enabled(&self) -> bool {
        self.writer.lock().expect("sink lock").is_some()
    }

    /// Enables the machine's timeline probe when the sink is active.
    pub fn attach(&self, machine: &mut Machine) {
        if self.is_enabled() {
            machine.probe.enable_timeline(DEFAULT_TIMELINE_CAPACITY);
        }
    }

    /// Appends one run's drained timeline: a run-header line (scheme,
    /// retained event count, events the ring dropped) followed by the
    /// event lines. No-op when disabled.
    pub fn sink(&self, label: &str, lines: &[String], dropped: u64) {
        let mut guard = self.writer.lock().expect("sink lock");
        let Some(w) = guard.as_mut() else { return };
        let _ = writeln!(
            w,
            "{{\"v\":{TIMELINE_SCHEMA_VERSION},\"run\":{},\"events\":{},\"dropped\":{dropped}}}",
            silo_types::JsonValue::Str(label.to_string()),
            lines.len(),
        );
        for line in lines {
            let _ = writeln!(w, "{line}");
        }
        let _ = w.flush();
    }
}

/// Flushes a finished run's timeline (if any) into the global sink.
pub(crate) fn sink_outcome(outcome: &silo_sim::RunOutcome) {
    if let Some((lines, dropped)) = &outcome.timeline {
        EventTraceSink::global().sink(outcome.stats.scheme, lines, *dropped);
    }
}

/// Runs `workload` under `scheme_name` with the cycle accountant enabled:
/// a full run (setup transaction included, no steady-state delta), so the
/// returned [`SimStats::breakdown`] attributes **every** cycle of every
/// core's clock — the `profile` experiment's measurement primitive.
pub fn run_profiled(
    scheme_name: &str,
    workload: &dyn Workload,
    cores: usize,
    txs_per_core: usize,
    seed: u64,
) -> SimStats {
    let config = SimConfig::table_ii(cores);
    let trace = TraceCache::global().get_or_build(workload, cores, txs_per_core, seed);
    let mut scheme = make_scheme(scheme_name, &config);
    let mut engine = Engine::new(&config, scheme.as_mut());
    engine.machine_mut().probe.enable_accounting(cores);
    EventTraceSink::global().attach(engine.machine_mut());
    let outcome = engine.run(&trace, None);
    sink_outcome(&outcome);
    outcome.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_workloads::workload_by_name;

    #[test]
    fn run_profiled_breakdown_sums_to_core_clocks() {
        let w = workload_by_name("Bank").expect("bank exists");
        let stats = run_profiled("Silo", w.as_ref(), 2, 10, 42);
        let b = stats.breakdown.as_ref().expect("accounting enabled");
        assert_eq!(b.per_core.len(), 2);
        for (i, core) in stats.per_core.iter().enumerate() {
            assert_eq!(b.core_total(i), core.cycles.as_u64());
        }
        assert_eq!(
            b.total(),
            stats
                .per_core
                .iter()
                .map(|c| c.cycles.as_u64())
                .sum::<u64>()
        );
    }

    #[test]
    fn unprofiled_runs_carry_no_breakdown() {
        let w = workload_by_name("Bank").expect("bank exists");
        let stats = crate::run_one("Silo", w.as_ref(), 1, 5, 42);
        assert!(stats.breakdown.is_none());
    }
}
