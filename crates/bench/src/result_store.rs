//! The persistent memoized result store behind incremental `evaluate`.
//!
//! Generalizes the in-process [`TraceCache`](crate::TraceCache) idea to
//! *finished cell outcomes*, persisted across processes: every cell is
//! keyed by `(spec hash, trace fingerprint, code fingerprint)` and its
//! outcome is written to `target/result-store/<code-fp>/<spec>-<trace>.json`
//! after first execution. A warm `evaluate` run re-renders every report
//! byte-identically while paying only trace generation, never simulation.
//!
//! The store is **two-tier**: a bounded in-memory LRU of decoded
//! [`CellOutcome`]s sits in front of the on-disk entries, so a hot cell is
//! served without touching the filesystem — the serve daemon's
//! microsecond path ([`ResultStore::peek`]). The CLI leaves the memory
//! tier unbounded (a process never re-runs enough distinct cells to
//! matter); the long-lived daemon caps it ([`ResultStore::set_memory_cap`]).
//!
//! Invalidation is conservative and needs no dependency tracking:
//!
//! * **code fingerprint** — a build-script hash of every workspace source
//!   file ([`build.rs`]); entries live under a per-fingerprint directory,
//!   so *any* source change makes the whole store cold (and `evaluate
//!   store-gc` deletes the orphaned directories);
//! * **trace fingerprint** — the content hashes of the trace sets the cell
//!   consumes, so workload-generator output changes flow into the key even
//!   within one build;
//! * **spec hash** — every execution-relevant parameter of the cell.
//!
//! Corrupt, truncated, or otherwise unparseable entries are treated as
//! misses and recomputed (counted as `invalidated`). Writes go through a
//! unique temp file plus an atomic rename, so a crashed or racing process
//! can never leave a half-written entry that later parses.
//!
//! Like the trace cache, the map lock only resolves the key to a slot;
//! per-slot locks serialize execution of one cell so a spec is executed
//! **exactly once** per process even when racing workers request it, while
//! distinct cells execute concurrently. Every lock recovers from
//! poisoning: a captured cell panic (the daemon's panic isolation) must
//! not wedge the store for later requests.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use silo_sim::SimStats;
use silo_types::JsonValue;

use crate::cellspec::CellSpec;
use crate::exp::CellOutcome;

/// On-disk entry format version; bumped on any layout change so old
/// entries read as corrupt (and recompute) instead of misparsing.
const STORE_VERSION: u64 = 1;

/// Locks a mutex, recovering the data if a previous holder panicked: a
/// captured cell panic poisons the slot it executed under, and the next
/// request must still be servable.
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Process-wide persistent store of finished cell outcomes.
pub struct ResultStore {
    /// Serving and recording toggle. **Starts disabled**: unit tests and
    /// library consumers never touch the filesystem unless the CLI (or a
    /// test) opts in.
    enabled: AtomicBool,
    dir: PathBuf,
    fingerprint: String,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
    memory_hits: AtomicU64,
    slots: Mutex<HashMap<(u64, u64), Arc<Slot>>>,
    memory: Mutex<Lru>,
}

/// Per-key execution lock: holding it while computing a cell makes the
/// execution exactly-once per process. The outcome itself lives in the
/// [`Lru`] memory tier, not the slot, so the tier can be bounded.
#[derive(Default)]
struct Slot {
    running: Mutex<()>,
}

/// A small bounded LRU over decoded outcomes. Eviction scans for the
/// oldest tick — O(n), which is fine at daemon cache sizes (thousands)
/// against multi-millisecond simulations.
struct Lru {
    cap: usize,
    tick: u64,
    map: HashMap<(u64, u64), (CellOutcome, u64)>,
}

impl Lru {
    fn new(cap: usize) -> Lru {
        Lru {
            cap,
            tick: 0,
            map: HashMap::new(),
        }
    }

    fn get(&mut self, key: (u64, u64)) -> Option<CellOutcome> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|(outcome, used)| {
            *used = tick;
            outcome.clone()
        })
    }

    fn insert(&mut self, key: (u64, u64), outcome: CellOutcome) {
        self.tick += 1;
        self.map.insert(key, (outcome, self.tick));
        self.evict();
    }

    fn evict(&mut self) {
        while self.map.len() > self.cap {
            let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| *k)
            else {
                return;
            };
            self.map.remove(&oldest);
        }
    }
}

/// Store effectiveness counters (the `[result-store]` stderr line and the
/// serve daemon's `GET /stats`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResultStoreStats {
    /// Cells served from memory or disk without executing.
    pub hits: u64,
    /// Cells executed because no entry existed.
    pub misses: u64,
    /// Cells executed because their entry was corrupt or unreadable.
    pub invalidated: u64,
    /// The subset of `hits` served from the in-memory tier (no disk I/O).
    pub memory_hits: u64,
}

/// Where a [`ResultStore::get_or_run_traced`] outcome came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Served {
    /// The in-memory LRU tier: microseconds, no disk touched.
    Memory,
    /// Decoded from an on-disk entry: no simulation ran.
    Disk,
    /// Executed fresh (miss, invalidated entry, disabled store, or an
    /// uncacheable spec).
    Executed,
}

impl Served {
    /// Stable lower-case name for JSON payloads (`"memory"`, `"disk"`,
    /// `"executed"`).
    pub fn name(&self) -> &'static str {
        match self {
            Served::Memory => "memory",
            Served::Disk => "disk",
            Served::Executed => "executed",
        }
    }
}

impl ResultStore {
    /// The process-wide store: `target/result-store` (or the
    /// `SILO_RESULT_STORE` directory override, read once at first use),
    /// keyed by this build's source fingerprint. Disabled until the CLI
    /// enables it.
    pub fn global() -> &'static ResultStore {
        static GLOBAL: OnceLock<ResultStore> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let dir = std::env::var_os("SILO_RESULT_STORE")
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("target/result-store"));
            ResultStore::new(dir, env!("SILO_CODE_FINGERPRINT"))
        })
    }

    /// A store rooted at `dir` for the given code fingerprint (tests and
    /// the serve daemon use private instances; the CLI uses
    /// [`ResultStore::global`]).
    pub fn new(dir: PathBuf, fingerprint: &str) -> ResultStore {
        ResultStore {
            enabled: AtomicBool::new(false),
            dir,
            fingerprint: fingerprint.to_string(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            memory_hits: AtomicU64::new(0),
            slots: Mutex::new(HashMap::new()),
            memory: Mutex::new(Lru::new(usize::MAX)),
        }
    }

    /// Turns serving and recording on or off.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether the store serves and records outcomes.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Bounds the in-memory tier to `cap` outcomes, evicting
    /// least-recently-used entries if it is already larger. The CLI
    /// default is unbounded; the serve daemon caps it.
    pub fn set_memory_cap(&self, cap: usize) {
        let mut memory = lock_recovering(&self.memory);
        memory.cap = cap.max(1);
        memory.evict();
    }

    /// Outcomes currently resident in the in-memory tier.
    pub fn memory_len(&self) -> usize {
        lock_recovering(&self.memory).map.len()
    }

    /// Effectiveness counters so far.
    pub fn stats(&self) -> ResultStoreStats {
        ResultStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
        }
    }

    /// A memory-tier hit for `key`, counted, or `None`.
    fn memory_get(&self, key: (u64, u64)) -> Option<CellOutcome> {
        let outcome = lock_recovering(&self.memory).get(key)?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.memory_hits.fetch_add(1, Ordering::Relaxed);
        Some(outcome)
    }

    /// Serves `spec` from the in-memory tier only: `Some` (counted as a
    /// memory hit) when resident, `None` without touching disk or
    /// executing anything. The serve daemon's fast path: a hit here never
    /// waits on a queue slot.
    pub fn peek(&self, spec: &CellSpec) -> Option<CellOutcome> {
        if !self.enabled() || !spec.cacheable() {
            return None;
        }
        self.memory_get((spec.spec_hash(), spec.trace_fingerprint()))
    }

    /// The outcome of `spec`: served from memory, then disk, then computed
    /// by [`CellSpec::execute`] (and persisted). See
    /// [`ResultStore::get_or_run_traced`] for the provenance-reporting
    /// variant.
    pub fn get_or_run(&self, spec: &CellSpec) -> CellOutcome {
        self.get_or_run_traced(spec).0
    }

    /// [`ResultStore::get_or_run`] plus where the outcome came from.
    /// Disabled, it executes unconditionally and touches nothing.
    /// Uncacheable specs ([`CellSpec::cacheable`] — the corpus-mutating
    /// `fuzz` cells) also execute unconditionally: replaying a stored
    /// outcome would skip the corpus side effects the cell exists to
    /// produce.
    ///
    /// The slot lock is held across execution, so concurrent requests for
    /// the same spec run it exactly once per process.
    pub fn get_or_run_traced(&self, spec: &CellSpec) -> (CellOutcome, Served) {
        if !self.enabled() || !spec.cacheable() {
            return (spec.execute(), Served::Executed);
        }
        let key = (spec.spec_hash(), spec.trace_fingerprint());
        if let Some(outcome) = self.memory_get(key) {
            return (outcome, Served::Memory);
        }
        let slot = {
            let mut map = lock_recovering(&self.slots);
            Arc::clone(map.entry(key).or_default())
        };
        let _running = lock_recovering(&slot.running);
        // Whoever held the slot before us filled the memory tier.
        if let Some(outcome) = self.memory_get(key) {
            return (outcome, Served::Memory);
        }
        let path = self.entry_path(key);
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                if let Some(outcome) = decode_entry(&text, key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    lock_recovering(&self.memory).insert(key, outcome.clone());
                    return (outcome, Served::Disk);
                }
                // Corrupt/truncated/stale-format entry: recompute (and
                // overwrite it below with a good one).
                self.invalidated.fetch_add(1, Ordering::Relaxed);
            }
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
            // Unreadable entry (permissions, I/O error): same as corrupt.
            Err(_) => {
                self.invalidated.fetch_add(1, Ordering::Relaxed);
            }
        }
        let outcome = spec.execute();
        // Persistence is best-effort: a read-only disk degrades the store
        // to in-memory memoization, it never fails the experiment.
        let _ = self.persist(&path, encode_entry(&outcome, key));
        lock_recovering(&self.memory).insert(key, outcome.clone());
        (outcome, Served::Executed)
    }

    /// `<dir>/<code fingerprint>/<spec hash>-<trace fingerprint>.json`.
    fn entry_path(&self, key: (u64, u64)) -> PathBuf {
        self.dir
            .join(&self.fingerprint)
            .join(format!("{:016x}-{:016x}.json", key.0, key.1))
    }

    /// Atomic write: unique temp file in the same directory, then rename.
    /// Racing processes write identical bytes, so last-rename-wins is
    /// harmless; a crash mid-write leaves only a `.tmp.*` file that no
    /// reader ever opens.
    fn persist(&self, path: &Path, text: String) -> std::io::Result<()> {
        let dir = path.parent().expect("entry path has a parent");
        std::fs::create_dir_all(dir)?;
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)
    }

    /// Deletes every per-fingerprint subdirectory whose fingerprint is not
    /// this build's (`evaluate store-gc`). Returns `(directories removed,
    /// entries removed)`.
    pub fn gc(&self) -> std::io::Result<(usize, usize)> {
        let mut dirs = 0;
        let mut files = 0;
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok((0, 0)),
            Err(err) => return Err(err),
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if !path.is_dir() || entry.file_name().to_string_lossy() == self.fingerprint {
                continue;
            }
            files += std::fs::read_dir(&path).map(Iterator::count).unwrap_or(0);
            std::fs::remove_dir_all(&path)?;
            dirs += 1;
        }
        Ok((dirs, files))
    }
}

/// Serializes an outcome for the store. Metric values are stored as the
/// `f64` **bit pattern** (a JSON integer): the report layer formats the
/// floats, so the store must reproduce them bit-exactly — including the
/// non-finite values (`endurance` stores `inf` lifetimes) that JSON text
/// cannot carry as numbers.
fn encode_entry(outcome: &CellOutcome, key: (u64, u64)) -> String {
    let values = JsonValue::Arr(
        outcome
            .values
            .iter()
            .map(|(k, v)| JsonValue::Arr(vec![JsonValue::Str(k.clone()), v.to_bits().into()]))
            .collect(),
    );
    let mut obj = JsonValue::object()
        .field("v", STORE_VERSION)
        .field("spec", format!("{:016x}", key.0))
        .field("trace", format!("{:016x}", key.1))
        .field("values", values);
    if let Some(stats) = &outcome.stats {
        obj = obj.field("stats", stats.to_json());
    }
    if let Some(error) = &outcome.error {
        obj = obj.field("error", error.as_str());
    }
    let mut text = obj.build().to_string();
    text.push('\n');
    text
}

/// Rebuilds an outcome from its stored form. `None` on *any* anomaly —
/// wrong version, key mismatch (hash collision on the truncated file
/// name), malformed values, unknown scheme, or a stats counter that fails
/// the strict [`SimStats::from_json`] parse — and the caller recomputes.
fn decode_entry(text: &str, key: (u64, u64)) -> Option<CellOutcome> {
    let v = JsonValue::parse(text).ok()?;
    if v.get("v").and_then(JsonValue::as_u64) != Some(STORE_VERSION)
        || v.get("spec").and_then(JsonValue::as_str) != Some(&format!("{:016x}", key.0))
        || v.get("trace").and_then(JsonValue::as_str) != Some(&format!("{:016x}", key.1))
    {
        return None;
    }
    let mut values = Vec::new();
    for pair in v.get("values")?.as_array()? {
        let [k, bits] = pair.as_array()? else {
            return None;
        };
        values.push((k.as_str()?.to_string(), f64::from_bits(bits.as_u64()?)));
    }
    let stats = match v.get("stats") {
        Some(s) => {
            // SimStats stores its scheme as `&'static str`: intern the
            // stored name against the known-scheme table first. An unknown
            // name means a stale or foreign entry — recompute.
            let name = s.get("scheme").and_then(JsonValue::as_str)?;
            let interned = crate::ALL_SCHEMES.iter().find(|s| **s == name)?;
            Some(SimStats::from_json(s, interned)?)
        }
        None => None,
    };
    let error = match v.get("error") {
        Some(e) => Some(e.as_str()?.to_string()),
        None => None,
    };
    Some(CellOutcome {
        stats,
        values,
        error,
        ..CellOutcome::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cellspec::{CellWork, RunSpec, WorkloadSpec};
    use crate::exp::CellLabel;

    fn tmp_store(tag: &str) -> ResultStore {
        let dir = std::env::temp_dir().join(format!(
            "silo-result-store-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ResultStore::new(dir, "fp-test")
    }

    fn small_spec(txs: usize) -> CellSpec {
        CellSpec::new(
            CellLabel::swc("Silo", "Bank", 1),
            42,
            CellWork::Delta(RunSpec::table_ii(
                "Silo",
                WorkloadSpec::plain("Bank"),
                1,
                txs,
            )),
        )
    }

    #[test]
    fn disabled_store_executes_and_touches_nothing() {
        let store = tmp_store("disabled");
        let spec = small_spec(3);
        let (out, served) = store.get_or_run_traced(&spec);
        assert!(out.stats.is_some());
        assert_eq!(served, Served::Executed);
        assert_eq!(
            store.stats(),
            ResultStoreStats {
                hits: 0,
                misses: 0,
                invalidated: 0,
                memory_hits: 0
            }
        );
        assert!(!store.dir.exists(), "disabled store must not write");
    }

    #[test]
    fn outcomes_round_trip_bit_exactly() {
        let stats = {
            let spec = small_spec(2);
            spec.execute().stats.clone().unwrap()
        };
        let outcome = CellOutcome {
            stats: Some(stats),
            values: vec![
                ("tp".into(), 0.1 + 0.2),
                ("life".into(), f64::INFINITY),
                ("nan".into(), f64::NAN),
                ("neg".into(), -0.0),
            ],
            ..CellOutcome::default()
        };
        let key = (0xdead_beef, 0xfeed_face);
        let text = encode_entry(&outcome, key);
        let back = decode_entry(&text, key).expect("round trip");
        assert_eq!(back.values.len(), outcome.values.len());
        for ((ka, va), (kb, vb)) in outcome.values.iter().zip(&back.values) {
            assert_eq!(ka, kb);
            assert_eq!(va.to_bits(), vb.to_bits(), "{ka} must survive bit-exactly");
        }
        assert_eq!(
            back.stats.as_ref().unwrap().to_json().to_string(),
            outcome.stats.as_ref().unwrap().to_json().to_string()
        );
        // A key mismatch (same bytes under another name) is rejected.
        assert!(decode_entry(&text, (key.0, key.1 ^ 1)).is_none());
    }

    #[test]
    fn warm_hits_skip_execution_and_survive_processes() {
        let store = tmp_store("warm");
        store.set_enabled(true);
        let spec = small_spec(4);
        let (cold, cold_served) = store.get_or_run_traced(&spec);
        assert_eq!(store.stats().misses, 1);
        assert_eq!(cold_served, Served::Executed);
        // Same process: served from the memory tier.
        let (warm, warm_served) = store.get_or_run_traced(&spec);
        assert_eq!(store.stats().hits, 1);
        assert_eq!(store.stats().memory_hits, 1);
        assert_eq!(warm_served, Served::Memory);
        // "New process": fresh store over the same directory reads disk.
        let fresh = ResultStore::new(store.dir.clone(), "fp-test");
        fresh.set_enabled(true);
        let (disk, disk_served) = fresh.get_or_run_traced(&spec);
        assert_eq!(disk_served, Served::Disk);
        assert_eq!(
            fresh.stats(),
            ResultStoreStats {
                hits: 1,
                misses: 0,
                invalidated: 0,
                memory_hits: 0
            }
        );
        for out in [&warm, &disk] {
            assert_eq!(
                out.stats().to_json().to_string(),
                cold.stats().to_json().to_string()
            );
        }
        let _ = std::fs::remove_dir_all(&store.dir);
    }

    #[test]
    fn peek_serves_memory_only() {
        let store = tmp_store("peek");
        store.set_enabled(true);
        let spec = small_spec(9);
        assert!(store.peek(&spec).is_none(), "cold peek must not execute");
        assert_eq!(store.stats().misses, 0, "peek is not a miss");
        store.get_or_run(&spec);
        let peeked = store.peek(&spec).expect("resident after execution");
        assert!(peeked.stats.is_some());
        assert_eq!(store.stats().memory_hits, 1);
        // A fresh store over the same directory has a cold memory tier:
        // peek stays empty even though the disk entry exists.
        let fresh = ResultStore::new(store.dir.clone(), "fp-test");
        fresh.set_enabled(true);
        assert!(fresh.peek(&spec).is_none(), "peek never reads disk");
        let _ = std::fs::remove_dir_all(&store.dir);
    }

    #[test]
    fn memory_cap_bounds_residency_and_evicts_lru() {
        let store = tmp_store("lru");
        store.set_enabled(true);
        store.set_memory_cap(2);
        let specs: Vec<CellSpec> = (3..6).map(small_spec).collect();
        for spec in &specs {
            store.get_or_run(spec);
        }
        assert_eq!(store.memory_len(), 2, "cap bounds the memory tier");
        // The oldest outcome (specs[0]) was evicted: peek misses, but the
        // disk tier still serves it without re-executing.
        assert!(store.peek(&specs[0]).is_none());
        let (_, served) = store.get_or_run_traced(&specs[0]);
        assert_eq!(served, Served::Disk, "evicted outcome falls to disk");
        // Touching specs[2] makes specs[1] the LRU victim of the reload.
        assert_eq!(store.memory_len(), 2);
        assert!(store.peek(&specs[2]).is_some());
        store.get_or_run(&specs[0]);
        assert!(store.peek(&specs[1]).is_none(), "LRU evicts the coldest");
        let _ = std::fs::remove_dir_all(&store.dir);
    }

    #[test]
    fn corrupt_entries_recompute_instead_of_crashing() {
        let store = tmp_store("corrupt");
        store.set_enabled(true);
        let spec = small_spec(5);
        let good = store.get_or_run(&spec);
        let path = store.entry_path((spec.spec_hash(), spec.trace_fingerprint()));
        let full = std::fs::read_to_string(&path).expect("entry written");
        for bad in [
            "",                                        // empty
            "{",                                       // malformed JSON
            &full[..full.len() / 2],                   // truncated mid-entry
            "{\"v\":999}",                             // future version
            &full.replace("Silo", "Nope"),             // unknown scheme
            &full.replace("sim_cycles", "sim_cyclez"), // renamed counter
        ] {
            std::fs::write(&path, bad).expect("inject corruption");
            let fresh = ResultStore::new(store.dir.clone(), "fp-test");
            fresh.set_enabled(true);
            let out = fresh.get_or_run(&spec);
            assert_eq!(
                fresh.stats().invalidated,
                1,
                "corrupt entry counts as invalidated: {bad:?}"
            );
            assert_eq!(
                out.stats().to_json().to_string(),
                good.stats().to_json().to_string()
            );
            // The recompute heals the entry on disk.
            assert_eq!(std::fs::read_to_string(&path).expect("rewritten"), full);
        }
        let _ = std::fs::remove_dir_all(&store.dir);
    }

    #[test]
    fn code_fingerprint_change_misses_and_gc_prunes() {
        let store = tmp_store("gc");
        store.set_enabled(true);
        let spec = small_spec(6);
        store.get_or_run(&spec);
        assert_eq!(store.stats().misses, 1);
        // A "rebuilt" store with a different fingerprint cannot see the
        // old entry: cold miss, fresh directory.
        let rebuilt = ResultStore::new(store.dir.clone(), "fp-new");
        rebuilt.set_enabled(true);
        rebuilt.get_or_run(&spec);
        assert_eq!(
            rebuilt.stats(),
            ResultStoreStats {
                hits: 0,
                misses: 1,
                invalidated: 0,
                memory_hits: 0
            }
        );
        assert!(store.dir.join("fp-test").is_dir());
        assert!(store.dir.join("fp-new").is_dir());
        // GC from the rebuilt store's perspective drops the stale subdir.
        let (dirs, files) = rebuilt.gc().expect("gc");
        assert_eq!((dirs, files), (1, 1));
        assert!(!store.dir.join("fp-test").exists());
        assert!(store.dir.join("fp-new").is_dir());
        let _ = std::fs::remove_dir_all(&store.dir);
    }

    #[test]
    fn exactly_once_under_racing_workers() {
        let store = tmp_store("race");
        store.set_enabled(true);
        let spec = small_spec(7);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| store.get_or_run(&spec).stats().to_json().to_string()))
                .collect();
            let outs: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert!(outs.windows(2).all(|w| w[0] == w[1]));
        });
        let s = store.stats();
        assert_eq!(s.misses, 1, "one execution");
        assert_eq!(s.hits, 7, "everyone else waits and hits");
        assert_eq!(s.memory_hits, 7, "racers are served from memory");
        let _ = std::fs::remove_dir_all(&store.dir);
    }

    #[test]
    fn poisoned_slot_recovers_for_the_next_request() {
        struct Bomb;
        impl Drop for Bomb {
            fn drop(&mut self) {
                // Poison the store's internal locks by panicking while a
                // get_or_run execution is in flight on this thread.
            }
        }
        let store = tmp_store("poison");
        store.set_enabled(true);
        // A spec whose execution panics (unknown workload) poisons the
        // slot lock it ran under; the identical request afterwards must
        // still execute (and panic again) instead of wedging.
        let bad = CellSpec::new(
            CellLabel::default().with_param("bad"),
            42,
            CellWork::TraceStats {
                workload: "NoSuchWorkload".into(),
                txs: 2,
            },
        );
        for _ in 0..2 {
            let _bomb = Bomb;
            let err =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| store.get_or_run(&bad)))
                    .unwrap_err();
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "?".into());
            assert!(msg.contains("NoSuchWorkload"), "{msg}");
        }
        // A well-formed spec still resolves through the same store.
        let good = store.get_or_run(&small_spec(8));
        assert!(good.stats.is_some());
        let _ = std::fs::remove_dir_all(&store.dir);
    }
}
