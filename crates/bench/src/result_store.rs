//! The persistent memoized result store behind incremental `evaluate`.
//!
//! Generalizes the in-process [`TraceCache`](crate::TraceCache) idea to
//! *finished cell outcomes*, persisted across processes: every cell is
//! keyed by `(spec hash, trace fingerprint, code fingerprint)` and its
//! outcome is written to `target/result-store/<code-fp>/<spec>-<trace>.json`
//! after first execution. A warm `evaluate` run re-renders every report
//! byte-identically while paying only trace generation, never simulation.
//!
//! Invalidation is conservative and needs no dependency tracking:
//!
//! * **code fingerprint** — a build-script hash of every workspace source
//!   file ([`build.rs`]); entries live under a per-fingerprint directory,
//!   so *any* source change makes the whole store cold (and `evaluate
//!   store-gc` deletes the orphaned directories);
//! * **trace fingerprint** — the content hashes of the trace sets the cell
//!   consumes, so workload-generator output changes flow into the key even
//!   within one build;
//! * **spec hash** — every execution-relevant parameter of the cell.
//!
//! Corrupt, truncated, or otherwise unparseable entries are treated as
//! misses and recomputed (counted as `invalidated`). Writes go through a
//! unique temp file plus an atomic rename, so a crashed or racing process
//! can never leave a half-written entry that later parses.
//!
//! Like the trace cache, the map lock only resolves the key to a slot;
//! per-slot locks serialize execution of one cell so a spec is executed
//! **exactly once** per process even when racing workers request it, while
//! distinct cells execute concurrently.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use silo_sim::SimStats;
use silo_types::JsonValue;

use crate::cellspec::CellSpec;
use crate::exp::CellOutcome;

/// On-disk entry format version; bumped on any layout change so old
/// entries read as corrupt (and recompute) instead of misparsing.
const STORE_VERSION: u64 = 1;

/// Process-wide persistent store of finished cell outcomes.
pub struct ResultStore {
    /// Serving and recording toggle. **Starts disabled**: unit tests and
    /// library consumers never touch the filesystem unless the CLI (or a
    /// test) opts in.
    enabled: AtomicBool,
    dir: PathBuf,
    fingerprint: String,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
    slots: Mutex<HashMap<(u64, u64), Arc<Slot>>>,
}

#[derive(Default)]
struct Slot {
    outcome: Mutex<Option<CellOutcome>>,
}

/// Store effectiveness counters (the `[result-store]` stderr line).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResultStoreStats {
    /// Cells served from memory or disk without executing.
    pub hits: u64,
    /// Cells executed because no entry existed.
    pub misses: u64,
    /// Cells executed because their entry was corrupt or unreadable.
    pub invalidated: u64,
}

impl ResultStore {
    /// The process-wide store: `target/result-store` (or the
    /// `SILO_RESULT_STORE` directory override, read once at first use),
    /// keyed by this build's source fingerprint. Disabled until the CLI
    /// enables it.
    pub fn global() -> &'static ResultStore {
        static GLOBAL: OnceLock<ResultStore> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let dir = std::env::var_os("SILO_RESULT_STORE")
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("target/result-store"));
            ResultStore::new(dir, env!("SILO_CODE_FINGERPRINT"))
        })
    }

    /// A store rooted at `dir` for the given code fingerprint (tests use
    /// private instances; the CLI uses [`ResultStore::global`]).
    pub fn new(dir: PathBuf, fingerprint: &str) -> ResultStore {
        ResultStore {
            enabled: AtomicBool::new(false),
            dir,
            fingerprint: fingerprint.to_string(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// Turns serving and recording on or off.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether the store serves and records outcomes.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Effectiveness counters so far.
    pub fn stats(&self) -> ResultStoreStats {
        ResultStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
        }
    }

    /// The outcome of `spec`: served from memory, then disk, then computed
    /// by [`CellSpec::execute`] (and persisted). Disabled, it executes
    /// unconditionally and touches nothing. Uncacheable specs
    /// ([`CellSpec::cacheable`] — the corpus-mutating `fuzz` cells) also
    /// execute unconditionally: replaying a stored outcome would skip the
    /// corpus side effects the cell exists to produce.
    ///
    /// The slot lock is held across execution, so concurrent requests for
    /// the same spec run it exactly once per process.
    pub fn get_or_run(&self, spec: &CellSpec) -> CellOutcome {
        if !self.enabled() || !spec.cacheable() {
            return spec.execute();
        }
        let key = (spec.spec_hash(), spec.trace_fingerprint());
        let slot = {
            let mut map = self.slots.lock().expect("result store map lock");
            Arc::clone(map.entry(key).or_default())
        };
        let mut guard = slot.outcome.lock().expect("result store slot lock");
        if let Some(outcome) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return outcome.clone();
        }
        let path = self.entry_path(key);
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                if let Some(outcome) = decode_entry(&text, key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    *guard = Some(outcome.clone());
                    return outcome;
                }
                // Corrupt/truncated/stale-format entry: recompute (and
                // overwrite it below with a good one).
                self.invalidated.fetch_add(1, Ordering::Relaxed);
            }
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
            // Unreadable entry (permissions, I/O error): same as corrupt.
            Err(_) => {
                self.invalidated.fetch_add(1, Ordering::Relaxed);
            }
        }
        let outcome = spec.execute();
        // Persistence is best-effort: a read-only disk degrades the store
        // to in-memory memoization, it never fails the experiment.
        let _ = self.persist(&path, encode_entry(&outcome, key));
        *guard = Some(outcome.clone());
        outcome
    }

    /// `<dir>/<code fingerprint>/<spec hash>-<trace fingerprint>.json`.
    fn entry_path(&self, key: (u64, u64)) -> PathBuf {
        self.dir
            .join(&self.fingerprint)
            .join(format!("{:016x}-{:016x}.json", key.0, key.1))
    }

    /// Atomic write: unique temp file in the same directory, then rename.
    /// Racing processes write identical bytes, so last-rename-wins is
    /// harmless; a crash mid-write leaves only a `.tmp.*` file that no
    /// reader ever opens.
    fn persist(&self, path: &Path, text: String) -> std::io::Result<()> {
        let dir = path.parent().expect("entry path has a parent");
        std::fs::create_dir_all(dir)?;
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)
    }

    /// Deletes every per-fingerprint subdirectory whose fingerprint is not
    /// this build's (`evaluate store-gc`). Returns `(directories removed,
    /// entries removed)`.
    pub fn gc(&self) -> std::io::Result<(usize, usize)> {
        let mut dirs = 0;
        let mut files = 0;
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok((0, 0)),
            Err(err) => return Err(err),
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if !path.is_dir() || entry.file_name().to_string_lossy() == self.fingerprint {
                continue;
            }
            files += std::fs::read_dir(&path).map(Iterator::count).unwrap_or(0);
            std::fs::remove_dir_all(&path)?;
            dirs += 1;
        }
        Ok((dirs, files))
    }
}

/// Serializes an outcome for the store. Metric values are stored as the
/// `f64` **bit pattern** (a JSON integer): the report layer formats the
/// floats, so the store must reproduce them bit-exactly — including the
/// non-finite values (`endurance` stores `inf` lifetimes) that JSON text
/// cannot carry as numbers.
fn encode_entry(outcome: &CellOutcome, key: (u64, u64)) -> String {
    let values = JsonValue::Arr(
        outcome
            .values
            .iter()
            .map(|(k, v)| JsonValue::Arr(vec![JsonValue::Str(k.clone()), v.to_bits().into()]))
            .collect(),
    );
    let mut obj = JsonValue::object()
        .field("v", STORE_VERSION)
        .field("spec", format!("{:016x}", key.0))
        .field("trace", format!("{:016x}", key.1))
        .field("values", values);
    if let Some(stats) = &outcome.stats {
        obj = obj.field("stats", stats.to_json());
    }
    if let Some(error) = &outcome.error {
        obj = obj.field("error", error.as_str());
    }
    let mut text = obj.build().to_string();
    text.push('\n');
    text
}

/// Rebuilds an outcome from its stored form. `None` on *any* anomaly —
/// wrong version, key mismatch (hash collision on the truncated file
/// name), malformed values, unknown scheme, or a stats counter that fails
/// the strict [`SimStats::from_json`] parse — and the caller recomputes.
fn decode_entry(text: &str, key: (u64, u64)) -> Option<CellOutcome> {
    let v = JsonValue::parse(text).ok()?;
    if v.get("v").and_then(JsonValue::as_u64) != Some(STORE_VERSION)
        || v.get("spec").and_then(JsonValue::as_str) != Some(&format!("{:016x}", key.0))
        || v.get("trace").and_then(JsonValue::as_str) != Some(&format!("{:016x}", key.1))
    {
        return None;
    }
    let mut values = Vec::new();
    for pair in v.get("values")?.as_array()? {
        let [k, bits] = pair.as_array()? else {
            return None;
        };
        values.push((k.as_str()?.to_string(), f64::from_bits(bits.as_u64()?)));
    }
    let stats = match v.get("stats") {
        Some(s) => {
            // SimStats stores its scheme as `&'static str`: intern the
            // stored name against the known-scheme table first. An unknown
            // name means a stale or foreign entry — recompute.
            let name = s.get("scheme").and_then(JsonValue::as_str)?;
            let interned = crate::ALL_SCHEMES.iter().find(|s| **s == name)?;
            Some(SimStats::from_json(s, interned)?)
        }
        None => None,
    };
    let error = match v.get("error") {
        Some(e) => Some(e.as_str()?.to_string()),
        None => None,
    };
    Some(CellOutcome {
        stats,
        values,
        error,
        ..CellOutcome::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cellspec::{CellWork, RunSpec, WorkloadSpec};
    use crate::exp::CellLabel;

    fn tmp_store(tag: &str) -> ResultStore {
        let dir = std::env::temp_dir().join(format!(
            "silo-result-store-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ResultStore::new(dir, "fp-test")
    }

    fn small_spec(txs: usize) -> CellSpec {
        CellSpec::new(
            CellLabel::swc("Silo", "Bank", 1),
            42,
            CellWork::Delta(RunSpec::table_ii(
                "Silo",
                WorkloadSpec::plain("Bank"),
                1,
                txs,
            )),
        )
    }

    #[test]
    fn disabled_store_executes_and_touches_nothing() {
        let store = tmp_store("disabled");
        let spec = small_spec(3);
        let out = store.get_or_run(&spec);
        assert!(out.stats.is_some());
        assert_eq!(
            store.stats(),
            ResultStoreStats {
                hits: 0,
                misses: 0,
                invalidated: 0
            }
        );
        assert!(!store.dir.exists(), "disabled store must not write");
    }

    #[test]
    fn outcomes_round_trip_bit_exactly() {
        let stats = {
            let spec = small_spec(2);
            spec.execute().stats.clone().unwrap()
        };
        let outcome = CellOutcome {
            stats: Some(stats),
            values: vec![
                ("tp".into(), 0.1 + 0.2),
                ("life".into(), f64::INFINITY),
                ("nan".into(), f64::NAN),
                ("neg".into(), -0.0),
            ],
            ..CellOutcome::default()
        };
        let key = (0xdead_beef, 0xfeed_face);
        let text = encode_entry(&outcome, key);
        let back = decode_entry(&text, key).expect("round trip");
        assert_eq!(back.values.len(), outcome.values.len());
        for ((ka, va), (kb, vb)) in outcome.values.iter().zip(&back.values) {
            assert_eq!(ka, kb);
            assert_eq!(va.to_bits(), vb.to_bits(), "{ka} must survive bit-exactly");
        }
        assert_eq!(
            back.stats.as_ref().unwrap().to_json().to_string(),
            outcome.stats.as_ref().unwrap().to_json().to_string()
        );
        // A key mismatch (same bytes under another name) is rejected.
        assert!(decode_entry(&text, (key.0, key.1 ^ 1)).is_none());
    }

    #[test]
    fn warm_hits_skip_execution_and_survive_processes() {
        let store = tmp_store("warm");
        store.set_enabled(true);
        let spec = small_spec(4);
        let cold = store.get_or_run(&spec);
        assert_eq!(store.stats().misses, 1);
        // Same process: served from the slot.
        let warm = store.get_or_run(&spec);
        assert_eq!(store.stats().hits, 1);
        // "New process": fresh store over the same directory reads disk.
        let fresh = ResultStore::new(store.dir.clone(), "fp-test");
        fresh.set_enabled(true);
        let disk = fresh.get_or_run(&spec);
        assert_eq!(
            fresh.stats(),
            ResultStoreStats {
                hits: 1,
                misses: 0,
                invalidated: 0
            }
        );
        for out in [&warm, &disk] {
            assert_eq!(
                out.stats().to_json().to_string(),
                cold.stats().to_json().to_string()
            );
        }
        let _ = std::fs::remove_dir_all(&store.dir);
    }

    #[test]
    fn corrupt_entries_recompute_instead_of_crashing() {
        let store = tmp_store("corrupt");
        store.set_enabled(true);
        let spec = small_spec(5);
        let good = store.get_or_run(&spec);
        let path = store.entry_path((spec.spec_hash(), spec.trace_fingerprint()));
        let full = std::fs::read_to_string(&path).expect("entry written");
        for bad in [
            "",                                        // empty
            "{",                                       // malformed JSON
            &full[..full.len() / 2],                   // truncated mid-entry
            "{\"v\":999}",                             // future version
            &full.replace("Silo", "Nope"),             // unknown scheme
            &full.replace("sim_cycles", "sim_cyclez"), // renamed counter
        ] {
            std::fs::write(&path, bad).expect("inject corruption");
            let fresh = ResultStore::new(store.dir.clone(), "fp-test");
            fresh.set_enabled(true);
            let out = fresh.get_or_run(&spec);
            assert_eq!(
                fresh.stats().invalidated,
                1,
                "corrupt entry counts as invalidated: {bad:?}"
            );
            assert_eq!(
                out.stats().to_json().to_string(),
                good.stats().to_json().to_string()
            );
            // The recompute heals the entry on disk.
            assert_eq!(std::fs::read_to_string(&path).expect("rewritten"), full);
        }
        let _ = std::fs::remove_dir_all(&store.dir);
    }

    #[test]
    fn code_fingerprint_change_misses_and_gc_prunes() {
        let store = tmp_store("gc");
        store.set_enabled(true);
        let spec = small_spec(6);
        store.get_or_run(&spec);
        assert_eq!(store.stats().misses, 1);
        // A "rebuilt" store with a different fingerprint cannot see the
        // old entry: cold miss, fresh directory.
        let rebuilt = ResultStore::new(store.dir.clone(), "fp-new");
        rebuilt.set_enabled(true);
        rebuilt.get_or_run(&spec);
        assert_eq!(
            rebuilt.stats(),
            ResultStoreStats {
                hits: 0,
                misses: 1,
                invalidated: 0
            }
        );
        assert!(store.dir.join("fp-test").is_dir());
        assert!(store.dir.join("fp-new").is_dir());
        // GC from the rebuilt store's perspective drops the stale subdir.
        let (dirs, files) = rebuilt.gc().expect("gc");
        assert_eq!((dirs, files), (1, 1));
        assert!(!store.dir.join("fp-test").exists());
        assert!(store.dir.join("fp-new").is_dir());
        let _ = std::fs::remove_dir_all(&store.dir);
    }

    #[test]
    fn exactly_once_under_racing_workers() {
        let store = tmp_store("race");
        store.set_enabled(true);
        let spec = small_spec(7);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| store.get_or_run(&spec).stats().to_json().to_string()))
                .collect();
            let outs: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert!(outs.windows(2).all(|w| w[0] == w[1]));
        });
        let s = store.stats();
        assert_eq!(s.misses, 1, "one execution");
        assert_eq!(s.hits, 7, "everyone else waits and hits");
        let _ = std::fs::remove_dir_all(&store.dir);
    }
}
