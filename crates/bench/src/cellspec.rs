//! The declarative, content-addressed cell layer.
//!
//! A [`CellSpec`] is *data*: everything that determines one cell's outcome
//! — scheme, workload, core count, transaction budget, seed, config
//! deltas, crash plan — with no closures anywhere. That buys three things
//! the old `FnOnce` cells could not offer:
//!
//! * a stable content hash ([`CellSpec::spec_hash`]), so equal work is
//!   *recognizably* equal across experiments and across processes;
//! * one shared executor ([`CellSpec::execute`]) subsuming the
//!   `run_one` / `run_one_delta` / `run_delta_with` call family, so the
//!   execution seam is a single function instead of ~20 ad-hoc closures;
//! * persistent memoization: the [`ResultStore`](crate::ResultStore) keys
//!   outcomes by `(spec hash, trace content hash, code fingerprint)` and
//!   replays them across processes.
//!
//! Hashing covers every execution-relevant field and **excludes** the
//! display label: two cells that run the same simulation share one stored
//! result even when different experiments print them under different
//! headings (fig11 and fig12 sweep the identical grid).

use silo_core::{SiloOptions, SiloScheme};
use silo_pm::PCM_CELL_ENDURANCE;
use silo_sim::{Engine, LoggingScheme, SimConfig};
use silo_types::{Cycles, JsonValue, CLOCK_GHZ};
use silo_workloads::{workload_by_name, ArrivalProcess, OpenLoop, Workload};

use crate::exp::{CellLabel, CellOutcome};
use crate::{run_delta_with, run_profiled, run_with_scheme, Batched, TraceCache};

/// Which logging scheme a run instantiates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchemeSpec {
    /// A scheme by its legend name (`make_scheme`).
    Named(String),
    /// Silo with explicit mechanism toggles (the ablation studies).
    Silo(SiloOptions),
}

impl SchemeSpec {
    fn instantiate(&self, config: &SimConfig) -> Box<dyn LoggingScheme> {
        match self {
            SchemeSpec::Named(name) => crate::make_scheme(name, config),
            SchemeSpec::Silo(opts) => Box::new(SiloScheme::with_options(config, *opts)),
        }
    }

    fn hash_into(&self, h: &mut Fnv) {
        match self {
            SchemeSpec::Named(name) => {
                h.tag(0);
                h.str(name);
            }
            SchemeSpec::Silo(opts) => {
                h.tag(1);
                // Explicit destructuring: adding a field to SiloOptions
                // breaks this compile until the hash learns about it, so
                // an option can never be silently left out of the key.
                let SiloOptions {
                    log_ignorance,
                    log_merging,
                    onpm_coalescing,
                    flush_bit,
                    ipu_drain_delay,
                    overflow_batch_override,
                    ipu_queue_entries,
                } = *opts;
                h.bool(log_ignorance);
                h.bool(log_merging);
                h.bool(onpm_coalescing);
                h.bool(flush_bit);
                h.u64(ipu_drain_delay);
                h.opt_usize(overflow_batch_override);
                h.usize(ipu_queue_entries);
            }
        }
    }
}

/// Which workload a run consumes, with the Fig 14 batching knob and the
/// open-system arrival knob.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Workload name (resolved by [`workload_by_name`]).
    pub name: String,
    /// Transactions grouped per emitted transaction; 1 = unbatched.
    pub batch: usize,
    /// Open-system arrival process ([`OpenLoop`] wrapping); `None` (and
    /// the degenerate `Some(ClosedLoop)`) run the classic closed loop.
    pub arrival: Option<ArrivalProcess>,
}

impl WorkloadSpec {
    /// An unbatched closed-loop workload.
    pub fn plain(name: &str) -> Self {
        WorkloadSpec {
            name: name.to_string(),
            batch: 1,
            arrival: None,
        }
    }

    /// A [`Batched`]-wrapped workload.
    pub fn batched(name: &str, batch: usize) -> Self {
        WorkloadSpec {
            name: name.to_string(),
            batch,
            arrival: None,
        }
    }

    /// An open-system workload under `process` arrivals.
    pub fn open(name: &str, process: ArrivalProcess) -> Self {
        WorkloadSpec {
            name: name.to_string(),
            batch: 1,
            arrival: Some(process),
        }
    }

    pub(crate) fn instantiate(&self) -> Box<dyn Workload> {
        let inner = workload_by_name(&self.name)
            .unwrap_or_else(|| panic!("unknown workload {:?}", self.name));
        let batched: Box<dyn Workload> = if self.batch > 1 {
            Box::new(Batched::new(inner, self.batch))
        } else {
            inner
        };
        // OpenLoop wraps outermost so arrival stamps apply to the emitted
        // (possibly batched) transactions — the units the engine admits.
        match &self.arrival {
            Some(p) if *p != ArrivalProcess::ClosedLoop => {
                Box::new(OpenLoop::new(batched, p.clone()))
            }
            _ => batched,
        }
    }

    fn hash_into(&self, h: &mut Fnv) {
        h.str(&self.name);
        h.usize(self.batch);
        match &self.arrival {
            // `None` and `ClosedLoop` execute identically (OpenLoop is not
            // even constructed), so they share a hash.
            None | Some(ArrivalProcess::ClosedLoop) => h.tag(0),
            Some(p) => {
                h.tag(1);
                h.str(&p.ident());
            }
        }
    }
}

/// Deviations from the Table II machine. `None`/`false` everywhere is the
/// stock configuration, so the common case hashes (and reads) trivially.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConfigDelta {
    /// Log-buffer access latency override in cycles (Fig 15).
    pub log_buffer_latency: Option<u64>,
    /// Per-core log-buffer capacity override (capacity study).
    pub log_buffer_entries: Option<usize>,
    /// Memory-controller count override (multi-MC study).
    pub num_mcs: Option<usize>,
    /// On-PM coalescing-buffer size override (on-PM buffer study).
    pub onpm_buffer_lines: Option<usize>,
    /// Shrink the cache hierarchy to force evictions (flush-bit ablation):
    /// 2 KB L1 (4-cycle), 4 KB L2, 8 KB L3.
    pub tiny_hierarchy: bool,
}

impl ConfigDelta {
    /// The Table II machine with this delta applied.
    pub fn resolve(&self, cores: usize) -> SimConfig {
        let mut c = SimConfig::table_ii(cores);
        if self.tiny_hierarchy {
            c.hierarchy.l1 = silo_cache::CacheConfig::new(2 * 1024, 2);
            c.hierarchy.l1_latency = Cycles::new(4);
            c.hierarchy.l2 = silo_cache::CacheConfig::new(4 * 1024, 2);
            c.hierarchy.l3 = silo_cache::CacheConfig::new(8 * 1024, 4);
        }
        if let Some(lat) = self.log_buffer_latency {
            c.log_buffer_latency = Cycles::new(lat);
        }
        if let Some(entries) = self.log_buffer_entries {
            c.log_buffer_entries = entries;
        }
        if let Some(mcs) = self.num_mcs {
            c.num_mcs = mcs;
        }
        if let Some(lines) = self.onpm_buffer_lines {
            c.onpm_buffer_lines = lines;
        }
        c
    }

    fn hash_into(&self, h: &mut Fnv) {
        let ConfigDelta {
            log_buffer_latency,
            log_buffer_entries,
            num_mcs,
            onpm_buffer_lines,
            tiny_hierarchy,
        } = self;
        h.opt_u64(*log_buffer_latency);
        h.opt_usize(*log_buffer_entries);
        h.opt_usize(*num_mcs);
        h.opt_usize(*onpm_buffer_lines);
        h.bool(*tiny_hierarchy);
    }
}

/// One engine invocation: who runs what on which machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunSpec {
    /// The logging scheme.
    pub scheme: SchemeSpec,
    /// The workload (possibly batched).
    pub workload: WorkloadSpec,
    /// Simulated core count.
    pub cores: usize,
    /// Measured transactions per core.
    pub txs_per_core: usize,
    /// Machine deviations from Table II.
    pub config: ConfigDelta,
}

impl RunSpec {
    /// A named scheme on the stock Table II machine.
    pub fn table_ii(scheme: &str, workload: WorkloadSpec, cores: usize, txs: usize) -> Self {
        RunSpec {
            scheme: SchemeSpec::Named(scheme.to_string()),
            workload,
            cores,
            txs_per_core: txs,
            config: ConfigDelta::default(),
        }
    }

    fn hash_into(&self, h: &mut Fnv) {
        self.scheme.hash_into(h);
        self.workload.hash_into(h);
        h.usize(self.cores);
        h.usize(self.txs_per_core);
        self.config.hash_into(h);
    }
}

/// The crash fault model of one `crashfuzz` cell (mirrors the sweep's
/// internal `Fault`, as serializable data).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSpec {
    /// Cycle-sampled crash at an op boundary, perfect ADR drain.
    OpBoundary,
    /// Event-indexed crash; the in-flight line keeps this many bytes.
    TornLine(usize),
    /// Event-indexed crash; the ADR drain persists at most this many bytes.
    Battery(u64),
}

impl FaultSpec {
    fn hash_into(&self, h: &mut Fnv) {
        match *self {
            FaultSpec::OpBoundary => h.tag(0),
            FaultSpec::TornLine(keep) => {
                h.tag(1);
                h.usize(keep);
            }
            FaultSpec::Battery(bytes) => {
                h.tag(2);
                h.u64(bytes);
            }
        }
    }
}

/// What a cell computes. Each variant is one executor recipe; together
/// they cover every simulation shape in the experiment registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CellWork {
    /// Steady-state measurement: run N and 2N transactions per core with
    /// fresh schemes and report the difference (the figure-grid shape).
    Delta(RunSpec),
    /// One full run, setup transaction included. `record_throughput`
    /// additionally stores the `tp` metric (Fig 15).
    Full {
        /// The run.
        run: RunSpec,
        /// Store `tp = throughput()` as a named metric.
        record_throughput: bool,
    },
    /// One full run with the cycle accountant enabled (`profile`). Only
    /// supports named schemes on the stock machine, like [`run_profiled`].
    Profiled(RunSpec),
    /// One full run keeping the engine's PM wear ledger (`endurance`):
    /// stores programs / max-wear / imbalance / hottest-line / lifetime.
    Wear(RunSpec),
    /// No simulation: static write-set statistics of a single-core trace
    /// (Fig 4): average/max bytes and average words per transaction.
    TraceStats {
        /// Workload name.
        workload: String,
        /// Measured transactions in the one-core trace.
        txs: usize,
    },
    /// The Fig 14 large-transaction cell: probe the workload's write-set
    /// size, batch enough transactions to fill the log buffer `mult`
    /// times over, run Silo full, and store per-inner-op metrics.
    LargeTx {
        /// Workload name.
        workload: String,
        /// Write-set multiplier (1–16x).
        mult: usize,
        /// Total transaction budget (split across 8 cores).
        txs: usize,
    },
    /// The recovery-study cell: run Silo on TPCC (4 cores), crash at the
    /// given cycle, verify consistency, and store the recovery-cost model.
    Recovery {
        /// Total transaction budget (split across the 4 cores).
        txs: usize,
        /// Injected crash cycle.
        crash_at: u64,
    },
    /// One `crashfuzz` sweep row: clean reference run plus spaced (or one
    /// fixed) crash point(s) under the fault model, with shrinking.
    CrashSweep {
        /// Scheme legend name.
        scheme: String,
        /// Workload name.
        workload: String,
        /// Measured transactions per core (2 cores).
        txs_per_core: usize,
        /// The fault model.
        fault: FaultSpec,
        /// Spaced crash points per cell (`--points`, ignored when `point`
        /// fixes a single one).
        points: u64,
        /// A fixed crash point (`--point`), or spaced sweep points.
        point: Option<u64>,
    },
    /// One coverage-guided crash-search cell (`fuzz`): a seeded corpus of
    /// `(fault, crash event, recovery crash)` candidates is mutated toward
    /// novel probe-event coverage signatures, every recovered image checked
    /// by both the digest oracle and the per-word executable spec. The
    /// cell reads and extends an on-disk corpus (a process-global toggle,
    /// like the crashfuzz checkpoint flags), so it is **never** served
    /// from the result store — see [`CellSpec::cacheable`].
    Fuzz {
        /// Scheme legend name.
        scheme: String,
        /// Workload name.
        workload: String,
        /// Measured transactions per core (2 cores).
        txs_per_core: usize,
        /// Execution budget: total crash runs, seeds included.
        execs: u64,
        /// Restrict candidates to one fault model (`--fault`), or search
        /// across all of them.
        fault: Option<FaultSpec>,
        /// A fixed crash event (`--crash-event`, repro mode): exactly one
        /// candidate runs, no mutation.
        crash_event: Option<u64>,
        /// Re-crash recovery after this many recovery writes
        /// (`--recovery-crash`, repro mode).
        recovery_crash: Option<u64>,
        /// Open-system arrival process ident (`--arrival`), or the classic
        /// closed loop.
        arrival: Option<String>,
    },
}

/// One independent unit of work, fully described as data: display label,
/// seed, and the work. The label is display-only — it does not enter the
/// content hash.
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// Grid coordinates of this cell (display and report only).
    pub label: CellLabel,
    /// Workload generation seed.
    pub seed: u64,
    /// The work.
    pub work: CellWork,
}

impl CellSpec {
    /// Builds a spec from its parts.
    pub fn new(label: CellLabel, seed: u64, work: CellWork) -> Self {
        CellSpec { label, seed, work }
    }

    /// Whether the result store may serve this cell from a persisted
    /// outcome. [`CellWork::Fuzz`] cells are not pure functions of the
    /// spec — they read and extend an on-disk corpus between runs — so
    /// they always execute fresh; everything else is cacheable.
    pub fn cacheable(&self) -> bool {
        !matches!(self.work, CellWork::Fuzz { .. })
    }

    /// Content hash over every execution-relevant field (label excluded):
    /// FNV-1a 64 over a canonical byte encoding with variant tags,
    /// little-endian integers, and length-prefixed strings.
    pub fn spec_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.tag(2); // encoding version (2: WorkloadSpec grew the arrival knob)
        h.u64(self.seed);
        match &self.work {
            CellWork::Delta(run) => {
                h.tag(0);
                run.hash_into(&mut h);
            }
            CellWork::Full {
                run,
                record_throughput,
            } => {
                h.tag(1);
                run.hash_into(&mut h);
                h.bool(*record_throughput);
            }
            CellWork::Profiled(run) => {
                h.tag(2);
                run.hash_into(&mut h);
            }
            CellWork::Wear(run) => {
                h.tag(3);
                run.hash_into(&mut h);
            }
            CellWork::TraceStats { workload, txs } => {
                h.tag(4);
                h.str(workload);
                h.usize(*txs);
            }
            CellWork::LargeTx {
                workload,
                mult,
                txs,
            } => {
                h.tag(5);
                h.str(workload);
                h.usize(*mult);
                h.usize(*txs);
            }
            CellWork::Recovery { txs, crash_at } => {
                h.tag(6);
                h.usize(*txs);
                h.u64(*crash_at);
            }
            CellWork::CrashSweep {
                scheme,
                workload,
                txs_per_core,
                fault,
                points,
                point,
            } => {
                h.tag(7);
                h.str(scheme);
                h.str(workload);
                h.usize(*txs_per_core);
                fault.hash_into(&mut h);
                h.u64(*points);
                h.opt_u64(*point);
            }
            CellWork::Fuzz {
                scheme,
                workload,
                txs_per_core,
                execs,
                fault,
                crash_event,
                recovery_crash,
                arrival,
            } => {
                h.tag(8);
                h.str(scheme);
                h.str(workload);
                h.usize(*txs_per_core);
                h.u64(*execs);
                match fault {
                    None => h.tag(0),
                    Some(f) => {
                        h.tag(1);
                        f.hash_into(&mut h);
                    }
                }
                h.opt_u64(*crash_event);
                h.opt_u64(*recovery_crash);
                match arrival {
                    None => h.tag(0),
                    Some(ident) => {
                        h.tag(1);
                        h.str(ident);
                    }
                }
            }
        }
        h.finish()
    }

    /// FNV-1a fold of the content hashes of every trace this cell's run
    /// consumes, resolved through the [`TraceCache`] (so a warm-store run
    /// pays trace generation, never simulation). Together with the spec
    /// hash and the build's code fingerprint this is the result-store key:
    /// a workload-generator change flows into this hash even if the spec
    /// text happens to collide.
    pub fn trace_fingerprint(&self) -> u64 {
        let cache = TraceCache::global();
        let mut h = Fnv::new();
        match &self.work {
            CellWork::Delta(run) => {
                let w = run.workload.instantiate();
                h.u64(
                    cache
                        .get_or_build(&*w, run.cores, run.txs_per_core, self.seed)
                        .content_hash(),
                );
                h.u64(
                    cache
                        .get_or_build(&*w, run.cores, run.txs_per_core * 2, self.seed)
                        .content_hash(),
                );
            }
            CellWork::Full { run, .. } | CellWork::Profiled(run) | CellWork::Wear(run) => {
                let w = run.workload.instantiate();
                h.u64(
                    cache
                        .get_or_build(&*w, run.cores, run.txs_per_core, self.seed)
                        .content_hash(),
                );
            }
            CellWork::TraceStats { workload, txs } => {
                let w = WorkloadSpec::plain(workload).instantiate();
                h.u64(cache.get_or_build(&*w, 1, *txs, self.seed).content_hash());
            }
            CellWork::LargeTx { workload, .. } => {
                // The probe trace determines the batch group; the final
                // batched trace is derived from the same generator, so the
                // probe hash (plus the code fingerprint) covers it without
                // generating the full batched trace on warm runs.
                let w = WorkloadSpec::plain(workload).instantiate();
                h.u64(cache.get_or_build(&*w, 1, 50, self.seed).content_hash());
            }
            CellWork::Recovery { txs, .. } => {
                let w = WorkloadSpec::plain("TPCC").instantiate();
                h.u64(
                    cache
                        .get_or_build(&*w, RECOVERY_CORES, txs / RECOVERY_CORES, self.seed)
                        .content_hash(),
                );
            }
            CellWork::CrashSweep {
                workload,
                txs_per_core,
                ..
            } => {
                let w = WorkloadSpec::plain(workload).instantiate();
                h.u64(
                    cache
                        .get_or_build(&*w, CRASH_CORES, *txs_per_core, self.seed)
                        .content_hash(),
                );
            }
            CellWork::Fuzz {
                workload,
                txs_per_core,
                arrival,
                ..
            } => {
                let w = fuzz_workload_spec(workload, arrival.as_deref()).instantiate();
                h.u64(
                    cache
                        .get_or_build(&*w, CRASH_CORES, *txs_per_core, self.seed)
                        .content_hash(),
                );
            }
        }
        h.finish()
    }

    /// Runs the cell. Deterministic: the outcome depends only on the spec
    /// (and the crate sources), never on execution order or wall clock.
    pub fn execute(&self) -> CellOutcome {
        let seed = self.seed;
        match &self.work {
            CellWork::Delta(run) => {
                let config = run.config.resolve(run.cores);
                let w = run.workload.instantiate();
                CellOutcome::from_stats(run_delta_with(
                    &config,
                    || run.scheme.instantiate(&config),
                    &*w,
                    run.txs_per_core,
                    seed,
                ))
            }
            CellWork::Full {
                run,
                record_throughput,
            } => {
                let config = run.config.resolve(run.cores);
                let w = run.workload.instantiate();
                let trace =
                    TraceCache::global().get_or_build(&*w, run.cores, run.txs_per_core, seed);
                let mut scheme = run.scheme.instantiate(&config);
                let stats = run_with_scheme(scheme.as_mut(), &config, &trace);
                if *record_throughput {
                    let tp = stats.throughput();
                    CellOutcome::from_stats(stats).with_value("tp", tp)
                } else {
                    CellOutcome::from_stats(stats)
                }
            }
            CellWork::Profiled(run) => {
                let SchemeSpec::Named(name) = &run.scheme else {
                    panic!("profiled cells run named schemes on the stock machine")
                };
                assert_eq!(
                    run.config,
                    ConfigDelta::default(),
                    "profiled cells run on the stock Table II machine"
                );
                let w = run.workload.instantiate();
                CellOutcome::from_stats(run_profiled(name, &*w, run.cores, run.txs_per_core, seed))
            }
            CellWork::Wear(run) => execute_wear(run, seed),
            CellWork::TraceStats { workload, txs } => execute_trace_stats(workload, *txs, seed),
            CellWork::LargeTx {
                workload,
                mult,
                txs,
            } => execute_large_tx(workload, *mult, *txs, seed),
            CellWork::Recovery { txs, crash_at } => execute_recovery(*txs, *crash_at, seed),
            CellWork::CrashSweep {
                scheme,
                workload,
                txs_per_core,
                fault,
                points,
                point,
            } => crate::experiments::crashfuzz::execute_sweep(
                scheme,
                workload,
                *txs_per_core,
                seed,
                *fault,
                *points,
                *point,
            ),
            CellWork::Fuzz {
                scheme,
                workload,
                txs_per_core,
                execs,
                fault,
                crash_event,
                recovery_crash,
                arrival,
            } => crate::experiments::fuzz::execute_fuzz(
                scheme,
                workload,
                *txs_per_core,
                seed,
                *execs,
                *fault,
                *crash_event,
                *recovery_crash,
                arrival.as_deref(),
            ),
        }
    }

    /// Serializes the spec — label included — for wire transport (the
    /// serve daemon's `POST /cell` body). [`CellSpec::from_json`] inverts
    /// it exactly: a round trip preserves the label and the
    /// [`CellSpec::spec_hash`].
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("label", label_to_json(&self.label))
            .field("seed", self.seed)
            .field("work", work_to_json(&self.work))
            .build()
    }

    /// Rebuilds a spec from [`CellSpec::to_json`] output, validating every
    /// name against the live tables (schemes, workloads, arrival idents)
    /// so a daemon can reject a bad spec with a message instead of
    /// panicking mid-execution.
    pub fn from_json(v: &JsonValue) -> Result<CellSpec, String> {
        let label = match v.get("label") {
            Some(l) => label_from_json(l)?,
            None => CellLabel::default(),
        };
        let seed = v
            .get("seed")
            .and_then(JsonValue::as_u64)
            .ok_or("spec needs an integer \"seed\"")?;
        let work = work_from_json(v.get("work").ok_or("spec needs a \"work\" object")?)?;
        Ok(CellSpec { label, seed, work })
    }
}

const LARGE_TX_CORES: usize = 8;
const RECOVERY_CORES: usize = 4;
const CRASH_CORES: usize = 2;

/// The workload spec a fuzz cell consumes: the plain workload, or the
/// open-system wrapping when an arrival ident is set. An unparseable
/// ident (a stale spec) degrades to the plain workload here; the executor
/// reports it as a cell error before any simulation runs.
pub(crate) fn fuzz_workload_spec(workload: &str, arrival: Option<&str>) -> WorkloadSpec {
    match arrival.and_then(ArrivalProcess::parse) {
        Some(p) => WorkloadSpec::open(workload, p),
        None => WorkloadSpec::plain(workload),
    }
}

// --- wire codec -----------------------------------------------------------
//
// The serve daemon transports specs as JSON. Serialization is total;
// deserialization validates every name against the live tables so a bad
// spec comes back as an `Err` message (a structured 400) instead of a
// panic inside a worker.

fn req_str<'a>(v: &'a JsonValue, key: &str, what: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("{what} needs a string {key:?}"))
}

fn req_u64(v: &JsonValue, key: &str, what: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("{what} needs an integer {key:?}"))
}

fn req_usize(v: &JsonValue, key: &str, what: &str) -> Result<usize, String> {
    Ok(req_u64(v, key, what)? as usize)
}

fn opt_u64(v: &JsonValue, key: &str, what: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(f) => f
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("{what} {key:?} must be an integer")),
    }
}

fn opt_usize(v: &JsonValue, key: &str, what: &str) -> Result<Option<usize>, String> {
    Ok(opt_u64(v, key, what)?.map(|n| n as usize))
}

fn req_bool(v: &JsonValue, key: &str, what: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| format!("{what} needs a boolean {key:?}"))
}

/// Validates a scheme legend name against the implemented set.
fn checked_scheme(name: &str) -> Result<String, String> {
    if crate::ALL_SCHEMES.contains(&name) {
        Ok(name.to_string())
    } else {
        Err(format!(
            "unknown scheme {name:?} (known: {})",
            crate::ALL_SCHEMES.join(" ")
        ))
    }
}

/// Validates a workload name against the live workload table.
fn checked_workload(name: &str) -> Result<String, String> {
    if workload_by_name(name).is_some() {
        Ok(name.to_string())
    } else {
        Err(format!("unknown workload {name:?}"))
    }
}

fn label_to_json(label: &CellLabel) -> JsonValue {
    JsonValue::object()
        .field("scheme", label.scheme.as_str())
        .field("workload", label.workload.as_str())
        .field("cores", label.cores)
        .field("param", label.param.as_str())
        .build()
}

fn label_from_json(v: &JsonValue) -> Result<CellLabel, String> {
    Ok(CellLabel {
        scheme: v
            .get("scheme")
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_string(),
        workload: v
            .get("workload")
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_string(),
        cores: opt_usize(v, "cores", "label")?.unwrap_or(0),
        param: v
            .get("param")
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_string(),
    })
}

fn scheme_to_json(scheme: &SchemeSpec) -> JsonValue {
    match scheme {
        SchemeSpec::Named(name) => JsonValue::Str(name.clone()),
        SchemeSpec::Silo(opts) => {
            let SiloOptions {
                log_ignorance,
                log_merging,
                onpm_coalescing,
                flush_bit,
                ipu_drain_delay,
                overflow_batch_override,
                ipu_queue_entries,
            } = *opts;
            let mut silo = JsonValue::object()
                .field("log_ignorance", log_ignorance)
                .field("log_merging", log_merging)
                .field("onpm_coalescing", onpm_coalescing)
                .field("flush_bit", flush_bit)
                .field("ipu_drain_delay", ipu_drain_delay)
                .field("ipu_queue_entries", ipu_queue_entries);
            if let Some(n) = overflow_batch_override {
                silo = silo.field("overflow_batch_override", n);
            }
            JsonValue::object().field("silo", silo.build()).build()
        }
    }
}

fn scheme_from_json(v: &JsonValue) -> Result<SchemeSpec, String> {
    if let Some(name) = v.as_str() {
        return Ok(SchemeSpec::Named(checked_scheme(name)?));
    }
    let silo = v
        .get("silo")
        .ok_or("scheme must be a legend name or {\"silo\": {...}}")?;
    Ok(SchemeSpec::Silo(SiloOptions {
        log_ignorance: req_bool(silo, "log_ignorance", "silo options")?,
        log_merging: req_bool(silo, "log_merging", "silo options")?,
        onpm_coalescing: req_bool(silo, "onpm_coalescing", "silo options")?,
        flush_bit: req_bool(silo, "flush_bit", "silo options")?,
        ipu_drain_delay: req_u64(silo, "ipu_drain_delay", "silo options")?,
        overflow_batch_override: opt_usize(silo, "overflow_batch_override", "silo options")?,
        ipu_queue_entries: req_usize(silo, "ipu_queue_entries", "silo options")?,
    }))
}

fn workload_to_json(w: &WorkloadSpec) -> JsonValue {
    let mut obj = JsonValue::object()
        .field("name", w.name.as_str())
        .field("batch", w.batch);
    if let Some(p) = &w.arrival {
        obj = obj.field("arrival", p.ident());
    }
    obj.build()
}

fn workload_from_json(v: &JsonValue) -> Result<WorkloadSpec, String> {
    let name = checked_workload(req_str(v, "name", "workload")?)?;
    let batch = opt_usize(v, "batch", "workload")?.unwrap_or(1);
    let arrival = match v.get("arrival") {
        None | Some(JsonValue::Null) => None,
        Some(a) => {
            let ident = a.as_str().ok_or("workload \"arrival\" must be a string")?;
            Some(
                ArrivalProcess::parse(ident)
                    .ok_or_else(|| format!("unknown arrival process {ident:?}"))?,
            )
        }
    };
    Ok(WorkloadSpec {
        name,
        batch,
        arrival,
    })
}

fn config_to_json(c: &ConfigDelta) -> JsonValue {
    let ConfigDelta {
        log_buffer_latency,
        log_buffer_entries,
        num_mcs,
        onpm_buffer_lines,
        tiny_hierarchy,
    } = c;
    let mut obj = JsonValue::object();
    if let Some(n) = log_buffer_latency {
        obj = obj.field("log_buffer_latency", *n);
    }
    if let Some(n) = log_buffer_entries {
        obj = obj.field("log_buffer_entries", *n);
    }
    if let Some(n) = num_mcs {
        obj = obj.field("num_mcs", *n);
    }
    if let Some(n) = onpm_buffer_lines {
        obj = obj.field("onpm_buffer_lines", *n);
    }
    if *tiny_hierarchy {
        obj = obj.field("tiny_hierarchy", true);
    }
    obj.build()
}

fn config_from_json(v: &JsonValue) -> Result<ConfigDelta, String> {
    Ok(ConfigDelta {
        log_buffer_latency: opt_u64(v, "log_buffer_latency", "config")?,
        log_buffer_entries: opt_usize(v, "log_buffer_entries", "config")?,
        num_mcs: opt_usize(v, "num_mcs", "config")?,
        onpm_buffer_lines: opt_usize(v, "onpm_buffer_lines", "config")?,
        tiny_hierarchy: v
            .get("tiny_hierarchy")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false),
    })
}

fn run_to_json(run: &RunSpec) -> JsonValue {
    let mut obj = JsonValue::object()
        .field("scheme", scheme_to_json(&run.scheme))
        .field("workload", workload_to_json(&run.workload))
        .field("cores", run.cores)
        .field("txs_per_core", run.txs_per_core);
    if run.config != ConfigDelta::default() {
        obj = obj.field("config", config_to_json(&run.config));
    }
    obj.build()
}

fn run_from_json(v: &JsonValue) -> Result<RunSpec, String> {
    Ok(RunSpec {
        scheme: scheme_from_json(v.get("scheme").ok_or("run needs a \"scheme\"")?)?,
        workload: workload_from_json(v.get("workload").ok_or("run needs a \"workload\"")?)?,
        cores: req_usize(v, "cores", "run")?,
        txs_per_core: req_usize(v, "txs_per_core", "run")?,
        config: match v.get("config") {
            Some(c) => config_from_json(c)?,
            None => ConfigDelta::default(),
        },
    })
}

fn fault_to_json(f: &FaultSpec) -> JsonValue {
    match *f {
        FaultSpec::OpBoundary => JsonValue::object().field("kind", "op-boundary").build(),
        FaultSpec::TornLine(keep) => JsonValue::object()
            .field("kind", "torn-line")
            .field("keep", keep)
            .build(),
        FaultSpec::Battery(bytes) => JsonValue::object()
            .field("kind", "battery")
            .field("bytes", bytes)
            .build(),
    }
}

fn fault_from_json(v: &JsonValue) -> Result<FaultSpec, String> {
    match req_str(v, "kind", "fault")? {
        "op-boundary" => Ok(FaultSpec::OpBoundary),
        "torn-line" => Ok(FaultSpec::TornLine(req_usize(
            v,
            "keep",
            "torn-line fault",
        )?)),
        "battery" => Ok(FaultSpec::Battery(req_u64(v, "bytes", "battery fault")?)),
        other => Err(format!(
            "unknown fault kind {other:?} (known: op-boundary torn-line battery)"
        )),
    }
}

fn work_to_json(work: &CellWork) -> JsonValue {
    match work {
        CellWork::Delta(run) => JsonValue::object()
            .field("kind", "delta")
            .field("run", run_to_json(run))
            .build(),
        CellWork::Full {
            run,
            record_throughput,
        } => JsonValue::object()
            .field("kind", "full")
            .field("run", run_to_json(run))
            .field("record_throughput", *record_throughput)
            .build(),
        CellWork::Profiled(run) => JsonValue::object()
            .field("kind", "profiled")
            .field("run", run_to_json(run))
            .build(),
        CellWork::Wear(run) => JsonValue::object()
            .field("kind", "wear")
            .field("run", run_to_json(run))
            .build(),
        CellWork::TraceStats { workload, txs } => JsonValue::object()
            .field("kind", "trace-stats")
            .field("workload", workload.as_str())
            .field("txs", *txs)
            .build(),
        CellWork::LargeTx {
            workload,
            mult,
            txs,
        } => JsonValue::object()
            .field("kind", "large-tx")
            .field("workload", workload.as_str())
            .field("mult", *mult)
            .field("txs", *txs)
            .build(),
        CellWork::Recovery { txs, crash_at } => JsonValue::object()
            .field("kind", "recovery")
            .field("txs", *txs)
            .field("crash_at", *crash_at)
            .build(),
        CellWork::CrashSweep {
            scheme,
            workload,
            txs_per_core,
            fault,
            points,
            point,
        } => {
            let mut obj = JsonValue::object()
                .field("kind", "crash-sweep")
                .field("scheme", scheme.as_str())
                .field("workload", workload.as_str())
                .field("txs_per_core", *txs_per_core)
                .field("fault", fault_to_json(fault))
                .field("points", *points);
            if let Some(p) = point {
                obj = obj.field("point", *p);
            }
            obj.build()
        }
        CellWork::Fuzz {
            scheme,
            workload,
            txs_per_core,
            execs,
            fault,
            crash_event,
            recovery_crash,
            arrival,
        } => {
            let mut obj = JsonValue::object()
                .field("kind", "fuzz")
                .field("scheme", scheme.as_str())
                .field("workload", workload.as_str())
                .field("txs_per_core", *txs_per_core)
                .field("execs", *execs);
            if let Some(f) = fault {
                obj = obj.field("fault", fault_to_json(f));
            }
            if let Some(e) = crash_event {
                obj = obj.field("crash_event", *e);
            }
            if let Some(r) = recovery_crash {
                obj = obj.field("recovery_crash", *r);
            }
            if let Some(a) = arrival {
                obj = obj.field("arrival", a.as_str());
            }
            obj.build()
        }
    }
}

fn work_from_json(v: &JsonValue) -> Result<CellWork, String> {
    let run = |what: &str| -> Result<RunSpec, String> {
        run_from_json(v.get("run").ok_or(format!("{what} needs a \"run\""))?)
    };
    match req_str(v, "kind", "work")? {
        "delta" => Ok(CellWork::Delta(run("delta")?)),
        "full" => Ok(CellWork::Full {
            run: run("full")?,
            record_throughput: v
                .get("record_throughput")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
        }),
        "profiled" => {
            let run = run("profiled")?;
            if !matches!(run.scheme, SchemeSpec::Named(_)) || run.config != ConfigDelta::default() {
                return Err("profiled cells run named schemes on the stock machine".into());
            }
            Ok(CellWork::Profiled(run))
        }
        "wear" => Ok(CellWork::Wear(run("wear")?)),
        "trace-stats" => Ok(CellWork::TraceStats {
            workload: checked_workload(req_str(v, "workload", "trace-stats")?)?,
            txs: req_usize(v, "txs", "trace-stats")?,
        }),
        "large-tx" => Ok(CellWork::LargeTx {
            workload: checked_workload(req_str(v, "workload", "large-tx")?)?,
            mult: req_usize(v, "mult", "large-tx")?,
            txs: req_usize(v, "txs", "large-tx")?,
        }),
        "recovery" => Ok(CellWork::Recovery {
            txs: req_usize(v, "txs", "recovery")?,
            crash_at: req_u64(v, "crash_at", "recovery")?,
        }),
        "crash-sweep" => Ok(CellWork::CrashSweep {
            scheme: checked_scheme(req_str(v, "scheme", "crash-sweep")?)?,
            workload: checked_workload(req_str(v, "workload", "crash-sweep")?)?,
            txs_per_core: req_usize(v, "txs_per_core", "crash-sweep")?,
            fault: fault_from_json(v.get("fault").ok_or("crash-sweep needs a \"fault\"")?)?,
            points: req_u64(v, "points", "crash-sweep")?,
            point: opt_u64(v, "point", "crash-sweep")?,
        }),
        "fuzz" => Ok(CellWork::Fuzz {
            scheme: checked_scheme(req_str(v, "scheme", "fuzz")?)?,
            workload: checked_workload(req_str(v, "workload", "fuzz")?)?,
            txs_per_core: req_usize(v, "txs_per_core", "fuzz")?,
            execs: req_u64(v, "execs", "fuzz")?,
            fault: match v.get("fault") {
                None | Some(JsonValue::Null) => None,
                Some(f) => Some(fault_from_json(f)?),
            },
            crash_event: opt_u64(v, "crash_event", "fuzz")?,
            recovery_crash: opt_u64(v, "recovery_crash", "fuzz")?,
            arrival: match v.get("arrival") {
                None | Some(JsonValue::Null) => None,
                Some(a) => {
                    let ident = a.as_str().ok_or("fuzz \"arrival\" must be a string")?;
                    ArrivalProcess::parse(ident)
                        .ok_or_else(|| format!("unknown arrival process {ident:?}"))?;
                    Some(ident.to_string())
                }
            },
        }),
        other => Err(format!("unknown work kind {other:?}")),
    }
}

/// Full run keeping the wear ledger (the `endurance` recipe). The engine
/// runs directly — no event-trace attachment — exactly as the legacy
/// endurance cells did.
fn execute_wear(run: &RunSpec, seed: u64) -> CellOutcome {
    let config = run.config.resolve(run.cores);
    let w = run.workload.instantiate();
    let mut scheme = run.scheme.instantiate(&config);
    let trace = TraceCache::global().get_or_build(&*w, run.cores, run.txs_per_core, seed);
    let out = Engine::new(&config, scheme.as_mut()).run(&trace, None);
    let wear = out.pm.wear();
    let elapsed_s = out.stats.sim_cycles.as_u64() as f64 / (CLOCK_GHZ * 1e9);
    let life = wear
        .lifetime_estimate(elapsed_s, PCM_CELL_ENDURANCE)
        .unwrap_or(f64::INFINITY);
    let hottest = wear
        .hottest_lines(1)
        .first()
        .map(|&(l, c)| (l, c))
        .unwrap_or((0, 0));
    CellOutcome::from_stats(out.stats)
        .with_value("programs", wear.total_programs() as f64)
        .with_value("max_wear", wear.max_wear() as f64)
        .with_value("imbalance", wear.wear_imbalance())
        .with_value("hot_line", hottest.0 as f64)
        .with_value("hot_count", hottest.1 as f64)
        .with_value("life", life)
}

/// Static write-set statistics of a one-core trace (the Fig 4 recipe).
fn execute_trace_stats(workload: &str, txs: usize, seed: u64) -> CellOutcome {
    let w = WorkloadSpec::plain(workload).instantiate();
    let trace = TraceCache::global().get_or_build(&*w, 1, txs, seed);
    // Skip the setup transaction; measure the workload's own txs.
    let measured = &trace.streams()[0][1..];
    let (mut total, mut max, mut words) = (0usize, 0usize, 0usize);
    for tx in measured {
        let b = tx.write_set_bytes();
        total += b;
        max = max.max(b);
        words += tx.write_set_words();
    }
    CellOutcome::default()
        .with_value("avg_b", total as f64 / measured.len() as f64)
        .with_value("max_b", max as f64)
        .with_value("avg_words", words as f64 / measured.len() as f64)
}

/// The Fig 14 large-transaction recipe: probe the average write-set size,
/// group enough transactions that 1x roughly fills the 20-entry buffer,
/// scale by the multiplier, and run Silo full. Metrics are per inner
/// operation so the batching itself does not distort them.
fn execute_large_tx(workload: &str, mult: usize, txs: usize, seed: u64) -> CellOutcome {
    let w = WorkloadSpec::plain(workload).instantiate();
    let probe = TraceCache::global().get_or_build(&*w, 1, 50, seed);
    let probe0 = &probe.streams()[0];
    let avg_words: f64 = probe0[1..]
        .iter()
        .map(|t| t.write_set_words())
        .sum::<usize>() as f64
        / (probe0.len() - 1) as f64;
    let group_1x = ((20.0 / avg_words).ceil() as usize).max(1);
    let group = group_1x * mult;
    let inner_per_core = (txs / LARGE_TX_CORES).max(group);
    let outer = inner_per_core / group;

    let config = SimConfig::table_ii(LARGE_TX_CORES);
    let mut silo = SiloScheme::new(&config);
    let batched = Batched::new(WorkloadSpec::plain(workload).instantiate(), group);
    let trace = TraceCache::global().get_or_build(&batched, LARGE_TX_CORES, outer, seed);
    let stats = run_with_scheme(&mut silo, &config, &trace);
    // Per inner-operation throughput.
    let ops = stats.txs_committed * group as u64;
    let overflow = stats.scheme_stats.overflow_events;
    CellOutcome::from_stats(stats.clone())
        .with_value("tp", ops as f64 / stats.sim_cycles.as_u64() as f64)
        .with_value("wr", stats.media_writes() as f64 / ops as f64)
        .with_value("overflow", overflow as f64)
}

/// The recovery-study recipe: crash Silo on TPCC at a fixed cycle, have
/// the oracle verify the recovered image, and model the recovery cost
/// from the surviving log records.
fn execute_recovery(txs: usize, crash_at: u64, seed: u64) -> CellOutcome {
    let w = WorkloadSpec::plain("TPCC").instantiate();
    let config = SimConfig::table_ii(RECOVERY_CORES);
    let mut silo = SiloScheme::new(&config);
    // One trace for all six crash points.
    let trace = TraceCache::global().get_or_build(&*w, RECOVERY_CORES, txs / RECOVERY_CORES, seed);
    let out = Engine::new(&config, &mut silo).run(&trace, Some(Cycles::new(crash_at)));
    let crash = out.crash.expect("crash injected");
    assert!(crash.consistency.is_consistent(), "{:?}", crash.consistency);
    let r = crash.recovery;
    // Model: one PM read per scanned record, one PM write per applied
    // word (word writes coalesce ~4:1 into media lines on average).
    let read_cyc = config.memctrl.read_cycles * r.scanned_records;
    let write_cyc = config.memctrl.media_write_cycles * (r.replayed_words + r.revoked_words) / 4;
    let us = (read_cyc + write_cyc) as f64 / (CLOCK_GHZ * 1000.0);
    CellOutcome::from_stats(out.stats)
        .with_value("committed", crash.committed_txs as f64)
        .with_value("inflight", crash.inflight_txs as f64)
        .with_value("scanned", r.scanned_records as f64)
        .with_value("replayed", r.replayed_words as f64)
        .with_value("revoked", r.revoked_words as f64)
        .with_value("us", us)
}

/// The canonical-encoding hasher behind [`CellSpec::spec_hash`]: FNV-1a
/// 64 with variant tags, little-endian integers, and length-prefixed
/// strings, so distinct specs cannot collide by concatenation.
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn tag(&mut self, t: u8) {
        self.write(&[t]);
    }

    fn bool(&mut self, b: bool) {
        self.write(&[u8::from(b)]);
    }

    fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.tag(0),
            Some(x) => {
                self.tag(1);
                self.u64(x);
            }
        }
    }

    fn opt_usize(&mut self, v: Option<usize>) {
        self.opt_u64(v.map(|x| x as u64));
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(work: CellWork) -> CellSpec {
        CellSpec::new(CellLabel::default(), 42, work)
    }

    #[test]
    fn spec_hash_ignores_the_label() {
        let a = CellSpec::new(
            CellLabel::swc("Silo", "Bank", 1),
            42,
            CellWork::TraceStats {
                workload: "Bank".into(),
                txs: 4,
            },
        );
        let b = CellSpec::new(
            CellLabel::swc("eADR-sw", "other", 8).with_param("x=1"),
            42,
            CellWork::TraceStats {
                workload: "Bank".into(),
                txs: 4,
            },
        );
        assert_eq!(a.spec_hash(), b.spec_hash());
    }

    #[test]
    fn spec_hash_distinguishes_every_field() {
        let base = spec(CellWork::Delta(RunSpec::table_ii(
            "Silo",
            WorkloadSpec::plain("Hash"),
            8,
            100,
        )));
        let mut seen = vec![base.spec_hash()];
        let mut check = |s: CellSpec| {
            let h = s.spec_hash();
            assert!(!seen.contains(&h), "collision for {:?}", s.work);
            seen.push(h);
        };
        check(CellSpec::new(CellLabel::default(), 43, base.work.clone()));
        check(spec(CellWork::Delta(RunSpec::table_ii(
            "Base",
            WorkloadSpec::plain("Hash"),
            8,
            100,
        ))));
        check(spec(CellWork::Delta(RunSpec::table_ii(
            "Silo",
            WorkloadSpec::plain("TPCC"),
            8,
            100,
        ))));
        check(spec(CellWork::Delta(RunSpec::table_ii(
            "Silo",
            WorkloadSpec::plain("Hash"),
            4,
            100,
        ))));
        check(spec(CellWork::Delta(RunSpec::table_ii(
            "Silo",
            WorkloadSpec::plain("Hash"),
            8,
            200,
        ))));
        check(spec(CellWork::Delta(RunSpec::table_ii(
            "Silo",
            WorkloadSpec::batched("Hash", 4),
            8,
            100,
        ))));
        check(spec(CellWork::Full {
            run: RunSpec::table_ii(
                "Silo",
                WorkloadSpec::open("Hash", ArrivalProcess::Poisson { mean_gap: 2_000 }),
                8,
                100,
            ),
            record_throughput: false,
        }));
        check(spec(CellWork::Full {
            run: RunSpec::table_ii(
                "Silo",
                WorkloadSpec::open("Hash", ArrivalProcess::Poisson { mean_gap: 4_000 }),
                8,
                100,
            ),
            record_throughput: false,
        }));
        check(spec(CellWork::Full {
            run: RunSpec::table_ii(
                "Silo",
                WorkloadSpec::open(
                    "Hash",
                    ArrivalProcess::Bursty {
                        mean_gap: 2_000,
                        burst: 16,
                        idle_gap: 40_000,
                    },
                ),
                8,
                100,
            ),
            record_throughput: false,
        }));
        check(spec(CellWork::Full {
            run: RunSpec::table_ii("Silo", WorkloadSpec::plain("Hash"), 8, 100),
            record_throughput: false,
        }));
        check(spec(CellWork::Full {
            run: RunSpec::table_ii("Silo", WorkloadSpec::plain("Hash"), 8, 100),
            record_throughput: true,
        }));
        check(spec(CellWork::Profiled(RunSpec::table_ii(
            "Silo",
            WorkloadSpec::plain("Hash"),
            8,
            100,
        ))));
        check(spec(CellWork::Wear(RunSpec::table_ii(
            "Silo",
            WorkloadSpec::plain("Hash"),
            8,
            100,
        ))));
        // Silo-with-options differs from named Silo even at the defaults:
        // the executor constructs it differently, so the key says so.
        check(spec(CellWork::Delta(RunSpec {
            scheme: SchemeSpec::Silo(SiloOptions::default()),
            workload: WorkloadSpec::plain("Hash"),
            cores: 8,
            txs_per_core: 100,
            config: ConfigDelta::default(),
        })));
        check(spec(CellWork::Delta(RunSpec {
            scheme: SchemeSpec::Silo(SiloOptions {
                onpm_coalescing: false,
                ..SiloOptions::default()
            }),
            workload: WorkloadSpec::plain("Hash"),
            cores: 8,
            txs_per_core: 100,
            config: ConfigDelta::default(),
        })));
        check(spec(CellWork::Delta(RunSpec {
            scheme: SchemeSpec::Named("Silo".into()),
            workload: WorkloadSpec::plain("Hash"),
            cores: 8,
            txs_per_core: 100,
            config: ConfigDelta {
                num_mcs: Some(2),
                ..ConfigDelta::default()
            },
        })));
        check(spec(CellWork::Delta(RunSpec {
            scheme: SchemeSpec::Named("Silo".into()),
            workload: WorkloadSpec::plain("Hash"),
            cores: 8,
            txs_per_core: 100,
            config: ConfigDelta {
                tiny_hierarchy: true,
                ..ConfigDelta::default()
            },
        })));
        check(spec(CellWork::TraceStats {
            workload: "Hash".into(),
            txs: 100,
        }));
        check(spec(CellWork::LargeTx {
            workload: "Hash".into(),
            mult: 4,
            txs: 100,
        }));
        check(spec(CellWork::Recovery {
            txs: 100,
            crash_at: 5_000,
        }));
        check(spec(CellWork::CrashSweep {
            scheme: "Silo".into(),
            workload: "Hash".into(),
            txs_per_core: 100,
            fault: FaultSpec::OpBoundary,
            points: 4,
            point: None,
        }));
        check(spec(CellWork::CrashSweep {
            scheme: "Silo".into(),
            workload: "Hash".into(),
            txs_per_core: 100,
            fault: FaultSpec::TornLine(64),
            points: 4,
            point: None,
        }));
        check(spec(CellWork::CrashSweep {
            scheme: "Silo".into(),
            workload: "Hash".into(),
            txs_per_core: 100,
            fault: FaultSpec::Battery(65_536),
            points: 4,
            point: Some(7),
        }));
        let fuzz = |fault, crash_event, recovery_crash, arrival: Option<&str>| CellWork::Fuzz {
            scheme: "Silo".into(),
            workload: "Hash".into(),
            txs_per_core: 100,
            execs: 24,
            fault,
            crash_event,
            recovery_crash,
            arrival: arrival.map(str::to_string),
        };
        check(spec(fuzz(None, None, None, None)));
        check(spec(fuzz(Some(FaultSpec::Battery(64)), None, None, None)));
        check(spec(fuzz(
            Some(FaultSpec::Battery(64)),
            Some(9),
            None,
            None,
        )));
        check(spec(fuzz(
            Some(FaultSpec::Battery(64)),
            Some(9),
            Some(3),
            None,
        )));
        check(spec(fuzz(None, None, None, Some("poisson2000"))));
        check(spec(CellWork::Fuzz {
            scheme: "Silo".into(),
            workload: "Hash".into(),
            txs_per_core: 100,
            execs: 48,
            fault: None,
            crash_event: None,
            recovery_crash: None,
            arrival: None,
        }));
    }

    #[test]
    fn only_fuzz_cells_are_uncacheable() {
        let fuzz = spec(CellWork::Fuzz {
            scheme: "Silo".into(),
            workload: "Hash".into(),
            txs_per_core: 8,
            execs: 4,
            fault: None,
            crash_event: None,
            recovery_crash: None,
            arrival: None,
        });
        assert!(!fuzz.cacheable());
        let sweep = spec(CellWork::CrashSweep {
            scheme: "Silo".into(),
            workload: "Hash".into(),
            txs_per_core: 8,
            fault: FaultSpec::OpBoundary,
            points: 4,
            point: None,
        });
        assert!(sweep.cacheable());
        assert!(spec(CellWork::TraceStats {
            workload: "Bank".into(),
            txs: 4,
        })
        .cacheable());
    }

    #[test]
    fn closed_loop_arrival_is_hash_transparent() {
        // `None` and `Some(ClosedLoop)` execute identically, so they must
        // share stored results.
        let plain = spec(CellWork::Full {
            run: RunSpec::table_ii("Silo", WorkloadSpec::plain("Hash"), 8, 100),
            record_throughput: false,
        });
        let closed = spec(CellWork::Full {
            run: RunSpec::table_ii(
                "Silo",
                WorkloadSpec::open("Hash", ArrivalProcess::ClosedLoop),
                8,
                100,
            ),
            record_throughput: false,
        });
        assert_eq!(plain.spec_hash(), closed.spec_hash());
    }

    #[test]
    fn spec_hash_is_stable_across_calls() {
        let s = spec(CellWork::Delta(RunSpec::table_ii(
            "Silo",
            WorkloadSpec::plain("Hash"),
            8,
            100,
        )));
        assert_eq!(s.spec_hash(), s.spec_hash());
        assert_eq!(s.spec_hash(), s.clone().spec_hash());
    }

    #[test]
    fn trace_fingerprint_tracks_trace_content() {
        let a = spec(CellWork::TraceStats {
            workload: "Bank".into(),
            txs: 4,
        });
        let b = spec(CellWork::TraceStats {
            workload: "Bank".into(),
            txs: 4,
        });
        assert_eq!(a.trace_fingerprint(), b.trace_fingerprint());
        let c = CellSpec::new(
            CellLabel::default(),
            43,
            CellWork::TraceStats {
                workload: "Bank".into(),
                txs: 4,
            },
        );
        assert_ne!(a.trace_fingerprint(), c.trace_fingerprint());
    }

    #[test]
    fn executor_matches_the_run_family() {
        // The Delta recipe must reproduce run_one_delta exactly — the
        // whole grid migration rests on this equivalence.
        let w = workload_by_name("Bank").expect("bank exists");
        let direct = crate::run_one_delta("Silo", w.as_ref(), 1, 6, 42);
        let via_spec = spec(CellWork::Delta(RunSpec::table_ii(
            "Silo",
            WorkloadSpec::plain("Bank"),
            1,
            6,
        )))
        .execute();
        assert_eq!(
            via_spec.stats().to_json().to_string(),
            direct.to_json().to_string()
        );
        // Named("Silo") and Silo(default options) run identical machines.
        let via_opts = spec(CellWork::Delta(RunSpec {
            scheme: SchemeSpec::Silo(SiloOptions::default()),
            workload: WorkloadSpec::plain("Bank"),
            cores: 1,
            txs_per_core: 6,
            config: ConfigDelta::default(),
        }))
        .execute();
        assert_eq!(
            via_opts.stats().to_json().to_string(),
            direct.to_json().to_string()
        );
    }

    #[test]
    fn config_delta_resolves_every_override() {
        let stock = ConfigDelta::default().resolve(8);
        let base = SimConfig::table_ii(8);
        assert_eq!(stock.fingerprint(), base.fingerprint());
        let tweaked = ConfigDelta {
            log_buffer_latency: Some(64),
            log_buffer_entries: Some(40),
            num_mcs: Some(4),
            onpm_buffer_lines: Some(16),
            tiny_hierarchy: true,
        }
        .resolve(8);
        assert_eq!(tweaked.log_buffer_latency.as_u64(), 64);
        assert_eq!(tweaked.log_buffer_entries, 40);
        assert_eq!(tweaked.num_mcs, 4);
        assert_eq!(tweaked.onpm_buffer_lines, 16);
        assert_eq!(tweaked.hierarchy.l3.size_bytes, 8 * 1024);
    }

    #[test]
    fn json_round_trip_preserves_hash_and_label_for_every_variant() {
        let labeled = |work: CellWork| {
            CellSpec::new(
                CellLabel::swc("Silo", "Hash", 8).with_param("x=1"),
                42,
                work,
            )
        };
        let specs = vec![
            labeled(CellWork::Delta(RunSpec::table_ii(
                "Silo",
                WorkloadSpec::plain("Hash"),
                8,
                100,
            ))),
            labeled(CellWork::Full {
                run: RunSpec::table_ii(
                    "Silo",
                    WorkloadSpec::open("Hash", ArrivalProcess::Poisson { mean_gap: 2_000 }),
                    8,
                    100,
                ),
                record_throughput: true,
            }),
            labeled(CellWork::Profiled(RunSpec::table_ii(
                "Silo",
                WorkloadSpec::plain("Hash"),
                8,
                100,
            ))),
            labeled(CellWork::Wear(RunSpec {
                scheme: SchemeSpec::Silo(SiloOptions {
                    onpm_coalescing: false,
                    overflow_batch_override: Some(12),
                    ..SiloOptions::default()
                }),
                workload: WorkloadSpec::batched("Hash", 4),
                cores: 8,
                txs_per_core: 100,
                config: ConfigDelta {
                    num_mcs: Some(2),
                    tiny_hierarchy: true,
                    ..ConfigDelta::default()
                },
            })),
            labeled(CellWork::TraceStats {
                workload: "Hash".into(),
                txs: 100,
            }),
            labeled(CellWork::LargeTx {
                workload: "Hash".into(),
                mult: 4,
                txs: 100,
            }),
            labeled(CellWork::Recovery {
                txs: 100,
                crash_at: 5_000,
            }),
            labeled(CellWork::CrashSweep {
                scheme: "Silo".into(),
                workload: "Hash".into(),
                txs_per_core: 100,
                fault: FaultSpec::TornLine(64),
                points: 4,
                point: Some(2),
            }),
            labeled(CellWork::Fuzz {
                scheme: "Silo".into(),
                workload: "Hash".into(),
                txs_per_core: 100,
                execs: 24,
                fault: Some(FaultSpec::Battery(64)),
                crash_event: Some(9),
                recovery_crash: Some(3),
                arrival: Some("poisson2000".into()),
            }),
        ];
        for original in specs {
            // Through text, as the wire does it.
            let text = original.to_json().to_string();
            let parsed = JsonValue::parse(&text).expect("wire JSON parses");
            let back = CellSpec::from_json(&parsed)
                .unwrap_or_else(|e| panic!("round trip failed for {:?}: {e}", original.work));
            assert_eq!(
                back.spec_hash(),
                original.spec_hash(),
                "{:?}",
                original.work
            );
            assert_eq!(back.work, original.work);
            assert_eq!(back.seed, original.seed);
            assert_eq!(back.label.describe(), original.label.describe());
        }
    }

    #[test]
    fn from_json_rejects_bad_names_with_messages() {
        let cases = [
            (
                r#"{"seed":1,"work":{"kind":"trace-stats","workload":"Nope","txs":4}}"#,
                "unknown workload",
            ),
            (
                r#"{"seed":1,"work":{"kind":"delta","run":{"scheme":"Nope","workload":{"name":"Hash"},"cores":1,"txs_per_core":4}}}"#,
                "unknown scheme",
            ),
            (
                r#"{"seed":1,"work":{"kind":"full","run":{"scheme":"Silo","workload":{"name":"Hash","arrival":"warp9"},"cores":1,"txs_per_core":4}}}"#,
                "unknown arrival",
            ),
            (
                r#"{"seed":1,"work":{"kind":"teleport"}}"#,
                "unknown work kind",
            ),
            (
                r#"{"seed":1,"work":{"kind":"crash-sweep","scheme":"Silo","workload":"Hash","txs_per_core":4,"fault":{"kind":"gamma-ray"},"points":2}}"#,
                "unknown fault kind",
            ),
            (
                r#"{"work":{"kind":"recovery","txs":4,"crash_at":9}}"#,
                "seed",
            ),
        ];
        for (text, needle) in cases {
            let v = JsonValue::parse(text).expect("test JSON parses");
            let err = CellSpec::from_json(&v).expect_err(text);
            assert!(err.contains(needle), "{text}: {err}");
        }
    }
}
