//! Ablation: the flush-bit (§III-D). When a dirty cacheline is evicted
//! mid-transaction, it already carries the logged words to PM; the
//! flush-bit stops Silo from writing them again at commit. The effect only
//! shows under eviction pressure, so this study shrinks the hierarchy.
//!
//! Usage: `ablation_flushbit [--txs N] [--seed S]`.

use silo_bench::{arg_usize, run_delta_with, Batched};
use silo_cache::CacheConfig;
use silo_core::{SiloOptions, SiloScheme};
use silo_sim::SimConfig;
use silo_types::Cycles;
use silo_workloads::workload_by_name;

fn tiny_hierarchy(cores: usize) -> SimConfig {
    let mut c = SimConfig::table_ii(cores);
    c.hierarchy.l1 = CacheConfig::new(2 * 1024, 2);
    c.hierarchy.l1_latency = Cycles::new(4);
    c.hierarchy.l2 = CacheConfig::new(4 * 1024, 2);
    c.hierarchy.l3 = CacheConfig::new(8 * 1024, 4);
    c
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let txs = arg_usize(&args, "--txs", 2_000);
    let seed = arg_usize(&args, "--seed", 42) as u64;
    let cores = 8usize;
    let txs_per_core = (txs / cores / 16).max(1);

    println!("Ablation: flush-bit under eviction pressure");
    println!("(Silo, 8 cores, 8KB LLC, 16x-batched transactions)");
    println!(
        "{:<10}{:>12}{:>13}{:>13}{:>14}",
        "workload", "variant", "flushbits/tx", "IPU/tx", "accepted/tx"
    );
    for name in ["Array", "Btree", "Hash", "Queue", "RBtree", "TPCC", "YCSB"] {
        let w = Batched::new(workload_by_name(name).expect("benchmark"), 16);
        for (vname, fb) in [("on", true), ("off", false)] {
            let config = tiny_hierarchy(cores);
            let stats = run_delta_with(
                &config,
                || {
                    Box::new(SiloScheme::with_options(
                        &config,
                        SiloOptions { flush_bit: fb, ..SiloOptions::default() },
                    ))
                },
                &w,
                txs_per_core,
                seed,
            );
            let s = stats.scheme_stats;
            println!(
                "{:<10}{:>12}{:>13.2}{:>13.2}{:>14.2}",
                name,
                vname,
                s.flush_bits_set as f64 / s.transactions as f64,
                s.inplace_update_words as f64 / s.transactions as f64,
                stats.pm.accepted_writes as f64 / s.transactions as f64,
            );
        }
    }
}
