//! Shim: runs the `study_onpm_buffer` experiment through the unified
//! framework (`silo_bench::registry`). Same flags, byte-identical
//! output; `--jobs` and `--json-dir` now also work.

fn main() {
    silo_bench::run_legacy("study_onpm_buffer");
}
