//! Study (§III-E): sizing the on-PM write-coalescing buffer. Larger
//! buffers widen the coalescing window for Silo's word-granular new-data
//! writes, cutting media programs.
//!
//! Usage: `study_onpm_buffer [--txs N] [--seed S]`.

use silo_bench::{arg_usize, run_delta_with};
use silo_core::SiloScheme;
use silo_sim::SimConfig;
use silo_workloads::workload_by_name;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let txs = arg_usize(&args, "--txs", 4_000);
    let seed = arg_usize(&args, "--seed", 42) as u64;
    let cores = 8usize;
    let txs_per_core = (txs / cores).max(1);

    println!("On-PM buffer capacity study (Silo, 8 cores)");
    println!(
        "{:<10}{:>8}{:>13}{:>15}{:>14}",
        "workload", "lines", "media/tx", "coalesced/tx", "forced drains"
    );
    for name in ["Hash", "Queue", "TPCC", "YCSB"] {
        let w = workload_by_name(name).expect("benchmark");
        for lines in [4usize, 16, 64, 256] {
            let mut config = SimConfig::table_ii(cores);
            config.onpm_buffer_lines = lines;
            let stats = run_delta_with(
                &config,
                || Box::new(SiloScheme::new(&config)),
                &w,
                txs_per_core,
                seed,
            );
            let n = stats.txs_committed as f64;
            println!(
                "{:<10}{:>8}{:>13.2}{:>15.2}{:>14}",
                name,
                lines,
                stats.media_writes() as f64 / n,
                stats.pm.coalesced_hits as f64 / n,
                stats.pm.buffer_forced_drains
            );
        }
    }
    println!("(64 lines = a 16 KB buffer, the Optane XPBuffer scale this model defaults to)");
}
