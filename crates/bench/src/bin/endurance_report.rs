//! Endurance study (extension beyond the paper's figures): per-scheme PM
//! wear and lifetime estimates, quantifying §I's motivation that log
//! writes "exacerbate the write endurance of PM and hence shorten the PM
//! lifetime".
//!
//! For each scheme the report shows media programs, the hottest line's
//! wear, wear imbalance (max/mean), and the extrapolated device lifetime
//! assuming 10^8-cycle PCM cells and the workload running continuously.
//!
//! Usage: `endurance_report [--txs N] [--seed S]`.

use silo_bench::{arg_usize, make_scheme, SCHEMES};
use silo_pm::PCM_CELL_ENDURANCE;
use silo_sim::{Engine, SimConfig};
use silo_types::CLOCK_GHZ;
use silo_workloads::{workload_by_name, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let txs = arg_usize(&args, "--txs", 2_000);
    let seed = arg_usize(&args, "--seed", 42) as u64;
    let cores = 8usize;
    let txs_per_core = (txs / cores).max(1);

    println!("Endurance: PM wear by scheme (8 cores, {} txs, 1e8-cycle PCM cells)", txs);
    for bench in ["Hash", "TPCC", "YCSB"] {
        println!("\n== {bench} ==");
        println!(
            "{:<8}{:>12}{:>12}{:>12}{:>18}{:>16}",
            "scheme", "programs", "max wear", "imbalance", "hottest line", "lifetime"
        );
        let w = workload_by_name(bench).expect("benchmark");
        let mut base_life = 0.0;
        for s in SCHEMES {
            let config = SimConfig::table_ii(cores);
            let mut scheme = make_scheme(s, &config);
            let streams = w.generate(cores, txs_per_core, seed);
            let out = Engine::new(&config, scheme.as_mut()).run(streams, None);
            let wear = out.pm.wear();
            let elapsed_s = out.stats.sim_cycles.as_u64() as f64 / (CLOCK_GHZ * 1e9);
            let life = wear
                .lifetime_estimate(elapsed_s, PCM_CELL_ENDURANCE)
                .unwrap_or(f64::INFINITY);
            if s == "Base" {
                base_life = life;
            }
            let hottest = wear.hottest_lines(1).first().map(|&(l, c)| (l, c)).unwrap_or((0, 0));
            println!(
                "{:<8}{:>12}{:>12}{:>12.2}{:>12}:{:<6}{:>9.1} d ({:>5.1}x)",
                s,
                wear.total_programs(),
                wear.max_wear(),
                wear.wear_imbalance(),
                hottest.0,
                hottest.1,
                life / 86_400.0,
                life / base_life,
            );
        }
    }
    println!("\n(lifetime = cell endurance / hottest-line program rate, continuous load)");
}
