//! Fig 11: normalized write traffic to the PM physical media, for five
//! schemes × seven benchmarks × {1, 2, 4, 8} cores.
//!
//! As in the paper, 10,000 transactions execute per benchmark (split
//! across cores) and every cell is normalized to `Base` on the same core
//! count. Usage: `fig11_write_traffic [--txs N] [--seed S]`.

use silo_bench::{arg_usize, print_normalized, run_one_delta, FIG11_BENCHMARKS, SCHEMES};
use silo_workloads::workload_by_name;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let total_txs = arg_usize(&args, "--txs", 10_000);
    let seed = arg_usize(&args, "--seed", 42) as u64;

    println!("Fig 11: write traffic to PM (media line programs), normalized to Base");
    for &cores in &[1usize, 2, 4, 8] {
        let txs_per_core = (total_txs / cores).max(1);
        let mut rows = Vec::new();
        for bench in FIG11_BENCHMARKS {
            let w = workload_by_name(bench).expect("fig11 benchmark");
            let row: Vec<f64> = SCHEMES
                .iter()
                .map(|s| run_one_delta(s, w.as_ref(), cores, txs_per_core, seed).media_writes() as f64)
                .collect();
            rows.push(row);
        }
        print_normalized(
            &format!("({cores} core{})", if cores == 1 { "" } else { "s" }),
            &FIG11_BENCHMARKS.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &SCHEMES,
            &rows,
            0,
        );
    }
}
