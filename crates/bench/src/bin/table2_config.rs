//! Table II: the simulated system configuration actually used by every
//! run in this repository (printed from the live config structs so the
//! table can never drift from the code).

use silo_sim::SimConfig;

fn main() {
    let c = SimConfig::table_ii(8);
    println!("Table II: configurations of the simulated system");
    println!("Processor");
    println!("  Cores              {} cores, x86-64 model, 2 GHz", c.cores);
    println!(
        "  L1 D Cache         private, 64B per line, {}KB, 8-way, {} cycles",
        c.hierarchy.l1.size_bytes / 1024,
        c.hierarchy.l1_latency.as_u64()
    );
    println!(
        "  L2 Cache           private, 64B per line, {}KB, 8-way, {} cycles",
        c.hierarchy.l2.size_bytes / 1024,
        c.hierarchy.l2_latency.as_u64()
    );
    println!(
        "  L3 Cache           shared, 64B per line, {}MB, 16-way, {} cycles",
        c.hierarchy.l3.size_bytes / (1024 * 1024),
        c.hierarchy.l3_latency.as_u64()
    );
    println!(
        "  Memory Controller  FRFCFS, {}-entry WPQ in ADR domain, {} banks",
        c.memctrl.wpq_entries, c.memctrl.banks
    );
    println!(
        "  Log Buffer         {} entries (680B) per core, FIFO, {} cycles, battery backed",
        c.log_buffer_entries,
        c.log_buffer_latency.as_u64()
    );
    println!("Persistent Memory");
    println!("  Capacity           16GB phase-change memory (modelled sparsely)");
    println!(
        "  Latency            read / write: {} / {} ns ({} / {} cycles)",
        c.memctrl.read_cycles / 2,
        c.memctrl.media_write_cycles / 2,
        c.memctrl.read_cycles,
        c.memctrl.media_write_cycles
    );
    println!(
        "  On-PM buffer       {} lines x 256B, write coalescing (Silo path)",
        c.onpm_buffer_lines
    );
    println!(
        "  Log region         starts at {} GiB, {} MiB per thread",
        c.log_region_start >> 30,
        c.thread_log_area_bytes >> 20
    );
}
