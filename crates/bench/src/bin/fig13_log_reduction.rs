//! Shim: runs the `fig13` experiment through the unified
//! framework (`silo_bench::registry`). Same flags, byte-identical
//! output; `--jobs` and `--json-dir` now also work.

fn main() {
    silo_bench::run_legacy("fig13_log_reduction");
}
