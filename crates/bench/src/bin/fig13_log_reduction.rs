//! Fig 13: the number of total and remaining on-chip log entries per
//! transaction under Silo's log ignorance and merging (§III-C), which
//! sizes the 20-entry log buffer (§VI-D).
//!
//! TPCC runs all five transaction types here, as the paper does for the
//! capacity study. Usage: `fig13_log_reduction [--txs N] [--seed S]`.

use silo_bench::{arg_usize, run_delta_with};
use silo_core::SiloScheme;
use silo_sim::SimConfig;
use silo_workloads::{workload_by_name, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let txs = arg_usize(&args, "--txs", 10_000);
    let seed = arg_usize(&args, "--seed", 42) as u64;
    let cores = 8usize;
    let txs_per_core = (txs / cores).max(1);

    println!("Fig 13: on-chip log entries per transaction (Silo, 8 cores)");
    println!(
        "{:<10}{:>8}{:>11}{:>9}{:>9}{:>11}",
        "workload", "total", "remaining", "ignored", "merged", "reduction"
    );
    let names = ["Array", "Btree", "Hash", "Queue", "RBtree", "TPCC-mix", "YCSB"];
    let (mut sum_total, mut sum_remaining, mut sum_reduction) = (0.0, 0.0, 0.0);
    for name in names {
        let w: Box<dyn Workload> = workload_by_name(name).expect("fig13 benchmark");
        let config = SimConfig::table_ii(cores);
        let stats = run_delta_with(
            &config,
            || Box::new(SiloScheme::new(&config)),
            &w,
            txs_per_core,
            seed,
        );
        let s = stats.scheme_stats;
        let total = s.avg_generated_per_tx();
        let remaining = s.avg_remaining_per_tx();
        sum_total += total;
        sum_remaining += remaining;
        sum_reduction += s.reduction_ratio();
        println!(
            "{:<10}{:>8.1}{:>11.1}{:>9.1}{:>9.1}{:>10.1}%",
            name,
            total,
            remaining,
            s.log_entries_ignored as f64 / s.transactions as f64,
            s.log_entries_merged as f64 / s.transactions as f64,
            100.0 * s.reduction_ratio()
        );
    }
    println!(
        "{:<10}{:>8.1}{:>11.1}{:>28.1}%   (paper: 64.3% average reduction; Hash max 20 remaining)",
        "Average",
        sum_total / names.len() as f64,
        sum_remaining / names.len() as f64,
        100.0 * sum_reduction / names.len() as f64
    );
}
