//! Fig 15: transaction throughput sensitivity to the log-buffer access
//! latency, swept from 8 to 128 cycles (§VI-G). The buffer sits off the
//! critical path, so throughput should stay nearly flat (paper: −3.3 % at
//! 128 cycles vs 8).
//!
//! Usage: `fig15_buffer_latency [--txs N] [--seed S]`.

use silo_bench::{arg_usize, run_with_scheme};
use silo_core::SiloScheme;
use silo_sim::SimConfig;
use silo_types::Cycles;
use silo_workloads::workload_by_name;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let txs = arg_usize(&args, "--txs", 4_000);
    let seed = arg_usize(&args, "--seed", 42) as u64;
    let cores = 8usize;
    let txs_per_core = (txs / cores).max(1);
    let latencies: Vec<u64> = (1..=16).map(|i| i * 8).collect();

    println!("Fig 15: normalized throughput vs log-buffer latency (Silo, 8 cores)");
    print!("{:<10}", "latency");
    for l in &latencies {
        print!("{l:>7}");
    }
    println!();

    let names = ["Array", "Btree", "Hash", "Queue", "RBtree", "TPCC", "YCSB"];
    for name in names {
        let w = workload_by_name(name).expect("fig15 benchmark");
        let mut row = Vec::new();
        for &lat in &latencies {
            let mut config = SimConfig::table_ii(cores);
            config.log_buffer_latency = Cycles::new(lat);
            let mut silo = SiloScheme::new(&config);
            let streams = w.generate(cores, txs_per_core, seed);
            let stats = run_with_scheme(&mut silo, &config, streams);
            row.push(stats.throughput());
        }
        print!("{name:<10}");
        for v in &row {
            print!("{:>7.3}", v / row[0]);
        }
        println!();
    }
    println!("(each row normalized to its own 8-cycle value; paper: -3.3% at 128 cycles)");
}
