//! Fig 14: Silo's behaviour on large transactions whose write sets are
//! 1–16× the log-buffer size (§VI-F): (a) normalized throughput, (b)
//! normalized PM write traffic, both relative to the 1× configuration of
//! the same benchmark.
//!
//! Larger write sets are built by batching k of a workload's transactions
//! into one (the write-set multiplier); throughput is measured per inner
//! operation so the batching itself does not distort the metric.
//!
//! Usage: `fig14_large_tx [--txs N] [--seed S]`.

use silo_bench::{arg_usize, run_with_scheme, Batched};
use silo_core::SiloScheme;
use silo_sim::SimConfig;
use silo_workloads::{workload_by_name, Workload};

const MULTS: [usize; 5] = [1, 2, 4, 8, 16];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let txs = arg_usize(&args, "--txs", 4_000);
    let seed = arg_usize(&args, "--seed", 42) as u64;
    let cores = 8usize;

    let names = ["Array", "Btree", "Hash", "Queue", "RBtree", "TPCC", "YCSB"];
    let mut tp: Vec<Vec<f64>> = Vec::new();
    let mut wr: Vec<Vec<f64>> = Vec::new();
    let mut overflow_note = String::new();

    for name in names {
        let mut tp_row = Vec::new();
        let mut wr_row = Vec::new();
        for &mult in &MULTS {
            let w: Box<dyn Workload> = workload_by_name(name).expect("fig14 benchmark");
            // Baseline group size: enough inner txs that the 1x write set
            // roughly fills the 20-entry buffer.
            let probe = w.generate(1, 50, seed);
            let avg_words: f64 = probe[0][1..]
                .iter()
                .map(|t| t.write_set_words())
                .sum::<usize>() as f64
                / (probe[0].len() - 1) as f64;
            let group_1x = ((20.0 / avg_words).ceil() as usize).max(1);
            let group = group_1x * mult;
            let inner_per_core = (txs / cores).max(group);
            let outer = inner_per_core / group;

            let config = SimConfig::table_ii(cores);
            let mut silo = SiloScheme::new(&config);
            let streams = Batched::new(
                workload_by_name(name).expect("fig14 benchmark"),
                group,
            )
            .generate(cores, outer, seed);
            let stats = run_with_scheme(&mut silo, &config, streams);
            // Per inner-operation throughput.
            let ops = stats.txs_committed * group as u64;
            tp_row.push(ops as f64 / stats.sim_cycles.as_u64() as f64);
            wr_row.push(stats.media_writes() as f64 / ops as f64);
            if mult == 16 {
                overflow_note.push_str(&format!(
                    " {name}:{}",
                    stats.scheme_stats.overflow_events
                ));
            }
        }
        tp.push(tp_row);
        wr.push(wr_row);
    }

    println!("Fig 14a: normalized throughput vs write-set size (Silo, 8 cores)");
    print_rows(&names, &tp);
    println!("\nFig 14b: normalized PM write traffic vs write-set size");
    print_rows(&names, &wr);
    println!("\noverflow events at 16x:{overflow_note}");
    println!("(paper: throughput -7.4% on average at 16x; write traffic up to 1.9x)");
}

fn print_rows(names: &[&str], rows: &[Vec<f64>]) {
    print!("{:<10}", "");
    for m in MULTS {
        print!("{:>8}", format!("{m}x"));
    }
    println!();
    let mut avg = vec![0.0; MULTS.len()];
    for (name, row) in names.iter().zip(rows) {
        print!("{name:<10}");
        for (i, v) in row.iter().enumerate() {
            let norm = v / row[0];
            avg[i] += norm;
            print!("{norm:>8.3}");
        }
        println!();
    }
    print!("{:<10}", "Average");
    for a in &avg {
        print!("{:>8.3}", a / names.len() as f64);
    }
    println!();
}
