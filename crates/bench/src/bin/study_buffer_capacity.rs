//! Study (§VI-D): sizing the per-core log buffer. The paper picks 20
//! entries because Hash's surviving footprint peaks there (Fig 13); this
//! sweep shows what smaller and larger buffers cost — overflow rate,
//! log-region traffic, and throughput.
//!
//! Usage: `study_buffer_capacity [--txs N] [--seed S]`.

use silo_bench::{arg_usize, run_delta_with};
use silo_core::SiloScheme;
use silo_sim::SimConfig;
use silo_workloads::workload_by_name;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let txs = arg_usize(&args, "--txs", 4_000);
    let seed = arg_usize(&args, "--seed", 42) as u64;
    let cores = 8usize;
    let txs_per_core = (txs / cores).max(1);

    println!("Log-buffer capacity study (Silo, 8 cores)");
    println!(
        "{:<10}{:>9}{:>14}{:>13}{:>13}{:>12}",
        "workload", "entries", "overflows/tx", "log wr/tx", "media/tx", "throughput"
    );
    for name in ["Hash", "TPCC", "YCSB"] {
        let w = workload_by_name(name).expect("benchmark");
        for entries in [5usize, 10, 20, 40, 80] {
            let mut config = SimConfig::table_ii(cores);
            config.log_buffer_entries = entries;
            let stats = run_delta_with(
                &config,
                || Box::new(SiloScheme::new(&config)),
                &w,
                txs_per_core,
                seed,
            );
            let s = stats.scheme_stats;
            let n = s.transactions as f64;
            println!(
                "{:<10}{:>9}{:>14.2}{:>13.2}{:>13.2}{:>12.4}",
                name,
                entries,
                s.overflow_events as f64 / n,
                s.log_entries_written_to_pm as f64 / n,
                stats.media_writes() as f64 / n,
                stats.throughput()
            );
        }
    }
    println!("(paper: 20 entries cover the max surviving footprint, Fig 13 / Table I)");
}
