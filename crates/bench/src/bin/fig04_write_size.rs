//! Fig 4: the write size (bytes) of one transaction across eleven
//! workloads — the observation motivating the small on-chip log buffer
//! (§II-E: "the write size is generally less than 0.5 KB per
//! transaction").
//!
//! Usage: `fig04_write_size [--txs N] [--seed S]`.

use silo_bench::arg_usize;
use silo_workloads::fig4_set;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let txs = arg_usize(&args, "--txs", 2_000);
    let seed = arg_usize(&args, "--seed", 42) as u64;

    println!("Fig 4: write size (B) per transaction");
    println!("{:<10}{:>10}{:>10}{:>10}", "workload", "avg B", "max B", "avg words");
    let mut grand_total = 0.0;
    let mut n_workloads = 0;
    for w in fig4_set() {
        let streams = w.generate(1, txs, seed);
        // Skip the setup transaction; measure the workload's own txs.
        let measured = &streams[0][1..];
        let (mut total, mut max, mut words) = (0usize, 0usize, 0usize);
        for tx in measured {
            let b = tx.write_set_bytes();
            total += b;
            max = max.max(b);
            words += tx.write_set_words();
        }
        let avg = total as f64 / measured.len() as f64;
        grand_total += avg;
        n_workloads += 1;
        println!(
            "{:<10}{:>10.1}{:>10}{:>10.1}",
            w.name(),
            avg,
            max,
            words as f64 / measured.len() as f64
        );
    }
    println!(
        "{:<10}{:>10.1}   (paper: generally < 512 B per transaction)",
        "Average",
        grand_total / n_workloads as f64
    );
}
