//! Ablation: the overflow batch size of §III-F. The paper batches
//! `N = floor(S/18) = 14` undo entries per overflow flush so a batch fills
//! one on-PM buffer line; this sweep compares N = 1, 4, 14 on
//! overflow-heavy (batched) transactions.
//!
//! Usage: `ablation_batch_size [--txs N] [--seed S]`.

use silo_bench::{arg_usize, run_delta_with, Batched};
use silo_core::{SiloOptions, SiloScheme};
use silo_sim::SimConfig;
use silo_workloads::{workload_by_name, HashWorkload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let txs = arg_usize(&args, "--txs", 2_000);
    let seed = arg_usize(&args, "--seed", 42) as u64;
    let cores = 8usize;
    let txs_per_core = (txs / cores / 4).max(1);

    println!("Ablation: overflow batch size (Silo, 8 cores, 4x-batched transactions)");
    println!(
        "{:<10}{:>7}{:>14}{:>13}{:>12}",
        "workload", "batch", "overflows/tx", "media/tx", "throughput"
    );
    for name in ["Hash", "TPCC"] {
        let _ = workload_by_name(name).expect("benchmark");
        for batch in [1usize, 4, 14] {
            let config = SimConfig::table_ii(cores);
            let make = || {
                Box::new(SiloScheme::with_options(
                    &config,
                    SiloOptions {
                        overflow_batch_override: Some(batch),
                        // Coalescing off isolates the batching effect: with
                        // the on-PM buffer active, sequential overflow
                        // records coalesce regardless of batch size (see
                        // DESIGN.md ablation notes).
                        onpm_coalescing: false,
                        ..SiloOptions::default()
                    },
                )) as Box<dyn silo_sim::LoggingScheme>
            };
            let stats = match name {
                "Hash" => run_delta_with(
                    &config,
                    make,
                    &Batched::new(HashWorkload::default(), 4),
                    txs_per_core,
                    seed,
                ),
                _ => run_delta_with(
                    &config,
                    make,
                    &Batched::new(
                        silo_workloads::TpccWorkload::default(),
                        4,
                    ),
                    txs_per_core,
                    seed,
                ),
            };
            let s = stats.scheme_stats;
            println!(
                "{:<10}{:>7}{:>14.2}{:>13.2}{:>12.4}",
                name,
                batch,
                s.overflow_events as f64 / s.transactions as f64,
                stats.media_writes() as f64 / s.transactions as f64,
                stats.throughput()
            );
        }
    }
    println!("(§III-F: larger batches fit whole on-PM buffer lines, cutting amplification)");
}
