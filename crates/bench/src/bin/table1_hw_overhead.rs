//! Table I: the hardware overhead of Silo in the processor.

use silo_core::HwOverhead;

fn main() {
    let hw = HwOverhead::paper(8);
    println!("Table I: hardware overhead of Silo");
    println!("{:<22}{:<20}Size", "Component", "Type");
    println!(
        "{:<22}{:<20}{} entries, {} B per core",
        "Log buffer", "SRAM", hw.entries_per_core, hw.log_buffer_bytes_per_core
    );
    println!(
        "{:<22}{:<20}{} comparators per log buffer",
        "64-bit comparators", "CMOS cells", hw.comparators_per_core
    );
    println!(
        "{:<22}{:<20}{:.3e} mm^3 per log buffer (Li thin-film)",
        "Battery",
        "Lithium thin-film",
        hw.battery_volume_mm3(silo_core::LI_ENERGY_DENSITY_WH_PER_CM3) / hw.cores as f64
    );
    println!(
        "{:<22}{:<20}{} B per core",
        "Log head and tail", "Flip-flops", hw.head_tail_bytes_per_core
    );
    println!(
        "\ntotals for {} cores: {} B battery-backed SRAM, {:.1} uJ crash-flush energy",
        hw.cores,
        hw.total_flush_bytes(),
        hw.flush_energy_uj()
    );
}
