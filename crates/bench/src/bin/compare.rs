//! Quick-look comparison utility: one table of absolute and normalized
//! throughput and write traffic for chosen workloads, schemes, and core
//! count. Not a paper figure — a debugging/exploration tool.
//!
//! ```text
//! compare [--txs N] [--cores C] [--seed S] [--bench Name[,Name...]]
//! ```

use silo_bench::{arg_usize, run_one_delta, SCHEMES};
use silo_workloads::workload_by_name;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let txs = arg_usize(&args, "--txs", 200);
    let cores = arg_usize(&args, "--cores", 8);
    let seed = arg_usize(&args, "--seed", 42) as u64;
    let benches: Vec<String> = args
        .iter()
        .position(|a| a == "--bench")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.split(',').map(str::to_string).collect())
        .unwrap_or_else(|| vec!["Hash".into(), "TPCC".into(), "YCSB".into()]);

    for name in &benches {
        let Some(w) = workload_by_name(name) else {
            eprintln!("unknown workload {name}; known: Array Btree Hash Queue RBtree TPCC YCSB Rtree Ctrie TATP Bank");
            std::process::exit(1);
        };
        println!("== {name} ({cores} cores, {txs} txs/core, steady state) ==");
        let mut base_tp = 0.0;
        let mut base_wr = 0.0;
        for s in SCHEMES {
            let stats = run_one_delta(s, w.as_ref(), cores, txs, seed);
            let tp = stats.throughput();
            let wr = stats.media_writes() as f64;
            if s == "Base" {
                base_tp = tp;
                base_wr = wr;
            }
            println!(
                "  {s:<7} tp {tp:>9.4} ({:>5.2}x)   media {wr:>9.0} ({:>5.2} of Base)   overflows {:>6}",
                tp / base_tp,
                wr / base_wr,
                stats.scheme_stats.overflow_events,
            );
        }
    }
}
