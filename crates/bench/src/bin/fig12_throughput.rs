//! Fig 12: normalized transaction throughput, five schemes × seven
//! benchmarks × {1, 2, 4, 8} cores, normalized to `Base` per core count.
//!
//! Usage: `fig12_throughput [--txs N] [--seed S]`.

use silo_bench::{arg_usize, print_normalized, run_one_delta, FIG11_BENCHMARKS, SCHEMES};
use silo_workloads::workload_by_name;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let total_txs = arg_usize(&args, "--txs", 10_000);
    let seed = arg_usize(&args, "--seed", 42) as u64;

    println!("Fig 12: transaction throughput, normalized to Base");
    for &cores in &[1usize, 2, 4, 8] {
        let txs_per_core = (total_txs / cores).max(1);
        let mut rows = Vec::new();
        for bench in FIG11_BENCHMARKS {
            let w = workload_by_name(bench).expect("fig12 benchmark");
            let row: Vec<f64> = SCHEMES
                .iter()
                .map(|s| run_one_delta(s, w.as_ref(), cores, txs_per_core, seed).throughput())
                .collect();
            rows.push(row);
        }
        print_normalized(
            &format!("({cores} core{})", if cores == 1 { "" } else { "s" }),
            &FIG11_BENCHMARKS.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &SCHEMES,
            &rows,
            0,
        );
    }
}
