//! Motivation study (paper §II-B, Fig 1): software logging versus
//! hardware logging. The paper cites software WAL costing "up to 70%"
//! of transaction throughput because clwb + sfence per log entry sit on
//! the critical path; hardware logging overlaps them with execution.
//!
//! Usage: `motivation_sw_logging [--txs N] [--seed S]`.

use silo_baselines::{EadrSwLogScheme, SwLogScheme};
use silo_bench::{arg_usize, run_delta_with, run_one_delta};
use silo_sim::SimConfig;
use silo_workloads::workload_by_name;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let txs = arg_usize(&args, "--txs", 2_000);
    let seed = arg_usize(&args, "--seed", 42) as u64;
    let cores = 1usize; // the motivation is per-thread critical-path cost

    println!("Motivation (Fig 1 / §II-B, §II-C): software vs hardware logging, 1 core");
    println!(
        "{:<10}{:>12}{:>12}{:>12}{:>12}{:>12}",
        "workload", "SwLog tp", "eADR-sw tp", "Base tp", "Silo tp", "sw loss"
    );
    for name in ["Hash", "Queue", "TPCC", "Bank"] {
        let w = workload_by_name(name).expect("benchmark");
        let config = SimConfig::table_ii(cores);
        let sw = run_delta_with(
            &config,
            || Box::new(SwLogScheme::new(&config)),
            &w,
            txs,
            seed,
        );
        let eadr = run_delta_with(
            &config,
            || Box::new(EadrSwLogScheme::new(&config)),
            &w,
            txs,
            seed,
        );
        let hw = run_one_delta("Base", w.as_ref(), cores, txs, seed);
        let silo = run_one_delta("Silo", w.as_ref(), cores, txs, seed);
        println!(
            "{:<10}{:>12.4}{:>12.4}{:>12.4}{:>12.4}{:>11.1}%",
            name,
            sw.throughput(),
            eadr.throughput(),
            hw.throughput(),
            silo.throughput(),
            100.0 * (1.0 - sw.throughput() / hw.throughput()),
        );
    }
    println!("(paper: software logging decreases throughput by up to 70% [28];");
    println!(" eADR removes the fences but log appends still pollute the cache, §II-C)");
}
