//! Ablation: the on-PM buffer write-coalescing scheme (§III-E). Silo with
//! coalescing on vs off (writes program the media directly), showing the
//! write-amplification the coalescing buffer removes.
//!
//! Usage: `ablation_coalescing [--txs N] [--seed S]`.

use silo_bench::{arg_usize, run_delta_with};
use silo_core::{SiloOptions, SiloScheme};
use silo_sim::SimConfig;
use silo_workloads::workload_by_name;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let txs = arg_usize(&args, "--txs", 2_000);
    let seed = arg_usize(&args, "--seed", 42) as u64;
    let cores = 8usize;
    let txs_per_core = (txs / cores).max(1);

    println!("Ablation: on-PM buffer coalescing (Silo, 8 cores)");
    println!(
        "{:<10}{:>14}{:>14}{:>9}{:>14}{:>14}",
        "workload", "media/tx on", "media/tx off", "ratio", "tp on", "tp off"
    );
    for name in ["Array", "Btree", "Hash", "Queue", "RBtree", "TPCC", "YCSB"] {
        let w = workload_by_name(name).expect("benchmark");
        let config = SimConfig::table_ii(cores);
        let on = run_delta_with(
            &config,
            || Box::new(SiloScheme::new(&config)),
            &w,
            txs_per_core,
            seed,
        );
        let off = run_delta_with(
            &config,
            || {
                Box::new(SiloScheme::with_options(
                    &config,
                    SiloOptions { onpm_coalescing: false, ..SiloOptions::default() },
                ))
            },
            &w,
            txs_per_core,
            seed,
        );
        let m_on = on.media_writes() as f64 / on.txs_committed as f64;
        let m_off = off.media_writes() as f64 / off.txs_committed as f64;
        println!(
            "{:<10}{:>14.2}{:>14.2}{:>9.2}{:>14.4}{:>14.4}",
            name,
            m_on,
            m_off,
            m_off / m_on,
            on.throughput(),
            off.throughput()
        );
    }
}
