//! Ablation: the contribution of log ignorance and log merging (§III-C)
//! to Silo's on-chip footprint and PM traffic. Four variants per
//! benchmark: the full design, ignorance off, merging off, both off.
//!
//! Usage: `ablation_log_reduction [--txs N] [--seed S]`.

use silo_bench::{arg_usize, run_delta_with};
use silo_core::{SiloOptions, SiloScheme};
use silo_sim::SimConfig;
use silo_workloads::workload_by_name;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let txs = arg_usize(&args, "--txs", 2_000);
    let seed = arg_usize(&args, "--seed", 42) as u64;
    let cores = 8usize;
    let txs_per_core = (txs / cores).max(1);

    let variants: [(&str, SiloOptions); 4] = [
        ("full", SiloOptions::default()),
        ("no-ignore", SiloOptions { log_ignorance: false, ..SiloOptions::default() }),
        ("no-merge", SiloOptions { log_merging: false, ..SiloOptions::default() }),
        (
            "neither",
            SiloOptions {
                log_ignorance: false,
                log_merging: false,
                ..SiloOptions::default()
            },
        ),
    ];

    println!("Ablation: log reduction mechanisms (Silo, 8 cores)");
    println!(
        "{:<10}{:>11}{:>13}{:>13}{:>12}",
        "workload", "variant", "remaining/tx", "overflows/tx", "media/tx"
    );
    for name in ["Array", "Btree", "Hash", "Queue", "RBtree", "TPCC", "YCSB"] {
        let w = workload_by_name(name).expect("benchmark");
        for (vname, opts) in variants {
            let config = SimConfig::table_ii(cores);
            let stats = run_delta_with(
                &config,
                || Box::new(SiloScheme::with_options(&config, opts)),
                &w,
                txs_per_core,
                seed,
            );
            let s = stats.scheme_stats;
            println!(
                "{:<10}{:>11}{:>13.1}{:>13.3}{:>12.2}",
                name,
                vname,
                s.avg_remaining_per_tx(),
                s.overflow_events as f64 / s.transactions as f64,
                stats.media_writes() as f64 / s.transactions as f64,
            );
        }
    }
}
