//! Study (paper §III-D "Multiple MCs"): Silo with 1, 2, and 4 memory
//! controllers. The paper argues Silo needs no cross-MC coordination —
//! each transaction's logs and in-place updates target its core's home
//! controller — so adding controllers should scale throughput without any
//! scheme change. The baselines interleave demand traffic only.
//!
//! Usage: `study_multi_mc [--txs N] [--seed S]`.

use silo_bench::{arg_usize, run_delta_with};
use silo_core::SiloScheme;
use silo_sim::SimConfig;
use silo_workloads::workload_by_name;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let txs = arg_usize(&args, "--txs", 4_000);
    let seed = arg_usize(&args, "--seed", 42) as u64;
    let cores = 8usize;
    let txs_per_core = (txs / cores).max(1);

    println!("Multi-MC study (Silo, 8 cores): throughput vs controller count");
    println!("{:<10}{:>10}{:>10}{:>10}{:>14}", "workload", "1 MC", "2 MCs", "4 MCs", "4-MC speedup");
    for name in ["Hash", "Queue", "TPCC", "YCSB"] {
        let w = workload_by_name(name).expect("benchmark");
        let mut row = Vec::new();
        for mcs in [1usize, 2, 4] {
            let mut config = SimConfig::table_ii(cores);
            config.num_mcs = mcs;
            let stats = run_delta_with(
                &config,
                || Box::new(SiloScheme::new(&config)),
                &w,
                txs_per_core,
                seed,
            );
            row.push(stats.throughput());
        }
        println!(
            "{:<10}{:>10.4}{:>10.4}{:>10.4}{:>13.2}x",
            name,
            row[0],
            row[1],
            row[2],
            row[2] / row[0]
        );
    }
    println!("(no coordination between controllers: per-transaction MC affinity, §III-D)");
}
