//! Study (extension): recovery cost after crashes at varying points.
//!
//! For each crash cycle, reports what the §III-G selective flush left in
//! the log region and a modelled recovery latency (sequential record scan
//! at the PM read latency plus replay/revoke writes at the PM write
//! latency) — the quantity a mean-time-to-recovery analysis would use.
//!
//! Usage: `study_recovery [--txs N] [--seed S]`.

use silo_bench::arg_usize;
use silo_core::SiloScheme;
use silo_sim::{Engine, SimConfig};
use silo_types::{Cycles, CLOCK_GHZ};
use silo_workloads::{workload_by_name, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let txs = arg_usize(&args, "--txs", 1_000);
    let seed = arg_usize(&args, "--seed", 42) as u64;
    let cores = 4usize;

    println!("Recovery study (Silo, 4 cores, TPCC)");
    println!(
        "{:<12}{:>10}{:>10}{:>10}{:>10}{:>10}{:>14}",
        "crash cycle", "committed", "in-flight", "scanned", "replayed", "revoked", "recovery (us)"
    );
    let w = workload_by_name("TPCC").expect("tpcc");
    for crash_at in [1_000u64, 5_000, 20_000, 80_000, 320_000, 1_280_000] {
        let config = SimConfig::table_ii(cores);
        let mut silo = SiloScheme::new(&config);
        let streams = w.generate(cores, txs / cores, seed);
        let out = Engine::new(&config, &mut silo).run(streams, Some(Cycles::new(crash_at)));
        let crash = out.crash.expect("crash injected");
        assert!(crash.consistency.is_consistent(), "{:?}", crash.consistency);
        let r = crash.recovery;
        // Model: one PM read per scanned record, one PM write per applied
        // word (word writes coalesce ~4:1 into media lines on average).
        let read_cyc = config.memctrl.read_cycles * r.scanned_records;
        let write_cyc =
            config.memctrl.media_write_cycles * (r.replayed_words + r.revoked_words) / 4;
        let us = (read_cyc + write_cyc) as f64 / (CLOCK_GHZ * 1000.0);
        println!(
            "{:<12}{:>10}{:>10}{:>10}{:>10}{:>10}{:>14.2}",
            crash_at,
            crash.committed_txs,
            crash.inflight_txs,
            r.scanned_records,
            r.replayed_words,
            r.revoked_words,
            us
        );
    }
    println!("(recovery scales with surviving log records, not with PM size or history)");
}
