//! The unified evaluation driver: runs any registered experiment (or all
//! of them) across parallel workers and writes one JSON report per
//! experiment.
//!
//! ```text
//! evaluate <experiment|all|list> [--txs N] [--seed S] [--jobs J] [--json-dir D]
//!          [--cores C] [--bench Name[,Name...]] [--trace-events PATH]
//! evaluate check <report.json>
//! ```
//!
//! Experiments resolve by registry name (`fig11`) or legacy binary name
//! (`fig11_write_traffic`); the text output is byte-identical to the
//! pre-framework serial binaries at any `--jobs`. Reports land in
//! `target/reports/` unless `--json-dir` says otherwise; progress lines go
//! to stderr so stdout stays comparable.

use std::path::Path;

use silo_bench::{
    arg_string, arg_u64, arg_usize, default_jobs, registry, run_experiment, write_report,
    EventTraceSink, ExpParams, ExperimentSpec, ResultStore, TraceCache,
};
use silo_types::JsonValue;

const USAGE: &str = "\
usage: evaluate <experiment|all|list> [--txs N] [--seed S] [--jobs J] [--json-dir D]
                [--cores C] [--bench Name[,Name...]] [--no-trace-cache]
                [--no-result-store] [--trace-events PATH]
       evaluate check <report.json>
       evaluate store-gc

--trace-events writes a schema-versioned JSONL event timeline (tx
begin/commit, log merge/ignore/overflow, buffer drains, WPQ admissions,
crash/recovery) for every run to PATH.

Cell outcomes are memoized on disk under target/result-store/ (override
with SILO_RESULT_STORE=<dir>), keyed by spec hash, trace content, and
code fingerprint, so re-evaluating unchanged work replays stored
results. --no-result-store computes everything fresh and records
nothing; `evaluate store-gc` prunes entries left by old builds.

crashfuzz resimulates crash points from periodic checkpoints of the
clean reference run; --checkpoint-every N sets the capture cadence in
durability events and --no-checkpoints runs every point from scratch.
Both are perf-only: resumed and from-scratch runs are byte-identical.
--points K (default 4) sets how many crash points each cell scans and,
unlike the checkpoint flags, is part of the computed result.

fuzz runs the coverage-guided crash search: --execs N sets the per-cell
execution budget, --fault adr|torn-line|battery (with --torn-keep /
--battery-bytes) restricts the fault models, --arrival IDENT fuzzes an
open-system workload, and --crash-event E (with one --fault, optional
--recovery-crash R) replays one exact candidate. Interesting candidates
persist under target/fuzz-corpus/ (--corpus DIR overrides,
--no-corpus disables); the search itself is a pure function of --seed.

Run `evaluate list` for the registered experiments.";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--no-trace-cache") {
        TraceCache::global().set_enabled(false);
    }
    let mut store_on = !args.iter().any(|a| a == "--no-result-store");
    if let Some(path) = arg_string(&args, "--trace-events") {
        if let Err(err) = EventTraceSink::global().enable(Path::new(&path)) {
            eprintln!("error: opening event trace {path}: {err}");
            std::process::exit(1);
        }
        // A replayed outcome emits no events, so a run that asks for the
        // timeline must compute every cell fresh.
        store_on = false;
    }
    ResultStore::global().set_enabled(store_on);
    let Some(cmd) = args.get(1).map(String::as_str) else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    match cmd {
        "-h" | "--help" => println!("{USAGE}"),
        "list" => {
            for spec in registry::all() {
                println!("{:<24}{}", spec.name, spec.description);
            }
        }
        "check" => check(args.get(2).map(String::as_str)),
        "store-gc" => match ResultStore::global().gc() {
            Ok((dirs, files)) => {
                println!("result store gc: removed {dirs} stale fingerprint dirs, {files} entries")
            }
            Err(err) => {
                eprintln!("error: result store gc: {err}");
                std::process::exit(1);
            }
        },
        "all" => {
            for spec in registry::all() {
                run(&spec, &args);
            }
        }
        name => match registry::find(name) {
            Some(spec) => run(&spec, &args),
            None => {
                eprintln!("error: unknown experiment {name:?}; run `evaluate list`");
                std::process::exit(2);
            }
        },
    }
}

fn run(spec: &ExperimentSpec, args: &[String]) {
    let mut params = ExpParams::defaults(spec);
    params.txs = arg_usize(args, "--txs", params.txs);
    params.seed = arg_u64(args, "--seed", params.seed);
    params.cores = arg_usize(args, "--cores", params.cores);
    if let Some(list) = arg_string(args, "--bench") {
        params.benches = list.split(',').map(str::to_string).collect();
    }
    params.extra = args.to_vec();
    let jobs = arg_usize(args, "--jobs", default_jobs());
    if jobs == 0 {
        eprintln!("error: --jobs must be at least 1");
        std::process::exit(2);
    }
    let dir = arg_string(args, "--json-dir").unwrap_or_else(|| "target/reports".to_string());

    let start = std::time::Instant::now();
    let run = run_experiment(spec, &params, jobs);
    print!("{}", run.text);
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    // Cumulative process-wide counts; stderr so stdout stays comparable.
    let cache = TraceCache::global().stats();
    eprintln!(
        "[trace-cache] {} unique keys, {} generated, {} hits{}",
        cache.unique_keys,
        cache.generations,
        cache.hits,
        if TraceCache::global().enabled() {
            ""
        } else {
            " (disabled)"
        }
    );
    let store = ResultStore::global().stats();
    eprintln!(
        "[result-store] {} hits, {} misses, {} invalidated{}",
        store.hits,
        store.misses,
        store.invalidated,
        if ResultStore::global().enabled() {
            ""
        } else {
            " (disabled)"
        }
    );
    match write_report(&run, Path::new(&dir), jobs, wall_ms) {
        Ok(path) => eprintln!(
            "[{}] done in {:.0} ms ({} jobs), report {}",
            spec.name,
            wall_ms,
            jobs,
            path.display()
        ),
        Err(err) => {
            eprintln!("error: writing report for {}: {err}", spec.name);
            std::process::exit(1);
        }
    }
}

fn check(path: Option<&str>) {
    let Some(path) = path else {
        eprintln!("usage: evaluate check <report.json>");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|err| {
        eprintln!("error: reading {path}: {err}");
        std::process::exit(1);
    });
    let v = JsonValue::parse(&text).unwrap_or_else(|err| {
        eprintln!("error: {path} is not well-formed JSON: {err}");
        std::process::exit(1);
    });
    let name = v
        .get("experiment")
        .and_then(JsonValue::as_str)
        .unwrap_or("?");
    let cells = v.get("cells").and_then(JsonValue::as_array).unwrap_or(&[]);
    let mut breakdowns = 0usize;
    let mut violations = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let Some(stats) = cell.get("stats") else {
            continue;
        };
        if stats.get("breakdown").is_none() {
            continue;
        }
        breakdowns += 1;
        violations.extend(breakdown_violations(i, stats));
    }
    if !violations.is_empty() {
        for msg in &violations {
            eprintln!("error: {path}: {msg}");
        }
        std::process::exit(1);
    }
    if breakdowns > 0 {
        println!(
            "{path}: ok (experiment {name}, {} cells, {breakdowns} breakdowns validated)",
            cells.len()
        );
    } else {
        println!("{path}: ok (experiment {name}, {} cells)", cells.len());
    }
}

/// Validates one cell's cycle-attribution invariant: each per-core
/// category row sums to that core's reported clock, per-category totals
/// match the column sums, and the grand total matches everything.
fn breakdown_violations(cell: usize, stats: &JsonValue) -> Vec<String> {
    let mut out = Vec::new();
    let b = stats.get("breakdown").expect("caller checked presence");
    let rows: Vec<Vec<u64>> = b
        .get("per_core")
        .and_then(JsonValue::as_array)
        .map(|rows| {
            rows.iter()
                .map(|row| {
                    row.as_array()
                        .map(|xs| {
                            xs.iter()
                                .map(|x| x.as_f64().unwrap_or(f64::NAN) as u64)
                                .collect()
                        })
                        .unwrap_or_default()
                })
                .collect()
        })
        .unwrap_or_default();
    let core_cycles: Vec<u64> = stats
        .get("per_core")
        .and_then(JsonValue::as_array)
        .map(|cs| {
            cs.iter()
                .map(|c| {
                    c.get("cycles")
                        .and_then(JsonValue::as_f64)
                        .unwrap_or(f64::NAN) as u64
                })
                .collect()
        })
        .unwrap_or_default();
    if rows.len() != core_cycles.len() {
        out.push(format!(
            "cell {cell}: breakdown covers {} cores but per_core reports {}",
            rows.len(),
            core_cycles.len()
        ));
        return out;
    }
    for (i, (row, &cycles)) in rows.iter().zip(&core_cycles).enumerate() {
        let sum: u64 = row.iter().sum();
        if sum != cycles {
            out.push(format!(
                "cell {cell}: core {i} categories sum to {sum}, clock is {cycles}"
            ));
        }
    }
    let categories: Vec<String> = b
        .get("categories")
        .and_then(JsonValue::as_array)
        .map(|cs| {
            cs.iter()
                .filter_map(|c| c.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    let Some(totals) = b.get("totals") else {
        out.push(format!("cell {cell}: breakdown has no totals object"));
        return out;
    };
    let mut grand = 0u64;
    for (k, cat) in categories.iter().enumerate() {
        let column: u64 = rows
            .iter()
            .map(|row| row.get(k).copied().unwrap_or(0))
            .sum();
        grand += column;
        let reported = totals
            .get(cat)
            .and_then(JsonValue::as_f64)
            .unwrap_or(f64::NAN) as u64;
        if reported != column {
            out.push(format!(
                "cell {cell}: totals.{cat} is {reported}, column sums to {column}"
            ));
        }
    }
    let total = totals
        .get("total")
        .and_then(JsonValue::as_f64)
        .unwrap_or(f64::NAN) as u64;
    if total != grand {
        out.push(format!(
            "cell {cell}: totals.total is {total}, categories sum to {grand}"
        ));
    }
    out
}
