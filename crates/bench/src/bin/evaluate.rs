//! The unified evaluation driver: runs any registered experiment (or all
//! of them) across parallel workers and writes one JSON report per
//! experiment.
//!
//! ```text
//! evaluate <experiment|all|list> [--txs N] [--seed S] [--jobs J] [--json-dir D]
//!          [--cores C] [--bench Name[,Name...]] [--trace-events PATH]
//! evaluate check <report.json>
//! ```
//!
//! Experiments resolve by registry name (`fig11`) or legacy binary name
//! (`fig11_write_traffic`); the text output is byte-identical to the
//! pre-framework serial binaries at any `--jobs`. Reports land in
//! `target/reports/` unless `--json-dir` says otherwise; progress lines go
//! to stderr so stdout stays comparable.

use std::io::Write as _;
use std::net::SocketAddr;
use std::path::Path;

use silo_bench::{
    arg_string, arg_u64, arg_usize, default_jobs, http, registry, run_experiment_checked, try_arg,
    write_report, EventTraceSink, ExpParams, ExperimentError, ExperimentSpec, PanicPolicy,
    ResultStore, ServeOptions, Server, TraceCache,
};
use silo_types::JsonValue;

const USAGE: &str = "\
usage: evaluate <experiment|all|list> [--txs N] [--seed S] [--jobs J] [--json-dir D]
                [--cores C] [--bench Name[,Name...]] [--no-trace-cache]
                [--no-result-store] [--trace-events PATH] [--catch-cell-panics]
       evaluate check <report.json>
       evaluate store-gc
       evaluate serve [--addr A] [--serve-workers N] [--queue-cap N]
                      [--lru-cap N] [--store-dir D]
       evaluate serve-submit <experiment> --addr A [run flags] [--report-out F]
       evaluate serve-stats --addr A
       evaluate serve-stop --addr A
       evaluate serve-bench [--txs N] [--out F] [--store-dir D]

serve runs the memoized simulation daemon: POST /cell and POST
/experiment submit work, GET /progress/<id> and GET /result/<id> follow
a detached job, GET /stats reports the queue/cache counters, and POST
/shutdown drains and stops (there is no signal handler; use serve-stop).
serve-submit mirrors the CLI run surface over HTTP: stdout is the
experiment text, byte-identical to running it locally, and --report-out
writes the report body (the CLI report minus the jobs/wall_ms
envelope). serve-bench self-hosts a daemon and measures cold/warm grid
wall time plus cached single-cell serve latency into BENCH_serve.json.

A cell that fails exits 3; a render failure exits 4 (serve-submit maps
the daemon's 500-with-origin bodies onto the same codes).
--catch-cell-panics turns a panicking cell into a recorded failed
outcome instead of aborting the run.

--trace-events writes a schema-versioned JSONL event timeline (tx
begin/commit, log merge/ignore/overflow, buffer drains, WPQ admissions,
crash/recovery) for every run to PATH.

Cell outcomes are memoized on disk under target/result-store/ (override
with SILO_RESULT_STORE=<dir>), keyed by spec hash, trace content, and
code fingerprint, so re-evaluating unchanged work replays stored
results. --no-result-store computes everything fresh and records
nothing; `evaluate store-gc` prunes entries left by old builds.

crashfuzz resimulates crash points from periodic checkpoints of the
clean reference run; --checkpoint-every N sets the capture cadence in
durability events and --no-checkpoints runs every point from scratch.
Both are perf-only: resumed and from-scratch runs are byte-identical.
--points K (default 4) sets how many crash points each cell scans and,
unlike the checkpoint flags, is part of the computed result.

fuzz runs the coverage-guided crash search: --execs N sets the per-cell
execution budget, --fault adr|torn-line|battery (with --torn-keep /
--battery-bytes) restricts the fault models, --arrival IDENT fuzzes an
open-system workload, and --crash-event E (with one --fault, optional
--recovery-crash R) replays one exact candidate. Interesting candidates
persist under target/fuzz-corpus/ (--corpus DIR overrides,
--no-corpus disables); the search itself is a pure function of --seed.

Run `evaluate list` for the registered experiments.";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--no-trace-cache") {
        TraceCache::global().set_enabled(false);
    }
    let mut store_on = !args.iter().any(|a| a == "--no-result-store");
    if let Some(path) = arg_string(&args, "--trace-events") {
        if let Err(err) = EventTraceSink::global().enable(Path::new(&path)) {
            eprintln!("error: opening event trace {path}: {err}");
            std::process::exit(1);
        }
        // A replayed outcome emits no events, so a run that asks for the
        // timeline must compute every cell fresh.
        store_on = false;
    }
    ResultStore::global().set_enabled(store_on);
    let Some(cmd) = args.get(1).map(String::as_str) else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    match cmd {
        "-h" | "--help" => println!("{USAGE}"),
        "list" => {
            for spec in registry::all() {
                println!("{:<24}{}", spec.name, spec.description);
            }
        }
        "check" => check(args.get(2).map(String::as_str)),
        "serve" => serve_cmd(&args),
        "serve-submit" => serve_submit(&args),
        "serve-stats" => client_get(&args, "/stats"),
        "serve-stop" => client_post(&args, "/shutdown"),
        "serve-bench" => serve_bench(&args),
        "store-gc" => match ResultStore::global().gc() {
            Ok((dirs, files)) => {
                println!("result store gc: removed {dirs} stale fingerprint dirs, {files} entries")
            }
            Err(err) => {
                eprintln!("error: result store gc: {err}");
                std::process::exit(1);
            }
        },
        "all" => {
            for spec in registry::all() {
                run(&spec, &args);
            }
        }
        name => match registry::find(name) {
            Some(spec) => run(&spec, &args),
            None => {
                eprintln!("error: unknown experiment {name:?}; run `evaluate list`");
                std::process::exit(2);
            }
        },
    }
}

fn run(spec: &ExperimentSpec, args: &[String]) {
    let mut params = ExpParams::defaults(spec);
    params.txs = arg_usize(args, "--txs", params.txs);
    params.seed = arg_u64(args, "--seed", params.seed);
    params.cores = arg_usize(args, "--cores", params.cores);
    if let Some(list) = arg_string(args, "--bench") {
        params.benches = list.split(',').map(str::to_string).collect();
    }
    params.extra = args.to_vec();
    let jobs = arg_usize(args, "--jobs", default_jobs());
    if jobs == 0 {
        eprintln!("error: --jobs must be at least 1");
        std::process::exit(2);
    }
    let dir = arg_string(args, "--json-dir").unwrap_or_else(|| "target/reports".to_string());
    let policy = if args.iter().any(|a| a == "--catch-cell-panics") {
        PanicPolicy::Capture
    } else {
        PanicPolicy::Propagate
    };

    let start = std::time::Instant::now();
    let run = match run_experiment_checked(spec, &params, jobs, policy) {
        Ok(run) => run,
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(match err {
                ExperimentError::Cell { .. } => 3,
                ExperimentError::Render { .. } => 4,
            });
        }
    };
    print!("{}", run.text);
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    // Cumulative process-wide counts; stderr so stdout stays comparable.
    let cache = TraceCache::global().stats();
    eprintln!(
        "[trace-cache] {} unique keys, {} generated, {} hits{}",
        cache.unique_keys,
        cache.generations,
        cache.hits,
        if TraceCache::global().enabled() {
            ""
        } else {
            " (disabled)"
        }
    );
    let store = ResultStore::global().stats();
    eprintln!(
        "[result-store] {} hits, {} misses, {} invalidated{}",
        store.hits,
        store.misses,
        store.invalidated,
        if ResultStore::global().enabled() {
            ""
        } else {
            " (disabled)"
        }
    );
    match write_report(&run, Path::new(&dir), jobs, wall_ms) {
        Ok(path) => eprintln!(
            "[{}] done in {:.0} ms ({} jobs), report {}",
            spec.name,
            wall_ms,
            jobs,
            path.display()
        ),
        Err(err) => {
            eprintln!("error: writing report for {}: {err}", spec.name);
            std::process::exit(1);
        }
    }
}

fn check(path: Option<&str>) {
    let Some(path) = path else {
        eprintln!("usage: evaluate check <report.json>");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|err| {
        eprintln!("error: reading {path}: {err}");
        std::process::exit(1);
    });
    let v = JsonValue::parse(&text).unwrap_or_else(|err| {
        eprintln!("error: {path} is not well-formed JSON: {err}");
        std::process::exit(1);
    });
    let name = v
        .get("experiment")
        .and_then(JsonValue::as_str)
        .unwrap_or("?");
    let cells = v.get("cells").and_then(JsonValue::as_array).unwrap_or(&[]);
    let mut breakdowns = 0usize;
    let mut violations = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let Some(stats) = cell.get("stats") else {
            continue;
        };
        if stats.get("breakdown").is_none() {
            continue;
        }
        breakdowns += 1;
        violations.extend(breakdown_violations(i, stats));
    }
    if !violations.is_empty() {
        for msg in &violations {
            eprintln!("error: {path}: {msg}");
        }
        std::process::exit(1);
    }
    if breakdowns > 0 {
        println!(
            "{path}: ok (experiment {name}, {} cells, {breakdowns} breakdowns validated)",
            cells.len()
        );
    } else {
        println!("{path}: ok (experiment {name}, {} cells)", cells.len());
    }
}

/// Validates one cell's cycle-attribution invariant: each per-core
/// category row sums to that core's reported clock, per-category totals
/// match the column sums, and the grand total matches everything.
fn breakdown_violations(cell: usize, stats: &JsonValue) -> Vec<String> {
    let mut out = Vec::new();
    let b = stats.get("breakdown").expect("caller checked presence");
    let rows: Vec<Vec<u64>> = b
        .get("per_core")
        .and_then(JsonValue::as_array)
        .map(|rows| {
            rows.iter()
                .map(|row| {
                    row.as_array()
                        .map(|xs| {
                            xs.iter()
                                .map(|x| x.as_f64().unwrap_or(f64::NAN) as u64)
                                .collect()
                        })
                        .unwrap_or_default()
                })
                .collect()
        })
        .unwrap_or_default();
    let core_cycles: Vec<u64> = stats
        .get("per_core")
        .and_then(JsonValue::as_array)
        .map(|cs| {
            cs.iter()
                .map(|c| {
                    c.get("cycles")
                        .and_then(JsonValue::as_f64)
                        .unwrap_or(f64::NAN) as u64
                })
                .collect()
        })
        .unwrap_or_default();
    if rows.len() != core_cycles.len() {
        out.push(format!(
            "cell {cell}: breakdown covers {} cores but per_core reports {}",
            rows.len(),
            core_cycles.len()
        ));
        return out;
    }
    for (i, (row, &cycles)) in rows.iter().zip(&core_cycles).enumerate() {
        let sum: u64 = row.iter().sum();
        if sum != cycles {
            out.push(format!(
                "cell {cell}: core {i} categories sum to {sum}, clock is {cycles}"
            ));
        }
    }
    let categories: Vec<String> = b
        .get("categories")
        .and_then(JsonValue::as_array)
        .map(|cs| {
            cs.iter()
                .filter_map(|c| c.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    let Some(totals) = b.get("totals") else {
        out.push(format!("cell {cell}: breakdown has no totals object"));
        return out;
    };
    let mut grand = 0u64;
    for (k, cat) in categories.iter().enumerate() {
        let column: u64 = rows
            .iter()
            .map(|row| row.get(k).copied().unwrap_or(0))
            .sum();
        grand += column;
        let reported = totals
            .get(cat)
            .and_then(JsonValue::as_f64)
            .unwrap_or(f64::NAN) as u64;
        if reported != column {
            out.push(format!(
                "cell {cell}: totals.{cat} is {reported}, column sums to {column}"
            ));
        }
    }
    let total = totals
        .get("total")
        .and_then(JsonValue::as_f64)
        .unwrap_or(f64::NAN) as u64;
    if total != grand {
        out.push(format!(
            "cell {cell}: totals.total is {total}, categories sum to {grand}"
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// serve: daemon + HTTP client subcommands
// ---------------------------------------------------------------------------

/// `evaluate serve`: run the simulation daemon until `POST /shutdown`.
fn serve_cmd(args: &[String]) {
    let mut options = ServeOptions::default();
    if let Some(addr) = arg_string(args, "--addr") {
        options.addr = addr;
    }
    options.workers = arg_usize(args, "--serve-workers", options.workers);
    options.queue_cap = arg_usize(args, "--queue-cap", options.queue_cap);
    options.lru_cap = arg_usize(args, "--lru-cap", options.lru_cap);
    if let Some(dir) = arg_string(args, "--store-dir") {
        options.store_dir = Some(dir.into());
    }
    if options.workers == 0 || options.queue_cap == 0 {
        eprintln!("error: --serve-workers and --queue-cap must be at least 1");
        std::process::exit(2);
    }
    let server = Server::start(options).unwrap_or_else(|err| {
        eprintln!("error: starting daemon: {err}");
        std::process::exit(1);
    });
    // Scripts scrape this exact line for the bound port.
    println!("serving on {}", server.addr());
    let _ = std::io::stdout().flush();
    server.wait();
    eprintln!("[serve] drained and stopped");
}

/// Parses the mandatory `--addr host:port` of the client subcommands.
fn client_addr(args: &[String]) -> SocketAddr {
    let Some(addr) = arg_string(args, "--addr") else {
        eprintln!("error: --addr <host:port> is required");
        std::process::exit(2);
    };
    addr.parse().unwrap_or_else(|_| {
        eprintln!("error: bad --addr {addr:?} (expected host:port)");
        std::process::exit(2);
    })
}

fn request_or_die(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> http::Response {
    http::http_request(addr, method, path, body).unwrap_or_else(|err| {
        eprintln!("error: {method} {path} on {addr}: {err}");
        std::process::exit(1);
    })
}

/// `serve-stats`: print one endpoint's JSON body (exit 1 on a non-200).
fn client_get(args: &[String], path: &str) {
    let resp = request_or_die(client_addr(args), "GET", path, None);
    println!("{}", resp.body);
    if resp.status != 200 {
        std::process::exit(1);
    }
}

/// `serve-stop`: POST to an endpoint and print the JSON body.
fn client_post(args: &[String], path: &str) {
    let resp = request_or_die(client_addr(args), "POST", path, Some("{}"));
    println!("{}", resp.body);
    if resp.status != 200 {
        std::process::exit(1);
    }
}

/// `serve-submit`: run a registry experiment on the daemon. Stdout is the
/// experiment text, byte-identical to running it locally; exit codes
/// mirror the CLI (2 bad request, 1 backpressure/transport, 3 cell
/// failure, 4 render failure).
fn serve_submit(args: &[String]) {
    let name = match args.get(2) {
        Some(name) if !name.starts_with("--") => name.clone(),
        _ => {
            eprintln!("usage: evaluate serve-submit <experiment> --addr A [run flags]");
            std::process::exit(2);
        }
    };
    let addr = client_addr(args);
    let mut body = JsonValue::object().field("name", name.as_str());
    for (flag, key) in [
        ("--txs", "txs"),
        ("--seed", "seed"),
        ("--cores", "cores"),
        ("--jobs", "jobs"),
        ("--points", "points"),
        ("--point", "point"),
        ("--torn-keep", "torn_keep"),
        ("--battery-bytes", "battery_bytes"),
    ] {
        match try_arg::<u64>(args, flag) {
            Ok(Some(v)) => body = body.field(key, v),
            Ok(None) => {}
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }
    for (flag, key) in [
        ("--bench", "bench"),
        ("--scheme", "scheme"),
        ("--fault", "fault"),
        ("--arrival", "arrival"),
    ] {
        if let Some(v) = arg_string(args, flag) {
            body = body.field(key, v);
        }
    }
    let resp = request_or_die(addr, "POST", "/experiment", Some(&body.build().to_string()));
    match resp.status {
        200 => {
            let parsed = JsonValue::parse(&resp.body).unwrap_or_else(|err| {
                eprintln!("error: daemon sent malformed JSON: {err}");
                std::process::exit(1);
            });
            print!(
                "{}",
                parsed.get("text").and_then(JsonValue::as_str).unwrap_or("")
            );
            if let Some(served) = parsed.get("served") {
                eprintln!("[serve] {name}: served {served}");
            }
            if let Some(out) = arg_string(args, "--report-out") {
                let report = parsed.get("report").cloned().unwrap_or(JsonValue::Null);
                if let Err(err) = std::fs::write(&out, format!("{report}\n")) {
                    eprintln!("error: writing {out}: {err}");
                    std::process::exit(1);
                }
            }
        }
        429 => {
            let retry = resp.header("retry-after").unwrap_or("?");
            eprintln!(
                "error: daemon queue full (Retry-After: {retry}s): {}",
                resp.body
            );
            std::process::exit(1);
        }
        500 => {
            let parsed = JsonValue::parse(&resp.body).ok();
            let origin = parsed
                .as_ref()
                .and_then(|p| p.get("origin"))
                .and_then(JsonValue::as_str)
                .unwrap_or("render")
                .to_string();
            let message = parsed
                .as_ref()
                .and_then(|p| p.get("error"))
                .and_then(JsonValue::as_str)
                .unwrap_or(resp.body.as_str())
                .to_string();
            eprintln!("error: {origin} failure: {message}");
            std::process::exit(if origin == "cell" { 3 } else { 4 });
        }
        status => {
            eprintln!("error: daemon answered {status}: {}", resp.body);
            std::process::exit(2);
        }
    }
}

fn ms_since(start: std::time::Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1000.0
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn expect_status(resp: &http::Response, want: u16, what: &str) {
    if resp.status != want {
        eprintln!(
            "error: serve-bench {what}: daemon answered {} (wanted {want}): {}",
            resp.status, resp.body
        );
        std::process::exit(1);
    }
}

/// `serve-bench`: self-host a daemon on a scratch store and measure the
/// serve layer — cold and warm full-grid wall time, cached single-cell
/// serve latency (p50/p99 over 200 requests), and a duplicate burst for
/// the singleflight counters. Writes `BENCH_serve.json`.
fn serve_bench(args: &[String]) {
    let txs = arg_usize(args, "--txs", 500);
    let out = arg_string(args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let store_dir =
        arg_string(args, "--store-dir").unwrap_or_else(|| "target/serve-bench-store".to_string());
    // Cold means cold: start from an empty scratch store.
    let _ = std::fs::remove_dir_all(&store_dir);
    let server = Server::start(ServeOptions {
        store_dir: Some(store_dir.into()),
        ..ServeOptions::default()
    })
    .unwrap_or_else(|err| {
        eprintln!("error: starting bench daemon: {err}");
        std::process::exit(1);
    });
    let addr = server.addr();
    eprintln!("[serve-bench] daemon on {addr}");

    let grid = JsonValue::object()
        .field("name", "fig11")
        .field("txs", txs)
        .build()
        .to_string();
    let t = std::time::Instant::now();
    let cold = request_or_die(addr, "POST", "/experiment", Some(&grid));
    let grid_cold_wall_ms = ms_since(t);
    expect_status(&cold, 200, "cold fig11 grid");

    let t = std::time::Instant::now();
    let warm = request_or_die(addr, "POST", "/experiment", Some(&grid));
    let grid_warm_wall_ms = ms_since(t);
    expect_status(&warm, 200, "warm fig11 grid");
    let report_of = |body: &str| {
        JsonValue::parse(body)
            .ok()
            .and_then(|p| p.get("report").map(|r| r.to_string()))
    };
    if report_of(&cold.body) != report_of(&warm.body) {
        eprintln!("error: serve-bench: warm grid report differs from cold");
        std::process::exit(1);
    }

    // Cached single-cell serves: the whole grid is warm now, so every one
    // of these must come from the memory tier.
    let spec = registry::find("fig11").expect("fig11 is registered");
    let params = ExpParams {
        txs,
        ..ExpParams::defaults(&spec)
    };
    let cells = spec.build(&params);
    let cell_requests = 200usize;
    let cell_body = cells[0].to_json().to_string();
    let mut latencies = Vec::with_capacity(cell_requests);
    for _ in 0..cell_requests {
        let t = std::time::Instant::now();
        let resp = request_or_die(addr, "POST", "/cell", Some(&cell_body));
        latencies.push(ms_since(t));
        expect_status(&resp, 200, "cached cell");
    }
    latencies.sort_by(f64::total_cmp);
    let cached_p50_wall_ms = percentile(&latencies, 0.50);
    let cached_p99_wall_ms = percentile(&latencies, 0.99);

    // Duplicate burst: eight concurrent submissions of one cold spec.
    // The singleflight table must collapse them to a single execution
    // (visible as merges + executed=1 deltas in /stats).
    let cold_params = ExpParams {
        seed: 4242,
        ..params
    };
    let dup_body = spec.build(&cold_params)[0].to_json().to_string();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| scope.spawn(|| request_or_die(addr, "POST", "/cell", Some(&dup_body))))
            .collect();
        // The `served` provenance legitimately differs (one submission
        // executes, the rest merge); the cell payload must not.
        let mut cells: Vec<String> = handles
            .into_iter()
            .map(|h| {
                let resp = h.join().expect("burst thread");
                expect_status(&resp, 200, "duplicate burst cell");
                JsonValue::parse(&resp.body)
                    .ok()
                    .and_then(|p| p.get("cell").map(|c| c.to_string()))
                    .unwrap_or_default()
            })
            .collect();
        cells.dedup();
        if cells.len() != 1 || cells[0].is_empty() {
            eprintln!("error: serve-bench: duplicate submissions got different cells");
            std::process::exit(1);
        }
    });

    let stats = request_or_die(addr, "GET", "/stats", None);
    eprintln!("[serve-bench] stats: {}", stats.body);

    let bench = JsonValue::object()
        .field("experiment", "serve")
        .field("txs", txs)
        .field("cell_requests", cell_requests)
        .field("grid_cold_wall_ms", grid_cold_wall_ms)
        .field("grid_warm_wall_ms", grid_warm_wall_ms)
        .field("cached_p50_wall_ms", cached_p50_wall_ms)
        .field("cached_p99_wall_ms", cached_p99_wall_ms)
        .build();
    if let Err(err) = std::fs::write(&out, format!("{bench}\n")) {
        eprintln!("error: writing {out}: {err}");
        std::process::exit(1);
    }
    println!("{bench}");

    let stop = request_or_die(addr, "POST", "/shutdown", Some("{}"));
    expect_status(&stop, 200, "shutdown");
    server.wait();
}
