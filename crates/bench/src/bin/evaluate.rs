//! The unified evaluation driver: runs any registered experiment (or all
//! of them) across parallel workers and writes one JSON report per
//! experiment.
//!
//! ```text
//! evaluate <experiment|all|list> [--txs N] [--seed S] [--jobs J] [--json-dir D]
//!          [--cores C] [--bench Name[,Name...]]
//! evaluate check <report.json>
//! ```
//!
//! Experiments resolve by registry name (`fig11`) or legacy binary name
//! (`fig11_write_traffic`); the text output is byte-identical to the
//! pre-framework serial binaries at any `--jobs`. Reports land in
//! `target/reports/` unless `--json-dir` says otherwise; progress lines go
//! to stderr so stdout stays comparable.

use std::path::Path;

use silo_bench::{
    arg_string, arg_u64, arg_usize, default_jobs, registry, run_experiment, write_report,
    ExpParams, ExperimentSpec, TraceCache,
};
use silo_types::JsonValue;

const USAGE: &str = "\
usage: evaluate <experiment|all|list> [--txs N] [--seed S] [--jobs J] [--json-dir D]
                [--cores C] [--bench Name[,Name...]] [--no-trace-cache]
       evaluate check <report.json>

Run `evaluate list` for the registered experiments.";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--no-trace-cache") {
        TraceCache::global().set_enabled(false);
    }
    let Some(cmd) = args.get(1).map(String::as_str) else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    match cmd {
        "-h" | "--help" => println!("{USAGE}"),
        "list" => {
            for spec in registry::all() {
                println!("{:<24}{}", spec.name, spec.description);
            }
        }
        "check" => check(args.get(2).map(String::as_str)),
        "all" => {
            for spec in registry::all() {
                run(&spec, &args);
            }
        }
        name => match registry::find(name) {
            Some(spec) => run(&spec, &args),
            None => {
                eprintln!("error: unknown experiment {name:?}; run `evaluate list`");
                std::process::exit(2);
            }
        },
    }
}

fn run(spec: &ExperimentSpec, args: &[String]) {
    let mut params = ExpParams::defaults(spec);
    params.txs = arg_usize(args, "--txs", params.txs);
    params.seed = arg_u64(args, "--seed", params.seed);
    params.cores = arg_usize(args, "--cores", params.cores);
    if let Some(list) = arg_string(args, "--bench") {
        params.benches = list.split(',').map(str::to_string).collect();
    }
    params.extra = args.to_vec();
    let jobs = arg_usize(args, "--jobs", default_jobs());
    if jobs == 0 {
        eprintln!("error: --jobs must be at least 1");
        std::process::exit(2);
    }
    let dir = arg_string(args, "--json-dir").unwrap_or_else(|| "target/reports".to_string());

    let start = std::time::Instant::now();
    let run = run_experiment(spec, &params, jobs);
    print!("{}", run.text);
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    // Cumulative process-wide counts; stderr so stdout stays comparable.
    let cache = TraceCache::global().stats();
    eprintln!(
        "[trace-cache] {} unique keys, {} generated, {} hits{}",
        cache.unique_keys,
        cache.generations,
        cache.hits,
        if TraceCache::global().enabled() {
            ""
        } else {
            " (disabled)"
        }
    );
    match write_report(&run, Path::new(&dir), jobs, wall_ms) {
        Ok(path) => eprintln!(
            "[{}] done in {:.0} ms ({} jobs), report {}",
            spec.name,
            wall_ms,
            jobs,
            path.display()
        ),
        Err(err) => {
            eprintln!("error: writing report for {}: {err}", spec.name);
            std::process::exit(1);
        }
    }
}

fn check(path: Option<&str>) {
    let Some(path) = path else {
        eprintln!("usage: evaluate check <report.json>");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|err| {
        eprintln!("error: reading {path}: {err}");
        std::process::exit(1);
    });
    let v = JsonValue::parse(&text).unwrap_or_else(|err| {
        eprintln!("error: {path} is not well-formed JSON: {err}");
        std::process::exit(1);
    });
    let name = v
        .get("experiment")
        .and_then(JsonValue::as_str)
        .unwrap_or("?");
    let cells = v
        .get("cells")
        .and_then(JsonValue::as_array)
        .map(<[_]>::len)
        .unwrap_or(0);
    println!("{path}: ok (experiment {name}, {cells} cells)");
}
