//! Table IV: battery requirements of eADR, BBB, and Silo for 8 cores —
//! flush size, flush energy, and supercapacitor / lithium thin-film
//! volume and area.

use silo_core::{
    HwOverhead, CAP_ENERGY_DENSITY_WH_PER_CM3, FLUSH_ENERGY_NJ_PER_BYTE,
    LI_ENERGY_DENSITY_WH_PER_CM3,
};

struct Row {
    name: &'static str,
    flush_kb: f64,
}

fn main() {
    let silo = HwOverhead::paper(8);
    // eADR flushes the dirty blocks (45%) of the whole 10,496 KB cache
    // hierarchy of Table II; BBB flushes 8 cores x 32 x 64B buffers.
    let rows = [
        Row { name: "eADR", flush_kb: 10_496.0 },
        Row { name: "BBB", flush_kb: 16.0 },
        Row { name: "Silo", flush_kb: silo.total_flush_bytes() as f64 / 1024.0 },
    ];
    println!("Table IV: battery requirements (8 cores)");
    println!(
        "{:<8}{:>12}{:>14}{:>22}{:>22}",
        "", "Flush (KB)", "Energy (uJ)", "Cap (mm^3; mm^2)", "Li (mm^3; mm^2)"
    );
    for r in rows {
        let flush_bytes = if r.name == "eADR" {
            r.flush_kb * 1024.0 * 0.45 // dirty fraction
        } else {
            r.flush_kb * 1024.0
        };
        let energy_uj = flush_bytes * FLUSH_ENERGY_NJ_PER_BYTE / 1000.0;
        let vol = |density: f64| energy_uj / 3.6e9 / density * 1000.0;
        let cap_v = vol(CAP_ENERGY_DENSITY_WH_PER_CM3);
        let li_v = vol(LI_ENERGY_DENSITY_WH_PER_CM3);
        println!(
            "{:<8}{:>12.4}{:>14.1}{:>11.3};{:>10.3}{:>11.4};{:>10.4}",
            r.name,
            r.flush_kb,
            energy_uj,
            cap_v,
            cap_v.powf(2.0 / 3.0),
            li_v,
            li_v.powf(2.0 / 3.0),
        );
    }
    println!("(paper: eADR 54,377 uJ / Cap 151 mm^3; BBB 194 uJ; Silo 62 uJ / Cap 0.17 mm^3)");
}
