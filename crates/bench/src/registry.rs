//! The experiment registry: every figure, table, ablation, and study,
//! resolvable by registry name (`fig11`) or legacy binary name
//! (`fig11_write_traffic`).

use crate::exp::ExperimentSpec;
use crate::experiments::{
    ablations, bench_engine, compare, crashfuzz, endurance, fig04, fig11, fig12, fig13, fig14,
    fig15, fuzz, latency, motivation, profile, studies, tables,
};

/// Every registered experiment, in the order `evaluate all` runs them:
/// figures, tables, ablations, studies, then the utilities.
pub fn all() -> Vec<ExperimentSpec> {
    vec![
        fig04::spec(),
        fig11::spec(),
        fig12::spec(),
        fig13::spec(),
        fig14::spec(),
        fig15::spec(),
        tables::table1(),
        tables::table2(),
        tables::table4(),
        ablations::batch_size(),
        ablations::coalescing(),
        ablations::flushbit(),
        ablations::log_reduction(),
        studies::buffer_capacity(),
        studies::multi_mc(),
        studies::onpm_buffer(),
        studies::recovery(),
        motivation::spec(),
        endurance::spec(),
        compare::spec(),
        profile::spec(),
        latency::spec(),
        crashfuzz::spec(),
        fuzz::spec(),
        bench_engine::spec(),
    ]
}

/// Resolves a spec by registry name or legacy binary name,
/// case-insensitively.
pub fn find(name: &str) -> Option<ExperimentSpec> {
    all()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name) || s.legacy_bin.eq_ignore_ascii_case(name))
}

/// Every registry name, in `evaluate all` order (daemon error messages
/// list these so an unknown-experiment 400 is self-describing).
pub fn names() -> Vec<&'static str> {
    all().iter().map(|s| s.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_twenty_five_unique_experiments() {
        let specs = all();
        assert_eq!(specs.len(), 25);
        let mut names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 25, "registry names must be unique");
        let mut bins: Vec<&str> = specs.iter().map(|s| s.legacy_bin).collect();
        bins.sort_unstable();
        bins.dedup();
        assert_eq!(bins.len(), 25, "legacy binary names must be unique");
    }

    #[test]
    fn every_legacy_binary_resolves() {
        // The shims under src/bin/ each resolve themselves through the
        // registry by file name; a rename on either side must fail here.
        let bin_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/src/bin");
        let mut found = 0;
        for entry in std::fs::read_dir(bin_dir).expect("src/bin exists") {
            let name = entry.expect("entry").file_name();
            let name = name.to_str().expect("utf-8 file name");
            let Some(stem) = name.strip_suffix(".rs") else {
                continue;
            };
            if stem == "evaluate" {
                continue;
            }
            assert!(find(stem).is_some(), "binary {stem} is not in the registry");
            found += 1;
        }
        assert_eq!(found, 20, "expected 20 legacy binaries under src/bin");
    }

    #[test]
    fn find_matches_spec_name_and_is_case_insensitive() {
        assert_eq!(find("fig11").expect("by name").name, "fig11");
        assert_eq!(find("fig11_write_traffic").expect("by bin").name, "fig11");
        assert_eq!(find("FIG11").expect("case-insensitive").name, "fig11");
        assert!(find("nonexistent").is_none());
    }
}
