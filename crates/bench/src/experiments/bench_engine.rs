//! `bench-engine`: the engine hot-loop microbenchmark.
//!
//! Runs every implemented scheme on the selected workloads as **full**
//! simulations (setup transaction included, no steady-state delta, no
//! cycle accounting) at a fixed transaction budget and core count. This is
//! the rawest path through the engine — trace generation, the per-op
//! execute loop, the PM media, and the memory controllers, with nothing
//! else attached — so its wall-clock tracks exactly the allocation and
//! hashing costs the hot-path optimizations target.
//!
//! The rendered `total_cycles` per cell (summed per-core clocks) is fully
//! deterministic: CI's `BENCH_engine.json` pairs the host-dependent
//! wall-clock with the summed cycles so a perf win that changes simulated
//! behaviour cannot slip through the perf gate.

use std::fmt::Write as _;

use silo_types::JsonValue;

use crate::cellspec::{CellSpec, CellWork, RunSpec, WorkloadSpec};
use crate::exp::{CellLabel, CellOutcome, ExpKind, ExpParams, ExperimentSpec, Taken};
use crate::ALL_SCHEMES;

fn build(p: &ExpParams) -> Vec<CellSpec> {
    let txs_per_core = (p.txs / p.cores).max(1);
    let mut cells = Vec::new();
    for bench in &p.benches {
        for scheme in ALL_SCHEMES {
            cells.push(CellSpec::new(
                CellLabel::swc(scheme, bench, p.cores),
                p.seed,
                CellWork::Full {
                    run: RunSpec::table_ii(
                        scheme,
                        WorkloadSpec::plain(bench),
                        p.cores,
                        txs_per_core,
                    ),
                    record_throughput: false,
                },
            ));
        }
    }
    cells
}

fn render(p: &ExpParams, cells: &[(CellLabel, CellOutcome)], out: &mut String) -> JsonValue {
    let mut taken = Taken::new(cells);
    writeln!(
        out,
        "Engine hot-loop microbenchmark ({} cores, full runs, no accounting)",
        p.cores
    )
    .unwrap();
    let mut rows_json = Vec::new();
    for bench in &p.benches {
        writeln!(out, "\n{bench}").unwrap();
        writeln!(
            out,
            "{:<11}{:>14}{:>11}{:>12}{:>14}",
            "", "total_cycles", "committed", "pm_writes", "mc_busy"
        )
        .unwrap();
        for scheme in ALL_SCHEMES {
            let stats = taken.next_stats();
            // Summed per-core clocks, not the max: every core's work
            // counts, and the sum is what the cycle accountant would
            // attribute if it were enabled.
            let total: u64 = stats.per_core.iter().map(|c| c.cycles.as_u64()).sum();
            writeln!(
                out,
                "{scheme:<11}{total:>14}{:>11}{:>12}{:>14}",
                stats.txs_committed, stats.pm.accepted_writes, stats.mc.busy_cycles
            )
            .unwrap();
            rows_json.push(
                JsonValue::object()
                    .field("scheme", scheme)
                    .field("workload", bench.as_str())
                    .field("total_cycles", total)
                    .field("txs_committed", stats.txs_committed)
                    .field("pm_writes", stats.pm.accepted_writes)
                    .field("mc_busy_cycles", stats.mc.busy_cycles)
                    .build(),
            );
        }
    }
    JsonValue::object()
        .field("metric", "summed per-core clocks over full runs")
        .field("rows", JsonValue::Arr(rows_json))
        .build()
}

/// The `bench-engine` experiment spec.
pub fn spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "bench-engine",
        // No shim binary exists for this post-framework experiment; the
        // name only reserves a unique registry slot.
        legacy_bin: "bench_engine",
        description: "engine hot-loop microbenchmark (full runs, wall-clock perf gate)",
        default_txs: 2_000,
        kind: ExpKind::Custom { build, render },
    }
}
