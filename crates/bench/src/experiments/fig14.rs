//! Fig 14: Silo's behaviour on large transactions whose write sets are
//! 1–16× the log-buffer size (§VI-F): (a) normalized throughput, (b)
//! normalized PM write traffic, both relative to the 1× configuration of
//! the same benchmark.
//!
//! Larger write sets are built by batching k of a workload's transactions
//! into one (the write-set multiplier); throughput is measured per inner
//! operation so the batching itself does not distort the metric.

use std::fmt::Write as _;

use silo_types::JsonValue;

use crate::cellspec::{CellSpec, CellWork};
use crate::exp::{CellLabel, CellOutcome, ExpKind, ExpParams, ExperimentSpec, Taken};

const MULTS: [usize; 5] = [1, 2, 4, 8, 16];
const NAMES: [&str; 7] = ["Array", "Btree", "Hash", "Queue", "RBtree", "TPCC", "YCSB"];
const CORES: usize = 8;

fn build(p: &ExpParams) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for name in NAMES {
        for mult in MULTS {
            cells.push(CellSpec::new(
                CellLabel::swc("Silo", name, CORES).with_param(format!("mult={mult}")),
                p.seed,
                CellWork::LargeTx {
                    workload: name.to_string(),
                    mult,
                    txs: p.txs,
                },
            ));
        }
    }
    cells
}

fn render(_p: &ExpParams, cells: &[(CellLabel, CellOutcome)], out: &mut String) -> JsonValue {
    let mut taken = Taken::new(cells);
    let mut tp: Vec<Vec<f64>> = Vec::new();
    let mut wr: Vec<Vec<f64>> = Vec::new();
    let mut overflow_note = String::new();
    for name in NAMES {
        let mut tp_row = Vec::new();
        let mut wr_row = Vec::new();
        for mult in MULTS {
            let c = taken.next();
            tp_row.push(c.value("tp"));
            wr_row.push(c.value("wr"));
            if mult == 16 {
                overflow_note.push_str(&format!(" {name}:{}", c.value("overflow") as u64));
            }
        }
        tp.push(tp_row);
        wr.push(wr_row);
    }

    writeln!(
        out,
        "Fig 14a: normalized throughput vs write-set size (Silo, 8 cores)"
    )
    .unwrap();
    write_rows(out, &NAMES, &tp);
    writeln!(
        out,
        "\nFig 14b: normalized PM write traffic vs write-set size"
    )
    .unwrap();
    write_rows(out, &NAMES, &wr);
    writeln!(out, "\noverflow events at 16x:{overflow_note}").unwrap();
    writeln!(
        out,
        "(paper: throughput -7.4% on average at 16x; write traffic up to 1.9x)"
    )
    .unwrap();

    let matrix = |rows: &[Vec<f64>]| {
        JsonValue::Arr(
            NAMES
                .iter()
                .zip(rows)
                .map(|(name, row)| {
                    JsonValue::object()
                        .field("workload", *name)
                        .field(
                            "normalized",
                            JsonValue::array(row.iter().map(|v| v / row[0])),
                        )
                        .build()
                })
                .collect(),
        )
    };
    JsonValue::object()
        .field(
            "multipliers",
            JsonValue::array(MULTS.iter().map(|&m| m as u64)),
        )
        .field("throughput", matrix(&tp))
        .field("write_traffic", matrix(&wr))
        .build()
}

fn write_rows(out: &mut String, names: &[&str], rows: &[Vec<f64>]) {
    write!(out, "{:<10}", "").unwrap();
    for m in MULTS {
        write!(out, "{:>8}", format!("{m}x")).unwrap();
    }
    writeln!(out).unwrap();
    let mut avg = vec![0.0; MULTS.len()];
    for (name, row) in names.iter().zip(rows) {
        write!(out, "{name:<10}").unwrap();
        for (i, v) in row.iter().enumerate() {
            let norm = v / row[0];
            avg[i] += norm;
            write!(out, "{norm:>8.3}").unwrap();
        }
        writeln!(out).unwrap();
    }
    write!(out, "{:<10}", "Average").unwrap();
    for a in &avg {
        write!(out, "{:>8.3}", a / names.len() as f64).unwrap();
    }
    writeln!(out).unwrap();
}

/// The registered spec.
pub fn spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "fig14",
        legacy_bin: "fig14_large_tx",
        description: "Silo on large transactions: throughput and write traffic vs 1-16x write-set multipliers",
        default_txs: 4_000,
        kind: ExpKind::Custom { build, render },
    }
}
