//! Fig 14: Silo's behaviour on large transactions whose write sets are
//! 1–16× the log-buffer size (§VI-F): (a) normalized throughput, (b)
//! normalized PM write traffic, both relative to the 1× configuration of
//! the same benchmark.
//!
//! Larger write sets are built by batching k of a workload's transactions
//! into one (the write-set multiplier); throughput is measured per inner
//! operation so the batching itself does not distort the metric.

use std::fmt::Write as _;

use silo_core::SiloScheme;
use silo_sim::SimConfig;
use silo_types::JsonValue;
use silo_workloads::{workload_by_name, Workload};

use crate::exp::{Cell, CellLabel, CellOutcome, ExpKind, ExpParams, ExperimentSpec, Taken};
use crate::{run_with_scheme, Batched, TraceCache};

const MULTS: [usize; 5] = [1, 2, 4, 8, 16];
const NAMES: [&str; 7] = ["Array", "Btree", "Hash", "Queue", "RBtree", "TPCC", "YCSB"];
const CORES: usize = 8;

fn build(p: &ExpParams) -> Vec<Cell> {
    let (txs, seed) = (p.txs, p.seed);
    let mut cells = Vec::new();
    for name in NAMES {
        for mult in MULTS {
            cells.push(Cell::new(
                CellLabel::swc("Silo", name, CORES).with_param(format!("mult={mult}")),
                move || {
                    let w: Box<dyn Workload> = workload_by_name(name).expect("fig14 benchmark");
                    // Baseline group size: enough inner txs that the 1x write set
                    // roughly fills the 20-entry buffer. One probe trace per
                    // benchmark, shared across the five multiplier cells.
                    let probe = TraceCache::global().get_or_build(&w, 1, 50, seed);
                    let probe0 = &probe.streams()[0];
                    let avg_words: f64 = probe0[1..]
                        .iter()
                        .map(|t| t.write_set_words())
                        .sum::<usize>() as f64
                        / (probe0.len() - 1) as f64;
                    let group_1x = ((20.0 / avg_words).ceil() as usize).max(1);
                    let group = group_1x * mult;
                    let inner_per_core = (txs / CORES).max(group);
                    let outer = inner_per_core / group;

                    let config = SimConfig::table_ii(CORES);
                    let mut silo = SiloScheme::new(&config);
                    let batched =
                        Batched::new(workload_by_name(name).expect("fig14 benchmark"), group);
                    let trace = TraceCache::global().get_or_build(&batched, CORES, outer, seed);
                    let stats = run_with_scheme(&mut silo, &config, &trace);
                    // Per inner-operation throughput.
                    let ops = stats.txs_committed * group as u64;
                    let overflow = stats.scheme_stats.overflow_events;
                    CellOutcome::from_stats(stats.clone())
                        .with_value("tp", ops as f64 / stats.sim_cycles.as_u64() as f64)
                        .with_value("wr", stats.media_writes() as f64 / ops as f64)
                        .with_value("overflow", overflow as f64)
                },
            ));
        }
    }
    cells
}

fn render(_p: &ExpParams, cells: &[(CellLabel, CellOutcome)], out: &mut String) -> JsonValue {
    let mut taken = Taken::new(cells);
    let mut tp: Vec<Vec<f64>> = Vec::new();
    let mut wr: Vec<Vec<f64>> = Vec::new();
    let mut overflow_note = String::new();
    for name in NAMES {
        let mut tp_row = Vec::new();
        let mut wr_row = Vec::new();
        for mult in MULTS {
            let c = taken.next();
            tp_row.push(c.value("tp"));
            wr_row.push(c.value("wr"));
            if mult == 16 {
                overflow_note.push_str(&format!(" {name}:{}", c.value("overflow") as u64));
            }
        }
        tp.push(tp_row);
        wr.push(wr_row);
    }

    writeln!(
        out,
        "Fig 14a: normalized throughput vs write-set size (Silo, 8 cores)"
    )
    .unwrap();
    write_rows(out, &NAMES, &tp);
    writeln!(
        out,
        "\nFig 14b: normalized PM write traffic vs write-set size"
    )
    .unwrap();
    write_rows(out, &NAMES, &wr);
    writeln!(out, "\noverflow events at 16x:{overflow_note}").unwrap();
    writeln!(
        out,
        "(paper: throughput -7.4% on average at 16x; write traffic up to 1.9x)"
    )
    .unwrap();

    let matrix = |rows: &[Vec<f64>]| {
        JsonValue::Arr(
            NAMES
                .iter()
                .zip(rows)
                .map(|(name, row)| {
                    JsonValue::object()
                        .field("workload", *name)
                        .field(
                            "normalized",
                            JsonValue::array(row.iter().map(|v| v / row[0])),
                        )
                        .build()
                })
                .collect(),
        )
    };
    JsonValue::object()
        .field(
            "multipliers",
            JsonValue::array(MULTS.iter().map(|&m| m as u64)),
        )
        .field("throughput", matrix(&tp))
        .field("write_traffic", matrix(&wr))
        .build()
}

fn write_rows(out: &mut String, names: &[&str], rows: &[Vec<f64>]) {
    write!(out, "{:<10}", "").unwrap();
    for m in MULTS {
        write!(out, "{:>8}", format!("{m}x")).unwrap();
    }
    writeln!(out).unwrap();
    let mut avg = vec![0.0; MULTS.len()];
    for (name, row) in names.iter().zip(rows) {
        write!(out, "{name:<10}").unwrap();
        for (i, v) in row.iter().enumerate() {
            let norm = v / row[0];
            avg[i] += norm;
            write!(out, "{norm:>8.3}").unwrap();
        }
        writeln!(out).unwrap();
    }
    write!(out, "{:<10}", "Average").unwrap();
    for a in &avg {
        write!(out, "{:>8.3}", a / names.len() as f64).unwrap();
    }
    writeln!(out).unwrap();
}

/// The registered spec.
pub fn spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "fig14",
        legacy_bin: "fig14_large_tx",
        description: "Silo on large transactions: throughput and write traffic vs 1-16x write-set multipliers",
        default_txs: 4_000,
        kind: ExpKind::Custom { build, render },
    }
}
