//! Quick-look comparison utility: one table of absolute and normalized
//! throughput and write traffic for chosen workloads, schemes, and core
//! count. Not a paper figure — a debugging/exploration tool. The only
//! experiment that consumes the `--cores` and `--bench` parameters.

use std::fmt::Write as _;

use silo_types::JsonValue;
use silo_workloads::workload_by_name;

use crate::cellspec::{CellSpec, CellWork, RunSpec, WorkloadSpec};
use crate::exp::{CellLabel, CellOutcome, ExpKind, ExpParams, ExperimentSpec, Taken};
use crate::SCHEMES;

fn build(p: &ExpParams) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for name in &p.benches {
        if workload_by_name(name).is_none() {
            eprintln!(
                "unknown workload {name}; known: Array Btree Hash Queue RBtree TPCC YCSB Rtree Ctrie TATP Bank"
            );
            std::process::exit(1);
        }
        for s in SCHEMES {
            cells.push(CellSpec::new(
                CellLabel::swc(s, name, p.cores),
                p.seed,
                CellWork::Delta(RunSpec::table_ii(
                    s,
                    WorkloadSpec::plain(name),
                    p.cores,
                    p.txs,
                )),
            ));
        }
    }
    cells
}

fn render(p: &ExpParams, cells: &[(CellLabel, CellOutcome)], out: &mut String) -> JsonValue {
    let (txs, cores) = (p.txs, p.cores);
    let mut taken = Taken::new(cells);
    let mut groups = Vec::new();
    for name in &p.benches {
        writeln!(
            out,
            "== {name} ({cores} cores, {txs} txs/core, steady state) =="
        )
        .unwrap();
        let mut base_tp = 0.0;
        let mut base_wr = 0.0;
        let mut rows = Vec::new();
        for s in SCHEMES {
            let stats = taken.next_stats();
            let tp = stats.throughput();
            let wr = stats.media_writes() as f64;
            if s == "Base" {
                base_tp = tp;
                base_wr = wr;
            }
            writeln!(
                out,
                "  {s:<7} tp {tp:>9.4} ({:>5.2}x)   media {wr:>9.0} ({:>5.2} of Base)   overflows {:>6}",
                tp / base_tp,
                wr / base_wr,
                stats.scheme_stats.overflow_events,
            )
            .unwrap();
            rows.push(
                JsonValue::object()
                    .field("scheme", s)
                    .field("throughput", tp)
                    .field("tp_vs_base", tp / base_tp)
                    .field("media_writes", wr)
                    .field("media_vs_base", wr / base_wr)
                    .build(),
            );
        }
        groups.push(
            JsonValue::object()
                .field("workload", name.as_str())
                .field("rows", JsonValue::Arr(rows))
                .build(),
        );
    }
    JsonValue::object()
        .field("cores", p.cores)
        .field("workloads", JsonValue::Arr(groups))
        .build()
}

/// The registered spec.
pub fn spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "compare",
        legacy_bin: "compare",
        description: "quick-look scheme comparison on chosen workloads/cores (debug utility)",
        default_txs: 200,
        kind: ExpKind::Custom { build, render },
    }
}
