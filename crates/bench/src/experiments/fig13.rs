//! Fig 13: the number of total and remaining on-chip log entries per
//! transaction under Silo's log ignorance and merging (§III-C), which
//! sizes the 20-entry log buffer (§VI-D).

use std::fmt::Write as _;

use silo_types::JsonValue;

use crate::cellspec::{CellSpec, CellWork, RunSpec, WorkloadSpec};
use crate::exp::{CellLabel, CellOutcome, ExpKind, ExpParams, ExperimentSpec, Taken};

const NAMES: [&str; 7] = [
    "Array", "Btree", "Hash", "Queue", "RBtree", "TPCC-mix", "YCSB",
];
const CORES: usize = 8;

fn build(p: &ExpParams) -> Vec<CellSpec> {
    let txs_per_core = (p.txs / CORES).max(1);
    NAMES
        .iter()
        .map(|&name| {
            CellSpec::new(
                CellLabel::swc("Silo", name, CORES),
                p.seed,
                CellWork::Delta(RunSpec::table_ii(
                    "Silo",
                    WorkloadSpec::plain(name),
                    CORES,
                    txs_per_core,
                )),
            )
        })
        .collect()
}

fn render(_p: &ExpParams, cells: &[(CellLabel, CellOutcome)], out: &mut String) -> JsonValue {
    let mut taken = Taken::new(cells);
    writeln!(
        out,
        "Fig 13: on-chip log entries per transaction (Silo, 8 cores)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10}{:>8}{:>11}{:>9}{:>9}{:>11}",
        "workload", "total", "remaining", "ignored", "merged", "reduction"
    )
    .unwrap();
    let (mut sum_total, mut sum_remaining, mut sum_reduction) = (0.0, 0.0, 0.0);
    let mut rows = Vec::new();
    for name in NAMES {
        let s = taken.next_stats().scheme_stats;
        let total = s.avg_generated_per_tx();
        let remaining = s.avg_remaining_per_tx();
        sum_total += total;
        sum_remaining += remaining;
        sum_reduction += s.reduction_ratio();
        writeln!(
            out,
            "{:<10}{:>8.1}{:>11.1}{:>9.1}{:>9.1}{:>10.1}%",
            name,
            total,
            remaining,
            s.log_entries_ignored as f64 / s.transactions as f64,
            s.log_entries_merged as f64 / s.transactions as f64,
            100.0 * s.reduction_ratio()
        )
        .unwrap();
        rows.push(
            JsonValue::object()
                .field("workload", name)
                .field("total_per_tx", total)
                .field("remaining_per_tx", remaining)
                .field("reduction", s.reduction_ratio())
                .build(),
        );
    }
    writeln!(
        out,
        "{:<10}{:>8.1}{:>11.1}{:>28.1}%   (paper: 64.3% average reduction; Hash max 20 remaining)",
        "Average",
        sum_total / NAMES.len() as f64,
        sum_remaining / NAMES.len() as f64,
        100.0 * sum_reduction / NAMES.len() as f64
    )
    .unwrap();
    JsonValue::object()
        .field("rows", JsonValue::Arr(rows))
        .field("avg_reduction", sum_reduction / NAMES.len() as f64)
        .build()
}

/// The registered spec.
pub fn spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "fig13",
        legacy_bin: "fig13_log_reduction",
        description: "on-chip log entries per transaction under log ignorance and merging (sizes the 20-entry buffer)",
        default_txs: 10_000,
        kind: ExpKind::Custom { build, render },
    }
}
