//! Tables I, II, and IV: hardware overhead, simulated configuration, and
//! battery requirements. These run no simulation — they print from the
//! live config/overhead structs so the tables can never drift from the
//! code — so each builds zero cells and does all its work in render.

use std::fmt::Write as _;

use silo_core::{
    HwOverhead, CAP_ENERGY_DENSITY_WH_PER_CM3, FLUSH_ENERGY_NJ_PER_BYTE,
    LI_ENERGY_DENSITY_WH_PER_CM3,
};
use silo_sim::SimConfig;
use silo_types::JsonValue;

use crate::cellspec::CellSpec;
use crate::exp::{CellLabel, CellOutcome, ExpKind, ExpParams, ExperimentSpec};

fn build_none(_p: &ExpParams) -> Vec<CellSpec> {
    Vec::new()
}

fn render_table1(
    _p: &ExpParams,
    _cells: &[(CellLabel, CellOutcome)],
    out: &mut String,
) -> JsonValue {
    let hw = HwOverhead::paper(8);
    writeln!(out, "Table I: hardware overhead of Silo").unwrap();
    writeln!(out, "{:<22}{:<20}Size", "Component", "Type").unwrap();
    writeln!(
        out,
        "{:<22}{:<20}{} entries, {} B per core",
        "Log buffer", "SRAM", hw.entries_per_core, hw.log_buffer_bytes_per_core
    )
    .unwrap();
    writeln!(
        out,
        "{:<22}{:<20}{} comparators per log buffer",
        "64-bit comparators", "CMOS cells", hw.comparators_per_core
    )
    .unwrap();
    writeln!(
        out,
        "{:<22}{:<20}{:.3e} mm^3 per log buffer (Li thin-film)",
        "Battery",
        "Lithium thin-film",
        hw.battery_volume_mm3(LI_ENERGY_DENSITY_WH_PER_CM3) / hw.cores as f64
    )
    .unwrap();
    writeln!(
        out,
        "{:<22}{:<20}{} B per core",
        "Log head and tail", "Flip-flops", hw.head_tail_bytes_per_core
    )
    .unwrap();
    writeln!(
        out,
        "\ntotals for {} cores: {} B battery-backed SRAM, {:.1} uJ crash-flush energy",
        hw.cores,
        hw.total_flush_bytes(),
        hw.flush_energy_uj()
    )
    .unwrap();
    JsonValue::object()
        .field("cores", hw.cores)
        .field("entries_per_core", hw.entries_per_core)
        .field("log_buffer_bytes_per_core", hw.log_buffer_bytes_per_core)
        .field("comparators_per_core", hw.comparators_per_core)
        .field("total_flush_bytes", hw.total_flush_bytes())
        .field("flush_energy_uj", hw.flush_energy_uj())
        .build()
}

fn render_table2(
    _p: &ExpParams,
    _cells: &[(CellLabel, CellOutcome)],
    out: &mut String,
) -> JsonValue {
    let c = SimConfig::table_ii(8);
    writeln!(out, "Table II: configurations of the simulated system").unwrap();
    writeln!(out, "Processor").unwrap();
    writeln!(
        out,
        "  Cores              {} cores, x86-64 model, 2 GHz",
        c.cores
    )
    .unwrap();
    writeln!(
        out,
        "  L1 D Cache         private, 64B per line, {}KB, 8-way, {} cycles",
        c.hierarchy.l1.size_bytes / 1024,
        c.hierarchy.l1_latency.as_u64()
    )
    .unwrap();
    writeln!(
        out,
        "  L2 Cache           private, 64B per line, {}KB, 8-way, {} cycles",
        c.hierarchy.l2.size_bytes / 1024,
        c.hierarchy.l2_latency.as_u64()
    )
    .unwrap();
    writeln!(
        out,
        "  L3 Cache           shared, 64B per line, {}MB, 16-way, {} cycles",
        c.hierarchy.l3.size_bytes / (1024 * 1024),
        c.hierarchy.l3_latency.as_u64()
    )
    .unwrap();
    writeln!(
        out,
        "  Memory Controller  FRFCFS, {}-entry WPQ in ADR domain, {} banks",
        c.memctrl.wpq_entries, c.memctrl.banks
    )
    .unwrap();
    writeln!(
        out,
        "  Log Buffer         {} entries (680B) per core, FIFO, {} cycles, battery backed",
        c.log_buffer_entries,
        c.log_buffer_latency.as_u64()
    )
    .unwrap();
    writeln!(out, "Persistent Memory").unwrap();
    writeln!(
        out,
        "  Capacity           16GB phase-change memory (modelled sparsely)"
    )
    .unwrap();
    writeln!(
        out,
        "  Latency            read / write: {} / {} ns ({} / {} cycles)",
        c.memctrl.read_cycles / 2,
        c.memctrl.media_write_cycles / 2,
        c.memctrl.read_cycles,
        c.memctrl.media_write_cycles
    )
    .unwrap();
    writeln!(
        out,
        "  On-PM buffer       {} lines x 256B, write coalescing (Silo path)",
        c.onpm_buffer_lines
    )
    .unwrap();
    writeln!(
        out,
        "  Log region         starts at {} GiB, {} MiB per thread",
        c.log_region_start >> 30,
        c.thread_log_area_bytes >> 20
    )
    .unwrap();
    JsonValue::object()
        .field("config_fingerprint", c.fingerprint())
        .build()
}

fn render_table4(
    _p: &ExpParams,
    _cells: &[(CellLabel, CellOutcome)],
    out: &mut String,
) -> JsonValue {
    let silo = HwOverhead::paper(8);
    // eADR flushes the dirty blocks (45%) of the whole 10,496 KB cache
    // hierarchy of Table II; BBB flushes 8 cores x 32 x 64B buffers.
    let rows = [
        ("eADR", 10_496.0),
        ("BBB", 16.0),
        ("Silo", silo.total_flush_bytes() as f64 / 1024.0),
    ];
    writeln!(out, "Table IV: battery requirements (8 cores)").unwrap();
    writeln!(
        out,
        "{:<8}{:>12}{:>14}{:>22}{:>22}",
        "", "Flush (KB)", "Energy (uJ)", "Cap (mm^3; mm^2)", "Li (mm^3; mm^2)"
    )
    .unwrap();
    let mut json_rows = Vec::new();
    for (name, flush_kb) in rows {
        let flush_bytes = if name == "eADR" {
            flush_kb * 1024.0 * 0.45 // dirty fraction
        } else {
            flush_kb * 1024.0
        };
        let energy_uj = flush_bytes * FLUSH_ENERGY_NJ_PER_BYTE / 1000.0;
        let vol = |density: f64| energy_uj / 3.6e9 / density * 1000.0;
        let cap_v = vol(CAP_ENERGY_DENSITY_WH_PER_CM3);
        let li_v = vol(LI_ENERGY_DENSITY_WH_PER_CM3);
        writeln!(
            out,
            "{:<8}{:>12.4}{:>14.1}{:>11.3};{:>10.3}{:>11.4};{:>10.4}",
            name,
            flush_kb,
            energy_uj,
            cap_v,
            cap_v.powf(2.0 / 3.0),
            li_v,
            li_v.powf(2.0 / 3.0),
        )
        .unwrap();
        json_rows.push(
            JsonValue::object()
                .field("scheme", name)
                .field("flush_kb", flush_kb)
                .field("energy_uj", energy_uj)
                .field("cap_mm3", cap_v)
                .field("li_mm3", li_v)
                .build(),
        );
    }
    writeln!(
        out,
        "(paper: eADR 54,377 uJ / Cap 151 mm^3; BBB 194 uJ; Silo 62 uJ / Cap 0.17 mm^3)"
    )
    .unwrap();
    JsonValue::object()
        .field("rows", JsonValue::Arr(json_rows))
        .build()
}

/// Table I spec.
pub fn table1() -> ExperimentSpec {
    ExperimentSpec {
        name: "table1",
        legacy_bin: "table1_hw_overhead",
        description: "hardware overhead of Silo in the processor (no simulation)",
        default_txs: 0,
        kind: ExpKind::Custom {
            build: build_none,
            render: render_table1,
        },
    }
}

/// Table II spec.
pub fn table2() -> ExperimentSpec {
    ExperimentSpec {
        name: "table2",
        legacy_bin: "table2_config",
        description: "simulated system configuration, printed from the live config structs",
        default_txs: 0,
        kind: ExpKind::Custom {
            build: build_none,
            render: render_table2,
        },
    }
}

/// Table IV spec.
pub fn table4() -> ExperimentSpec {
    ExperimentSpec {
        name: "table4",
        legacy_bin: "table4_battery",
        description: "battery requirements of eADR, BBB, and Silo (no simulation)",
        default_txs: 0,
        kind: ExpKind::Custom {
            build: build_none,
            render: render_table4,
        },
    }
}
