//! The registered experiments: every figure, table, ablation, and study
//! of the paper's evaluation, one spec per legacy binary.
//!
//! Each module exposes `spec()` (or several, for grouped modules). The
//! build functions enumerate cells in exactly the order the pre-framework
//! serial binaries executed their simulations, and the render functions
//! reproduce those binaries' output byte for byte — `evaluate fig11` and
//! the `fig11_write_traffic` shim print identical tables.

pub mod ablations;
pub mod bench_engine;
pub mod compare;
pub mod crashfuzz;
pub mod endurance;
pub mod fig04;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fuzz;
pub mod latency;
pub mod motivation;
pub mod profile;
pub mod studies;
pub mod tables;
