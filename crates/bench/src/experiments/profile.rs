//! `profile`: per-scheme cycle-attribution breakdowns.
//!
//! Runs every implemented scheme on the selected workloads with the
//! machine's cycle accountant enabled and renders, per workload, a table
//! of where each scheme's core cycles go: executing, stalled on commit,
//! backed up behind the log buffer, waiting on a full WPQ, or waiting out
//! the commit-time in-place-update drain. This is the paper's headline
//! *explanation* layer — Fig 11/12 say *that* Silo beats the baselines;
//! the breakdown says *where* the others spend the difference.
//!
//! Cells run **full** simulations (setup transaction included, no
//! steady-state delta), so the accounting invariant is exact:
//! `sum(categories) == total core cycles`, hard-asserted at render time
//! (not `debug_assert` — CI runs release builds) and re-validated on the
//! emitted reports by `evaluate check`.

use std::fmt::Write as _;

use silo_sim::CycleCategory;
use silo_types::JsonValue;

use crate::cellspec::{CellSpec, CellWork, RunSpec, WorkloadSpec};
use crate::exp::{CellLabel, CellOutcome, ExpKind, ExpParams, ExperimentSpec, Taken};
use crate::ALL_SCHEMES;

fn build(p: &ExpParams) -> Vec<CellSpec> {
    let txs_per_core = (p.txs / p.cores).max(1);
    let mut cells = Vec::new();
    for bench in &p.benches {
        for scheme in ALL_SCHEMES {
            cells.push(CellSpec::new(
                CellLabel::swc(scheme, bench, p.cores),
                p.seed,
                CellWork::Profiled(RunSpec::table_ii(
                    scheme,
                    WorkloadSpec::plain(bench),
                    p.cores,
                    txs_per_core,
                )),
            ));
        }
    }
    cells
}

fn render(p: &ExpParams, cells: &[(CellLabel, CellOutcome)], out: &mut String) -> JsonValue {
    let mut taken = Taken::new(cells);
    writeln!(
        out,
        "Cycle breakdown by stall source ({} cores, full runs, % of total core cycles)",
        p.cores
    )
    .unwrap();
    let mut rows_json = Vec::new();
    for bench in &p.benches {
        writeln!(out, "\n{bench}").unwrap();
        write!(out, "{:<11}{:>14}", "", "total_cycles").unwrap();
        for cat in CycleCategory::ALL {
            write!(out, "{:>16}", cat.name()).unwrap();
        }
        writeln!(out).unwrap();
        for scheme in ALL_SCHEMES {
            let stats = taken.next_stats();
            let b = stats
                .breakdown
                .as_ref()
                .expect("profile cells run with accounting enabled");
            // The tentpole invariant, enforced unconditionally: every
            // cycle of every core's clock is attributed to exactly one
            // category. (debug_assert_eq! in the engine is compiled out
            // of the release builds CI measures with.)
            for (i, core) in stats.per_core.iter().enumerate() {
                assert_eq!(
                    b.core_total(i),
                    core.cycles.as_u64(),
                    "{scheme}/{bench}: breakdown must sum to core {i}'s clock"
                );
            }
            let total = b.total();
            write!(out, "{scheme:<11}{total:>14}").unwrap();
            let mut cats = JsonValue::object();
            for cat in CycleCategory::ALL {
                let cycles = b.category_total(cat);
                let pct = if total == 0 {
                    0.0
                } else {
                    cycles as f64 * 100.0 / total as f64
                };
                write!(out, "{pct:>15.1}%").unwrap();
                cats = cats.field(cat.name(), cycles);
            }
            writeln!(out).unwrap();
            rows_json.push(
                JsonValue::object()
                    .field("scheme", scheme)
                    .field("workload", bench.as_str())
                    .field("total_cycles", total)
                    .field("categories", cats.build())
                    .build(),
            );
        }
    }
    JsonValue::object()
        .field("invariant", "sum(categories) == total core cycles")
        .field("rows", JsonValue::Arr(rows_json))
        .build()
}

/// The `profile` experiment spec.
pub fn spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "profile",
        // No shim binary exists for this post-framework experiment; the
        // name only reserves a unique registry slot.
        legacy_bin: "profile_breakdown",
        description: "per-scheme cycle-attribution breakdown (observability layer)",
        default_txs: 2_000,
        kind: ExpKind::Custom { build, render },
    }
}
