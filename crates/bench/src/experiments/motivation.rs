//! Motivation study (paper §II-B, Fig 1): software logging versus
//! hardware logging on one core — software WAL's clwb + sfence per log
//! entry sit on the critical path; hardware logging overlaps them with
//! execution.

use std::fmt::Write as _;

use silo_types::JsonValue;

use crate::cellspec::{CellSpec, CellWork, RunSpec, WorkloadSpec};
use crate::exp::{CellLabel, CellOutcome, ExpKind, ExpParams, ExperimentSpec, Taken};

const NAMES: [&str; 4] = ["Hash", "Queue", "TPCC", "Bank"];
const VARIANTS: [&str; 4] = ["SwLog", "eADR-sw", "Base", "Silo"];
const CORES: usize = 1; // the motivation is per-thread critical-path cost

fn build(p: &ExpParams) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for name in NAMES {
        for variant in VARIANTS {
            // The label keeps the figure's short "eADR-sw" legend; the
            // executed scheme is the registry's full name.
            let scheme = match variant {
                "eADR-sw" => "eADR-SwLog",
                other => other,
            };
            cells.push(CellSpec::new(
                CellLabel::swc(variant, name, CORES),
                p.seed,
                CellWork::Delta(RunSpec::table_ii(
                    scheme,
                    WorkloadSpec::plain(name),
                    CORES,
                    p.txs,
                )),
            ));
        }
    }
    cells
}

fn render(_p: &ExpParams, cells: &[(CellLabel, CellOutcome)], out: &mut String) -> JsonValue {
    let mut taken = Taken::new(cells);
    writeln!(
        out,
        "Motivation (Fig 1 / §II-B, §II-C): software vs hardware logging, 1 core"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10}{:>12}{:>12}{:>12}{:>12}{:>12}",
        "workload", "SwLog tp", "eADR-sw tp", "Base tp", "Silo tp", "sw loss"
    )
    .unwrap();
    let mut rows = Vec::new();
    for name in NAMES {
        let tp: Vec<f64> = VARIANTS
            .iter()
            .map(|_| taken.next_stats().throughput())
            .collect();
        let (sw, eadr, hw, silo) = (tp[0], tp[1], tp[2], tp[3]);
        writeln!(
            out,
            "{:<10}{:>12.4}{:>12.4}{:>12.4}{:>12.4}{:>11.1}%",
            name,
            sw,
            eadr,
            hw,
            silo,
            100.0 * (1.0 - sw / hw),
        )
        .unwrap();
        rows.push(
            JsonValue::object()
                .field("workload", name)
                .field("swlog_tp", sw)
                .field("eadr_sw_tp", eadr)
                .field("base_tp", hw)
                .field("silo_tp", silo)
                .field("sw_loss", 1.0 - sw / hw)
                .build(),
        );
    }
    writeln!(
        out,
        "(paper: software logging decreases throughput by up to 70% [28];"
    )
    .unwrap();
    writeln!(
        out,
        " eADR removes the fences but log appends still pollute the cache, §II-C)"
    )
    .unwrap();
    JsonValue::object()
        .field("rows", JsonValue::Arr(rows))
        .build()
}

/// The registered spec.
pub fn spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "motivation",
        legacy_bin: "motivation_sw_logging",
        description: "software vs hardware logging on one core (Fig 1 motivation)",
        default_txs: 2_000,
        kind: ExpKind::Custom { build, render },
    }
}
