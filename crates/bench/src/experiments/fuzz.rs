//! `fuzz`: coverage-guided crash search with an executable per-word
//! crash-consistency spec.
//!
//! Where `crashfuzz` scans evenly spaced crash points, `fuzz` *searches*
//! the crash surface: a corpus of `(fault model, crash event, recovery
//! crash)` candidates is mutated libFuzzer-style toward novel probe-event
//! **coverage signatures** — the set of `(previous event kind, event kind,
//! scheme phase)` features the [`silo_sim::Signature`] recorder observes
//! around the crash. A candidate that lights up new features joins the
//! corpus; a boring one is discarded. The whole search is a pure function
//! of one seed: the mutation RNG is seeded from `(seed, scheme,
//! workload)`, candidates run in a fixed order, and the report is
//! byte-identical at any `--jobs`.
//!
//! Every recovered image is checked twice: by the digest-level
//! [`silo_sim::TxOracle`] and by the executable per-word spec
//! ([`silo_sim::SpecMachine`]), which localizes a divergence to the first
//! offending word with its event index. A violation is printed as a
//! copy-paste runnable `evaluate fuzz ... --crash-event N --execs 1
//! --no-corpus` command (arrival-process idents included for zoo
//! workloads).
//!
//! The corpus persists under `target/fuzz-corpus/<workload>/<scheme>/`
//! (override with `--corpus DIR`, disable with `--no-corpus`), one JSON
//! file per interesting candidate named by its signature digest, so a
//! nightly run resumes where the last one stopped.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;

use silo_sim::{CrashPlan, Engine, FaultModel, Signature, SimConfig};
use silo_types::{JsonValue, Xoshiro256};
use silo_workloads::{workload_by_name, ArrivalProcess};

use crate::cellspec::{CellSpec, CellWork, FaultSpec};
use crate::exp::{CellLabel, CellOutcome, ExpKind, ExpParams, ExperimentSpec};
use crate::{arg_string, arg_u64, arg_usize, make_scheme, TraceCache, ALL_SCHEMES};

/// Two cores, like `crashfuzz`: cheap, but still cross-core interleaving.
pub(crate) const CORES: usize = 2;
/// Default execution budget per cell (`--execs` overrides).
const DEFAULT_EXECS: u64 = 24;
/// Deterministic seed candidates per fault model: evenly spaced events.
const SEED_POINTS: u64 = 4;
/// Default residual-energy budget for seeded battery candidates.
const DEFAULT_BATTERY_BYTES: u64 = 64 * 1024;
/// Default torn-line prefix for seeded torn-line candidates.
const DEFAULT_TORN_KEEP: usize = 64;
/// Violations recorded in full (event/fault/word detail) per cell.
const MAX_RECORDED: usize = 8;
/// Corpus entry format version.
const CORPUS_VERSION: u64 = 1;
/// The spec machine's violation kinds, indexable for the value list.
const SPEC_KINDS: [&str; 3] = [
    "committed write lost or corrupted",
    "partial update of uncommitted transaction survived",
    "ambiguous commit applied partially (torn commit)",
];

/// One fault model of the search. All triggers are event-indexed: the
/// crash-event axis is the dense durability-event enumeration, so the
/// cycle-sampled op-boundary trigger of `crashfuzz` has no place here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fault {
    /// Perfect ADR drain at the crash.
    Adr,
    /// The in-flight line program keeps `keep` bytes.
    Torn(usize),
    /// The ADR drain persists at most `bytes` bytes.
    Battery(u64),
}

impl Fault {
    /// In a Fuzz cell every trigger is event-indexed, so the otherwise
    /// cycle-sampled `OpBoundary` tag is free to denote the parameterless
    /// perfect-ADR model — the inverse of [`Fault::to_spec`].
    fn from_spec(spec: FaultSpec) -> Fault {
        match spec {
            FaultSpec::OpBoundary => Fault::Adr,
            FaultSpec::TornLine(keep) => Fault::Torn(keep),
            FaultSpec::Battery(bytes) => Fault::Battery(bytes),
        }
    }

    fn to_spec(self) -> FaultSpec {
        match self {
            Fault::Adr => FaultSpec::OpBoundary,
            Fault::Torn(keep) => FaultSpec::TornLine(keep),
            Fault::Battery(bytes) => FaultSpec::Battery(bytes),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Fault::Adr => "adr",
            Fault::Torn(_) => "torn-line",
            Fault::Battery(_) => "battery",
        }
    }

    fn describe(self) -> String {
        match self {
            Fault::Adr => "adr".to_string(),
            Fault::Torn(keep) => format!("torn-line(keep={keep})"),
            Fault::Battery(bytes) => format!("battery({bytes} B)"),
        }
    }

    fn model(self) -> FaultModel {
        match self {
            Fault::Adr => FaultModel::perfect_adr(),
            Fault::Torn(keep) => FaultModel::torn_line(keep),
            Fault::Battery(bytes) => FaultModel::bounded_battery(bytes),
        }
    }

    /// Parameter as a plain number (0 for the parameterless ADR model).
    fn arg(self) -> u64 {
        match self {
            Fault::Adr => 0,
            Fault::Torn(keep) => keep as u64,
            Fault::Battery(bytes) => bytes,
        }
    }

    fn kind_index(self) -> u64 {
        match self {
            Fault::Adr => 0,
            Fault::Torn(_) => 1,
            Fault::Battery(_) => 2,
        }
    }

    fn from_parts(kind: u64, arg: u64) -> Option<Fault> {
        match kind {
            0 => Some(Fault::Adr),
            1 => Some(Fault::Torn(arg as usize)),
            2 => Some(Fault::Battery(arg)),
            _ => None,
        }
    }

    fn from_name(name: &str, arg: u64) -> Option<Fault> {
        match name {
            "adr" => Some(Fault::Adr),
            "torn-line" => Some(Fault::Torn(arg as usize)),
            "battery" => Some(Fault::Battery(arg)),
            _ => None,
        }
    }

    /// The extra repro flags beyond `--fault <name>`.
    fn repro_flags(self) -> String {
        match self {
            Fault::Adr => String::new(),
            Fault::Torn(keep) => format!(" --torn-keep {keep}"),
            Fault::Battery(bytes) => format!(" --battery-bytes {bytes}"),
        }
    }
}

/// One crash-search candidate: where to cut power, under which fault, and
/// whether to re-crash recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Candidate {
    fault: Fault,
    event: u64,
    recovery_crash: Option<u64>,
}

impl Candidate {
    fn plan(self) -> CrashPlan {
        let mut plan = CrashPlan::at_event(self.event).with_fault(self.fault.model());
        if let Some(steps) = self.recovery_crash {
            plan = plan.with_recovery_crash(steps);
        }
        plan
    }
}

/// The corpus root directory, process-global like the crashfuzz
/// checkpoint toggles: it selects *where* interesting candidates persist,
/// never *what* the search computes on a fresh directory, so it stays out
/// of the cell spec hash. `None` (the library default) touches no
/// filesystem; the CLI layer sets the default root.
static CORPUS_ROOT: Mutex<Option<PathBuf>> = Mutex::new(None);

fn corpus_root() -> Option<PathBuf> {
    CORPUS_ROOT.lock().expect("corpus root lock").clone()
}

/// The search configuration parsed from the experiment's extra flags.
struct Config {
    schemes: Vec<String>,
    /// Candidate restriction (`--fault`), or search across all models.
    fault: Option<Fault>,
    execs: u64,
    crash_event: Option<u64>,
    recovery_crash: Option<u64>,
    arrival: Option<String>,
}

fn parse_config(p: &ExpParams) -> Config {
    let battery = arg_u64(&p.extra, "--battery-bytes", DEFAULT_BATTERY_BYTES);
    let torn = arg_usize(&p.extra, "--torn-keep", DEFAULT_TORN_KEEP);
    let fault = match arg_string(&p.extra, "--fault").as_deref() {
        None => None,
        Some("adr") => Some(Fault::Adr),
        Some("torn-line") => Some(Fault::Torn(torn)),
        Some("battery") => Some(Fault::Battery(battery)),
        Some(other) => {
            eprintln!(
                "error: unknown fault model {other:?} \
                 (expected adr, torn-line, or battery)"
            );
            std::process::exit(2);
        }
    };
    let schemes = match arg_string(&p.extra, "--scheme") {
        None => ALL_SCHEMES.iter().map(|s| s.to_string()).collect(),
        Some(list) => {
            let schemes: Vec<String> = list.split(',').map(str::to_string).collect();
            for s in &schemes {
                if !ALL_SCHEMES.contains(&s.as_str()) {
                    eprintln!("error: unknown scheme {s:?} (see ALL_SCHEMES)");
                    std::process::exit(2);
                }
            }
            schemes
        }
    };
    let execs = match crate::try_arg::<u64>(&p.extra, "--execs") {
        Ok(Some(0)) => {
            eprintln!("error: --execs must be positive");
            std::process::exit(2);
        }
        Ok(v) => v.unwrap_or(DEFAULT_EXECS),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let crash_event = match crate::try_arg::<u64>(&p.extra, "--crash-event") {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    // A fixed crash event is a single deterministic candidate — it needs
    // one fully specified fault model, exactly like crashfuzz's --point.
    if crash_event.is_some() && fault.is_none() {
        eprintln!(
            "error: --crash-event replays one exact candidate, so it \
             requires a single --fault (add e.g. --fault battery)"
        );
        std::process::exit(2);
    }
    let recovery_crash = match crate::try_arg::<u64>(&p.extra, "--recovery-crash") {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    if recovery_crash.is_some() && crash_event.is_none() {
        eprintln!("error: --recovery-crash only applies to a --crash-event replay");
        std::process::exit(2);
    }
    let arrival = arg_string(&p.extra, "--arrival");
    if let Some(ident) = &arrival {
        if ArrivalProcess::parse(ident).is_none() {
            eprintln!(
                "error: unparseable arrival ident {ident:?} \
                 (expected closed, poisson<G>, bursty<G>x<B>i<I>, or diurnal<S>-<E>)"
            );
            std::process::exit(2);
        }
    }
    // Corpus persistence: default root, explicit root, or none.
    let root = if p.extra.iter().any(|a| a == "--no-corpus") {
        None
    } else {
        Some(PathBuf::from(
            arg_string(&p.extra, "--corpus").unwrap_or_else(|| "target/fuzz-corpus".to_string()),
        ))
    };
    *CORPUS_ROOT.lock().expect("corpus root lock") = root;
    Config {
        schemes,
        fault,
        execs,
        crash_event,
        recovery_crash,
        arrival,
    }
}

/// What one candidate run produced.
#[derive(Clone)]
struct CandidateRun {
    signature: Signature,
    /// Oracle verdict on the recovered image.
    oracle_ok: bool,
    /// Spec-machine verdict, with the first offending word when bad.
    spec_ok: bool,
    first_word: Option<(u64, u64, usize)>, // (addr, word event, kind index)
}

/// Runs one candidate from scratch with the spec machine and the
/// signature recorder enabled. Always a from-scratch run: the spec
/// machine cannot resume from checkpoints.
fn run_candidate(
    scheme: &str,
    config: &SimConfig,
    streams: &silo_sim::TraceSet,
    cand: Candidate,
) -> CandidateRun {
    let mut s = make_scheme(scheme, config);
    let mut engine = Engine::new(config, s.as_mut());
    engine.enable_spec();
    engine.machine_mut().probe.enable_signature();
    let out = engine.run_with_plan(streams, Some(cand.plan()));
    let crash = out.crash.as_ref().expect("crash injected");
    let spec = crash.spec.as_ref().expect("spec machine enabled");
    let first_word = spec.first_offender().map(|v| {
        let kind = SPEC_KINDS
            .iter()
            .position(|k| *k == v.kind)
            .expect("spec kind is in the table");
        (v.addr.as_u64(), v.event, kind)
    });
    CandidateRun {
        signature: out.signature.expect("signature recorder enabled"),
        oracle_ok: crash.consistency.is_consistent(),
        spec_ok: spec.is_consistent(),
        first_word,
    }
}

/// FNV-1a 64 over the cell identity, seeding the mutation RNG.
fn rng_seed(seed: u64, scheme: &str, workload: &str, arrival: Option<&str>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&seed.to_le_bytes());
    eat(scheme.as_bytes());
    eat(&[0]);
    eat(workload.as_bytes());
    eat(&[0]);
    eat(arrival.unwrap_or("").as_bytes());
    h
}

/// Evenly spaced interior points, like crashfuzz, floored to event 1.
fn spaced(total: u64, k: u64) -> Vec<u64> {
    (0..k)
        .map(|i| ((total * (2 * i + 1)) / (2 * k)).max(1))
        .collect()
}

/// One mutation step: nudge, resample, or retarget the base candidate.
/// Restricted searches (`--fault`) never leave their fault kind.
fn mutate(rng: &mut Xoshiro256, base: Candidate, total: u64, restricted: bool) -> Candidate {
    let mut c = base;
    let total = total.max(1);
    match rng.next_u64() % 6 {
        0 => c.event = (c.event + 1 + rng.next_u64() % 16).min(total),
        1 => c.event = c.event.saturating_sub(1 + rng.next_u64() % 16).max(1),
        2 => c.event = 1 + rng.next_u64() % total,
        3 if !restricted => {
            // Rotate the fault kind, entering each with its default knob.
            c.fault = match c.fault {
                Fault::Adr => Fault::Torn(DEFAULT_TORN_KEEP),
                Fault::Torn(_) => Fault::Battery(DEFAULT_BATTERY_BYTES),
                Fault::Battery(_) => Fault::Adr,
            };
        }
        3 | 4 => {
            // Tweak the fault knob in place (ADR has none: resample).
            c.fault = match c.fault {
                Fault::Adr => {
                    c.event = 1 + rng.next_u64() % total;
                    Fault::Adr
                }
                Fault::Torn(keep) => {
                    let keep = if rng.next_u64().is_multiple_of(2) {
                        (keep + 16).min(248)
                    } else {
                        keep.saturating_sub(16).max(8)
                    };
                    Fault::Torn(keep)
                }
                Fault::Battery(bytes) => {
                    let bytes = if rng.next_u64().is_multiple_of(2) {
                        (bytes * 2).min(1 << 22)
                    } else {
                        (bytes / 2).max(16)
                    };
                    Fault::Battery(bytes)
                }
            };
        }
        _ => {
            c.recovery_crash = match c.recovery_crash {
                None => Some(1 + rng.next_u64() % 8),
                Some(_) => None,
            };
        }
    }
    c
}

/// Serializes a corpus entry (one interesting candidate + the coverage
/// signature digest its run produced).
fn encode_entry(cand: Candidate, sig_digest: &str) -> String {
    let mut obj = JsonValue::object()
        .field("v", CORPUS_VERSION)
        .field("fault", cand.fault.name())
        .field("arg", cand.fault.arg())
        .field("event", cand.event);
    if let Some(rc) = cand.recovery_crash {
        obj = obj.field("rc", rc);
    }
    let mut text = obj.field("sig", sig_digest).build().to_string();
    text.push('\n');
    text
}

/// Rebuilds a candidate from its stored form; `None` on any anomaly (the
/// entry is skipped, not fatal — a stale corpus must never kill a run).
fn decode_entry(text: &str) -> Option<Candidate> {
    let v = JsonValue::parse(text).ok()?;
    if v.get("v").and_then(JsonValue::as_u64) != Some(CORPUS_VERSION) {
        return None;
    }
    let name = v.get("fault").and_then(JsonValue::as_str)?;
    let arg = v.get("arg").and_then(JsonValue::as_u64)?;
    let event = v.get("event").and_then(JsonValue::as_u64)?.max(1);
    let recovery_crash = match v.get("rc") {
        Some(rc) => Some(rc.as_u64()?),
        None => None,
    };
    Some(Candidate {
        fault: Fault::from_name(name, arg)?,
        event,
        recovery_crash,
    })
}

/// Loads the persisted corpus of one cell, sorted by file name so the
/// replay order (and therefore the whole search) is deterministic.
fn load_corpus(dir: &std::path::Path, restriction: Option<Fault>) -> Vec<Candidate> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut names: Vec<String> = entries
        .flatten()
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".json"))
        .collect();
    names.sort_unstable();
    names
        .into_iter()
        .filter_map(|n| std::fs::read_to_string(dir.join(n)).ok())
        .filter_map(|text| decode_entry(&text))
        .filter(|c| match restriction {
            Some(f) => c.fault.kind_index() == f.kind_index(),
            None => true,
        })
        .collect()
}

/// Persists one interesting candidate under its signature digest.
/// Best-effort, like the result store: a read-only disk degrades
/// persistence, never the search.
fn persist_entry(dir: &std::path::Path, cand: Candidate, sig_digest: &str) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{sig_digest}.json"));
    let tmp = dir.join(format!("{sig_digest}.tmp.{}", std::process::id()));
    if std::fs::write(&tmp, encode_entry(cand, sig_digest)).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

/// Executor entry point for [`CellWork::Fuzz`]: one cell's full search —
/// clean reference run, corpus + deterministic seeds, mutation loop to
/// the execution budget, double-checked verdict on every recovered image.
#[allow(clippy::too_many_arguments)] // mirrors the CellWork::Fuzz fields
pub(crate) fn execute_fuzz(
    scheme: &str,
    workload: &str,
    txs_per_core: usize,
    seed: u64,
    execs: u64,
    fault: Option<FaultSpec>,
    crash_event: Option<u64>,
    recovery_crash: Option<u64>,
    arrival: Option<&str>,
) -> CellOutcome {
    let restriction = fault.map(Fault::from_spec);
    if workload_by_name(workload).is_none() {
        return CellOutcome::failed(format!(
            "unknown workload {workload:?} in cell {scheme}/{workload}/txs={txs_per_core}"
        ));
    }
    if let Some(ident) = arrival {
        if ArrivalProcess::parse(ident).is_none() {
            return CellOutcome::failed(format!(
                "unparseable arrival ident {ident:?} in cell \
                 {scheme}/{workload}/txs={txs_per_core}"
            ));
        }
    }
    let config = SimConfig::table_ii(CORES);
    // Same construction the trace fingerprint hashes, so the streams the
    // search crashes are exactly the streams the cell key describes.
    let w = crate::cellspec::fuzz_workload_spec(workload, arrival).instantiate();
    let streams = TraceCache::global().get_or_build(&*w, CORES, txs_per_core, seed);
    // Clean reference run: fixes the durability-event axis length.
    let clean = {
        let mut s = make_scheme(scheme, &config);
        Engine::new(&config, s.as_mut()).run(&streams, None)
    };
    let total = clean.pm.events().total();

    // Initial candidates: the persisted corpus (sorted), then the evenly
    // spaced deterministic seeds per allowed fault model. A fixed
    // --crash-event collapses the whole search to one exact candidate.
    let cell_dir = corpus_root().map(|root| root.join(workload).join(scheme));
    let mut initial: Vec<Candidate> = Vec::new();
    match crash_event {
        Some(event) => initial.push(Candidate {
            fault: restriction.expect("--crash-event requires one --fault"),
            event: event.max(1),
            recovery_crash,
        }),
        None => {
            if let Some(dir) = &cell_dir {
                initial.extend(load_corpus(dir, restriction));
            }
            let seed_faults = match restriction {
                Some(f) => vec![f],
                None => vec![
                    Fault::Adr,
                    Fault::Torn(DEFAULT_TORN_KEEP),
                    Fault::Battery(DEFAULT_BATTERY_BYTES),
                ],
            };
            for f in seed_faults {
                for event in spaced(total, SEED_POINTS) {
                    initial.push(Candidate {
                        fault: f,
                        event,
                        recovery_crash: None,
                    });
                }
            }
            initial.dedup();
        }
    }

    let mut coverage = Signature::default();
    let mut corpus: Vec<Candidate> = Vec::new();
    let mut executed = 0u64;
    let mut violations: Vec<(Candidate, CandidateRun)> = Vec::new();
    let mut violation_count = 0u64;
    let mut run_one = |cand: Candidate,
                       coverage: &mut Signature,
                       corpus: &mut Vec<Candidate>,
                       executed: &mut u64| {
        let run = run_candidate(scheme, &config, &streams, cand);
        *executed += 1;
        if !run.oracle_ok || !run.spec_ok {
            violation_count += 1;
            if violations.len() < MAX_RECORDED && !violations.iter().any(|(c, _)| *c == cand) {
                violations.push((cand, run.clone()));
            }
        }
        // Violating candidates merge too: a crash that breaks recovery is
        // the most interesting neighborhood to keep mutating around.
        if coverage.merge(&run.signature) > 0 && !corpus.contains(&cand) {
            if let Some(dir) = &cell_dir {
                persist_entry(dir, cand, &run.signature.digest());
            }
            corpus.push(cand);
        }
    };
    for cand in initial {
        if executed >= execs {
            break;
        }
        run_one(cand, &mut coverage, &mut corpus, &mut executed);
    }
    let mut rng = Xoshiro256::seeded(rng_seed(seed, scheme, workload, arrival));
    while executed < execs && !corpus.is_empty() && crash_event.is_none() {
        let base = corpus[(rng.next_u64() % corpus.len() as u64) as usize];
        let cand = mutate(&mut rng, base, total, restriction.is_some());
        run_one(cand, &mut coverage, &mut corpus, &mut executed);
    }

    let digest = coverage.digest();
    let (hi, lo) = {
        let d = u64::from_str_radix(&digest, 16).expect("digest is 16 hex chars");
        ((d >> 32) as u32, d as u32)
    };
    let mut out = CellOutcome::from_stats(clean.stats.clone())
        .with_value("execs", executed as f64)
        .with_value("corpus", corpus.len() as f64)
        .with_value("cov", coverage.count() as f64)
        .with_value("cov_hi", hi as f64)
        .with_value("cov_lo", lo as f64)
        .with_value("viols", violation_count as f64)
        .with_value("recorded", violations.len() as f64);
    for (i, (cand, run)) in violations.iter().enumerate() {
        out = out
            .with_value(&format!("v{i}_event"), cand.event as f64)
            .with_value(&format!("v{i}_fault"), cand.fault.kind_index() as f64)
            .with_value(&format!("v{i}_arg"), cand.fault.arg() as f64)
            .with_value(
                &format!("v{i}_rc"),
                cand.recovery_crash.map(|r| r as f64).unwrap_or(-1.0),
            )
            .with_value(
                &format!("v{i}_oracle"),
                if run.oracle_ok { 0.0 } else { 1.0 },
            )
            .with_value(&format!("v{i}_spec"), if run.spec_ok { 0.0 } else { 1.0 });
        if let Some((addr, wevent, kind)) = run.first_word {
            out = out
                .with_value(&format!("v{i}_addr_hi"), (addr >> 32) as u32 as f64)
                .with_value(&format!("v{i}_addr_lo"), addr as u32 as f64)
                .with_value(&format!("v{i}_wevent"), wevent as f64)
                .with_value(&format!("v{i}_kind"), kind as f64);
        }
    }
    out
}

fn build(p: &ExpParams) -> Vec<CellSpec> {
    let cfg = parse_config(p);
    let txs_per_core = (p.txs / CORES).max(1);
    let mut cells = Vec::new();
    for bench in &p.benches {
        if workload_by_name(bench).is_none() {
            eprintln!("error: unknown benchmark {bench:?}");
            std::process::exit(2);
        }
        for scheme in &cfg.schemes {
            let mut label = CellLabel::swc(scheme, bench, CORES);
            if let Some(ident) = &cfg.arrival {
                label = label.with_param(format!("arrival={ident}"));
            }
            cells.push(CellSpec::new(
                label,
                p.seed,
                CellWork::Fuzz {
                    scheme: scheme.clone(),
                    workload: bench.clone(),
                    txs_per_core,
                    execs: cfg.execs,
                    fault: cfg.fault.map(Fault::to_spec),
                    crash_event: cfg.crash_event,
                    recovery_crash: cfg.recovery_crash,
                    arrival: cfg.arrival.clone(),
                },
            ));
        }
    }
    cells
}

fn render(p: &ExpParams, cells: &[(CellLabel, CellOutcome)], out: &mut String) -> JsonValue {
    let cfg = parse_config(p);
    let txs_per_core = (p.txs / CORES).max(1);
    writeln!(out, "Coverage-guided crash search ({CORES} cores)").unwrap();
    let faults = match cfg.fault {
        Some(f) => f.describe(),
        None => {
            format!("adr, torn-line(keep={DEFAULT_TORN_KEEP}), battery({DEFAULT_BATTERY_BYTES} B)")
        }
    };
    let arrival_note = match &cfg.arrival {
        Some(ident) => format!(", arrival {ident}"),
        None => String::new(),
    };
    writeln!(
        out,
        "{} txs/core, seed {}, budget {} execs/cell, faults: {}{}",
        txs_per_core, p.seed, cfg.execs, faults, arrival_note
    )
    .unwrap();
    writeln!(
        out,
        "{:<12}{:<10}{:>6}{:>8}{:>10}  {:<18}{:>10}",
        "scheme", "bench", "execs", "corpus", "coverage", "signature", "violations"
    )
    .unwrap();

    let mut total_execs = 0u64;
    let mut total_violations = 0u64;
    let mut rows = Vec::new();
    let mut repros: Vec<(String, Vec<String>)> = Vec::new();
    for (label, outcome) in cells {
        if let Some(err) = &outcome.error {
            writeln!(out, "ERROR {:<12}{:<10}{err}", label.scheme, label.workload).unwrap();
            rows.push(
                JsonValue::object()
                    .field("scheme", label.scheme.as_str())
                    .field("workload", label.workload.as_str())
                    .field("error", err.as_str())
                    .build(),
            );
            continue;
        }
        let execs = outcome.value("execs") as u64;
        let corpus = outcome.value("corpus") as u64;
        let cov = outcome.value("cov") as u64;
        let digest = format!(
            "{:08x}{:08x}",
            outcome.value("cov_hi") as u32,
            outcome.value("cov_lo") as u32
        );
        let viols = outcome.value("viols") as u64;
        total_execs += execs;
        total_violations += viols;
        writeln!(
            out,
            "{:<12}{:<10}{:>6}{:>8}{:>10}  {:<18}{:>10}",
            label.scheme, label.workload, execs, corpus, cov, digest, viols
        )
        .unwrap();
        let mut row = JsonValue::object()
            .field("scheme", label.scheme.as_str())
            .field("workload", label.workload.as_str())
            .field("execs", execs as f64)
            .field("corpus", corpus as f64)
            .field("coverage_bits", cov as f64)
            .field("signature", digest.as_str())
            .field("violations", viols as f64);
        if viols > 0 {
            let recorded = outcome.value("recorded") as usize;
            let mut detail = Vec::new();
            let mut row_repros = Vec::new();
            for i in 0..recorded {
                let fault = Fault::from_parts(
                    outcome.value(&format!("v{i}_fault")) as u64,
                    outcome.value(&format!("v{i}_arg")) as u64,
                )
                .expect("stored fault kind is valid");
                let event = outcome.value(&format!("v{i}_event")) as u64;
                let rc = outcome.value(&format!("v{i}_rc"));
                let arrival_flag = match &cfg.arrival {
                    Some(ident) => format!(" --arrival {ident}"),
                    None => String::new(),
                };
                let rc_flag = if rc >= 0.0 {
                    format!(" --recovery-crash {}", rc as u64)
                } else {
                    String::new()
                };
                let repro = format!(
                    "evaluate fuzz --scheme {} --bench {} --txs {} --seed {} \
                     --fault {}{} --crash-event {event}{rc_flag}{arrival_flag} \
                     --execs 1 --no-corpus",
                    label.scheme,
                    label.workload,
                    txs_per_core * CORES,
                    p.seed,
                    fault.name(),
                    fault.repro_flags(),
                );
                let word = outcome
                    .values
                    .iter()
                    .any(|(k, _)| k == &format!("v{i}_wevent"))
                    .then(|| {
                        let addr = ((outcome.value(&format!("v{i}_addr_hi")) as u64) << 32)
                            | outcome.value(&format!("v{i}_addr_lo")) as u64;
                        let wevent = outcome.value(&format!("v{i}_wevent")) as u64;
                        let kind = SPEC_KINDS[outcome.value(&format!("v{i}_kind")) as usize];
                        (addr, wevent, kind)
                    });
                detail.push((fault, event, rc, word, repro.clone()));
                row_repros.push(repro);
            }
            let mut blocks = Vec::new();
            for (fault, event, rc, word, repro) in &detail {
                let mut block = format!(
                    "VIOLATION {} / {} / {} @ event {event}",
                    label.scheme,
                    label.workload,
                    fault.describe()
                );
                if *rc >= 0.0 {
                    write!(block, " (recovery re-crash after {} writes)", *rc as u64).unwrap();
                }
                block.push('\n');
                if let Some((addr, wevent, kind)) = word {
                    writeln!(
                        block,
                        "  first offending word: {addr:#018x} ({kind}, word event {wevent})"
                    )
                    .unwrap();
                }
                writeln!(block, "  minimal repro: {repro}").unwrap();
                blocks.push(block);
            }
            repros.push((blocks.concat(), row_repros.clone()));
            row = row.field(
                "repros",
                JsonValue::Arr(
                    row_repros
                        .iter()
                        .map(|r| JsonValue::Str(r.clone()))
                        .collect(),
                ),
            );
        }
        rows.push(row.build());
    }
    writeln!(
        out,
        "total: {total_violations} violations across {total_execs} executions"
    )
    .unwrap();
    for (block, _) in &repros {
        out.push_str(block);
    }
    JsonValue::object()
        .field("total_violations", total_violations as f64)
        .field("executions", total_execs as f64)
        .field("rows", JsonValue::Arr(rows))
        .build()
}

/// The `fuzz` spec.
pub fn spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "fuzz",
        legacy_bin: "fuzz",
        description: "coverage-guided crash search with the per-word executable spec",
        default_txs: 16,
        kind: ExpKind::Custom { build, render },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spaced_points_never_hit_event_zero() {
        assert_eq!(spaced(100, 4), vec![12, 37, 62, 87]);
        assert!(spaced(1, 4).iter().all(|&e| e >= 1));
        assert!(spaced(0, 4).iter().all(|&e| e >= 1));
    }

    #[test]
    fn corpus_entries_round_trip() {
        for cand in [
            Candidate {
                fault: Fault::Adr,
                event: 17,
                recovery_crash: None,
            },
            Candidate {
                fault: Fault::Torn(48),
                event: 3,
                recovery_crash: Some(5),
            },
            Candidate {
                fault: Fault::Battery(64),
                event: 999,
                recovery_crash: None,
            },
        ] {
            let text = encode_entry(cand, "0123456789abcdef");
            assert_eq!(decode_entry(&text), Some(cand), "{text}");
        }
        assert_eq!(decode_entry(""), None);
        assert_eq!(decode_entry("{\"v\":999}"), None);
        assert_eq!(
            decode_entry("{\"v\":1,\"fault\":\"nope\",\"arg\":0,\"event\":1}"),
            None
        );
    }

    #[test]
    fn mutation_is_deterministic_and_stays_in_bounds() {
        let base = Candidate {
            fault: Fault::Battery(64),
            event: 50,
            recovery_crash: None,
        };
        let run = || {
            let mut rng = Xoshiro256::seeded(7);
            let mut c = base;
            let mut trail = Vec::new();
            for _ in 0..64 {
                c = mutate(&mut rng, c, 100, true);
                assert!(c.event >= 1 && c.event <= 100, "event {c:?} out of axis");
                assert!(
                    matches!(c.fault, Fault::Battery(_)),
                    "restricted mutation left its fault kind: {c:?}"
                );
                trail.push(c);
            }
            trail
        };
        assert_eq!(run(), run());
        // Unrestricted mutation reaches every fault kind.
        let mut rng = Xoshiro256::seeded(7);
        let mut c = base;
        let mut kinds = std::collections::HashSet::new();
        for _ in 0..256 {
            c = mutate(&mut rng, c, 100, false);
            kinds.insert(c.fault.kind_index());
        }
        assert_eq!(kinds.len(), 3, "mutation never rotated to some fault kind");
    }

    #[test]
    fn rng_seed_separates_cells() {
        let a = rng_seed(42, "Silo", "Hash", None);
        assert_ne!(a, rng_seed(42, "Base", "Hash", None));
        assert_ne!(a, rng_seed(42, "Silo", "TPCC", None));
        assert_ne!(a, rng_seed(43, "Silo", "Hash", None));
        assert_ne!(a, rng_seed(42, "Silo", "Hash", Some("poisson2000")));
        assert_eq!(a, rng_seed(42, "Silo", "Hash", None));
    }

    #[test]
    fn single_candidate_search_finds_battery_violation() {
        // The undersized battery must violate at a mid-stream event on
        // Silo, and the spec machine must agree with the oracle.
        let out = execute_fuzz(
            "Silo",
            "Hash",
            8,
            42,
            6,
            Some(FaultSpec::Battery(64)),
            None,
            None,
            None,
        );
        assert!(out.error.is_none());
        assert!(out.value("viols") > 0.0, "64 B battery must violate");
        assert!(out.value("v0_oracle") == 1.0 || out.value("v0_spec") == 1.0);
    }

    #[test]
    fn search_is_a_pure_function_of_its_inputs() {
        let run = || {
            let out = execute_fuzz("Silo", "Hash", 8, 42, 10, None, None, None, None);
            (
                out.value("execs"),
                out.value("corpus"),
                out.value("cov"),
                out.value("cov_hi"),
                out.value("cov_lo"),
                out.value("viols"),
            )
        };
        assert_eq!(run(), run());
    }
}
