//! Fig 15: transaction throughput sensitivity to the log-buffer access
//! latency, swept from 8 to 128 cycles (§VI-G). The buffer sits off the
//! critical path, so throughput should stay nearly flat.

use std::fmt::Write as _;

use silo_types::JsonValue;

use crate::cellspec::{CellSpec, CellWork, ConfigDelta, RunSpec, SchemeSpec, WorkloadSpec};
use crate::exp::{CellLabel, CellOutcome, ExpKind, ExpParams, ExperimentSpec, Taken};

const NAMES: [&str; 7] = ["Array", "Btree", "Hash", "Queue", "RBtree", "TPCC", "YCSB"];
const CORES: usize = 8;

fn latencies() -> Vec<u64> {
    (1..=16).map(|i| i * 8).collect()
}

fn build(p: &ExpParams) -> Vec<CellSpec> {
    let txs_per_core = (p.txs / CORES).max(1);
    let mut cells = Vec::new();
    for name in NAMES {
        for lat in latencies() {
            cells.push(CellSpec::new(
                CellLabel::swc("Silo", name, CORES).with_param(format!("latency={lat}")),
                p.seed,
                CellWork::Full {
                    run: RunSpec {
                        scheme: SchemeSpec::Named("Silo".to_string()),
                        workload: WorkloadSpec::plain(name),
                        cores: CORES,
                        txs_per_core,
                        config: ConfigDelta {
                            log_buffer_latency: Some(lat),
                            ..ConfigDelta::default()
                        },
                    },
                    record_throughput: true,
                },
            ));
        }
    }
    cells
}

fn render(_p: &ExpParams, cells: &[(CellLabel, CellOutcome)], out: &mut String) -> JsonValue {
    let lats = latencies();
    let mut taken = Taken::new(cells);
    writeln!(
        out,
        "Fig 15: normalized throughput vs log-buffer latency (Silo, 8 cores)"
    )
    .unwrap();
    write!(out, "{:<10}", "latency").unwrap();
    for l in &lats {
        write!(out, "{l:>7}").unwrap();
    }
    writeln!(out).unwrap();

    let mut rows = Vec::new();
    for name in NAMES {
        let row: Vec<f64> = lats.iter().map(|_| taken.next().value("tp")).collect();
        write!(out, "{name:<10}").unwrap();
        for v in &row {
            write!(out, "{:>7.3}", v / row[0]).unwrap();
        }
        writeln!(out).unwrap();
        rows.push(
            JsonValue::object()
                .field("workload", name)
                .field(
                    "normalized",
                    JsonValue::array(row.iter().map(|v| v / row[0])),
                )
                .build(),
        );
    }
    writeln!(
        out,
        "(each row normalized to its own 8-cycle value; paper: -3.3% at 128 cycles)"
    )
    .unwrap();
    JsonValue::object()
        .field("latencies", JsonValue::array(lats.iter().copied()))
        .field("rows", JsonValue::Arr(rows))
        .build()
}

/// The registered spec.
pub fn spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "fig15",
        legacy_bin: "fig15_buffer_latency",
        description: "throughput sensitivity to log-buffer access latency (8-128 cycles)",
        default_txs: 4_000,
        kind: ExpKind::Custom { build, render },
    }
}
