//! The four parameter/behaviour studies: log-buffer capacity (§VI-D),
//! multiple memory controllers (§III-D), on-PM buffer capacity (§III-E),
//! and recovery cost after crashes at varying points (§III-G).

use std::fmt::Write as _;

use silo_types::JsonValue;

use crate::cellspec::{CellSpec, CellWork, ConfigDelta, RunSpec, SchemeSpec, WorkloadSpec};
use crate::exp::{CellLabel, CellOutcome, ExpKind, ExpParams, ExperimentSpec, Taken};

const CORES: usize = 8;

// ----------------------------------------------------------- buffer capacity

const CAP_BENCHES: [&str; 3] = ["Hash", "TPCC", "YCSB"];
const CAPACITIES: [usize; 5] = [5, 10, 20, 40, 80];

fn build_buffer_capacity(p: &ExpParams) -> Vec<CellSpec> {
    let txs_per_core = (p.txs / CORES).max(1);
    let mut cells = Vec::new();
    for name in CAP_BENCHES {
        for entries in CAPACITIES {
            cells.push(CellSpec::new(
                CellLabel::swc("Silo", name, CORES).with_param(format!("entries={entries}")),
                p.seed,
                CellWork::Delta(RunSpec {
                    scheme: SchemeSpec::Named("Silo".to_string()),
                    workload: WorkloadSpec::plain(name),
                    cores: CORES,
                    txs_per_core,
                    config: ConfigDelta {
                        log_buffer_entries: Some(entries),
                        ..ConfigDelta::default()
                    },
                }),
            ));
        }
    }
    cells
}

fn render_buffer_capacity(
    _p: &ExpParams,
    cells: &[(CellLabel, CellOutcome)],
    out: &mut String,
) -> JsonValue {
    let mut taken = Taken::new(cells);
    writeln!(out, "Log-buffer capacity study (Silo, 8 cores)").unwrap();
    writeln!(
        out,
        "{:<10}{:>9}{:>14}{:>13}{:>13}{:>12}",
        "workload", "entries", "overflows/tx", "log wr/tx", "media/tx", "throughput"
    )
    .unwrap();
    let mut rows = Vec::new();
    for name in CAP_BENCHES {
        for entries in CAPACITIES {
            let stats = taken.next_stats();
            let s = &stats.scheme_stats;
            let n = s.transactions as f64;
            writeln!(
                out,
                "{:<10}{:>9}{:>14.2}{:>13.2}{:>13.2}{:>12.4}",
                name,
                entries,
                s.overflow_events as f64 / n,
                s.log_entries_written_to_pm as f64 / n,
                stats.media_writes() as f64 / n,
                stats.throughput()
            )
            .unwrap();
            rows.push(
                JsonValue::object()
                    .field("workload", name)
                    .field("entries", entries)
                    .field("overflows_per_tx", s.overflow_events as f64 / n)
                    .field("media_per_tx", stats.media_writes() as f64 / n)
                    .field("throughput", stats.throughput())
                    .build(),
            );
        }
    }
    writeln!(
        out,
        "(paper: 20 entries cover the max surviving footprint, Fig 13 / Table I)"
    )
    .unwrap();
    JsonValue::object()
        .field("rows", JsonValue::Arr(rows))
        .build()
}

/// Log-buffer capacity study spec.
pub fn buffer_capacity() -> ExperimentSpec {
    ExperimentSpec {
        name: "study_buffer_capacity",
        legacy_bin: "study_buffer_capacity",
        description: "per-core log buffer sized 5-80 entries: overflow rate, traffic, throughput",
        default_txs: 4_000,
        kind: ExpKind::Custom {
            build: build_buffer_capacity,
            render: render_buffer_capacity,
        },
    }
}

// ------------------------------------------------------------------ multi-MC

const MC_BENCHES: [&str; 4] = ["Hash", "Queue", "TPCC", "YCSB"];
const MC_COUNTS: [usize; 3] = [1, 2, 4];

fn build_multi_mc(p: &ExpParams) -> Vec<CellSpec> {
    let txs_per_core = (p.txs / CORES).max(1);
    let mut cells = Vec::new();
    for name in MC_BENCHES {
        for mcs in MC_COUNTS {
            cells.push(CellSpec::new(
                CellLabel::swc("Silo", name, CORES).with_param(format!("mcs={mcs}")),
                p.seed,
                CellWork::Delta(RunSpec {
                    scheme: SchemeSpec::Named("Silo".to_string()),
                    workload: WorkloadSpec::plain(name),
                    cores: CORES,
                    txs_per_core,
                    config: ConfigDelta {
                        num_mcs: Some(mcs),
                        ..ConfigDelta::default()
                    },
                }),
            ));
        }
    }
    cells
}

fn render_multi_mc(
    _p: &ExpParams,
    cells: &[(CellLabel, CellOutcome)],
    out: &mut String,
) -> JsonValue {
    let mut taken = Taken::new(cells);
    writeln!(
        out,
        "Multi-MC study (Silo, 8 cores): throughput vs controller count"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10}{:>10}{:>10}{:>10}{:>14}",
        "workload", "1 MC", "2 MCs", "4 MCs", "4-MC speedup"
    )
    .unwrap();
    let mut rows = Vec::new();
    for name in MC_BENCHES {
        let row: Vec<f64> = MC_COUNTS
            .iter()
            .map(|_| taken.next_stats().throughput())
            .collect();
        writeln!(
            out,
            "{:<10}{:>10.4}{:>10.4}{:>10.4}{:>13.2}x",
            name,
            row[0],
            row[1],
            row[2],
            row[2] / row[0]
        )
        .unwrap();
        rows.push(
            JsonValue::object()
                .field("workload", name)
                .field("throughput", JsonValue::array(row.iter().copied()))
                .field("speedup_4mc", row[2] / row[0])
                .build(),
        );
    }
    writeln!(
        out,
        "(no coordination between controllers: per-transaction MC affinity, §III-D)"
    )
    .unwrap();
    JsonValue::object()
        .field(
            "mc_counts",
            JsonValue::array(MC_COUNTS.iter().map(|&m| m as u64)),
        )
        .field("rows", JsonValue::Arr(rows))
        .build()
}

/// Multi-MC study spec.
pub fn multi_mc() -> ExperimentSpec {
    ExperimentSpec {
        name: "study_multi_mc",
        legacy_bin: "study_multi_mc",
        description: "Silo with 1/2/4 memory controllers: scaling without cross-MC coordination",
        default_txs: 4_000,
        kind: ExpKind::Custom {
            build: build_multi_mc,
            render: render_multi_mc,
        },
    }
}

// --------------------------------------------------------------- on-PM buffer

const ONPM_BENCHES: [&str; 4] = ["Hash", "Queue", "TPCC", "YCSB"];
const ONPM_LINES: [usize; 4] = [4, 16, 64, 256];

fn build_onpm_buffer(p: &ExpParams) -> Vec<CellSpec> {
    let txs_per_core = (p.txs / CORES).max(1);
    let mut cells = Vec::new();
    for name in ONPM_BENCHES {
        for lines in ONPM_LINES {
            cells.push(CellSpec::new(
                CellLabel::swc("Silo", name, CORES).with_param(format!("lines={lines}")),
                p.seed,
                CellWork::Delta(RunSpec {
                    scheme: SchemeSpec::Named("Silo".to_string()),
                    workload: WorkloadSpec::plain(name),
                    cores: CORES,
                    txs_per_core,
                    config: ConfigDelta {
                        onpm_buffer_lines: Some(lines),
                        ..ConfigDelta::default()
                    },
                }),
            ));
        }
    }
    cells
}

fn render_onpm_buffer(
    _p: &ExpParams,
    cells: &[(CellLabel, CellOutcome)],
    out: &mut String,
) -> JsonValue {
    let mut taken = Taken::new(cells);
    writeln!(out, "On-PM buffer capacity study (Silo, 8 cores)").unwrap();
    writeln!(
        out,
        "{:<10}{:>8}{:>13}{:>15}{:>14}",
        "workload", "lines", "media/tx", "coalesced/tx", "forced drains"
    )
    .unwrap();
    let mut rows = Vec::new();
    for name in ONPM_BENCHES {
        for lines in ONPM_LINES {
            let stats = taken.next_stats();
            let n = stats.txs_committed as f64;
            writeln!(
                out,
                "{:<10}{:>8}{:>13.2}{:>15.2}{:>14}",
                name,
                lines,
                stats.media_writes() as f64 / n,
                stats.pm.coalesced_hits as f64 / n,
                stats.pm.buffer_forced_drains
            )
            .unwrap();
            rows.push(
                JsonValue::object()
                    .field("workload", name)
                    .field("lines", lines)
                    .field("media_per_tx", stats.media_writes() as f64 / n)
                    .field("coalesced_per_tx", stats.pm.coalesced_hits as f64 / n)
                    .build(),
            );
        }
    }
    writeln!(
        out,
        "(64 lines = a 16 KB buffer, the Optane XPBuffer scale this model defaults to)"
    )
    .unwrap();
    JsonValue::object()
        .field("rows", JsonValue::Arr(rows))
        .build()
}

/// On-PM buffer capacity study spec.
pub fn onpm_buffer() -> ExperimentSpec {
    ExperimentSpec {
        name: "study_onpm_buffer",
        legacy_bin: "study_onpm_buffer",
        description: "on-PM coalescing buffer sized 4-256 lines: media programs and drains",
        default_txs: 4_000,
        kind: ExpKind::Custom {
            build: build_onpm_buffer,
            render: render_onpm_buffer,
        },
    }
}

// ------------------------------------------------------------------- recovery

const CRASH_CYCLES: [u64; 6] = [1_000, 5_000, 20_000, 80_000, 320_000, 1_280_000];
const RECOVERY_CORES: usize = 4;

fn build_recovery(p: &ExpParams) -> Vec<CellSpec> {
    CRASH_CYCLES
        .iter()
        .map(|&crash_at| {
            CellSpec::new(
                CellLabel::swc("Silo", "TPCC", RECOVERY_CORES)
                    .with_param(format!("crash_at={crash_at}")),
                p.seed,
                CellWork::Recovery {
                    txs: p.txs,
                    crash_at,
                },
            )
        })
        .collect()
}

fn render_recovery(
    _p: &ExpParams,
    cells: &[(CellLabel, CellOutcome)],
    out: &mut String,
) -> JsonValue {
    let mut taken = Taken::new(cells);
    writeln!(out, "Recovery study (Silo, 4 cores, TPCC)").unwrap();
    writeln!(
        out,
        "{:<12}{:>10}{:>10}{:>10}{:>10}{:>10}{:>14}",
        "crash cycle", "committed", "in-flight", "scanned", "replayed", "revoked", "recovery (us)"
    )
    .unwrap();
    let mut rows = Vec::new();
    for crash_at in CRASH_CYCLES {
        let c = taken.next();
        writeln!(
            out,
            "{:<12}{:>10}{:>10}{:>10}{:>10}{:>10}{:>14.2}",
            crash_at,
            c.value("committed") as u64,
            c.value("inflight") as u64,
            c.value("scanned") as u64,
            c.value("replayed") as u64,
            c.value("revoked") as u64,
            c.value("us")
        )
        .unwrap();
        rows.push(
            JsonValue::object()
                .field("crash_cycle", crash_at)
                .field("committed", c.value("committed"))
                .field("scanned", c.value("scanned"))
                .field("recovery_us", c.value("us"))
                .build(),
        );
    }
    writeln!(
        out,
        "(recovery scales with surviving log records, not with PM size or history)"
    )
    .unwrap();
    JsonValue::object()
        .field("rows", JsonValue::Arr(rows))
        .build()
}

/// Recovery study spec.
pub fn recovery() -> ExperimentSpec {
    ExperimentSpec {
        name: "study_recovery",
        legacy_bin: "study_recovery",
        description: "recovery cost after crashes at varying cycles (selective-flush survivors)",
        default_txs: 1_000,
        kind: ExpKind::Custom {
            build: build_recovery,
            render: render_recovery,
        },
    }
}
