//! The four parameter/behaviour studies: log-buffer capacity (§VI-D),
//! multiple memory controllers (§III-D), on-PM buffer capacity (§III-E),
//! and recovery cost after crashes at varying points (§III-G).

use std::fmt::Write as _;

use silo_core::SiloScheme;
use silo_sim::{Engine, SimConfig};
use silo_types::{Cycles, JsonValue, CLOCK_GHZ};
use silo_workloads::workload_by_name;

use crate::exp::{Cell, CellLabel, CellOutcome, ExpKind, ExpParams, ExperimentSpec, Taken};
use crate::run_delta_with;

const CORES: usize = 8;

// ----------------------------------------------------------- buffer capacity

const CAP_BENCHES: [&str; 3] = ["Hash", "TPCC", "YCSB"];
const CAPACITIES: [usize; 5] = [5, 10, 20, 40, 80];

fn build_buffer_capacity(p: &ExpParams) -> Vec<Cell> {
    let txs_per_core = (p.txs / CORES).max(1);
    let seed = p.seed;
    let mut cells = Vec::new();
    for name in CAP_BENCHES {
        for entries in CAPACITIES {
            cells.push(Cell::new(
                CellLabel::swc("Silo", name, CORES).with_param(format!("entries={entries}")),
                move || {
                    let w = workload_by_name(name).expect("benchmark");
                    let mut config = SimConfig::table_ii(CORES);
                    config.log_buffer_entries = entries;
                    CellOutcome::from_stats(run_delta_with(
                        &config,
                        || Box::new(SiloScheme::new(&config)),
                        &w,
                        txs_per_core,
                        seed,
                    ))
                },
            ));
        }
    }
    cells
}

fn render_buffer_capacity(
    _p: &ExpParams,
    cells: &[(CellLabel, CellOutcome)],
    out: &mut String,
) -> JsonValue {
    let mut taken = Taken::new(cells);
    writeln!(out, "Log-buffer capacity study (Silo, 8 cores)").unwrap();
    writeln!(
        out,
        "{:<10}{:>9}{:>14}{:>13}{:>13}{:>12}",
        "workload", "entries", "overflows/tx", "log wr/tx", "media/tx", "throughput"
    )
    .unwrap();
    let mut rows = Vec::new();
    for name in CAP_BENCHES {
        for entries in CAPACITIES {
            let stats = taken.next_stats();
            let s = &stats.scheme_stats;
            let n = s.transactions as f64;
            writeln!(
                out,
                "{:<10}{:>9}{:>14.2}{:>13.2}{:>13.2}{:>12.4}",
                name,
                entries,
                s.overflow_events as f64 / n,
                s.log_entries_written_to_pm as f64 / n,
                stats.media_writes() as f64 / n,
                stats.throughput()
            )
            .unwrap();
            rows.push(
                JsonValue::object()
                    .field("workload", name)
                    .field("entries", entries)
                    .field("overflows_per_tx", s.overflow_events as f64 / n)
                    .field("media_per_tx", stats.media_writes() as f64 / n)
                    .field("throughput", stats.throughput())
                    .build(),
            );
        }
    }
    writeln!(
        out,
        "(paper: 20 entries cover the max surviving footprint, Fig 13 / Table I)"
    )
    .unwrap();
    JsonValue::object()
        .field("rows", JsonValue::Arr(rows))
        .build()
}

/// Log-buffer capacity study spec.
pub fn buffer_capacity() -> ExperimentSpec {
    ExperimentSpec {
        name: "study_buffer_capacity",
        legacy_bin: "study_buffer_capacity",
        description: "per-core log buffer sized 5-80 entries: overflow rate, traffic, throughput",
        default_txs: 4_000,
        kind: ExpKind::Custom {
            build: build_buffer_capacity,
            render: render_buffer_capacity,
        },
    }
}

// ------------------------------------------------------------------ multi-MC

const MC_BENCHES: [&str; 4] = ["Hash", "Queue", "TPCC", "YCSB"];
const MC_COUNTS: [usize; 3] = [1, 2, 4];

fn build_multi_mc(p: &ExpParams) -> Vec<Cell> {
    let txs_per_core = (p.txs / CORES).max(1);
    let seed = p.seed;
    let mut cells = Vec::new();
    for name in MC_BENCHES {
        for mcs in MC_COUNTS {
            cells.push(Cell::new(
                CellLabel::swc("Silo", name, CORES).with_param(format!("mcs={mcs}")),
                move || {
                    let w = workload_by_name(name).expect("benchmark");
                    let mut config = SimConfig::table_ii(CORES);
                    config.num_mcs = mcs;
                    CellOutcome::from_stats(run_delta_with(
                        &config,
                        || Box::new(SiloScheme::new(&config)),
                        &w,
                        txs_per_core,
                        seed,
                    ))
                },
            ));
        }
    }
    cells
}

fn render_multi_mc(
    _p: &ExpParams,
    cells: &[(CellLabel, CellOutcome)],
    out: &mut String,
) -> JsonValue {
    let mut taken = Taken::new(cells);
    writeln!(
        out,
        "Multi-MC study (Silo, 8 cores): throughput vs controller count"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10}{:>10}{:>10}{:>10}{:>14}",
        "workload", "1 MC", "2 MCs", "4 MCs", "4-MC speedup"
    )
    .unwrap();
    let mut rows = Vec::new();
    for name in MC_BENCHES {
        let row: Vec<f64> = MC_COUNTS
            .iter()
            .map(|_| taken.next_stats().throughput())
            .collect();
        writeln!(
            out,
            "{:<10}{:>10.4}{:>10.4}{:>10.4}{:>13.2}x",
            name,
            row[0],
            row[1],
            row[2],
            row[2] / row[0]
        )
        .unwrap();
        rows.push(
            JsonValue::object()
                .field("workload", name)
                .field("throughput", JsonValue::array(row.iter().copied()))
                .field("speedup_4mc", row[2] / row[0])
                .build(),
        );
    }
    writeln!(
        out,
        "(no coordination between controllers: per-transaction MC affinity, §III-D)"
    )
    .unwrap();
    JsonValue::object()
        .field(
            "mc_counts",
            JsonValue::array(MC_COUNTS.iter().map(|&m| m as u64)),
        )
        .field("rows", JsonValue::Arr(rows))
        .build()
}

/// Multi-MC study spec.
pub fn multi_mc() -> ExperimentSpec {
    ExperimentSpec {
        name: "study_multi_mc",
        legacy_bin: "study_multi_mc",
        description: "Silo with 1/2/4 memory controllers: scaling without cross-MC coordination",
        default_txs: 4_000,
        kind: ExpKind::Custom {
            build: build_multi_mc,
            render: render_multi_mc,
        },
    }
}

// --------------------------------------------------------------- on-PM buffer

const ONPM_BENCHES: [&str; 4] = ["Hash", "Queue", "TPCC", "YCSB"];
const ONPM_LINES: [usize; 4] = [4, 16, 64, 256];

fn build_onpm_buffer(p: &ExpParams) -> Vec<Cell> {
    let txs_per_core = (p.txs / CORES).max(1);
    let seed = p.seed;
    let mut cells = Vec::new();
    for name in ONPM_BENCHES {
        for lines in ONPM_LINES {
            cells.push(Cell::new(
                CellLabel::swc("Silo", name, CORES).with_param(format!("lines={lines}")),
                move || {
                    let w = workload_by_name(name).expect("benchmark");
                    let mut config = SimConfig::table_ii(CORES);
                    config.onpm_buffer_lines = lines;
                    CellOutcome::from_stats(run_delta_with(
                        &config,
                        || Box::new(SiloScheme::new(&config)),
                        &w,
                        txs_per_core,
                        seed,
                    ))
                },
            ));
        }
    }
    cells
}

fn render_onpm_buffer(
    _p: &ExpParams,
    cells: &[(CellLabel, CellOutcome)],
    out: &mut String,
) -> JsonValue {
    let mut taken = Taken::new(cells);
    writeln!(out, "On-PM buffer capacity study (Silo, 8 cores)").unwrap();
    writeln!(
        out,
        "{:<10}{:>8}{:>13}{:>15}{:>14}",
        "workload", "lines", "media/tx", "coalesced/tx", "forced drains"
    )
    .unwrap();
    let mut rows = Vec::new();
    for name in ONPM_BENCHES {
        for lines in ONPM_LINES {
            let stats = taken.next_stats();
            let n = stats.txs_committed as f64;
            writeln!(
                out,
                "{:<10}{:>8}{:>13.2}{:>15.2}{:>14}",
                name,
                lines,
                stats.media_writes() as f64 / n,
                stats.pm.coalesced_hits as f64 / n,
                stats.pm.buffer_forced_drains
            )
            .unwrap();
            rows.push(
                JsonValue::object()
                    .field("workload", name)
                    .field("lines", lines)
                    .field("media_per_tx", stats.media_writes() as f64 / n)
                    .field("coalesced_per_tx", stats.pm.coalesced_hits as f64 / n)
                    .build(),
            );
        }
    }
    writeln!(
        out,
        "(64 lines = a 16 KB buffer, the Optane XPBuffer scale this model defaults to)"
    )
    .unwrap();
    JsonValue::object()
        .field("rows", JsonValue::Arr(rows))
        .build()
}

/// On-PM buffer capacity study spec.
pub fn onpm_buffer() -> ExperimentSpec {
    ExperimentSpec {
        name: "study_onpm_buffer",
        legacy_bin: "study_onpm_buffer",
        description: "on-PM coalescing buffer sized 4-256 lines: media programs and drains",
        default_txs: 4_000,
        kind: ExpKind::Custom {
            build: build_onpm_buffer,
            render: render_onpm_buffer,
        },
    }
}

// ------------------------------------------------------------------- recovery

const CRASH_CYCLES: [u64; 6] = [1_000, 5_000, 20_000, 80_000, 320_000, 1_280_000];
const RECOVERY_CORES: usize = 4;

fn build_recovery(p: &ExpParams) -> Vec<Cell> {
    let (txs, seed) = (p.txs, p.seed);
    CRASH_CYCLES
        .iter()
        .map(|&crash_at| {
            Cell::new(
                CellLabel::swc("Silo", "TPCC", RECOVERY_CORES)
                    .with_param(format!("crash_at={crash_at}")),
                move || {
                    let w = workload_by_name("TPCC").expect("tpcc");
                    let config = SimConfig::table_ii(RECOVERY_CORES);
                    let mut silo = SiloScheme::new(&config);
                    // One trace for all six crash points.
                    let trace = crate::TraceCache::global().get_or_build(
                        &w,
                        RECOVERY_CORES,
                        txs / RECOVERY_CORES,
                        seed,
                    );
                    let out =
                        Engine::new(&config, &mut silo).run(&trace, Some(Cycles::new(crash_at)));
                    let crash = out.crash.expect("crash injected");
                    assert!(crash.consistency.is_consistent(), "{:?}", crash.consistency);
                    let r = crash.recovery;
                    // Model: one PM read per scanned record, one PM write per
                    // applied word (word writes coalesce ~4:1 into media lines
                    // on average).
                    let read_cyc = config.memctrl.read_cycles * r.scanned_records;
                    let write_cyc = config.memctrl.media_write_cycles
                        * (r.replayed_words + r.revoked_words)
                        / 4;
                    let us = (read_cyc + write_cyc) as f64 / (CLOCK_GHZ * 1000.0);
                    CellOutcome::from_stats(out.stats)
                        .with_value("committed", crash.committed_txs as f64)
                        .with_value("inflight", crash.inflight_txs as f64)
                        .with_value("scanned", r.scanned_records as f64)
                        .with_value("replayed", r.replayed_words as f64)
                        .with_value("revoked", r.revoked_words as f64)
                        .with_value("us", us)
                },
            )
        })
        .collect()
}

fn render_recovery(
    _p: &ExpParams,
    cells: &[(CellLabel, CellOutcome)],
    out: &mut String,
) -> JsonValue {
    let mut taken = Taken::new(cells);
    writeln!(out, "Recovery study (Silo, 4 cores, TPCC)").unwrap();
    writeln!(
        out,
        "{:<12}{:>10}{:>10}{:>10}{:>10}{:>10}{:>14}",
        "crash cycle", "committed", "in-flight", "scanned", "replayed", "revoked", "recovery (us)"
    )
    .unwrap();
    let mut rows = Vec::new();
    for crash_at in CRASH_CYCLES {
        let c = taken.next();
        writeln!(
            out,
            "{:<12}{:>10}{:>10}{:>10}{:>10}{:>10}{:>14.2}",
            crash_at,
            c.value("committed") as u64,
            c.value("inflight") as u64,
            c.value("scanned") as u64,
            c.value("replayed") as u64,
            c.value("revoked") as u64,
            c.value("us")
        )
        .unwrap();
        rows.push(
            JsonValue::object()
                .field("crash_cycle", crash_at)
                .field("committed", c.value("committed"))
                .field("scanned", c.value("scanned"))
                .field("recovery_us", c.value("us"))
                .build(),
        );
    }
    writeln!(
        out,
        "(recovery scales with surviving log records, not with PM size or history)"
    )
    .unwrap();
    JsonValue::object()
        .field("rows", JsonValue::Arr(rows))
        .build()
}

/// Recovery study spec.
pub fn recovery() -> ExperimentSpec {
    ExperimentSpec {
        name: "study_recovery",
        legacy_bin: "study_recovery",
        description: "recovery cost after crashes at varying cycles (selective-flush survivors)",
        default_txs: 1_000,
        kind: ExpKind::Custom {
            build: build_recovery,
            render: render_recovery,
        },
    }
}
