//! `crashfuzz`: differential crash-surface fuzzing across every scheme.
//!
//! For each scheme × workload × fault model, the experiment measures a
//! clean run's durability-event total, then injects power failures at
//! evenly spaced crash points and has the [`silo_sim::TxOracle`] verify
//! every recovered image. Three fault models cover the crash surface:
//!
//! * `op-boundary` — the legacy cycle-sampled trigger (cores halt at an
//!   op boundary once their clock passes the cut);
//! * `torn-line` — event-indexed trigger with the in-flight 256 B media
//!   line program torn to a prefix of its bytes;
//! * `battery` — event-indexed trigger with a bounded residual-energy
//!   budget for the post-crash ADR drain (paper Table IV).
//!
//! On top of the per-run oracle verdict, recovered images are compared
//! *differentially*: any two runs of the same workload that crashed at
//! the same per-core progress (committed-transaction counts) must agree
//! on every word the workload ever writes, whichever scheme and fault
//! produced them. A violation is shrunk to a minimal deterministic
//! `(stream, crash point, fault)` triple and printed as a runnable
//! `evaluate crashfuzz ... --point N` command.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use silo_sim::{
    CheckpointPolicy, CheckpointSet, CrashPlan, Engine, FaultModel, RunOutcome, SimConfig, TraceSet,
};
use silo_types::{Cycles, JsonValue, PhysAddr};
use silo_workloads::workload_by_name;

use crate::cellspec::{CellSpec, CellWork, FaultSpec};
use crate::exp::{CellLabel, CellOutcome, ExpKind, ExpParams, ExperimentSpec};
use crate::{arg_string, arg_u64, arg_usize, make_scheme, TraceCache, ALL_SCHEMES};

/// Two cores keep the sweep cheap while still exercising cross-core
/// interleaving at the shared memory controller.
const CORES: usize = 2;
/// Default crash points per cell in sweep mode (`--points` overrides).
const POINTS: u64 = 4;
/// Default residual-energy budget: ample — it covers the whole on-PM
/// buffer plus the crash records, so a correct scheme must not violate.
const DEFAULT_BATTERY_BYTES: u64 = 64 * 1024;
/// Default torn-line prefix: a quarter of a 256 B line survives.
const DEFAULT_TORN_KEEP: usize = 64;
/// Shrink search widths.
const SHRINK_SCAN: u64 = 16;
const EARLIEST_SCAN: u64 = 64;

/// One fault model of the sweep, with its parameters resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fault {
    /// Cycle-sampled crash at an op boundary, perfect ADR drain.
    OpBoundary,
    /// Event-indexed crash; the in-flight line program keeps `keep` bytes.
    TornLine(usize),
    /// Event-indexed crash; the ADR drain persists at most `bytes` bytes.
    Battery(u64),
}

impl Fault {
    fn from_spec(spec: FaultSpec) -> Fault {
        match spec {
            FaultSpec::OpBoundary => Fault::OpBoundary,
            FaultSpec::TornLine(keep) => Fault::TornLine(keep),
            FaultSpec::Battery(bytes) => Fault::Battery(bytes),
        }
    }

    fn to_spec(self) -> FaultSpec {
        match self {
            Fault::OpBoundary => FaultSpec::OpBoundary,
            Fault::TornLine(keep) => FaultSpec::TornLine(keep),
            Fault::Battery(bytes) => FaultSpec::Battery(bytes),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Fault::OpBoundary => "op-boundary",
            Fault::TornLine(_) => "torn-line",
            Fault::Battery(_) => "battery",
        }
    }

    fn describe(self) -> String {
        match self {
            Fault::OpBoundary => "op-boundary".to_string(),
            Fault::TornLine(keep) => format!("torn-line(keep={keep})"),
            Fault::Battery(bytes) => format!("battery({bytes} B)"),
        }
    }

    fn plan(self, point: u64) -> CrashPlan {
        match self {
            Fault::OpBoundary => CrashPlan::at_cycle(Cycles::new(point)),
            Fault::TornLine(keep) => {
                CrashPlan::at_event(point).with_fault(FaultModel::torn_line(keep))
            }
            Fault::Battery(bytes) => {
                CrashPlan::at_event(point).with_fault(FaultModel::bounded_battery(bytes))
            }
        }
    }

    /// The extra repro flags beyond `--fault <name>`.
    fn repro_flags(self) -> String {
        match self {
            Fault::OpBoundary => String::new(),
            Fault::TornLine(keep) => format!(" --torn-keep {keep}"),
            Fault::Battery(bytes) => format!(" --battery-bytes {bytes}"),
        }
    }
}

/// Checkpointing toggles, process-global like the trace cache's enable
/// flag. They change only how fast a crash point simulates — resumed and
/// from-scratch runs are byte-identical by the engine's resume-equivalence
/// guarantee — so they deliberately stay **out** of the cell spec hash:
/// a result-store entry computed with checkpoints on serves a run with
/// them off, and reports do not depend on the flags.
static CHECKPOINTS_ENABLED: AtomicBool = AtomicBool::new(true);
static CHECKPOINT_EVERY: AtomicU64 = AtomicU64::new(0);

fn checkpoint_policy() -> Option<CheckpointPolicy> {
    if !CHECKPOINTS_ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    Some(match CHECKPOINT_EVERY.load(Ordering::Relaxed) {
        0 => CheckpointPolicy::default(),
        n => CheckpointPolicy::every(n),
    })
}

/// The sweep configuration parsed from the experiment's extra flags.
struct Config {
    schemes: Vec<String>,
    faults: Vec<Fault>,
    points: u64,
    point: Option<u64>,
}

fn parse_config(p: &ExpParams) -> Config {
    let battery = arg_u64(&p.extra, "--battery-bytes", DEFAULT_BATTERY_BYTES);
    let torn = arg_usize(&p.extra, "--torn-keep", DEFAULT_TORN_KEEP);
    let faults = match arg_string(&p.extra, "--fault").as_deref() {
        None => vec![
            Fault::OpBoundary,
            Fault::TornLine(torn),
            Fault::Battery(battery),
        ],
        Some("op-boundary") => vec![Fault::OpBoundary],
        Some("torn-line") => vec![Fault::TornLine(torn)],
        Some("battery") => vec![Fault::Battery(battery)],
        Some(other) => {
            eprintln!(
                "error: unknown fault model {other:?} \
                 (expected op-boundary, torn-line, or battery)"
            );
            std::process::exit(2);
        }
    };
    let schemes = match arg_string(&p.extra, "--scheme") {
        None => ALL_SCHEMES.iter().map(|s| s.to_string()).collect(),
        Some(list) => {
            let schemes: Vec<String> = list.split(',').map(str::to_string).collect();
            for s in &schemes {
                if !ALL_SCHEMES.contains(&s.as_str()) {
                    eprintln!("error: unknown scheme {s:?} (see ALL_SCHEMES)");
                    std::process::exit(2);
                }
            }
            schemes
        }
    };
    let point = match crate::try_arg::<u64>(&p.extra, "--point") {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let points = match crate::try_arg::<u64>(&p.extra, "--points") {
        Ok(Some(0)) => {
            eprintln!("error: --points must be positive");
            std::process::exit(2);
        }
        Ok(v) => v.unwrap_or(POINTS),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    // A crash point only means something on one fault's axis: op-boundary
    // points are cycles, torn-line/battery points are durability-event
    // indices. Applying one number to both axes lands on unrelated
    // machine states, so `--point` requires exactly one fault model.
    if point.is_some() && faults.len() != 1 {
        eprintln!(
            "error: --point requires exactly one --fault: op-boundary points \
             are cycles while torn-line/battery points are durability-event \
             indices, so one point cannot apply across fault models \
             (add e.g. --fault battery)"
        );
        std::process::exit(2);
    }
    if p.extra.iter().any(|a| a == "--no-checkpoints") {
        CHECKPOINTS_ENABLED.store(false, Ordering::Relaxed);
    }
    match crate::try_arg::<u64>(&p.extra, "--checkpoint-every") {
        Ok(Some(0)) => {
            eprintln!(
                "error: --checkpoint-every must be positive (use --no-checkpoints to disable)"
            );
            std::process::exit(2);
        }
        Ok(Some(n)) => CHECKPOINT_EVERY.store(n, Ordering::Relaxed),
        Ok(None) => {}
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
    Config {
        schemes,
        faults,
        points,
        point,
    }
}

/// A clean reference run together with the checkpoints its recording run
/// captured, shared process-wide behind one `Arc`.
struct CleanRef {
    out: RunOutcome,
    ckpts: CheckpointSet,
}

/// The clean (no-crash) reference run for one scheme × workload × stream
/// shape, shared process-wide. The clean run does not depend on the fault
/// model — faults only act at crash time — so the fault-model cells of one
/// sweep row reuse a single run (and a single checkpoint set) instead of
/// each recomputing it. The cached outcome is immutable and its PM image
/// is copy-on-write, so sharing it is pointer bumps. The map lock covers
/// only the per-key slot lookup; the run itself executes under the slot's
/// own `OnceLock`, so two workers asking for the same key still share one
/// computation while workers on *different* cells proceed concurrently
/// (a single map-wide lock used to serialize every worker's clean run).
fn clean_run(
    scheme: &str,
    config: &SimConfig,
    streams: &TraceSet,
    bench: &str,
    txs_per_core: usize,
    seed: u64,
) -> Arc<CleanRef> {
    type Key = (String, String, usize, u64, u64);
    type Slot = Arc<OnceLock<Arc<CleanRef>>>;
    static CACHE: OnceLock<Mutex<HashMap<Key, Slot>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    // Keyed by the hasher scramble seed as well so the hash-order
    // independence test exercises fresh clean runs under every scramble
    // instead of reusing the first run's cached outcome.
    let key = (
        scheme.to_string(),
        bench.to_string(),
        txs_per_core,
        seed,
        silo_types::hash::scramble_seed(),
    );
    let slot = {
        let mut guard = cache.lock().expect("clean-run cache poisoned");
        Arc::clone(guard.entry(key).or_default())
    };
    Arc::clone(slot.get_or_init(|| {
        let mut s = make_scheme(scheme, config);
        let engine = Engine::new(config, s.as_mut());
        let (out, ckpts) = match checkpoint_policy() {
            Some(policy) => engine.run_recording(streams, policy),
            None => (engine.run(streams, None), CheckpointSet::default()),
        };
        Arc::new(CleanRef { out, ckpts })
    }))
}

/// Every distinct word address the workload writes, across setup and
/// measured transactions — the footprint the differential digest covers.
fn write_footprint(trace: &TraceSet) -> Vec<PhysAddr> {
    let mut addrs: Vec<u64> = trace
        .streams()
        .iter()
        .flat_map(|s| s.iter())
        .flat_map(|tx| tx.ops())
        .filter_map(|op| match op {
            silo_sim::Op::Write(a, _) => Some(a.as_u64()),
            _ => None,
        })
        .collect();
    addrs.sort_unstable();
    addrs.dedup();
    addrs.into_iter().map(PhysAddr::new).collect()
}

/// 64-bit FNV-1a, folded to 32 bits so it survives an `f64` cell value.
fn fnv_fold(chunks: impl IntoIterator<Item = u64>) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for c in chunks {
        for b in c.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    ((h >> 32) ^ h) as u32
}

/// What one crash run produced, condensed for the cell's value list.
struct PointResult {
    point: u64,
    violations: u64,
    ambiguous: u64,
    /// Exact per-core committed-transaction counts, reported verbatim —
    /// the old `c0 * 1e6 + c1` f64 packing silently collided once a core
    /// committed ≥ 1e6 transactions, exactly on the long-horizon runs
    /// checkpointing makes affordable.
    progress: Vec<u64>,
    digest: u32,
}

/// The recovered-image digest over the workload footprint, with the
/// per-core committed counts folded in so equal digests imply equal
/// progress losslessly. Only word *values* are folded — the footprint
/// addresses are the same for every crash point of a cell, so hashing
/// them adds cost without discrimination. Words are fetched a buffer
/// line at a time: the footprint is sorted, so one media-page lookup
/// serves every footprint word on the line instead of one lookup each.
fn image_digest(out: &RunOutcome, footprint: &[PhysAddr]) -> u32 {
    const LINE: u64 = silo_types::BUF_LINE_BYTES as u64;
    let mut line = [0u8; silo_types::BUF_LINE_BYTES];
    let mut line_base = u64::MAX;
    fnv_fold(
        out.stats
            .per_core
            .iter()
            .map(|c| c.txs_committed)
            .chain(footprint.iter().map(move |&a| {
                let base = a.as_u64() / LINE * LINE;
                let off = (a.as_u64() - base) as usize;
                if off + 8 > silo_types::BUF_LINE_BYTES {
                    return out.pm.peek_word(a).as_u64(); // straddles two lines
                }
                if base != line_base {
                    out.pm.peek_into(PhysAddr::new(base), &mut line);
                    line_base = base;
                }
                u64::from_le_bytes(line[off..off + 8].try_into().expect("word within line"))
            })),
    )
}

fn run_point(
    scheme: &str,
    config: &SimConfig,
    streams: &TraceSet,
    footprint: &[PhysAddr],
    fault: Fault,
    point: u64,
    ckpts: Option<&CheckpointSet>,
) -> PointResult {
    let mut s = make_scheme(scheme, config);
    let plan = fault.plan(point);
    // Sharing the trace across crash points: this conversion is pointer
    // bumps, where it used to deep-clone every stream per point.
    let out = match ckpts.and_then(|cs| cs.nearest(plan.trigger)) {
        Some(cp) => {
            let out = Engine::new(config, s.as_mut()).run_resumed(streams, plan, cp);
            // Debug builds prove the headline invariant on every resumed
            // point: the resumed run must be byte-identical to a
            // from-scratch run of the same plan.
            #[cfg(debug_assertions)]
            {
                let mut s2 = make_scheme(scheme, config);
                let scratch = Engine::new(config, s2.as_mut()).run_with_plan(streams, Some(plan));
                debug_assert_eq!(
                    scratch.stats.to_json().to_string(),
                    out.stats.to_json().to_string(),
                    "resume-vs-scratch SimStats divergence: {scheme} {} point {point}",
                    fault.describe(),
                );
                debug_assert_eq!(
                    image_digest(&scratch, footprint),
                    image_digest(&out, footprint),
                    "resume-vs-scratch recovered-image divergence: {scheme} {} point {point}",
                    fault.describe(),
                );
            }
            out
        }
        None => Engine::new(config, s.as_mut()).run_with_plan(streams, Some(plan)),
    };
    let crash = out.crash.as_ref().expect("crash injected");
    let progress = out.stats.per_core.iter().map(|c| c.txs_committed).collect();
    let digest = image_digest(&out, footprint);
    PointResult {
        point,
        violations: crash.consistency.violations.len() as u64,
        ambiguous: crash.ambiguous_txs,
        progress,
        digest,
    }
}

/// Evenly spaced interior points: `(total * (2i + 1)) / (2 * k)`.
fn spaced(total: u64, k: u64) -> Vec<u64> {
    (0..k).map(|i| (total * (2 * i + 1)) / (2 * k)).collect()
}

/// The crash-point axis length for `fault` on a clean run: cycles for the
/// op-boundary trigger, durability events for the event-indexed ones.
fn axis_total(fault: Fault, clean: &silo_sim::RunOutcome) -> u64 {
    match fault {
        Fault::OpBoundary => clean.stats.sim_cycles.as_u64(),
        _ => clean.pm.events().total(),
    }
}

/// Shrinks a violating `(txs_per_core, point)` pair: halve the stream
/// while a bounded re-scan still violates, then scan for the earliest
/// violating point at the final length.
fn shrink(
    scheme: &str,
    workload: &str,
    config: &SimConfig,
    fault: Fault,
    seed: u64,
    mut txs_per_core: usize,
    mut point: u64,
) -> (usize, u64) {
    let w = workload_by_name(workload).expect("benchmark");
    let rescan = |txs: usize| -> Option<u64> {
        let streams = TraceCache::global().get_or_build(&w, CORES, txs, seed);
        let footprint = write_footprint(&streams);
        let clean = clean_run(scheme, config, &streams, workload, txs, seed);
        spaced(axis_total(fault, &clean.out), SHRINK_SCAN)
            .into_iter()
            .find(|&n| {
                run_point(
                    scheme,
                    config,
                    &streams,
                    &footprint,
                    fault,
                    n,
                    Some(&clean.ckpts),
                )
                .violations
                    > 0
            })
    };
    while txs_per_core > 1 {
        match rescan(txs_per_core / 2) {
            Some(n) => {
                txs_per_core /= 2;
                point = n;
            }
            None => break,
        }
    }
    // Earliest violating point at the final stream length.
    let streams = TraceCache::global().get_or_build(&w, CORES, txs_per_core, seed);
    let footprint = write_footprint(&streams);
    let clean = clean_run(scheme, config, &streams, workload, txs_per_core, seed);
    let mut candidates = spaced(point, EARLIEST_SCAN);
    candidates.dedup();
    for n in candidates {
        let r = run_point(
            scheme,
            config,
            &streams,
            &footprint,
            fault,
            n,
            Some(&clean.ckpts),
        );
        if r.violations > 0 {
            return (txs_per_core, n);
        }
    }
    (txs_per_core, point)
}

/// Executor entry point for [`CellWork::CrashSweep`]: one sweep row —
/// clean reference run, the spaced (or one fixed) crash point(s) under
/// `fault`, and shrinking of the first violation found.
pub(crate) fn execute_sweep(
    scheme: &str,
    workload: &str,
    txs_per_core: usize,
    seed: u64,
    fault: FaultSpec,
    points_per_cell: u64,
    point: Option<u64>,
) -> CellOutcome {
    let fault = Fault::from_spec(fault);
    // A stale spec (e.g. a result-store entry naming a since-renamed
    // workload) must surface as a reportable cell error, not take down the
    // whole sweep: the other cells of the run are still valid.
    let Some(w) = workload_by_name(workload) else {
        return CellOutcome::failed(format!(
            "unknown workload {workload:?} in cell \
             {scheme}/{workload}/txs={txs_per_core}/fault={}",
            fault.describe()
        ));
    };
    let config = SimConfig::table_ii(CORES);
    // One trace per benchmark serves every scheme × fault × crash-point
    // run in the sweep.
    let streams = TraceCache::global().get_or_build(&w, CORES, txs_per_core, seed);
    let footprint = write_footprint(&streams);
    let clean = clean_run(scheme, &config, &streams, workload, txs_per_core, seed);
    let points = match point {
        Some(n) => vec![n],
        None => spaced(axis_total(fault, &clean.out), points_per_cell),
    };
    let mut out =
        CellOutcome::from_stats(clean.out.stats.clone()).with_value("points", points.len() as f64);
    let mut worst: Option<u64> = None;
    for (j, &n) in points.iter().enumerate() {
        let r = run_point(
            scheme,
            &config,
            &streams,
            &footprint,
            fault,
            n,
            Some(&clean.ckpts),
        );
        if r.violations > 0 && worst.is_none() {
            worst = Some(r.point);
        }
        out = out
            .with_value(&format!("p{j}_at"), r.point as f64)
            .with_value(&format!("p{j}_viol"), r.violations as f64)
            .with_value(&format!("p{j}_amb"), r.ambiguous as f64)
            .with_value(&format!("p{j}_dig"), r.digest as f64);
        for (i, &c) in r.progress.iter().enumerate() {
            out = out.with_value(&format!("p{j}_prog{i}"), c as f64);
        }
    }
    if let Some(first_bad) = worst {
        let (t, n) = shrink(
            scheme,
            workload,
            &config,
            fault,
            seed,
            txs_per_core,
            first_bad,
        );
        out = out
            .with_value("shrunk_txs", (t * CORES) as f64)
            .with_value("shrunk_point", n as f64);
    }
    out
}

fn build(p: &ExpParams) -> Vec<CellSpec> {
    let cfg = parse_config(p);
    let txs_per_core = (p.txs / CORES).max(1);
    let mut cells = Vec::new();
    for bench in &p.benches {
        if workload_by_name(bench).is_none() {
            eprintln!("error: unknown benchmark {bench:?}");
            std::process::exit(2);
        }
        for scheme in &cfg.schemes {
            for &fault in &cfg.faults {
                cells.push(CellSpec::new(
                    CellLabel::swc(scheme, bench, CORES)
                        .with_param(format!("fault={}", fault.describe())),
                    p.seed,
                    CellWork::CrashSweep {
                        scheme: scheme.clone(),
                        workload: bench.clone(),
                        txs_per_core,
                        fault: fault.to_spec(),
                        points: cfg.points,
                        point: cfg.point,
                    },
                ));
            }
        }
    }
    cells
}

fn render(p: &ExpParams, cells: &[(CellLabel, CellOutcome)], out: &mut String) -> JsonValue {
    let cfg = parse_config(p);
    let txs_per_core = (p.txs / CORES).max(1);
    writeln!(out, "Crash-surface fuzzing (differential, {CORES} cores)").unwrap();
    writeln!(
        out,
        "{} txs/core, seed {}, faults: {}",
        txs_per_core,
        p.seed,
        cfg.faults
            .iter()
            .map(|f| f.describe())
            .collect::<Vec<_>>()
            .join(", ")
    )
    .unwrap();
    writeln!(
        out,
        "{:<12}{:<8}{:<22}{:>7}{:>12}{:>11}",
        "scheme", "bench", "fault", "points", "violations", "ambiguous"
    )
    .unwrap();

    let mut total_runs = 0u64;
    let mut total_violations = 0u64;
    let mut rows = Vec::new();
    let mut repros = Vec::new();
    // progress -> (digest, "scheme/bench/fault@point") per workload.
    let mut groups: HashMap<(String, Vec<u64>), (u32, String)> = HashMap::new();
    let mut divergences = Vec::new();

    for (label, outcome) in cells {
        if let Some(err) = &outcome.error {
            writeln!(
                out,
                "ERROR {:<12}{:<8}{:<22}{err}",
                label.scheme,
                label.workload,
                label.param.trim_start_matches("fault=")
            )
            .unwrap();
            rows.push(
                JsonValue::object()
                    .field("scheme", label.scheme.as_str())
                    .field("workload", label.workload.as_str())
                    .field("error", err.as_str())
                    .build(),
            );
            continue;
        }
        let points = outcome.value("points") as usize;
        let (mut viols, mut ambig) = (0u64, 0u64);
        for j in 0..points {
            total_runs += 1;
            let v = outcome.value(&format!("p{j}_viol")) as u64;
            let amb = outcome.value(&format!("p{j}_amb")) as u64;
            viols += v;
            ambig += amb;
            // Differential compare: equal progress on the same workload
            // must mean an identical recovered footprint — across schemes
            // and fault models alike. Commit-racing (ambiguous) runs are
            // legitimately bimodal, so they stay out.
            if amb == 0 && v == 0 {
                let prog: Vec<u64> = (0..CORES)
                    .map(|i| outcome.value(&format!("p{j}_prog{i}")) as u64)
                    .collect();
                let dig = outcome.value(&format!("p{j}_dig")) as u32;
                let at = outcome.value(&format!("p{j}_at")) as u64;
                let who = format!("{}/{}/{}@{at}", label.scheme, label.workload, label.param);
                match groups.entry((label.workload.clone(), prog.clone())) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert((dig, who));
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let (d0, who0) = e.get();
                        if *d0 != dig {
                            divergences
                                .push(format!("{who} disagrees with {who0} at progress {prog:?}"));
                        }
                    }
                }
            }
        }
        total_violations += viols;
        writeln!(
            out,
            "{:<12}{:<8}{:<22}{:>7}{:>12}{:>11}",
            label.scheme,
            label.workload,
            label.param.trim_start_matches("fault="),
            points,
            viols,
            ambig
        )
        .unwrap();
        let fault = cfg
            .faults
            .iter()
            .find(|f| label.param == format!("fault={}", f.describe()))
            .copied()
            .expect("cell fault is one of the configured models");
        let mut row = JsonValue::object()
            .field("scheme", label.scheme.as_str())
            .field("workload", label.workload.as_str())
            .field("fault", fault.name())
            .field("points", points as f64)
            .field("violations", viols as f64)
            .field("ambiguous", ambig as f64);
        if viols > 0 {
            let txs = outcome.value("shrunk_txs") as u64;
            let point = outcome.value("shrunk_point") as u64;
            let repro = format!(
                "evaluate crashfuzz --scheme {} --bench {} --txs {txs} --seed {} \
                 --fault {}{} --point {point}",
                label.scheme,
                label.workload,
                p.seed,
                fault.name(),
                fault.repro_flags()
            );
            repros.push((label, repro.clone()));
            row = row.field("repro", repro.as_str());
        }
        rows.push(row.build());
    }

    for d in &divergences {
        writeln!(out, "DIVERGENCE: {d}").unwrap();
    }
    writeln!(
        out,
        "differential: {} progress groups compared, {} divergences",
        groups.len(),
        divergences.len()
    )
    .unwrap();
    writeln!(
        out,
        "total: {total_violations} violations across {total_runs} crash runs"
    )
    .unwrap();
    for (label, repro) in &repros {
        writeln!(
            out,
            "VIOLATION {} / {} / {}",
            label.scheme,
            label.workload,
            label.param.trim_start_matches("fault=")
        )
        .unwrap();
        writeln!(out, "  minimal repro: {repro}").unwrap();
    }

    JsonValue::object()
        .field("total_violations", total_violations as f64)
        .field("crash_runs", total_runs as f64)
        .field("divergences", divergences.len() as f64)
        .field("rows", JsonValue::Arr(rows))
        .build()
}

/// The `crashfuzz` spec.
pub fn spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "crashfuzz",
        legacy_bin: "crashfuzz",
        description: "differential crash-surface fuzzing: schemes x faults x crash points",
        default_txs: 48,
        kind: ExpKind::Custom { build, render },
    }
}
