//! Fig 12: normalized transaction throughput, five schemes × seven
//! benchmarks × {1, 2, 4, 8} cores (§VI-C).

use silo_sim::SimStats;

use crate::exp::{ExpKind, ExperimentSpec, GridSpec};
use crate::{FIG11_BENCHMARKS, SCHEMES};

fn throughput(stats: &SimStats) -> f64 {
    stats.throughput()
}

/// The registered spec.
pub fn spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "fig12",
        legacy_bin: "fig12_throughput",
        description:
            "transaction throughput, normalized to Base (5 schemes x 7 benchmarks x 1/2/4/8 cores)",
        default_txs: 10_000,
        kind: ExpKind::Grid(GridSpec {
            title: "Fig 12: transaction throughput, normalized to Base",
            schemes: &SCHEMES,
            benchmarks: &FIG11_BENCHMARKS,
            core_counts: &[1, 2, 4, 8],
            metric_name: "throughput",
            metric: throughput,
            reference: 0,
        }),
    }
}
