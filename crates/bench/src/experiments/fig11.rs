//! Fig 11: normalized write traffic to the PM physical media, for five
//! schemes × seven benchmarks × {1, 2, 4, 8} cores (§VI-B).

use silo_sim::SimStats;

use crate::exp::{ExpKind, ExperimentSpec, GridSpec};
use crate::{FIG11_BENCHMARKS, SCHEMES};

fn media_writes(stats: &SimStats) -> f64 {
    stats.media_writes() as f64
}

/// The registered spec.
pub fn spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "fig11",
        legacy_bin: "fig11_write_traffic",
        description: "write traffic to the PM media, normalized to Base (5 schemes x 7 benchmarks x 1/2/4/8 cores)",
        default_txs: 10_000,
        kind: ExpKind::Grid(GridSpec {
            title: "Fig 11: write traffic to PM (media line programs), normalized to Base",
            schemes: &SCHEMES,
            benchmarks: &FIG11_BENCHMARKS,
            core_counts: &[1, 2, 4, 8],
            metric_name: "media_writes",
            metric: media_writes,
            reference: 0,
        }),
    }
}
