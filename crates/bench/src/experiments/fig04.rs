//! Fig 4: the write size (bytes) of one transaction across eleven
//! workloads — the observation motivating the small on-chip log buffer
//! (§II-E).

use std::fmt::Write as _;

use silo_types::JsonValue;
use silo_workloads::fig4_set;

use crate::cellspec::{CellSpec, CellWork};
use crate::exp::{CellLabel, CellOutcome, ExpKind, ExpParams, ExperimentSpec, Taken};

fn build(p: &ExpParams) -> Vec<CellSpec> {
    fig4_set()
        .into_iter()
        .map(|w| {
            CellSpec::new(
                CellLabel {
                    workload: w.name().to_string(),
                    ..CellLabel::default()
                },
                p.seed,
                CellWork::TraceStats {
                    workload: w.name().to_string(),
                    txs: p.txs,
                },
            )
        })
        .collect()
}

fn render(_p: &ExpParams, cells: &[(CellLabel, CellOutcome)], out: &mut String) -> JsonValue {
    let mut taken = Taken::new(cells);
    writeln!(out, "Fig 4: write size (B) per transaction").unwrap();
    writeln!(
        out,
        "{:<10}{:>10}{:>10}{:>10}",
        "workload", "avg B", "max B", "avg words"
    )
    .unwrap();
    let mut grand_total = 0.0;
    let mut rows = Vec::new();
    for (label, _) in cells {
        let c = taken.next();
        let (avg, max, avg_words) = (c.value("avg_b"), c.value("max_b"), c.value("avg_words"));
        grand_total += avg;
        writeln!(
            out,
            "{:<10}{:>10.1}{:>10}{:>10.1}",
            label.workload, avg, max as usize, avg_words
        )
        .unwrap();
        rows.push(
            JsonValue::object()
                .field("workload", label.workload.as_str())
                .field("avg_bytes", avg)
                .field("max_bytes", max)
                .field("avg_words", avg_words)
                .build(),
        );
    }
    writeln!(
        out,
        "{:<10}{:>10.1}   (paper: generally < 512 B per transaction)",
        "Average",
        grand_total / cells.len() as f64
    )
    .unwrap();
    JsonValue::object()
        .field("rows", JsonValue::Arr(rows))
        .field("avg_bytes_overall", grand_total / cells.len() as f64)
        .build()
}

/// The registered spec.
pub fn spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "fig04",
        legacy_bin: "fig04_write_size",
        description: "write size per transaction across eleven workloads (motivation for the small log buffer)",
        default_txs: 2_000,
        kind: ExpKind::Custom { build, render },
    }
}
