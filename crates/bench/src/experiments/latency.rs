//! `latency`: open-system sojourn-latency percentiles under offered load.
//!
//! Every throughput figure in the paper is closed-loop: cores issue the
//! next transaction the instant the previous one commits, so the numbers
//! say how fast each scheme *can* go but nothing about the latency an
//! individual request observes when load arrives on its own clock. This
//! experiment opens the loop: each workload is wrapped in an
//! [`OpenLoop`](silo_workloads::OpenLoop) Poisson arrival process at a
//! sweep of offered loads (mean inter-arrival gap per core), the engine
//! admits each transaction no earlier than its arrival cycle, and the
//! exact sojourn recorder reports p50/p99/p999/max commit latency.
//!
//! Two sections:
//!
//! 1. **Offered-load sweep** — every selected workload × every scheme ×
//!    three per-core mean gaps, from saturating to light load. Near
//!    saturation the queue, not the scheme's raw commit path, dominates
//!    the tail, which is exactly where the schemes separate.
//! 2. **Multi-tenant bursts** — the 2048-client zipfian mix under on-off
//!    bursty arrivals, the pattern where log buffers drain during
//!    silences and the head of each burst sees a cold pipe.
//!
//! All schedules are integer-exact and seed-deterministic, so this report
//! is byte-identical at any `--jobs` level like every other experiment.

use std::fmt::Write as _;

use silo_types::JsonValue;
use silo_workloads::ArrivalProcess;

use crate::cellspec::{CellSpec, CellWork, RunSpec, WorkloadSpec};
use crate::exp::{CellLabel, CellOutcome, ExpKind, ExpParams, ExperimentSpec, Taken};
use crate::ALL_SCHEMES;

/// Per-core mean inter-arrival gaps of the Poisson sweep, in cycles,
/// heaviest load first. The low end sits below most schemes' per-tx
/// service time (queues build; tails blow up), the high end well above it
/// (latency collapses to the bare commit path).
const MEAN_GAPS: &[u64] = &[500, 2_000, 8_000];

/// The multi-tenant burst shape: 64-transaction bursts at a 200-cycle
/// in-burst mean gap, separated by 50 k cycles of silence.
const MT_BURSTY: ArrivalProcess = ArrivalProcess::Bursty {
    mean_gap: 200,
    burst: 64,
    idle_gap: 50_000,
};

fn build(p: &ExpParams) -> Vec<CellSpec> {
    let txs_per_core = (p.txs / p.cores).max(1);
    let mut cells = Vec::new();
    for bench in &p.benches {
        for &gap in MEAN_GAPS {
            for scheme in ALL_SCHEMES {
                cells.push(CellSpec::new(
                    CellLabel::swc(scheme, bench, p.cores).with_param(format!("gap={gap}")),
                    p.seed,
                    CellWork::Full {
                        run: RunSpec::table_ii(
                            scheme,
                            WorkloadSpec::open(bench, ArrivalProcess::Poisson { mean_gap: gap }),
                            p.cores,
                            txs_per_core,
                        ),
                        record_throughput: false,
                    },
                ));
            }
        }
    }
    for scheme in ALL_SCHEMES {
        cells.push(CellSpec::new(
            CellLabel::swc(scheme, "zipfmix-mt", p.cores).with_param(MT_BURSTY.ident()),
            p.seed,
            CellWork::Full {
                run: RunSpec::table_ii(
                    scheme,
                    WorkloadSpec::open("zipfmix-mt", MT_BURSTY),
                    p.cores,
                    txs_per_core,
                ),
                record_throughput: false,
            },
        ));
    }
    cells
}

/// Renders one scheme row and returns its JSON record.
fn render_row(
    out: &mut String,
    taken: &mut Taken,
    scheme: &str,
    workload: &str,
    process: &ArrivalProcess,
) -> JsonValue {
    let stats = taken.next_stats();
    let l = stats
        .latency
        .expect("open-system cells always record latency");
    writeln!(
        out,
        "{scheme:<11}{:>9}{:>12.1}{:>10}{:>10}{:>10}{:>12}",
        l.samples,
        l.mean(),
        l.p50,
        l.p99,
        l.p999,
        l.max
    )
    .unwrap();
    JsonValue::object()
        .field("scheme", scheme)
        .field("workload", workload)
        .field("arrival", process.ident())
        .field("samples", l.samples)
        .field("mean", l.mean())
        .field("p50", l.p50)
        .field("p99", l.p99)
        .field("p999", l.p999)
        .field("max", l.max)
        .build()
}

fn render(p: &ExpParams, cells: &[(CellLabel, CellOutcome)], out: &mut String) -> JsonValue {
    let mut taken = Taken::new(cells);
    writeln!(
        out,
        "Open-system sojourn latency ({} cores, Poisson arrivals, cycles from arrival to commit)",
        p.cores
    )
    .unwrap();
    let mut rows_json = Vec::new();
    for bench in &p.benches {
        for &gap in MEAN_GAPS {
            let process = ArrivalProcess::Poisson { mean_gap: gap };
            writeln!(out, "\n{bench} @ mean gap {gap} cycles/core").unwrap();
            writeln!(
                out,
                "{:<11}{:>9}{:>12}{:>10}{:>10}{:>10}{:>12}",
                "", "samples", "mean", "p50", "p99", "p999", "max"
            )
            .unwrap();
            for scheme in ALL_SCHEMES {
                rows_json.push(render_row(out, &mut taken, scheme, bench, &process));
            }
        }
    }
    writeln!(
        out,
        "\nzipfmix-mt (2048 tenants) @ bursty arrivals ({})",
        MT_BURSTY.ident()
    )
    .unwrap();
    writeln!(
        out,
        "{:<11}{:>9}{:>12}{:>10}{:>10}{:>10}{:>12}",
        "", "samples", "mean", "p50", "p99", "p999", "max"
    )
    .unwrap();
    for scheme in ALL_SCHEMES {
        rows_json.push(render_row(
            out,
            &mut taken,
            scheme,
            "zipfmix-mt",
            &MT_BURSTY,
        ));
    }
    JsonValue::object()
        .field("unit", "cycles from arrival to commit")
        .field("rows", JsonValue::Arr(rows_json))
        .build()
}

/// The `latency` experiment spec.
pub fn spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "latency",
        // No shim binary exists for this post-framework experiment; the
        // name only reserves a unique registry slot.
        legacy_bin: "latency_sweep",
        description: "open-system sojourn-latency percentiles vs offered load (arrival layer)",
        default_txs: 2_000,
        kind: ExpKind::Custom { build, render },
    }
}
