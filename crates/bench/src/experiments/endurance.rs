//! Endurance study (extension beyond the paper's figures): per-scheme PM
//! wear and lifetime estimates, quantifying §I's motivation that log
//! writes "exacerbate the write endurance of PM and hence shorten the PM
//! lifetime".
//!
//! The wear ledger lives on the engine output, not on `SimStats`, so each
//! cell extracts the wear-derived numbers inside its closure and carries
//! them as named metrics.

use std::fmt::Write as _;

use silo_pm::PCM_CELL_ENDURANCE;
use silo_sim::{Engine, SimConfig};
use silo_types::CLOCK_GHZ;
use silo_workloads::workload_by_name;

use crate::exp::{Cell, CellLabel, CellOutcome, ExpKind, ExpParams, ExperimentSpec, Taken};
use crate::{make_scheme, SCHEMES};
use silo_types::JsonValue;

const BENCHES: [&str; 3] = ["Hash", "TPCC", "YCSB"];
const CORES: usize = 8;

fn build(p: &ExpParams) -> Vec<Cell> {
    let txs_per_core = (p.txs / CORES).max(1);
    let seed = p.seed;
    let mut cells = Vec::new();
    for bench in BENCHES {
        for s in SCHEMES {
            cells.push(Cell::new(CellLabel::swc(s, bench, CORES), move || {
                let w = workload_by_name(bench).expect("benchmark");
                let config = SimConfig::table_ii(CORES);
                let mut scheme = make_scheme(s, &config);
                // One trace per benchmark, shared across the scheme sweep.
                let trace = crate::TraceCache::global().get_or_build(&w, CORES, txs_per_core, seed);
                let out = Engine::new(&config, scheme.as_mut()).run(&trace, None);
                let wear = out.pm.wear();
                let elapsed_s = out.stats.sim_cycles.as_u64() as f64 / (CLOCK_GHZ * 1e9);
                let life = wear
                    .lifetime_estimate(elapsed_s, PCM_CELL_ENDURANCE)
                    .unwrap_or(f64::INFINITY);
                let hottest = wear
                    .hottest_lines(1)
                    .first()
                    .map(|&(l, c)| (l, c))
                    .unwrap_or((0, 0));
                CellOutcome::from_stats(out.stats)
                    .with_value("programs", wear.total_programs() as f64)
                    .with_value("max_wear", wear.max_wear() as f64)
                    .with_value("imbalance", wear.wear_imbalance())
                    .with_value("hot_line", hottest.0 as f64)
                    .with_value("hot_count", hottest.1 as f64)
                    .with_value("life", life)
            }));
        }
    }
    cells
}

fn render(p: &ExpParams, cells: &[(CellLabel, CellOutcome)], out: &mut String) -> JsonValue {
    let mut taken = Taken::new(cells);
    writeln!(
        out,
        "Endurance: PM wear by scheme (8 cores, {} txs, 1e8-cycle PCM cells)",
        p.txs
    )
    .unwrap();
    let mut benches_json = Vec::new();
    for bench in BENCHES {
        writeln!(out, "\n== {bench} ==").unwrap();
        writeln!(
            out,
            "{:<8}{:>12}{:>12}{:>12}{:>18}{:>16}",
            "scheme", "programs", "max wear", "imbalance", "hottest line", "lifetime"
        )
        .unwrap();
        let mut base_life = 0.0;
        let mut rows = Vec::new();
        for s in SCHEMES {
            let c = taken.next();
            let life = c.value("life");
            if s == "Base" {
                base_life = life;
            }
            writeln!(
                out,
                "{:<8}{:>12}{:>12}{:>12.2}{:>12}:{:<6}{:>9.1} d ({:>5.1}x)",
                s,
                c.value("programs") as u64,
                c.value("max_wear") as u64,
                c.value("imbalance"),
                c.value("hot_line") as u64,
                c.value("hot_count") as u64,
                life / 86_400.0,
                life / base_life,
            )
            .unwrap();
            rows.push(
                JsonValue::object()
                    .field("scheme", s)
                    .field("programs", c.value("programs"))
                    .field("imbalance", c.value("imbalance"))
                    .field("lifetime_days", life / 86_400.0)
                    .field("lifetime_vs_base", life / base_life)
                    .build(),
            );
        }
        benches_json.push(
            JsonValue::object()
                .field("workload", bench)
                .field("rows", JsonValue::Arr(rows))
                .build(),
        );
    }
    writeln!(
        out,
        "\n(lifetime = cell endurance / hottest-line program rate, continuous load)"
    )
    .unwrap();
    JsonValue::object()
        .field("benchmarks", JsonValue::Arr(benches_json))
        .build()
}

/// The registered spec.
pub fn spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "endurance",
        legacy_bin: "endurance_report",
        description: "PM wear and lifetime estimates per scheme (endurance extension)",
        default_txs: 2_000,
        kind: ExpKind::Custom { build, render },
    }
}
