//! Endurance study (extension beyond the paper's figures): per-scheme PM
//! wear and lifetime estimates, quantifying §I's motivation that log
//! writes "exacerbate the write endurance of PM and hence shorten the PM
//! lifetime".
//!
//! The wear ledger lives on the engine output, not on `SimStats`, so the
//! executor's [`CellWork::Wear`] recipe extracts the wear-derived numbers
//! and carries them as named metrics.

use std::fmt::Write as _;

use silo_types::JsonValue;

use crate::cellspec::{CellSpec, CellWork, RunSpec, WorkloadSpec};
use crate::exp::{CellLabel, CellOutcome, ExpKind, ExpParams, ExperimentSpec, Taken};
use crate::SCHEMES;

const BENCHES: [&str; 3] = ["Hash", "TPCC", "YCSB"];
const CORES: usize = 8;

fn build(p: &ExpParams) -> Vec<CellSpec> {
    let txs_per_core = (p.txs / CORES).max(1);
    let mut cells = Vec::new();
    for bench in BENCHES {
        for s in SCHEMES {
            cells.push(CellSpec::new(
                CellLabel::swc(s, bench, CORES),
                p.seed,
                CellWork::Wear(RunSpec::table_ii(
                    s,
                    WorkloadSpec::plain(bench),
                    CORES,
                    txs_per_core,
                )),
            ));
        }
    }
    cells
}

fn render(p: &ExpParams, cells: &[(CellLabel, CellOutcome)], out: &mut String) -> JsonValue {
    let mut taken = Taken::new(cells);
    writeln!(
        out,
        "Endurance: PM wear by scheme (8 cores, {} txs, 1e8-cycle PCM cells)",
        p.txs
    )
    .unwrap();
    let mut benches_json = Vec::new();
    for bench in BENCHES {
        writeln!(out, "\n== {bench} ==").unwrap();
        writeln!(
            out,
            "{:<8}{:>12}{:>12}{:>12}{:>18}{:>16}",
            "scheme", "programs", "max wear", "imbalance", "hottest line", "lifetime"
        )
        .unwrap();
        let mut base_life = 0.0;
        let mut rows = Vec::new();
        for s in SCHEMES {
            let c = taken.next();
            let life = c.value("life");
            if s == "Base" {
                base_life = life;
            }
            writeln!(
                out,
                "{:<8}{:>12}{:>12}{:>12.2}{:>12}:{:<6}{:>9.1} d ({:>5.1}x)",
                s,
                c.value("programs") as u64,
                c.value("max_wear") as u64,
                c.value("imbalance"),
                c.value("hot_line") as u64,
                c.value("hot_count") as u64,
                life / 86_400.0,
                life / base_life,
            )
            .unwrap();
            rows.push(
                JsonValue::object()
                    .field("scheme", s)
                    .field("programs", c.value("programs"))
                    .field("imbalance", c.value("imbalance"))
                    .field("lifetime_days", life / 86_400.0)
                    .field("lifetime_vs_base", life / base_life)
                    .build(),
            );
        }
        benches_json.push(
            JsonValue::object()
                .field("workload", bench)
                .field("rows", JsonValue::Arr(rows))
                .build(),
        );
    }
    writeln!(
        out,
        "\n(lifetime = cell endurance / hottest-line program rate, continuous load)"
    )
    .unwrap();
    JsonValue::object()
        .field("benchmarks", JsonValue::Arr(benches_json))
        .build()
}

/// The registered spec.
pub fn spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "endurance",
        legacy_bin: "endurance_report",
        description: "PM wear and lifetime estimates per scheme (endurance extension)",
        default_txs: 2_000,
        kind: ExpKind::Custom { build, render },
    }
}
