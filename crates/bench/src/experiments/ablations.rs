//! The four ablation studies: overflow batch size (§III-F), on-PM buffer
//! coalescing (§III-E), the flush-bit (§III-D), and the log reduction
//! mechanisms (§III-C). Each cell stores its full run statistics; render
//! derives every printed column from them.

use std::fmt::Write as _;

use silo_core::SiloOptions;
use silo_types::JsonValue;

use crate::cellspec::{CellSpec, CellWork, ConfigDelta, RunSpec, SchemeSpec, WorkloadSpec};
use crate::exp::{CellLabel, CellOutcome, ExpKind, ExpParams, ExperimentSpec, Taken};

const SEVEN: [&str; 7] = ["Array", "Btree", "Hash", "Queue", "RBtree", "TPCC", "YCSB"];
const CORES: usize = 8;

// ---------------------------------------------------------------- batch size

const BATCHES: [usize; 3] = [1, 4, 14];

fn build_batch_size(p: &ExpParams) -> Vec<CellSpec> {
    let txs_per_core = (p.txs / CORES / 4).max(1);
    let mut cells = Vec::new();
    for name in ["Hash", "TPCC"] {
        for batch in BATCHES {
            cells.push(CellSpec::new(
                CellLabel::swc("Silo", name, CORES).with_param(format!("batch={batch}")),
                p.seed,
                CellWork::Delta(RunSpec {
                    scheme: SchemeSpec::Silo(SiloOptions {
                        overflow_batch_override: Some(batch),
                        // Coalescing off isolates the batching effect: with
                        // the on-PM buffer active, sequential overflow
                        // records coalesce regardless of batch size (see
                        // DESIGN.md ablation notes).
                        onpm_coalescing: false,
                        ..SiloOptions::default()
                    }),
                    workload: WorkloadSpec::batched(name, 4),
                    cores: CORES,
                    txs_per_core,
                    config: ConfigDelta::default(),
                }),
            ));
        }
    }
    cells
}

fn render_batch_size(
    _p: &ExpParams,
    cells: &[(CellLabel, CellOutcome)],
    out: &mut String,
) -> JsonValue {
    let mut taken = Taken::new(cells);
    writeln!(
        out,
        "Ablation: overflow batch size (Silo, 8 cores, 4x-batched transactions)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10}{:>7}{:>14}{:>13}{:>12}",
        "workload", "batch", "overflows/tx", "media/tx", "throughput"
    )
    .unwrap();
    let mut rows = Vec::new();
    for name in ["Hash", "TPCC"] {
        for batch in BATCHES {
            let stats = taken.next_stats();
            let s = &stats.scheme_stats;
            writeln!(
                out,
                "{:<10}{:>7}{:>14.2}{:>13.2}{:>12.4}",
                name,
                batch,
                s.overflow_events as f64 / s.transactions as f64,
                stats.media_writes() as f64 / s.transactions as f64,
                stats.throughput()
            )
            .unwrap();
            rows.push(
                JsonValue::object()
                    .field("workload", name)
                    .field("batch", batch)
                    .field(
                        "overflows_per_tx",
                        s.overflow_events as f64 / s.transactions as f64,
                    )
                    .field(
                        "media_per_tx",
                        stats.media_writes() as f64 / s.transactions as f64,
                    )
                    .field("throughput", stats.throughput())
                    .build(),
            );
        }
    }
    writeln!(
        out,
        "(§III-F: larger batches fit whole on-PM buffer lines, cutting amplification)"
    )
    .unwrap();
    JsonValue::object()
        .field("rows", JsonValue::Arr(rows))
        .build()
}

/// Overflow batch-size ablation spec.
pub fn batch_size() -> ExperimentSpec {
    ExperimentSpec {
        name: "ablation_batch_size",
        legacy_bin: "ablation_batch_size",
        description: "overflow batch size 1/4/14 on overflow-heavy batched transactions",
        default_txs: 2_000,
        kind: ExpKind::Custom {
            build: build_batch_size,
            render: render_batch_size,
        },
    }
}

// ---------------------------------------------------------------- coalescing

fn build_coalescing(p: &ExpParams) -> Vec<CellSpec> {
    let txs_per_core = (p.txs / CORES).max(1);
    let mut cells = Vec::new();
    for name in SEVEN {
        for coalescing in [true, false] {
            let variant = if coalescing { "on" } else { "off" };
            cells.push(CellSpec::new(
                CellLabel::swc("Silo", name, CORES).with_param(format!("coalescing={variant}")),
                p.seed,
                CellWork::Delta(RunSpec {
                    scheme: SchemeSpec::Silo(SiloOptions {
                        onpm_coalescing: coalescing,
                        ..SiloOptions::default()
                    }),
                    workload: WorkloadSpec::plain(name),
                    cores: CORES,
                    txs_per_core,
                    config: ConfigDelta::default(),
                }),
            ));
        }
    }
    cells
}

fn render_coalescing(
    _p: &ExpParams,
    cells: &[(CellLabel, CellOutcome)],
    out: &mut String,
) -> JsonValue {
    let mut taken = Taken::new(cells);
    writeln!(out, "Ablation: on-PM buffer coalescing (Silo, 8 cores)").unwrap();
    writeln!(
        out,
        "{:<10}{:>14}{:>14}{:>9}{:>14}{:>14}",
        "workload", "media/tx on", "media/tx off", "ratio", "tp on", "tp off"
    )
    .unwrap();
    let mut rows = Vec::new();
    for name in SEVEN {
        let on = taken.next_stats();
        let off = taken.next_stats();
        let m_on = on.media_writes() as f64 / on.txs_committed as f64;
        let m_off = off.media_writes() as f64 / off.txs_committed as f64;
        writeln!(
            out,
            "{:<10}{:>14.2}{:>14.2}{:>9.2}{:>14.4}{:>14.4}",
            name,
            m_on,
            m_off,
            m_off / m_on,
            on.throughput(),
            off.throughput()
        )
        .unwrap();
        rows.push(
            JsonValue::object()
                .field("workload", name)
                .field("media_per_tx_on", m_on)
                .field("media_per_tx_off", m_off)
                .field("ratio", m_off / m_on)
                .build(),
        );
    }
    JsonValue::object()
        .field("rows", JsonValue::Arr(rows))
        .build()
}

/// On-PM buffer coalescing ablation spec.
pub fn coalescing() -> ExperimentSpec {
    ExperimentSpec {
        name: "ablation_coalescing",
        legacy_bin: "ablation_coalescing",
        description: "Silo with the on-PM write-coalescing buffer on vs off",
        default_txs: 2_000,
        kind: ExpKind::Custom {
            build: build_coalescing,
            render: render_coalescing,
        },
    }
}

// ------------------------------------------------------------------ flushbit

fn build_flushbit(p: &ExpParams) -> Vec<CellSpec> {
    let txs_per_core = (p.txs / CORES / 16).max(1);
    let mut cells = Vec::new();
    for name in SEVEN {
        for fb in [true, false] {
            let variant = if fb { "on" } else { "off" };
            cells.push(CellSpec::new(
                CellLabel::swc("Silo", name, CORES).with_param(format!("flushbit={variant}")),
                p.seed,
                CellWork::Delta(RunSpec {
                    scheme: SchemeSpec::Silo(SiloOptions {
                        flush_bit: fb,
                        ..SiloOptions::default()
                    }),
                    workload: WorkloadSpec::batched(name, 16),
                    cores: CORES,
                    txs_per_core,
                    config: ConfigDelta {
                        tiny_hierarchy: true,
                        ..ConfigDelta::default()
                    },
                }),
            ));
        }
    }
    cells
}

fn render_flushbit(
    _p: &ExpParams,
    cells: &[(CellLabel, CellOutcome)],
    out: &mut String,
) -> JsonValue {
    let mut taken = Taken::new(cells);
    writeln!(out, "Ablation: flush-bit under eviction pressure").unwrap();
    writeln!(out, "(Silo, 8 cores, 8KB LLC, 16x-batched transactions)").unwrap();
    writeln!(
        out,
        "{:<10}{:>12}{:>13}{:>13}{:>14}",
        "workload", "variant", "flushbits/tx", "IPU/tx", "accepted/tx"
    )
    .unwrap();
    let mut rows = Vec::new();
    for name in SEVEN {
        for vname in ["on", "off"] {
            let stats = taken.next_stats();
            let s = &stats.scheme_stats;
            writeln!(
                out,
                "{:<10}{:>12}{:>13.2}{:>13.2}{:>14.2}",
                name,
                vname,
                s.flush_bits_set as f64 / s.transactions as f64,
                s.inplace_update_words as f64 / s.transactions as f64,
                stats.pm.accepted_writes as f64 / s.transactions as f64,
            )
            .unwrap();
            rows.push(
                JsonValue::object()
                    .field("workload", name)
                    .field("variant", vname)
                    .field(
                        "flushbits_per_tx",
                        s.flush_bits_set as f64 / s.transactions as f64,
                    )
                    .field(
                        "accepted_per_tx",
                        stats.pm.accepted_writes as f64 / s.transactions as f64,
                    )
                    .build(),
            );
        }
    }
    JsonValue::object()
        .field("rows", JsonValue::Arr(rows))
        .build()
}

/// Flush-bit ablation spec.
pub fn flushbit() -> ExperimentSpec {
    ExperimentSpec {
        name: "ablation_flushbit",
        legacy_bin: "ablation_flushbit",
        description: "flush-bit on vs off under eviction pressure (tiny hierarchy, 16x batches)",
        default_txs: 2_000,
        kind: ExpKind::Custom {
            build: build_flushbit,
            render: render_flushbit,
        },
    }
}

// ------------------------------------------------------------- log reduction

const LOG_VARIANTS: [&str; 4] = ["full", "no-ignore", "no-merge", "neither"];

fn log_options(variant: &str) -> SiloOptions {
    match variant {
        "full" => SiloOptions::default(),
        "no-ignore" => SiloOptions {
            log_ignorance: false,
            ..SiloOptions::default()
        },
        "no-merge" => SiloOptions {
            log_merging: false,
            ..SiloOptions::default()
        },
        "neither" => SiloOptions {
            log_ignorance: false,
            log_merging: false,
            ..SiloOptions::default()
        },
        other => panic!("unknown log-reduction variant {other}"),
    }
}

fn build_log_reduction(p: &ExpParams) -> Vec<CellSpec> {
    let txs_per_core = (p.txs / CORES).max(1);
    let mut cells = Vec::new();
    for name in SEVEN {
        for vname in LOG_VARIANTS {
            cells.push(CellSpec::new(
                CellLabel::swc("Silo", name, CORES).with_param(format!("variant={vname}")),
                p.seed,
                CellWork::Delta(RunSpec {
                    scheme: SchemeSpec::Silo(log_options(vname)),
                    workload: WorkloadSpec::plain(name),
                    cores: CORES,
                    txs_per_core,
                    config: ConfigDelta::default(),
                }),
            ));
        }
    }
    cells
}

fn render_log_reduction(
    _p: &ExpParams,
    cells: &[(CellLabel, CellOutcome)],
    out: &mut String,
) -> JsonValue {
    let mut taken = Taken::new(cells);
    writeln!(out, "Ablation: log reduction mechanisms (Silo, 8 cores)").unwrap();
    writeln!(
        out,
        "{:<10}{:>11}{:>13}{:>13}{:>12}",
        "workload", "variant", "remaining/tx", "overflows/tx", "media/tx"
    )
    .unwrap();
    let mut rows = Vec::new();
    for name in SEVEN {
        for vname in LOG_VARIANTS {
            let stats = taken.next_stats();
            let s = &stats.scheme_stats;
            writeln!(
                out,
                "{:<10}{:>11}{:>13.1}{:>13.3}{:>12.2}",
                name,
                vname,
                s.avg_remaining_per_tx(),
                s.overflow_events as f64 / s.transactions as f64,
                stats.media_writes() as f64 / s.transactions as f64,
            )
            .unwrap();
            rows.push(
                JsonValue::object()
                    .field("workload", name)
                    .field("variant", vname)
                    .field("remaining_per_tx", s.avg_remaining_per_tx())
                    .field(
                        "media_per_tx",
                        stats.media_writes() as f64 / s.transactions as f64,
                    )
                    .build(),
            );
        }
    }
    JsonValue::object()
        .field("rows", JsonValue::Arr(rows))
        .build()
}

/// Log-reduction ablation spec.
pub fn log_reduction() -> ExperimentSpec {
    ExperimentSpec {
        name: "ablation_log_reduction",
        legacy_bin: "ablation_log_reduction",
        description:
            "log ignorance and merging contributions: full / no-ignore / no-merge / neither",
        default_txs: 2_000,
        kind: ExpKind::Custom {
            build: build_log_reduction,
            render: render_log_reduction,
        },
    }
}
