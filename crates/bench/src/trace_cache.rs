//! Process-wide cache of generated workload traces.
//!
//! The experiment matrix sweeps the *same* trace across many schemes,
//! core-count columns, crash points, and parameter settings — the fig11
//! grid alone resolves each `(workload, cores, txs, seed)` trace once per
//! scheme, and `evaluate crashfuzz` once per crash point. The
//! [`TraceCache`] makes that sharing structural: every resolution goes
//! through [`TraceCache::get_or_build`], which generates a given key
//! **exactly once per process** (even under concurrent `--jobs` workers)
//! and hands out pointer-bump [`TraceSet`] clones afterwards.
//!
//! Keys are [`TraceKey`]: the workload's [`trace_ident`]
//! (every generation-affecting parameter, not just the display name) plus
//! `(cores, txs_per_core, seed)`. Invalidation is by key — a different
//! parameter is a different key, so stale entries cannot be observed; a
//! changed *generator* changes results only across processes, where no
//! cache survives anyway.
//!
//! [`trace_ident`]: silo_workloads::Workload::trace_ident

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use silo_sim::TraceSet;
use silo_workloads::Workload;

/// Full identity of a generated trace. Equal keys generate identical
/// streams (generation is deterministic), so one cached artifact serves
/// all equal-key requests.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// [`Workload::trace_ident`] of the generating workload.
    pub ident: String,
    /// Core count the trace was generated for.
    pub cores: usize,
    /// Measured transactions per core.
    pub txs_per_core: usize,
    /// Generation seed.
    pub seed: u64,
}

/// One cache slot: the trace (filled exactly once, under the slot lock)
/// plus a per-key generation counter for the exactly-once assertions.
#[derive(Default)]
struct Slot {
    trace: Mutex<Option<TraceSet>>,
    generations: AtomicU64,
}

/// Counter snapshot for diagnostics, CI smokes, and the exactly-once
/// tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCacheStats {
    /// Times a generator actually ran (cache misses + disabled-mode runs).
    pub generations: u64,
    /// Requests served from an already-built trace.
    pub hits: u64,
    /// Distinct keys currently resident.
    pub unique_keys: u64,
}

/// Keyed, thread-safe, process-wide store of immutable [`TraceSet`]s.
///
/// The map lock is held only to resolve a key to its slot; generation runs
/// under the slot's own lock, so concurrent requests for *different* keys
/// generate in parallel while concurrent requests for the *same* key block
/// until the single generation finishes.
pub struct TraceCache {
    enabled: AtomicBool,
    hits: AtomicU64,
    uncached_generations: AtomicU64,
    slots: Mutex<HashMap<TraceKey, Arc<Slot>>>,
}

impl TraceCache {
    /// A fresh, empty, enabled cache (tests; production code uses
    /// [`TraceCache::global`]).
    pub fn new() -> Self {
        TraceCache {
            enabled: AtomicBool::new(true),
            hits: AtomicU64::new(0),
            uncached_generations: AtomicU64::new(0),
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// The process-wide instance every bench-layer resolution goes
    /// through.
    pub fn global() -> &'static TraceCache {
        static GLOBAL: OnceLock<TraceCache> = OnceLock::new();
        GLOBAL.get_or_init(TraceCache::new)
    }

    /// Turns caching off (the `--no-trace-cache` escape hatch) or back
    /// on. Disabled, every request regenerates — results are identical
    /// by determinism, only wall-clock and the counters differ.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::SeqCst);
    }

    /// Whether caching is active.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Resolves `(workload, cores, txs_per_core, seed)` to its trace,
    /// generating it if (and only if) this is the first request for the
    /// key. The returned [`TraceSet`] is a pointer-bump clone of the
    /// cached artifact.
    pub fn get_or_build(
        &self,
        workload: &dyn Workload,
        cores: usize,
        txs_per_core: usize,
        seed: u64,
    ) -> TraceSet {
        if !self.enabled() {
            self.uncached_generations.fetch_add(1, Ordering::Relaxed);
            return workload.build_trace(cores, txs_per_core, seed);
        }
        let key = TraceKey {
            ident: workload.trace_ident(),
            cores,
            txs_per_core,
            seed,
        };
        let slot = {
            let mut slots = self.slots.lock().expect("trace cache map poisoned");
            Arc::clone(slots.entry(key).or_default())
        };
        let mut trace = slot.trace.lock().expect("trace cache slot poisoned");
        match &*trace {
            Some(cached) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                cached.clone()
            }
            None => {
                slot.generations.fetch_add(1, Ordering::Relaxed);
                let built = workload.build_trace(cores, txs_per_core, seed);
                *trace = Some(built.clone());
                built
            }
        }
    }

    /// Aggregate counters over the whole cache.
    pub fn stats(&self) -> TraceCacheStats {
        let slots = self.slots.lock().expect("trace cache map poisoned");
        let cached_generations: u64 = slots
            .values()
            .map(|s| s.generations.load(Ordering::Relaxed))
            .sum();
        TraceCacheStats {
            generations: cached_generations + self.uncached_generations.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            unique_keys: slots.len() as u64,
        }
    }

    /// `(unique keys, generations)` restricted to one seed — lets tests
    /// assert exactly-once generation for their own keys without seeing
    /// traffic from concurrently running tests (which use other seeds).
    pub fn stats_for_seed(&self, seed: u64) -> (u64, u64) {
        let slots = self.slots.lock().expect("trace cache map poisoned");
        let mut keys = 0;
        let mut generations = 0;
        for (k, s) in slots.iter() {
            if k.seed == seed {
                keys += 1;
                generations += s.generations.load(Ordering::Relaxed);
            }
        }
        (keys, generations)
    }
}

impl Default for TraceCache {
    fn default() -> Self {
        TraceCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_workloads::BankWorkload;

    #[test]
    fn same_key_generates_once_and_hits_after() {
        let cache = TraceCache::new();
        let w = BankWorkload::default();
        let a = cache.get_or_build(&w, 1, 4, 99);
        let b = cache.get_or_build(&w, 1, 4, 99);
        assert_eq!(a.content_hash(), b.content_hash());
        assert!(Arc::ptr_eq(&a.streams()[0], &b.streams()[0]));
        let stats = cache.stats();
        assert_eq!(stats.generations, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.unique_keys, 1);
    }

    #[test]
    fn different_params_are_different_keys() {
        let cache = TraceCache::new();
        let w = BankWorkload::default();
        let _ = cache.get_or_build(&w, 1, 4, 99);
        let _ = cache.get_or_build(&w, 1, 8, 99);
        let _ = cache.get_or_build(&w, 2, 4, 99);
        let _ = cache.get_or_build(&w, 1, 4, 100);
        assert_eq!(cache.stats().generations, 4);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn disabled_cache_regenerates_but_matches() {
        let cache = TraceCache::new();
        let w = BankWorkload::default();
        let cached = cache.get_or_build(&w, 1, 4, 99);
        cache.set_enabled(false);
        let fresh = cache.get_or_build(&w, 1, 4, 99);
        assert_eq!(cached.content_hash(), fresh.content_hash());
        assert!(!Arc::ptr_eq(&cached.streams()[0], &fresh.streams()[0]));
        assert_eq!(cache.stats().generations, 2);
    }

    #[test]
    fn concurrent_same_key_requests_generate_exactly_once() {
        let cache = TraceCache::new();
        let seed = 7_777;
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let w = BankWorkload::default();
                    let _ = cache.get_or_build(&w, 2, 6, seed);
                });
            }
        });
        let (keys, generations) = cache.stats_for_seed(seed);
        assert_eq!(keys, 1);
        assert_eq!(generations, 1, "8 racing workers, one generation");
        assert_eq!(cache.stats().hits, 7);
    }
}
