//! End-to-end tests of the coverage-guided crash search and the per-word
//! executable spec: the spec machine must agree with the digest-level
//! oracle across the clean scheme matrix, localize an injected battery
//! violation to the exact word, and the CLI's corpus entries and printed
//! repro commands must replay bit-for-bit.

use std::path::PathBuf;
use std::process::Command;

use silo_bench::{make_scheme, TraceCache, ALL_SCHEMES};
use silo_sim::{CrashPlan, Engine, FaultModel, SimConfig};
use silo_types::JsonValue;
use silo_workloads::workload_by_name;

fn evaluate() -> Command {
    Command::new(env!("CARGO_BIN_EXE_evaluate"))
}

/// A per-test scratch directory under the target dir (removed on entry so
/// reruns start clean; left behind on failure for inspection).
fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs one crash plan with both observers and returns
/// `(oracle consistent, spec consistent, spec report)`.
fn crash_with_spec(
    scheme: &str,
    config: &SimConfig,
    streams: &silo_sim::TraceSet,
    plan: CrashPlan,
) -> (bool, silo_sim::ConsistencyReport, silo_sim::SpecReport) {
    let mut s = make_scheme(scheme, config);
    let mut engine = Engine::new(config, s.as_mut());
    engine.enable_spec();
    let out = engine.run_with_plan(streams, Some(plan));
    let crash = out.crash.expect("crash injected");
    let spec = crash.spec.expect("spec enabled");
    (crash.consistency.is_consistent(), crash.consistency, spec)
}

/// Differential check: on every scheme of the clean matrix, under every
/// event-indexed fault model, the digest-level oracle and the per-word
/// spec machine must reach the same verdict — and that verdict must be
/// "consistent" (these schemes are correct).
#[test]
fn spec_agrees_with_oracle_across_the_clean_matrix() {
    let config = SimConfig::table_ii(2);
    let w = workload_by_name("Hash").expect("Hash workload");
    let streams = TraceCache::global().get_or_build(&w, 2, 8, 42);
    for scheme in ALL_SCHEMES {
        let mut s = make_scheme(scheme, &config);
        let clean = Engine::new(&config, s.as_mut()).run(&streams, None);
        let total = clean.pm.events().total();
        assert!(total > 2, "{scheme}: too few durability events to crash");
        for fault in [
            FaultModel::perfect_adr(),
            FaultModel::torn_line(64),
            FaultModel::bounded_battery(64 * 1024),
        ] {
            for event in [total / 4, total / 2, (3 * total) / 4] {
                let plan = CrashPlan::at_event(event.max(1)).with_fault(fault);
                let (ok, oracle, spec) = crash_with_spec(scheme, &config, &streams, plan);
                assert_eq!(
                    ok,
                    spec.is_consistent(),
                    "{scheme} @ event {event}: oracle and spec disagree \
                     (oracle {:?}, spec {:?})",
                    oracle.violations,
                    spec.violations
                );
                assert!(
                    ok,
                    "{scheme} @ event {event}: clean scheme violated: {:?}",
                    oracle.violations
                );
                assert!(spec.words_checked > 0, "{scheme}: spec checked no words");
            }
        }
    }
}

/// An undersized battery on Silo must violate, and the spec machine must
/// localize the failure to a word the oracle also flags — with the legal
/// value set excluding the recovered value and an event history attached.
#[test]
fn battery_violation_is_localized_to_the_exact_word() {
    let config = SimConfig::table_ii(2);
    let w = workload_by_name("Hash").expect("Hash workload");
    let streams = TraceCache::global().get_or_build(&w, 2, 8, 42);
    let mut s = make_scheme("Silo", &config);
    let clean = Engine::new(&config, s.as_mut()).run(&streams, None);
    let total = clean.pm.events().total();
    let plan = CrashPlan::at_event(total / 8).with_fault(FaultModel::bounded_battery(64));
    let (ok, oracle, spec) = crash_with_spec("Silo", &config, &streams, plan);
    assert!(!ok, "64 B battery must break Silo recovery");
    assert!(!spec.is_consistent(), "spec must catch the broken image");
    let first = spec.first_offender().expect("at least one violation");
    // The first offender is the lowest flagged address...
    for v in &spec.violations {
        assert!(
            first.addr <= v.addr,
            "first_offender is not the lowest word"
        );
    }
    // ...names a word the oracle flags too, with the same recovered value...
    let twin = oracle
        .violations
        .iter()
        .find(|v| v.addr == first.addr)
        .expect("spec's first offender must be an oracle violation too");
    assert_eq!(first.actual, twin.actual, "recovered values disagree");
    // ...and carries the evidence: an illegal value plus word history.
    assert!(
        !first.legal.contains(&first.actual),
        "violation lists the recovered value as legal"
    );
    assert!(
        !first.history.is_empty(),
        "violation carries no word-event history"
    );
    assert!(first.event > 0, "violation has no event index");
}

/// A corpus entry written by one search replays bit-for-bit: feeding its
/// recorded candidate back through the CLI as an exact `--crash-event`
/// run must reproduce the entry's coverage-signature digest.
#[test]
fn corpus_entry_replays_to_its_recorded_signature() {
    let dir = scratch("fuzz-corpus-replay");
    let corpus = dir.join("corpus");
    let out = evaluate()
        .args(["fuzz", "--txs", "16", "--seed", "42", "--bench", "Hash"])
        .args(["--scheme", "Silo", "--execs", "8", "--no-result-store"])
        .arg("--corpus")
        .arg(&corpus)
        .arg("--json-dir")
        .arg(dir.join("search"))
        .output()
        .expect("run evaluate fuzz");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let cell_dir = corpus.join("Hash").join("Silo");
    let mut entries: Vec<_> = std::fs::read_dir(&cell_dir)
        .expect("corpus cell dir exists")
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
        .map(|e| e.path())
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "search persisted no corpus entries");
    let entry = JsonValue::parse(&std::fs::read_to_string(&entries[0]).expect("read entry"))
        .expect("entry is valid JSON");
    let fault = entry
        .get("fault")
        .and_then(JsonValue::as_str)
        .expect("fault");
    let arg = entry.get("arg").and_then(JsonValue::as_u64).expect("arg");
    let event = entry
        .get("event")
        .and_then(JsonValue::as_u64)
        .expect("event");
    let sig = entry.get("sig").and_then(JsonValue::as_str).expect("sig");

    let mut replay = evaluate();
    replay
        .args(["fuzz", "--txs", "16", "--seed", "42", "--bench", "Hash"])
        .args([
            "--scheme",
            "Silo",
            "--execs",
            "1",
            "--no-corpus",
            "--no-result-store",
        ])
        .args(["--fault", fault])
        .args(["--crash-event", &event.to_string()]);
    match fault {
        "battery" => {
            replay.args(["--battery-bytes", &arg.to_string()]);
        }
        "torn-line" => {
            replay.args(["--torn-keep", &arg.to_string()]);
        }
        _ => {}
    }
    if let Some(rc) = entry.get("rc").and_then(JsonValue::as_u64) {
        replay.args(["--recovery-crash", &rc.to_string()]);
    }
    let replay_out = replay
        .arg("--json-dir")
        .arg(dir.join("replay"))
        .output()
        .expect("run replay");
    assert!(
        replay_out.status.success(),
        "{}",
        String::from_utf8_lossy(&replay_out.stderr)
    );
    let report =
        JsonValue::parse(&std::fs::read_to_string(dir.join("replay").join("fuzz.json")).unwrap())
            .expect("replay report parses");
    let rows = report
        .get("derived")
        .expect("derived summary")
        .get("rows")
        .and_then(JsonValue::as_array)
        .expect("rows");
    let replay_sig = rows[0]
        .get("signature")
        .and_then(JsonValue::as_str)
        .expect("signature field");
    assert_eq!(
        replay_sig, sig,
        "replayed candidate produced a different coverage signature"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The printed `minimal repro:` command — including the arrival-process
/// ident for open-system runs — must reproduce the violation and the
/// first-offending-word line verbatim when fed back through the CLI.
#[test]
fn emitted_repro_round_trips_through_the_cli() {
    let dir = scratch("fuzz-repro-roundtrip");
    let out = evaluate()
        .args(["fuzz", "--txs", "16", "--seed", "42", "--bench", "Hash"])
        .args([
            "--scheme",
            "Silo",
            "--fault",
            "battery",
            "--battery-bytes",
            "64",
        ])
        .args(["--execs", "6", "--arrival", "poisson2000"])
        .args(["--no-corpus", "--no-result-store"])
        .arg("--json-dir")
        .arg(dir.join("search"))
        .output()
        .expect("run evaluate fuzz");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("total: 0 violations"),
        "undersized battery found nothing:\n{stdout}"
    );
    let word_line = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("first offending word:"))
        .expect("violation names its first offending word")
        .trim()
        .to_string();
    let repro = stdout
        .lines()
        .find_map(|l| l.trim_start().strip_prefix("minimal repro: evaluate "))
        .expect("violation prints a repro command");
    assert!(
        repro.contains("--arrival poisson2000"),
        "repro dropped the arrival ident: {repro}"
    );

    let mut args: Vec<&str> = repro.split_whitespace().collect();
    args.extend(["--no-result-store"]);
    let replay_out = evaluate()
        .args(&args)
        .arg("--json-dir")
        .arg(dir.join("replay"))
        .output()
        .expect("run repro");
    assert!(
        replay_out.status.success(),
        "{}",
        String::from_utf8_lossy(&replay_out.stderr)
    );
    let replay_stdout = String::from_utf8_lossy(&replay_out.stdout);
    assert!(
        replay_stdout.contains("total: 1 violations across 1 executions"),
        "repro did not reproduce exactly one violation:\n{replay_stdout}"
    );
    assert!(
        replay_stdout.contains(&word_line),
        "repro localized a different word:\nwant {word_line}\ngot:\n{replay_stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
