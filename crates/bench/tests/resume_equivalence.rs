//! Contract tests for checkpointed crash resimulation.
//!
//! The headline invariant: a crash run resumed from a clean-run checkpoint
//! is **byte-identical** to the same crash plan executed from scratch —
//! same `SimStats` JSON (including the probe cycle breakdown), same oracle
//! verdict, same recovered PM image — for every scheme and every fault
//! model. The [`silo_types::Snapshot`] round-trip tests below pin the
//! building block: restoring a snapshot reproduces the captured state
//! exactly, under randomized operation sequences.

use silo_bench::{make_scheme, TraceCache, ALL_SCHEMES};
use silo_pm::{PagedMedia, PmDevice, PmDeviceConfig};
use silo_sim::{CheckpointPolicy, CrashPlan, Engine, FaultModel, RunOutcome, SimConfig};
use silo_types::{Cycles, PhysAddr, Snapshot, SplitMix64};
use silo_workloads::workload_by_name;

const CORES: usize = 2;
const TXS_PER_CORE: usize = 16;
const SEED: u64 = 11;

/// Dense checkpoints so even a small test run resumes from a real prefix.
fn dense_policy() -> CheckpointPolicy {
    CheckpointPolicy {
        every_events: 8,
        every_cycles: 512,
        max: 64,
    }
}

/// Every word address the trace writes, in sorted order.
fn footprint(trace: &silo_sim::TraceSet) -> Vec<PhysAddr> {
    let mut addrs: Vec<u64> = trace
        .streams()
        .iter()
        .flat_map(|s| s.iter())
        .flat_map(|tx| tx.ops())
        .filter_map(|op| match op {
            silo_sim::Op::Write(a, _) => Some(a.as_u64()),
            _ => None,
        })
        .collect();
    addrs.sort_unstable();
    addrs.dedup();
    addrs.into_iter().map(PhysAddr::new).collect()
}

fn assert_identical(scratch: &RunOutcome, resumed: &RunOutcome, fp: &[PhysAddr], what: &str) {
    assert_eq!(
        scratch.stats.to_json().to_string(),
        resumed.stats.to_json().to_string(),
        "{what}: SimStats (incl. probe breakdown) diverged"
    );
    let (s, r) = (
        scratch.crash.as_ref().expect("crash injected"),
        resumed.crash.as_ref().expect("crash injected"),
    );
    assert_eq!(
        s.consistency.violations.len(),
        r.consistency.violations.len(),
        "{what}: oracle verdict diverged"
    );
    assert_eq!(
        s.ambiguous_txs, r.ambiguous_txs,
        "{what}: ambiguity diverged"
    );
    for &a in fp {
        assert_eq!(
            scratch.pm.peek_word(a),
            resumed.pm.peek_word(a),
            "{what}: recovered image diverged at {a:?}"
        );
    }
}

/// Resume-vs-scratch equality across every scheme × every fault model,
/// with probe cycle accounting enabled so the comparison also covers the
/// checkpointed observability state.
#[test]
fn resume_matches_scratch_for_every_scheme_and_fault() {
    let config = SimConfig::table_ii(CORES);
    let w = workload_by_name("Hash").expect("registered workload");
    let trace = TraceCache::global().get_or_build(w.as_ref(), CORES, TXS_PER_CORE, SEED);
    let fp = footprint(&trace);

    for scheme in ALL_SCHEMES {
        let mut s = make_scheme(scheme, &config);
        let mut engine = Engine::new(&config, s.as_mut());
        engine.machine_mut().probe.enable_accounting(CORES);
        let (clean, ckpts) = engine.run_recording(&trace, dense_policy());
        assert!(
            !ckpts.is_empty(),
            "{scheme}: dense policy captured no checkpoints"
        );

        let cycle_total = clean.stats.sim_cycles.as_u64();
        let event_total = clean.pm.events().total();
        let plans = [
            CrashPlan::at_cycle(Cycles::new(cycle_total * 3 / 4)),
            CrashPlan::at_event(event_total * 3 / 4).with_fault(FaultModel::torn_line(64)),
            CrashPlan::at_event(event_total * 3 / 4)
                .with_fault(FaultModel::bounded_battery(64 * 1024)),
        ];
        for plan in plans {
            let cp = ckpts
                .nearest(plan.trigger)
                .unwrap_or_else(|| panic!("{scheme}: no checkpoint before {:?}", plan.trigger));
            let what = format!("{scheme} @ {:?}", plan.trigger);

            let mut s1 = make_scheme(scheme, &config);
            let mut e1 = Engine::new(&config, s1.as_mut());
            e1.machine_mut().probe.enable_accounting(CORES);
            let scratch = e1.run_with_plan(&trace, Some(plan));

            let mut s2 = make_scheme(scheme, &config);
            let mut e2 = Engine::new(&config, s2.as_mut());
            e2.machine_mut().probe.enable_accounting(CORES);
            let resumed = e2.run_resumed(&trace, plan, cp);

            assert_identical(&scratch, &resumed, &fp, &what);
        }
    }
}

/// Any checkpoint whose position precedes the crash point must yield the
/// same outcome as the nearest one — they are all states of the same
/// deterministic prefix.
#[test]
fn every_valid_checkpoint_yields_the_same_outcome() {
    let config = SimConfig::table_ii(CORES);
    let w = workload_by_name("Bank").expect("registered workload");
    let trace = TraceCache::global().get_or_build(w.as_ref(), CORES, TXS_PER_CORE, SEED);
    let fp = footprint(&trace);

    let mut s = make_scheme("Silo", &config);
    let (clean, ckpts) = Engine::new(&config, s.as_mut()).run_recording(&trace, dense_policy());
    let n = clean.pm.events().total() * 3 / 4;
    let plan = CrashPlan::at_event(n).with_fault(FaultModel::bounded_battery(64 * 1024));

    let mut s0 = make_scheme("Silo", &config);
    let scratch = Engine::new(&config, s0.as_mut()).run_with_plan(&trace, Some(plan));

    let mut resumed_any = 0;
    for cp in ckpts.iter().filter(|cp| cp.event_pos() < n) {
        let mut s1 = make_scheme("Silo", &config);
        let resumed = Engine::new(&config, s1.as_mut()).run_resumed(&trace, plan, cp);
        assert_identical(
            &scratch,
            &resumed,
            &fp,
            &format!("Silo event {n} from checkpoint at event {}", cp.event_pos()),
        );
        resumed_any += 1;
    }
    assert!(resumed_any > 0, "no checkpoint preceded event {n}");
}

/// Randomized [`Snapshot`] round-trip on the wear-tracked media: capture,
/// observe, mutate arbitrarily, restore — every observable must match the
/// capture-time value.
#[test]
fn paged_media_snapshot_round_trip_randomized() {
    const LINE: u64 = 256;
    const LINES: u64 = 64;
    let mut rng = SplitMix64::new(0x5110_c0de);
    for _trial in 0..8 {
        let mut media = PagedMedia::new();
        let scribble = |media: &mut PagedMedia, rng: &mut SplitMix64| {
            for _ in 0..32 {
                let base = PhysAddr::new((rng.next_u64() % LINES) * LINE);
                let offset = (rng.next_u64() % 31) as usize * 8;
                let len = (8 + (rng.next_u64() % 3) as usize * 8).min(256 - offset);
                let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
                media.write_masked(base, &bytes, offset);
            }
        };
        scribble(&mut media, &mut rng);

        let snap = media.snapshot();
        let image: Vec<Vec<u8>> = (0..LINES)
            .map(|i| media.read(PhysAddr::new(i * LINE), LINE as usize))
            .collect();
        let counters = (
            media.line_writes(),
            media.bits_programmed(),
            media.dcw_suppressed(),
            media.touched_lines(),
            media.touched_pages(),
            media.wear().total_programs(),
            media.wear().max_wear(),
        );

        scribble(&mut media, &mut rng);
        media.restore(&snap);

        for (i, want) in image.iter().enumerate() {
            assert_eq!(
                &media.read(PhysAddr::new(i as u64 * LINE), LINE as usize),
                want,
                "line {i} not restored"
            );
        }
        assert_eq!(
            (
                media.line_writes(),
                media.bits_programmed(),
                media.dcw_suppressed(),
                media.touched_lines(),
                media.touched_pages(),
                media.wear().total_programs(),
                media.wear().max_wear(),
            ),
            counters,
            "media counters not restored"
        );
    }
}

/// Randomized [`Snapshot`] round-trip on the full device: buffer staging,
/// drains, traffic stats, and durability-event counters all restore.
#[test]
fn pm_device_snapshot_round_trip_randomized() {
    let mut rng = SplitMix64::new(0xd1_90_be_ef);
    for _trial in 0..8 {
        let mut dev = PmDevice::new(PmDeviceConfig::default());
        let scribble = |dev: &mut PmDevice, rng: &mut SplitMix64| {
            for _ in 0..48 {
                let addr = PhysAddr::new((rng.next_u64() % 2048) * 8);
                dev.write(addr, &rng.next_u64().to_le_bytes());
                if rng.next_u64().is_multiple_of(13) {
                    dev.flush_all();
                }
            }
        };
        scribble(&mut dev, &mut rng);

        let snap = dev.snapshot();
        let peeks: Vec<(PhysAddr, u64)> = (0..2048)
            .map(|i| {
                let a = PhysAddr::new(i * 8);
                (a, dev.peek_word(a).as_u64())
            })
            .collect();
        let stats = dev.stats();
        let events = dev.events().total();

        scribble(&mut dev, &mut rng);
        dev.restore(&snap);

        for &(a, want) in &peeks {
            assert_eq!(
                dev.peek_word(a).as_u64(),
                want,
                "word at {a:?} not restored"
            );
        }
        assert_eq!(dev.stats(), stats, "traffic stats not restored");
        assert_eq!(dev.events().total(), events, "event counters not restored");
    }
}
