//! Contract tests for the cycle-accounting observability layer.
//!
//! Three guarantees are pinned here:
//!
//! 1. **The invariant** — a profiled run attributes *every* cycle of every
//!    core's clock: `sum(categories) == core clock`, per core and in the
//!    totals, for every scheme on a small workload grid.
//! 2. **Zero cost when off** — unprofiled runs carry no breakdown and
//!    their JSON reports are free of the `breakdown` key, even after a
//!    profiled run in the same process (no global-state leak).
//! 3. **The timeline schema** — every drained JSONL event line parses and
//!    matches the versioned schema (`v`, `at`, `core`, `kind`, `arg`).

use std::process::Command;

use silo_bench::{run_one, run_profiled, ALL_SCHEMES};
use silo_sim::{CycleCategory, Engine, SimConfig, DEFAULT_TIMELINE_CAPACITY};
use silo_types::JsonValue;
use silo_workloads::workload_by_name;

const GRID: [&str; 2] = ["Hash", "Bank"];

#[test]
fn breakdown_sums_to_core_clocks_for_every_scheme() {
    for scheme in ALL_SCHEMES {
        for bench in GRID {
            let w = workload_by_name(bench).expect("registered workload");
            let stats = run_profiled(scheme, w.as_ref(), 2, 12, 42);
            let b = stats
                .breakdown
                .as_ref()
                .unwrap_or_else(|| panic!("{scheme}/{bench}: profiled run lost its breakdown"));
            assert_eq!(b.per_core.len(), stats.per_core.len());
            for (i, core) in stats.per_core.iter().enumerate() {
                assert_eq!(
                    b.core_total(i),
                    core.cycles.as_u64(),
                    "{scheme}/{bench}: core {i} cycles not fully attributed"
                );
            }
            let clock_sum: u64 = stats.per_core.iter().map(|c| c.cycles.as_u64()).sum();
            assert_eq!(
                b.total(),
                clock_sum,
                "{scheme}/{bench}: grand total drifted"
            );
            let column_sum: u64 = CycleCategory::ALL
                .iter()
                .map(|&c| b.category_total(c))
                .sum();
            assert_eq!(
                column_sum, clock_sum,
                "{scheme}/{bench}: column totals drifted"
            );
        }
    }
}

#[test]
fn unprofiled_runs_stay_breakdown_free_even_after_profiling() {
    let w = workload_by_name("Hash").expect("registered workload");
    // Profile first: per-run accounting must not leak into later runs.
    let profiled = run_profiled("Silo", w.as_ref(), 2, 8, 7);
    assert!(profiled.breakdown.is_some());

    let plain = run_one("Silo", w.as_ref(), 2, 8, 7);
    assert!(plain.breakdown.is_none(), "accounting leaked across runs");
    let json = plain.to_json().to_string();
    assert!(
        !json.contains("breakdown"),
        "probe-off report JSON must be byte-identical to the pre-probe format"
    );
}

#[test]
fn timeline_lines_match_the_versioned_schema() {
    const KNOWN_KINDS: [&str; 9] = [
        "tx_begin",
        "tx_commit",
        "log_merge",
        "log_ignore",
        "log_overflow",
        "buffer_drain",
        "wpq_admit",
        "crash",
        "recovery",
    ];
    let cores = 2;
    let config = SimConfig::table_ii(cores);
    let w = workload_by_name("Hash").expect("registered workload");
    let trace = silo_bench::TraceCache::global().get_or_build(w.as_ref(), cores, 10, 3);
    let mut scheme = silo_bench::make_scheme("Silo", &config);
    let mut engine = Engine::new(&config, scheme.as_mut());
    engine
        .machine_mut()
        .probe
        .enable_timeline(DEFAULT_TIMELINE_CAPACITY);
    let outcome = engine.run(&trace, None);
    let (lines, dropped) = outcome.timeline.expect("timeline enabled");
    assert!(!lines.is_empty(), "a Silo run must record events");
    assert!(
        lines.len() as u64 + dropped >= lines.len() as u64,
        "dropped count must not underflow"
    );
    let mut kinds_seen = std::collections::BTreeSet::new();
    for line in &lines {
        let v = JsonValue::parse(line)
            .unwrap_or_else(|e| panic!("timeline line is not valid JSON ({e}): {line}"));
        assert_eq!(
            v.get("v").and_then(JsonValue::as_f64),
            Some(1.0),
            "schema version: {line}"
        );
        assert!(
            v.get("at").and_then(JsonValue::as_f64).is_some(),
            "missing at: {line}"
        );
        assert!(
            v.get("arg").and_then(JsonValue::as_f64).is_some(),
            "missing arg: {line}"
        );
        match v.get("core") {
            Some(JsonValue::Null) | Some(JsonValue::Uint(_)) => {}
            other => panic!("core must be u32 or null, got {other:?}: {line}"),
        }
        let kind = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .unwrap_or_else(|| panic!("missing kind: {line}"));
        assert!(KNOWN_KINDS.contains(&kind), "unknown kind {kind}: {line}");
        kinds_seen.insert(kind.to_string());
    }
    assert!(
        kinds_seen.contains("tx_commit"),
        "a committed run must log commits, saw only {kinds_seen:?}"
    );
}

fn evaluate() -> Command {
    Command::new(env!("CARGO_BIN_EXE_evaluate"))
}

/// `evaluate check` must accept a clean profile report and reject one with
/// a corrupted breakdown. The corruption bumps the first per-core category
/// cell by 7, which breaks the row sum, a column total, and the grand
/// total at once.
#[test]
fn check_validates_breakdowns_end_to_end() {
    let dir = std::env::temp_dir().join(format!("silo-check-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = evaluate()
        .args(["profile", "--txs", "24", "--bench", "Hash", "--jobs", "2"])
        .arg("--json-dir")
        .arg(&dir)
        // Keep the test hermetic: the memoized outcomes land in the
        // scratch dir, not in a target/result-store relative to the cwd.
        .env("SILO_RESULT_STORE", dir.join("store"))
        .output()
        .expect("run evaluate profile");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = dir.join("profile.json");

    let ok = evaluate()
        .arg("check")
        .arg(&report)
        .output()
        .expect("check");
    assert_eq!(ok.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&ok.stdout);
    assert!(stdout.contains("breakdowns validated"), "{stdout:?}");

    // Corrupt one attributed cycle count inside the first breakdown.
    let text = std::fs::read_to_string(&report).expect("read report");
    let pc = text.find("\"per_core\":[[").expect("breakdown per_core");
    let start = pc + "\"per_core\":[[".len();
    let end = start
        + text[start..]
            .find(|c: char| !c.is_ascii_digit())
            .expect("digits end");
    let n: u64 = text[start..end].parse().expect("numeric cell");
    let corrupted = format!("{}{}{}", &text[..start], n + 7, &text[end..]);
    let bad_path = dir.join("profile-corrupt.json");
    std::fs::write(&bad_path, corrupted).expect("write corrupted report");

    let bad = evaluate()
        .arg("check")
        .arg(&bad_path)
        .output()
        .expect("check corrupted");
    assert_eq!(bad.status.code(), Some(1), "corruption must fail the check");
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(
        stderr.contains("categories sum"),
        "names the problem: {stderr:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
