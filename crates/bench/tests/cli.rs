//! CLI contract tests for the `evaluate` driver binary.

use std::process::Command;

fn evaluate() -> Command {
    Command::new(env!("CARGO_BIN_EXE_evaluate"))
}

#[test]
fn jobs_zero_is_rejected_with_exit_2() {
    let out = evaluate()
        .args(["fig11", "--jobs", "0"])
        .output()
        .expect("run evaluate");
    assert_eq!(out.status.code(), Some(2), "--jobs 0 must be usage error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--jobs"),
        "error names the flag: {stderr:?}"
    );
    assert!(
        out.stdout.is_empty(),
        "no experiment output before the check"
    );
}

#[test]
fn unknown_experiment_is_rejected_with_exit_2() {
    let out = evaluate().arg("no_such_experiment").output().expect("run");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no_such_experiment"), "{stderr:?}");
}

#[test]
fn list_includes_crashfuzz() {
    let out = evaluate().arg("list").output().expect("run");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crashfuzz"), "{stdout:?}");
}
