//! CLI contract tests for the `evaluate` driver binary.

use std::process::Command;

fn evaluate() -> Command {
    Command::new(env!("CARGO_BIN_EXE_evaluate"))
}

#[test]
fn jobs_zero_is_rejected_with_exit_2() {
    let out = evaluate()
        .args(["fig11", "--jobs", "0"])
        .output()
        .expect("run evaluate");
    assert_eq!(out.status.code(), Some(2), "--jobs 0 must be usage error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--jobs"),
        "error names the flag: {stderr:?}"
    );
    assert!(
        out.stdout.is_empty(),
        "no experiment output before the check"
    );
}

#[test]
fn unknown_experiment_is_rejected_with_exit_2() {
    let out = evaluate().arg("no_such_experiment").output().expect("run");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no_such_experiment"), "{stderr:?}");
}

#[test]
fn render_failure_exits_4() {
    let out = evaluate()
        .args([
            "profile",
            "--txs",
            "8",
            "--bench",
            "Hash",
            "--jobs",
            "2",
            "--no-result-store",
        ])
        .env("SILO_TEST_RENDER_PANIC", "1")
        .output()
        .expect("run evaluate");
    assert_eq!(out.status.code(), Some(4), "render failure is exit 4");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("render failed"), "{stderr:?}");
}

#[test]
fn failed_cell_exits_3_under_catch_cell_panics() {
    // An unknown workload panics inside the cell; --catch-cell-panics
    // records it as a failed outcome and the run exits 3 naming the cell
    // instead of aborting with the panic's 101.
    let out = evaluate()
        .args([
            "latency",
            "--txs",
            "8",
            "--bench",
            "NoSuchWorkload",
            "--jobs",
            "2",
            "--catch-cell-panics",
            "--no-result-store",
        ])
        .output()
        .expect("run evaluate");
    assert_eq!(out.status.code(), Some(3), "cell failure is exit 3");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cell"), "{stderr:?}");
    assert!(stderr.contains("NoSuchWorkload"), "{stderr:?}");
}

#[test]
fn list_includes_crashfuzz() {
    let out = evaluate().arg("list").output().expect("run");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crashfuzz"), "{stdout:?}");
}
