//! End-to-end tests of the serve daemon: singleflight exactness,
//! structured rejections, graceful drain, detached jobs, and
//! byte-identity between daemon responses and the CLI.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::Command;

use silo_bench::http::{http_request, Response};
use silo_bench::{registry, ExpParams, ServeOptions, Server};
use silo_types::JsonValue;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("silo-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(store: &Path, workers: usize, queue_cap: usize) -> Server {
    Server::start(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_cap,
        lru_cap: 4096,
        store_dir: Some(store.to_path_buf()),
    })
    .expect("daemon starts")
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Response {
    http_request(addr, "POST", path, Some(body)).expect("request succeeds")
}

fn get(addr: SocketAddr, path: &str) -> Response {
    http_request(addr, "GET", path, None).expect("request succeeds")
}

fn parse(resp: &Response) -> JsonValue {
    JsonValue::parse(&resp.body)
        .unwrap_or_else(|err| panic!("malformed response body {:?}: {err}", resp.body))
}

fn num(v: &JsonValue, path: &[&str]) -> u64 {
    let mut cur = v;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("missing {key} in {v}"));
    }
    cur.as_u64().unwrap_or_else(|| panic!("{path:?} not a u64"))
}

/// One cheap fig11 cell spec as a wire body.
fn fig11_cell_body(txs: usize, seed: u64) -> String {
    let spec = registry::find("fig11").expect("registered");
    let params = ExpParams {
        txs,
        seed,
        ..ExpParams::defaults(&spec)
    };
    spec.build(&params)[0].to_json().to_string()
}

#[test]
fn eight_identical_submissions_execute_exactly_once() {
    let store = scratch("singleflight");
    let server = start(&store, 4, 64);
    let addr = server.addr();
    let body = fig11_cell_body(24, 977);

    let cells: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| scope.spawn(|| post(addr, "/cell", &body)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let resp = h.join().expect("submitter thread");
                assert_eq!(resp.status, 200, "{}", resp.body);
                parse(&resp).get("cell").expect("cell payload").to_string()
            })
            .collect()
    });
    for cell in &cells[1..] {
        assert_eq!(cell, &cells[0], "every waiter gets the one outcome");
    }

    let stats = parse(&get(addr, "/stats"));
    assert_eq!(
        num(&stats, &["served", "executed"]),
        1,
        "exactly one execution: {stats}"
    );
    assert_eq!(
        num(&stats, &["store", "misses"]),
        1,
        "exactly one store miss: {stats}"
    );

    // Exactly-once store write: one entry file under the fingerprint dir.
    let entries: usize = std::fs::read_dir(&store)
        .expect("store dir exists")
        .map(|d| {
            std::fs::read_dir(d.expect("dir").path())
                .expect("fp dir")
                .count()
        })
        .sum();
    assert_eq!(entries, 1, "one persisted entry");

    post(addr, "/shutdown", "{}");
    server.wait();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn bad_requests_are_structured_400s_and_consume_no_worker() {
    let store = scratch("badreq");
    let server = start(&store, 2, 8);
    let addr = server.addr();

    let cases: [(&str, &str, &str); 6] = [
        ("/cell", "this is not json", "not JSON"),
        (
            "/experiment",
            r#"{"name":"no_such_exp"}"#,
            "unknown experiment",
        ),
        (
            "/experiment",
            r#"{"name":"fig11","scheme":"Nope"}"#,
            "unknown scheme",
        ),
        (
            "/experiment",
            r#"{"name":"fig11","warp":9}"#,
            "unknown field",
        ),
        ("/experiment", r#"{"name":"fuzz"}"#, "not memoizable"),
        (
            "/cell",
            r#"{"seed":1,"work":{"kind":"teleport"}}"#,
            "unknown work kind",
        ),
    ];
    for (path, body, needle) in cases {
        let resp = post(addr, path, body);
        assert_eq!(resp.status, 400, "{path} {body} -> {}", resp.body);
        let error = parse(&resp)
            .get("error")
            .and_then(|e| e.as_str().map(str::to_string))
            .expect("structured error field");
        assert!(error.contains(needle), "{error:?} lacks {needle:?}");
    }

    // The unknown-experiment message lists what *is* known.
    let resp = post(addr, "/experiment", r#"{"name":"no_such_exp"}"#);
    assert!(resp.body.contains("fig11"), "{}", resp.body);

    // Routing errors are structured too.
    assert_eq!(get(addr, "/no-such-endpoint").status, 404);
    assert_eq!(get(addr, "/cell").status, 405);

    // None of the rejections reached the execution core.
    let stats = parse(&get(addr, "/stats"));
    assert_eq!(num(&stats, &["served", "executed"]), 0, "{stats}");
    assert_eq!(num(&stats, &["queue_depth"]), 0, "{stats}");
    assert_eq!(num(&stats, &["store", "misses"]), 0, "{stats}");

    post(addr, "/shutdown", "{}");
    server.wait();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn tiny_queue_rejects_whole_experiments_with_429() {
    let store = scratch("backpressure");
    let server = start(&store, 1, 1);
    let addr = server.addr();

    // A full fig11 grid needs far more than one queue slot, and admission
    // is all-or-nothing: 429, Retry-After, and nothing enqueued.
    let resp = post(addr, "/experiment", r#"{"name":"fig11","txs":24}"#);
    assert_eq!(resp.status, 429, "{}", resp.body);
    assert!(resp.header("retry-after").is_some(), "Retry-After present");
    let stats = parse(&get(addr, "/stats"));
    assert_eq!(
        num(&stats, &["queue_depth"]),
        0,
        "nothing admitted: {stats}"
    );
    assert_eq!(num(&stats, &["rejected"]), 1, "{stats}");

    // A single cell still fits and runs.
    let resp = post(addr, "/cell", &fig11_cell_body(24, 978));
    assert_eq!(resp.status, 200, "{}", resp.body);

    post(addr, "/shutdown", "{}");
    server.wait();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn shutdown_drains_inflight_cells() {
    let store = scratch("drain");
    let server = start(&store, 1, 16);
    let addr = server.addr();

    // Three distinct cold cells through a single worker: at least two sit
    // queued when shutdown lands, and all three must still answer 200.
    let bodies: Vec<String> = (0..3).map(|i| fig11_cell_body(24, 3000 + i)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = bodies
            .iter()
            .map(|body| scope.spawn(move || post(addr, "/cell", body)))
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(30));
        let stop = post(addr, "/shutdown", "{}");
        assert_eq!(stop.status, 200, "{}", stop.body);
        assert_eq!(
            parse(&stop).get("state").and_then(JsonValue::as_str),
            Some("draining")
        );
        for h in handles {
            let resp = h.join().expect("submitter thread");
            assert_eq!(resp.status, 200, "drained cell answers: {}", resp.body);
            assert!(parse(&resp).get("cell").is_some(), "{}", resp.body);
        }
    });
    server.wait();

    // The daemon is gone: new connections fail outright (the listener is
    // dropped) or are refused with 503 by the exiting accept loop.
    if let Ok(resp) = http_request(addr, "GET", "/stats", None) {
        assert_eq!(resp.status, 503, "{}", resp.body);
    }
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn detached_jobs_report_progress_and_results() {
    let store = scratch("jobs");
    let server = start(&store, 4, 256);
    let addr = server.addr();

    let resp = post(
        addr,
        "/experiment",
        r#"{"name":"profile","txs":60,"bench":"Hash","wait":false}"#,
    );
    assert_eq!(resp.status, 202, "{}", resp.body);
    let accepted = parse(&resp);
    let id = num(&accepted, &["job"]);
    let cells = num(&accepted, &["cells"]);
    assert!(cells > 0);

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    let final_progress = loop {
        let progress = parse(&get(addr, &format!("/progress/{id}")));
        if progress.get("complete") == Some(&JsonValue::Bool(true)) {
            break progress;
        }
        let states: Vec<&str> = progress
            .get("cells")
            .and_then(JsonValue::as_array)
            .expect("cells array")
            .iter()
            .filter_map(|c| c.get("state").and_then(JsonValue::as_str))
            .collect();
        assert_eq!(states.len() as u64, cells, "every cell has a state");
        assert!(
            states
                .iter()
                .all(|s| ["queued", "running", "done"].contains(s)),
            "{states:?}"
        );
        assert!(
            std::time::Instant::now() < deadline,
            "job never completed: {progress}"
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    };
    assert_eq!(num(&final_progress, &["done"]), cells);
    let done_cells = final_progress
        .get("cells")
        .and_then(JsonValue::as_array)
        .expect("cells");
    for cell in done_cells {
        assert_eq!(cell.get("state").and_then(JsonValue::as_str), Some("done"));
        assert!(
            cell.get("sim_cycles").and_then(JsonValue::as_u64) > Some(0),
            "probe counters surface in progress: {cell}"
        );
        assert!(cell.get("served").is_some(), "{cell}");
    }

    let result = get(addr, &format!("/result/{id}"));
    assert_eq!(result.status, 200, "{}", result.body);
    let result = parse(&result);
    assert!(
        !result
            .get("text")
            .and_then(JsonValue::as_str)
            .expect("text")
            .is_empty(),
        "rendered text present"
    );
    assert!(result.get("report").is_some());

    assert_eq!(get(addr, "/result/99999").status, 404);
    assert_eq!(get(addr, "/progress/not-a-number").status, 400);

    post(addr, "/shutdown", "{}");
    server.wait();
    let _ = std::fs::remove_dir_all(&store);
}

/// The committed acceptance check: a daemon answer for a warm fig11 grid
/// must be byte-identical (envelope-stripped) to what the CLI computes
/// over the same result store.
#[test]
fn daemon_fig11_matches_cli_bytes() {
    let store = scratch("parity");
    let reports = scratch("parity-reports");

    let out = Command::new(env!("CARGO_BIN_EXE_evaluate"))
        .args(["fig11", "--txs", "24", "--jobs", "2", "--json-dir"])
        .arg(&reports)
        .env("SILO_RESULT_STORE", &store)
        .output()
        .expect("run evaluate");
    assert!(out.status.success(), "CLI run failed");
    let cli_text = String::from_utf8(out.stdout).expect("UTF-8 text");
    let cli_report = std::fs::read_to_string(reports.join("fig11.json")).expect("report");
    let stripped_cli = {
        // Drop the host-dependent envelope the CLI appends to the body.
        let JsonValue::Obj(fields) = JsonValue::parse(&cli_report).expect("well-formed") else {
            panic!("report is not an object");
        };
        let body: Vec<(String, JsonValue)> = fields
            .into_iter()
            .filter(|(k, _)| k != "jobs" && k != "wall_ms")
            .collect();
        format!("{}\n", JsonValue::Obj(body))
    };

    let server = start(&store, 4, 256);
    let addr = server.addr();
    let resp = post(addr, "/experiment", r#"{"name":"fig11","txs":24}"#);
    assert_eq!(resp.status, 200, "{}", resp.body);
    let answer = parse(&resp);
    assert_eq!(
        answer.get("text").and_then(JsonValue::as_str),
        Some(cli_text.as_str()),
        "daemon text == CLI stdout"
    );
    let daemon_report = format!("{}\n", answer.get("report").expect("report field"));
    assert_eq!(daemon_report, stripped_cli, "daemon report == CLI body");

    // Same store, same specs: the grid the CLI just computed serves warm.
    let stats = parse(&get(addr, "/stats"));
    assert_eq!(num(&stats, &["served", "executed"]), 0, "{stats}");

    post(addr, "/shutdown", "{}");
    server.wait();
    let _ = std::fs::remove_dir_all(&store);
    let _ = std::fs::remove_dir_all(&reports);
}
