//! End-to-end result-store behaviour through the `evaluate` binary.
//!
//! The unit tests in `result_store.rs` cover the store in isolation;
//! these drive the real CLI with `SILO_RESULT_STORE` pointed at a scratch
//! directory and assert the tentpole contract: warm (memoized) runs emit
//! byte-identical stdout and reports to cold runs at any `--jobs`,
//! corruption degrades to recomputation, and entries stamped by another
//! build are invisible until `store-gc` prunes them.

use std::path::{Path, PathBuf};
use std::process::Command;

/// A fresh scratch root for one test: `<tmp>/<tag>-<pid>/{store,json}`.
fn scratch(tag: &str) -> (PathBuf, PathBuf) {
    let root = std::env::temp_dir().join(format!("silo-store-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    (root.join("store"), root.join("json"))
}

/// Runs `evaluate <args>` against `store`, returning (stdout, stderr).
fn evaluate(store: &Path, json_dir: &Path, args: &[&str]) -> (String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_evaluate"))
        .args(args)
        .arg("--json-dir")
        .arg(json_dir)
        .env("SILO_RESULT_STORE", store)
        .output()
        .expect("spawn evaluate");
    assert!(
        out.status.success(),
        "evaluate {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
    )
}

/// The report with the run-dependent envelope (`jobs`, `wall_ms`) removed.
fn stripped_report(json_dir: &Path, experiment: &str) -> String {
    let text = std::fs::read_to_string(json_dir.join(format!("{experiment}.json")))
        .expect("report written");
    let text = text.trim_end();
    let i = text.rfind(",\"jobs\":").expect("report envelope present");
    format!("{}}}", &text[..i])
}

/// The `(hits, misses, invalidated)` triple from a run's stderr.
fn store_counts(stderr: &str) -> (u64, u64, u64) {
    let line = stderr
        .lines()
        .find(|l| l.starts_with("[result-store]"))
        .expect("store stats line on stderr");
    let nums: Vec<u64> = line
        .split_whitespace()
        .filter_map(|w| w.trim_end_matches(',').parse().ok())
        .collect();
    (nums[0], nums[1], nums[2])
}

#[test]
fn cold_and_warm_reports_are_byte_identical_across_jobs() {
    let (store, json) = scratch("warm");
    for (experiment, args) in [
        ("fig11", &["fig11", "--txs", "24"] as &[&str]),
        ("profile", &["profile", "--txs", "24", "--bench", "Hash"]),
    ] {
        let cold_json = json.join("cold");
        let (cold_out, cold_err) = evaluate(&store, &cold_json, &[args, &["--jobs", "8"]].concat());
        let (_, _, cold_inv) = store_counts(&cold_err);
        assert_eq!(cold_inv, 0, "{experiment}: fresh store invalidated entries");
        let cold_report = stripped_report(&cold_json, experiment);

        for jobs in ["1", "8"] {
            let warm_json = json.join(format!("warm{jobs}"));
            let (warm_out, warm_err) =
                evaluate(&store, &warm_json, &[args, &["--jobs", jobs]].concat());
            let (hits, misses, _) = store_counts(&warm_err);
            assert!(
                hits > 0,
                "{experiment}: warm run at --jobs {jobs} never hit"
            );
            assert_eq!(misses, 0, "{experiment}: warm run at --jobs {jobs} missed");
            assert_eq!(warm_out, cold_out, "{experiment}: stdout drifted warm");
            assert_eq!(
                stripped_report(&warm_json, experiment),
                cold_report,
                "{experiment}: report drifted warm at --jobs {jobs}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(store.parent().expect("scratch root"));
}

#[test]
fn corrupted_entries_fall_back_to_recompute() {
    let (store, json) = scratch("corrupt");
    let args = ["fig13", "--txs", "24", "--jobs", "4"];
    let (cold_out, _) = evaluate(&store, &json.join("cold"), &args);
    let cold_report = stripped_report(&json.join("cold"), "fig13");

    // Garble one entry and truncate another; the rest stay warm.
    let fp_dir = std::fs::read_dir(&store)
        .expect("store populated")
        .flatten()
        .map(|e| e.path())
        .find(|p| p.is_dir())
        .expect("fingerprint dir");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&fp_dir)
        .expect("entries")
        .flatten()
        .map(|e| e.path())
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 2,
        "fig13 persisted {} entries",
        entries.len()
    );
    std::fs::write(&entries[0], "{\"v\":1,").expect("truncate entry");
    std::fs::write(&entries[1], "not json at all").expect("garble entry");

    let (warm_out, warm_err) = evaluate(&store, &json.join("warm"), &args);
    let (hits, misses, invalidated) = store_counts(&warm_err);
    assert_eq!(invalidated, 2, "both corrupted entries detected");
    assert_eq!(misses, 0);
    assert!(hits > 0, "untouched entries still serve");
    assert_eq!(warm_out, cold_out, "corruption changed the output");
    assert_eq!(
        stripped_report(&json.join("warm"), "fig13"),
        cold_report,
        "corruption changed the report"
    );
    let _ = std::fs::remove_dir_all(store.parent().expect("scratch root"));
}

#[test]
fn stale_fingerprint_dirs_miss_and_store_gc_prunes_them() {
    let (store, json) = scratch("gc");
    let args = ["fig13", "--txs", "24", "--jobs", "4"];
    let (cold_out, _) = evaluate(&store, &json.join("cold"), &args);

    // Pretend the entries came from another build: a renamed fingerprint
    // directory must be invisible (all misses, fresh recompute) …
    let fp_dir = std::fs::read_dir(&store)
        .expect("store populated")
        .flatten()
        .map(|e| e.path())
        .find(|p| p.is_dir())
        .expect("fingerprint dir");
    let entry_count = std::fs::read_dir(&fp_dir).expect("entries").count();
    let stale = store.join("0123456789abcdef");
    std::fs::rename(&fp_dir, &stale).expect("rename fingerprint dir");

    let (rerun_out, rerun_err) = evaluate(&store, &json.join("rerun"), &args);
    let (hits, misses, _) = store_counts(&rerun_err);
    assert_eq!(hits, 0, "stale-fingerprint entries must not serve");
    assert!(misses > 0);
    assert_eq!(rerun_out, cold_out, "recompute diverged from cold run");

    // … and `store-gc` removes exactly the stale directory.
    let (gc_out, _) = evaluate(&store, &json.join("gc"), &["store-gc"]);
    assert_eq!(
        gc_out.trim(),
        format!("result store gc: removed 1 stale fingerprint dirs, {entry_count} entries")
    );
    assert!(!stale.exists(), "stale dir survived gc");
    assert!(fp_dir.exists(), "live fingerprint dir was pruned");
    let _ = std::fs::remove_dir_all(store.parent().expect("scratch root"));
}
