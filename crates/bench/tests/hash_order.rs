//! Hash-order-independence gate.
//!
//! Every hot-path map in the workspace uses the in-tree seed-free
//! [`silo_types::FxHashMap`], whose per-process scramble seed
//! ([`silo_types::hash::set_scramble_seed`]) permutes bucket order without
//! changing map semantics. Re-running an experiment under a different
//! scramble therefore exercises a *different iteration order* over every
//! map in the simulator; if any report depended on that order (an unsorted
//! `.iter()` reaching the output), the report bytes would change.
//!
//! The test runs the fig11 grid and a crashfuzz smoke cell under the
//! default scramble and under two adversarial ones and asserts the
//! rendered text and the deterministic report body are byte-identical.
//! A failure here means some iteration site must be sorted — the fix is
//! sorting at that site, never pinning the hasher.
//!
//! This lives in its own integration-test binary on purpose: the scramble
//! is process-global, so flipping it mid-run must not race other tests.

use silo_bench::{registry, run_experiment, ExpParams};
use silo_types::hash::{scramble_seed, set_scramble_seed};

/// Runs `name` with small parameters and returns `(text, body)` rendered
/// to strings.
fn run_small(name: &str, txs: usize) -> (String, String) {
    let spec = registry::find(name).expect("registered experiment");
    let mut params = ExpParams::defaults(&spec);
    params.txs = txs;
    params.benches = vec!["Hash".into()];
    let run = run_experiment(&spec, &params, 2);
    (run.text, run.body.to_string())
}

#[test]
fn reports_are_identical_under_any_hash_order() {
    let baseline_seed = scramble_seed();
    // fig11 covers the figure pipeline (steady-state deltas over every
    // scheme); crashfuzz covers the crash/recovery pipeline including the
    // oracle's verify walk and the per-point PM image digests.
    let baseline: Vec<(String, String)> = ["fig11", "crashfuzz"]
        .iter()
        .map(|n| run_small(n, 24))
        .collect();
    for scramble in [0x9e37_79b9_7f4a_7c15_u64, u64::MAX] {
        set_scramble_seed(scramble);
        let permuted: Vec<(String, String)> = ["fig11", "crashfuzz"]
            .iter()
            .map(|n| run_small(n, 24))
            .collect();
        set_scramble_seed(baseline_seed);
        for (exp, (base, perm)) in ["fig11", "crashfuzz"]
            .iter()
            .zip(baseline.iter().zip(&permuted))
        {
            assert_eq!(
                base.0, perm.0,
                "{exp}: rendered text depends on hash iteration order (scramble {scramble:#x})"
            );
            assert_eq!(
                base.1, perm.1,
                "{exp}: report body depends on hash iteration order (scramble {scramble:#x})"
            );
        }
    }
}
