//! Integration tests for the shared trace artifact layer: cache identity,
//! report invariance with the cache on/off at any worker count, engine
//! equivalence between owned and Arc-shared streams, and the exactly-once
//! generation guarantee across the fig11 grid.
//!
//! The cache is process-global, so tests that toggle `set_enabled` or
//! assert per-seed generation counts serialize on [`ENABLED_LOCK`] and use
//! seeds unique to this file, keeping them independent of each other and
//! of any other traffic through the global cache.

use std::sync::Mutex;

use silo_bench::{registry, run_experiment, ExpParams, TraceCache};
use silo_sim::{Engine, SimConfig};
use silo_workloads::{workload_by_name, Workload};

/// Serializes tests that flip the global cache switch or count
/// generations, so they never observe each other mid-toggle.
static ENABLED_LOCK: Mutex<()> = Mutex::new(());

/// A cached trace is the same artifact a fresh build produces: identical
/// provenance and identical content hash.
#[test]
fn cached_trace_matches_fresh_build() {
    let seed = 90_001;
    let w = workload_by_name("Hash").expect("workload");
    let fresh = w.build_trace(4, 25, seed);
    let cached = TraceCache::global().get_or_build(&w, 4, 25, seed);
    assert_eq!(fresh.content_hash(), cached.content_hash());
    assert_eq!(fresh.provenance(), cached.provenance());
    // And a second lookup hands back the same Arc, not a rebuild.
    let again = TraceCache::global().get_or_build(&w, 4, 25, seed);
    assert_eq!(cached.content_hash(), again.content_hash());
}

/// Arc-shared streams drive the engine to the exact same statistics as
/// the owned `Vec<Vec<Transaction>>` path did before the refactor.
#[test]
fn arc_shared_streams_reproduce_vec_results() {
    let seed = 90_002;
    let w = workload_by_name("TPCC").expect("workload");
    let config = SimConfig::table_ii(2);
    let owned = w.raw_streams(2, 30, seed);
    let trace = w.build_trace(2, 30, seed);

    for scheme in ["Base", "Silo"] {
        let mut a = silo_bench::make_scheme(scheme, &config);
        let via_vec = Engine::new(&config, a.as_mut()).run(owned.clone(), None);
        let mut b = silo_bench::make_scheme(scheme, &config);
        let via_trace = Engine::new(&config, b.as_mut()).run(&trace, None);
        assert_eq!(
            via_vec.stats.to_json().to_string(),
            via_trace.stats.to_json().to_string(),
            "scheme {scheme}: shared streams diverged from owned streams"
        );
    }
}

/// Runs fig11 (small budget) with the given cache state and worker count,
/// returning the rendered text and the deterministic report body.
fn fig11_run(enabled: bool, jobs: usize, seed: u64) -> (String, String) {
    let spec = registry::find("fig11").expect("fig11 registered");
    let mut params = ExpParams::defaults(&spec);
    params.txs = 40;
    params.seed = seed;
    let was = TraceCache::global().enabled();
    TraceCache::global().set_enabled(enabled);
    let run = run_experiment(&spec, &params, jobs);
    TraceCache::global().set_enabled(was);
    (run.text, run.body.to_string())
}

/// One pass over the fig11 grid in each cache/jobs configuration checks
/// both halves of the contract: the cache is invisible in the output
/// (byte-identical text and report bodies, enabled or disabled, serial or
/// eight workers), and with the cache enabled the grid's 56 unique trace
/// keys (5 schemes x 7 benchmarks x 4 core counts, two stream lengths per
/// steady-state delta, schemes sharing) are each generated exactly once
/// per process — even when the grid runs again across 8 workers.
#[test]
fn fig11_cache_is_invisible_and_generates_each_trace_exactly_once() {
    let _guard = ENABLED_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let seed = 90_003;
    let reference = fig11_run(false, 1, seed);
    let got = fig11_run(false, 8, seed);
    assert_eq!(reference, got, "report differs (cache off, jobs 8)");

    let got = fig11_run(true, 1, seed);
    assert_eq!(reference, got, "report differs (cache on, jobs 1)");
    // 7 benchmarks x 4 core counts x 2 lengths (N and 2N txs per core);
    // the 5 schemes all share the same per-benchmark traces.
    let (keys, generations) = TraceCache::global().stats_for_seed(seed);
    assert_eq!(keys, 56, "unexpected unique trace keys for the fig11 grid");
    assert_eq!(generations, 56, "some trace was generated more than once");

    // A second pass over the same grid, fanned out across workers, hits
    // the cache for every cell: the generation count must not move.
    let got = fig11_run(true, 8, seed);
    assert_eq!(reference, got, "report differs (cache on, jobs 8)");
    let (keys_after, generations_after) = TraceCache::global().stats_for_seed(seed);
    assert_eq!(keys_after, 56);
    assert_eq!(
        generations_after, 56,
        "rerunning the grid regenerated cached traces"
    );
}
