//! Stamps the build with a deterministic fingerprint of the workspace
//! sources, exposed to the crate as the `SILO_CODE_FINGERPRINT` env var.
//!
//! The persistent result store keys every memoized cell by this
//! fingerprint, so results computed by an older build are never served
//! after any crate source changes — the conservative invalidation rule:
//! touch one line anywhere and the whole store goes cold. That costs one
//! full re-simulation per code change but can never serve a stale cell.
//!
//! The hash is FNV-1a 64 over the sorted relative paths and raw bytes of
//! every `*.rs` and `Cargo.toml` under `crates/` and the root crate
//! (`src/`, `Cargo.toml`), with each file's path and length folded in so
//! renames and boundary shifts change the digest. No timestamps or
//! absolute paths are hashed: two checkouts of the same tree agree.

use std::fs;
use std::path::{Path, PathBuf};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs")
            || path.file_name().is_some_and(|n| n == "Cargo.toml")
        {
            out.push(path);
        }
    }
}

fn main() {
    let manifest = PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").unwrap());
    let root = manifest.parent().unwrap().parent().unwrap().to_path_buf();

    // Cargo rescans these recursively, so adding/removing/editing any
    // source re-runs this script and re-stamps the fingerprint.
    for watched in ["crates", "src", "Cargo.toml"] {
        println!("cargo:rerun-if-changed={}", root.join(watched).display());
    }

    let mut files = vec![root.join("Cargo.toml")];
    collect(&root.join("crates"), &mut files);
    collect(&root.join("src"), &mut files);
    files.sort();

    let mut hash = FNV_OFFSET;
    for path in &files {
        let rel = path.strip_prefix(&root).unwrap_or(path);
        let rel = rel.to_string_lossy().replace('\\', "/");
        fnv(&mut hash, rel.as_bytes());
        fnv(&mut hash, &[0]);
        let bytes = fs::read(path).unwrap_or_default();
        fnv(&mut hash, &(bytes.len() as u64).to_le_bytes());
        fnv(&mut hash, &bytes);
    }
    println!("cargo:rustc-env=SILO_CODE_FINGERPRINT={hash:016x}");
}
