//! Property tests: queueing-model invariants of the memory controller.

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use silo_memctrl::{MemCtrl, MemCtrlConfig};
use silo_types::Cycles;

proptest! {
    /// Admissions and completions are monotone in call order, stalls only
    /// occur when the queue is full, and occupancy never exceeds the WPQ
    /// capacity once the producer respects admissions.
    #[test]
    fn admission_is_monotone_and_bounded(
        reqs in prop::collection::vec((0u64..256, 0u64..3, 0u64..50), 1..200),
        wpq in 1usize..64,
    ) {
        let mut mc = MemCtrl::new(MemCtrlConfig {
            wpq_entries: wpq,
            ..MemCtrlConfig::table_ii()
        });
        let mut now = Cycles::ZERO;
        let mut last_admit = Cycles::ZERO;
        let mut last_complete = Cycles::ZERO;
        for (bytes, lines, think) in reqs {
            now += Cycles::new(think);
            let adm = mc.enqueue_write(now, bytes, lines);
            prop_assert!(adm.admit >= now, "admission not before issue");
            prop_assert!(adm.admit >= last_admit, "admissions monotone");
            prop_assert!(adm.complete > adm.admit - Cycles::ZERO.max(adm.admit), "completion after admission");
            prop_assert!(adm.complete >= last_complete, "completions monotone (FIFO)");
            prop_assert_eq!(adm.stall, adm.admit - now);
            last_admit = adm.admit;
            last_complete = adm.complete;
            // A producer that waits for its admission keeps the queue at
            // or below capacity.
            now = adm.admit;
            prop_assert!(mc.occupancy(now) <= wpq, "occupancy bounded");
        }
        prop_assert_eq!(mc.drained_at(), last_complete);
    }

    /// Service conservation: total busy cycles equal the sum of per-request
    /// service costs, independent of arrival pattern.
    #[test]
    fn busy_cycles_are_conserved(
        reqs in prop::collection::vec((1u64..128, 0u64..3, 0u64..40), 1..100),
    ) {
        let cfg = MemCtrlConfig::table_ii();
        let mut mc = MemCtrl::new(cfg);
        let mut now = Cycles::ZERO;
        let mut expected = 0u64;
        for (bytes, lines, think) in reqs {
            now += Cycles::new(think);
            mc.enqueue_write(now, bytes, lines);
            expected += cfg.service_cycles(bytes, lines);
        }
        prop_assert_eq!(mc.stats().busy_cycles, expected);
    }
}
