//! Memory-controller model: the ADR persist domain and the PM bandwidth
//! bottleneck.
//!
//! Paper Table II specifies an "FRFCFS, 64-entry queue in ADR domain"
//! memory controller over phase-change memory with 50 / 150 ns read /
//! write latency. Two properties of that controller shape every result in
//! the paper:
//!
//! 1. **Persistence point.** With ADR, a write is durable as soon as it is
//!    *admitted* to the write pending queue (WPQ) — the battery drains the
//!    queue on a power failure. Schemes therefore stall not on the media
//!    write latency but on WPQ admission, which is instant until the queue
//!    fills ([`Admission::stall`] is the back-pressure).
//! 2. **Bandwidth bottleneck.** The WPQ drains at the media's aggregate
//!    program bandwidth. Write-heavy schemes (Base, FWB, MorLog) saturate
//!    it as core count grows; this queueing delay is the mechanism behind
//!    the paper's Fig 12 scaling gap.
//!
//! The service model is a single FIFO server at aggregate bandwidth: each
//! accepted request costs a fixed command overhead, its payload's bus
//! beats (8 B per cycle — the 64-bit processor-memory bus of §III-E, so
//! Silo's word writes occupy one beat while a 64 B line takes eight), and
//! one media line program (divided by the bank parallelism) *per new
//! on-PM-buffer line it fills* — requests that coalesce into
//! already-staged buffer lines are bus-only. Reads are prioritized
//! (FR-FCFS) and modelled at constant device latency.
//!
//! # Examples
//!
//! ```
//! use silo_memctrl::{MemCtrl, MemCtrlConfig};
//! use silo_types::Cycles;
//!
//! let mut mc = MemCtrl::new(MemCtrlConfig::table_ii());
//! let adm = mc.enqueue_write(Cycles::new(0), 64, 1);
//! assert_eq!(adm.stall, Cycles::ZERO); // empty WPQ admits instantly
//! assert!(adm.complete > adm.admit);   // ...but drains at media speed
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;

pub use controller::{Admission, MemCtrl, MemCtrlConfig, MemCtrlStats};
