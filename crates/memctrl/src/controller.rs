//! The write pending queue and its service model.

use std::collections::VecDeque;
use std::fmt;

use silo_types::Cycles;

/// Configuration of the memory controller and PM timing.
///
/// # Examples
///
/// ```
/// use silo_memctrl::MemCtrlConfig;
///
/// let cfg = MemCtrlConfig::table_ii();
/// assert_eq!(cfg.wpq_entries, 64);
/// assert_eq!(cfg.read_cycles, 100);   // 50 ns at 2 GHz
/// assert_eq!(cfg.media_write_cycles, 300); // 150 ns at 2 GHz
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemCtrlConfig {
    /// WPQ capacity (Table II: 64 entries, ADR domain).
    pub wpq_entries: usize,
    /// Fixed command overhead charged to every accepted request (0 with
    /// posted writes: command and data phases overlap on DDR-T-style
    /// buses, so an 8 B word write costs exactly one data beat — the
    /// paper's "without wasting the bus width", §III-E).
    pub transfer_cycles: u64,
    /// Data-bus bandwidth in bytes per cycle: the paper's 64-bit
    /// processor-memory bus moves 8 B per beat (§III-E, "a word is 8B,
    /// which matches the 64-bit width of the processor-memory bus"), so an
    /// 8 B new-data write occupies one beat while a 64 B line takes eight.
    pub bus_bytes_per_cycle: u64,
    /// One media line program (Table II: 150 ns = 300 cycles).
    pub media_write_cycles: u64,
    /// Bank-level parallelism of the PCM media; line programs across banks
    /// overlap, so the effective per-line service is
    /// `media_write_cycles / banks`.
    pub banks: u64,
    /// PM read latency (Table II: 50 ns = 100 cycles), served with FR-FCFS
    /// read priority.
    pub read_cycles: u64,
}

impl MemCtrlConfig {
    /// The paper Table II configuration. The bank count is not given in the
    /// paper; 16 matches typical PCM DIMM organizations in the NVMain
    /// literature and is the workspace-wide default.
    pub fn table_ii() -> Self {
        MemCtrlConfig {
            wpq_entries: 64,
            transfer_cycles: 0,
            bus_bytes_per_cycle: 8,
            media_write_cycles: Cycles::from_ns(150.0).as_u64(),
            banks: 16,
            read_cycles: Cycles::from_ns(50.0).as_u64(),
        }
    }

    /// Effective service cycles for a request of `bytes` payload that
    /// fills `new_lines` fresh on-PM buffer lines: command overhead + bus
    /// beats + amortized media programs.
    pub fn service_cycles(&self, bytes: u64, new_lines: u64) -> u64 {
        self.transfer_cycles
            + bytes.div_ceil(self.bus_bytes_per_cycle)
            + new_lines * self.media_write_cycles / self.banks
    }
}

impl Default for MemCtrlConfig {
    fn default() -> Self {
        MemCtrlConfig::table_ii()
    }
}

/// The outcome of enqueuing one persistent write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Admission {
    /// When the request entered the WPQ — the **persistence point** under
    /// ADR. Ordering-constrained schemes stall the core until this time.
    pub admit: Cycles,
    /// `admit - now`: how long the producer waited for a WPQ slot.
    pub stall: Cycles,
    /// When the media finished servicing the request (frees the WPQ slot).
    pub complete: Cycles,
}

/// Counters exposed by [`MemCtrl::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemCtrlStats {
    /// Writes admitted to the WPQ.
    pub writes: u64,
    /// Reads served.
    pub reads: u64,
    /// Total producer stall cycles waiting for WPQ slots.
    pub stall_cycles: u64,
    /// Total service cycles consumed (utilization numerator).
    pub busy_cycles: u64,
    /// High-water mark of WPQ occupancy.
    pub max_occupancy: usize,
}

impl MemCtrlStats {
    /// The counters as a JSON object (experiment reports).
    pub fn to_json(&self) -> silo_types::JsonValue {
        silo_types::JsonValue::object()
            .field("writes", self.writes)
            .field("reads", self.reads)
            .field("stall_cycles", self.stall_cycles)
            .field("busy_cycles", self.busy_cycles)
            .field("max_occupancy", self.max_occupancy)
            .build()
    }

    /// Rebuilds a snapshot from its [`MemCtrlStats::to_json`] form. `None`
    /// if any counter is missing or not an exact integer (the result store
    /// treats that as a corrupt entry and recomputes).
    pub fn from_json(v: &silo_types::JsonValue) -> Option<MemCtrlStats> {
        let u = |key: &str| v.get(key).and_then(silo_types::JsonValue::as_u64);
        Some(MemCtrlStats {
            writes: u("writes")?,
            reads: u("reads")?,
            stall_cycles: u("stall_cycles")?,
            busy_cycles: u("busy_cycles")?,
            max_occupancy: usize::try_from(u("max_occupancy")?).ok()?,
        })
    }
}

/// The memory controller: a 64-entry ADR write pending queue drained by a
/// single FIFO server at the media's aggregate bandwidth.
///
/// Callers interact with simulated time explicitly: every operation takes
/// `now` (the caller's core-local clock) and returns the timing outcome.
/// Calls must be made in non-decreasing global time order per controller —
/// the multicore engine guarantees this by always advancing the
/// earliest-time core.
///
/// # Examples
///
/// ```
/// use silo_memctrl::{MemCtrl, MemCtrlConfig};
/// use silo_types::Cycles;
///
/// let mut mc = MemCtrl::new(MemCtrlConfig::table_ii());
/// // A read costs the constant device latency.
/// assert_eq!(mc.read(Cycles::new(10)), Cycles::new(110));
/// ```
#[derive(Clone, Debug)]
pub struct MemCtrl {
    config: MemCtrlConfig,
    /// Completion times of in-flight (admitted, unserviced) writes, in
    /// admission order; monotone because the server is FIFO.
    completions: VecDeque<u64>,
    server_free: u64,
    stats: MemCtrlStats,
}

impl MemCtrl {
    /// Creates an idle controller.
    pub fn new(config: MemCtrlConfig) -> Self {
        assert!(config.wpq_entries > 0, "WPQ needs at least one entry");
        assert!(config.banks > 0, "need at least one bank");
        MemCtrl {
            config,
            completions: VecDeque::new(),
            server_free: 0,
            stats: MemCtrlStats::default(),
        }
    }

    /// Admits a persistent write of `bytes` payload at local time `now`.
    /// `new_buffer_lines` is how many fresh on-PM buffer lines the write
    /// filled (reported by [`silo_pm::PmStats::buffer_fills`] deltas);
    /// coalesced writes pass 0 and cost only the bus occupancy.
    pub fn enqueue_write(&mut self, now: Cycles, bytes: u64, new_buffer_lines: u64) -> Admission {
        self.retire(now);
        let t = now.as_u64();
        // WPQ admission: if full, wait until enough older writes retire
        // that an empty slot exists at admission time.
        let admit = if self.completions.len() >= self.config.wpq_entries {
            let idx = self.completions.len() - self.config.wpq_entries;
            self.completions[idx].max(t)
        } else {
            t
        };
        let service = self.config.service_cycles(bytes, new_buffer_lines);
        let start = admit.max(self.server_free);
        let complete = start + service;
        self.server_free = complete;
        self.completions.push_back(complete);

        self.stats.writes += 1;
        self.stats.stall_cycles += admit - t;
        self.stats.busy_cycles += service;
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.completions.len());

        Admission {
            admit: Cycles::new(admit),
            stall: Cycles::new(admit - t),
            complete: Cycles::new(complete),
        }
    }

    /// [`MemCtrl::enqueue_write`] with the admission reported to a probe:
    /// when the probe wants events, every admission emits a
    /// [`silo_probe::ProbeEventKind::WpqAdmit`] event whose `arg` is the
    /// producer's stall (0 on an uncontended queue). The probed path is
    /// what the simulated machine uses; the unprobed method remains for
    /// direct controller tests and model code.
    pub fn enqueue_write_probed(
        &mut self,
        now: Cycles,
        bytes: u64,
        new_buffer_lines: u64,
        probe: &mut dyn silo_probe::Probe,
        core: Option<u32>,
    ) -> Admission {
        let adm = self.enqueue_write(now, bytes, new_buffer_lines);
        if probe.wants_events() {
            probe.event(silo_probe::ProbeEvent {
                at: now.as_u64(),
                core,
                kind: silo_probe::ProbeEventKind::WpqAdmit,
                arg: adm.stall.as_u64(),
            });
        }
        adm
    }

    /// Serves a read issued at `now`; returns its completion time. FR-FCFS
    /// prioritizes reads over queued writes, so reads see the constant
    /// device latency.
    pub fn read(&mut self, now: Cycles) -> Cycles {
        self.stats.reads += 1;
        now + Cycles::new(self.config.read_cycles)
    }

    /// Retires serviced writes whose completion time is at or before `now`.
    /// [`enqueue_write`](Self::enqueue_write) calls this implicitly;
    /// completion-retire is never coupled to a read-only query.
    pub fn retire(&mut self, now: Cycles) {
        let t = now.as_u64();
        while self.completions.front().is_some_and(|&c| c <= t) {
            self.completions.pop_front();
        }
    }

    /// WPQ occupancy as of local time `now`. Read-only: counts in-flight
    /// writes completing after `now` without retiring anything, so probes
    /// and stats queries cannot perturb subsequent admission timing.
    pub fn occupancy(&self, now: Cycles) -> usize {
        let t = now.as_u64();
        // Completion times are monotone (FIFO server), so the retired
        // prefix is exactly the partition point.
        self.completions.len() - self.completions.partition_point(|&c| c <= t)
    }

    /// Earliest time at which every currently queued write has drained.
    pub fn drained_at(&self) -> Cycles {
        Cycles::new(self.server_free)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MemCtrlStats {
        self.stats
    }

    /// The configuration.
    pub fn config(&self) -> &MemCtrlConfig {
        &self.config
    }
}

impl std::ops::Add for MemCtrlStats {
    type Output = MemCtrlStats;

    fn add(self, r: MemCtrlStats) -> MemCtrlStats {
        MemCtrlStats {
            writes: self.writes + r.writes,
            reads: self.reads + r.reads,
            stall_cycles: self.stall_cycles + r.stall_cycles,
            busy_cycles: self.busy_cycles + r.busy_cycles,
            max_occupancy: self.max_occupancy.max(r.max_occupancy),
        }
    }
}

impl std::ops::Sub for MemCtrlStats {
    type Output = MemCtrlStats;

    /// Saturating per-field difference. Delta pairs (an N-transaction run
    /// subtracted from a 2N-transaction run) are only approximately
    /// nested: workload generators are not required to produce
    /// prefix-extensive streams, so a transient counter such as WPQ stall
    /// cycles can be *smaller* in the longer run. Saturating at zero keeps
    /// the warmup-stripping heuristic total instead of panicking.
    fn sub(self, r: MemCtrlStats) -> MemCtrlStats {
        MemCtrlStats {
            writes: self.writes.saturating_sub(r.writes),
            reads: self.reads.saturating_sub(r.reads),
            stall_cycles: self.stall_cycles.saturating_sub(r.stall_cycles),
            busy_cycles: self.busy_cycles.saturating_sub(r.busy_cycles),
            max_occupancy: self.max_occupancy.max(r.max_occupancy),
        }
    }
}

impl fmt::Display for MemCtrlStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} writes, {} reads, {} stall cycles, {} busy cycles, peak WPQ {}",
            self.writes, self.reads, self.stall_cycles, self.busy_cycles, self.max_occupancy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MemCtrl {
        MemCtrl::new(MemCtrlConfig::table_ii())
    }

    /// One 64 B line filling one fresh buffer line:
    /// 0 (posted cmd) + 8 (bus) + 18 (media/banks) = 26 cycles.
    const LINE_SERVICE: u64 = 26;

    #[test]
    fn empty_queue_admits_instantly() {
        let mut m = mc();
        let a = m.enqueue_write(Cycles::new(100), 64, 1);
        assert_eq!(a.admit, Cycles::new(100));
        assert_eq!(a.stall, Cycles::ZERO);
        assert_eq!(a.complete, Cycles::new(100 + LINE_SERVICE));
    }

    #[test]
    fn coalesced_word_write_is_bus_only() {
        let mut m = mc();
        let a = m.enqueue_write(Cycles::new(0), 8, 0);
        assert_eq!(a.complete, Cycles::new(1), "one bus beat");
    }

    #[test]
    fn service_is_serialized_fifo() {
        let mut m = mc();
        let a = m.enqueue_write(Cycles::new(0), 64, 1);
        let b = m.enqueue_write(Cycles::new(0), 64, 1);
        assert_eq!(b.admit, Cycles::ZERO, "queue not full: admit immediately");
        assert_eq!(b.complete, a.complete + Cycles::new(LINE_SERVICE));
    }

    #[test]
    fn full_wpq_stalls_producer() {
        let mut m = mc();
        for _ in 0..64 {
            m.enqueue_write(Cycles::new(0), 64, 1);
        }
        assert_eq!(m.occupancy(Cycles::new(0)), 64);
        let a = m.enqueue_write(Cycles::new(0), 64, 1);
        // Must wait for the first write to retire.
        assert_eq!(a.admit, Cycles::new(LINE_SERVICE));
        assert_eq!(a.stall, Cycles::new(LINE_SERVICE));
    }

    #[test]
    fn occupancy_retires_completed_writes() {
        let mut m = mc();
        for _ in 0..10 {
            m.enqueue_write(Cycles::new(0), 64, 1);
        }
        assert_eq!(m.occupancy(Cycles::new(0)), 10);
        assert_eq!(m.occupancy(Cycles::new(10 * LINE_SERVICE)), 0);
    }

    #[test]
    fn occupancy_probe_does_not_perturb_admission() {
        // Probing occupancy at a future time (a stats read, a probe
        // sampling end-of-run state) must not change what the controller
        // does next. Before the retire/occupancy split, the probe popped
        // completions and a subsequent admission at an earlier local time
        // saw a spuriously empty WPQ.
        let run = |probe: bool| {
            let mut m = mc();
            for _ in 0..64 {
                m.enqueue_write(Cycles::new(0), 64, 1);
            }
            if probe {
                assert_eq!(m.occupancy(Cycles::new(1_000_000)), 0);
            }
            m.enqueue_write(Cycles::new(0), 64, 1)
        };
        assert_eq!(run(true), run(false));
        assert_eq!(run(true).stall, Cycles::new(LINE_SERVICE));
    }

    #[test]
    fn explicit_retire_frees_slots() {
        let mut m = mc();
        for _ in 0..64 {
            m.enqueue_write(Cycles::new(0), 64, 1);
        }
        m.retire(Cycles::new(64 * LINE_SERVICE));
        assert_eq!(m.occupancy(Cycles::new(0)), 0, "retired entries are gone");
    }

    #[test]
    fn reads_have_constant_latency() {
        let mut m = mc();
        for _ in 0..64 {
            m.enqueue_write(Cycles::new(0), 64, 1);
        }
        assert_eq!(m.read(Cycles::new(5)), Cycles::new(105));
    }

    #[test]
    fn drained_at_tracks_last_completion() {
        let mut m = mc();
        assert_eq!(m.drained_at(), Cycles::ZERO);
        let a = m.enqueue_write(Cycles::new(0), 64, 2);
        assert_eq!(m.drained_at(), a.complete);
    }

    #[test]
    fn stats_accumulate() {
        let mut m = mc();
        m.enqueue_write(Cycles::new(0), 64, 1);
        m.enqueue_write(Cycles::new(0), 8, 0);
        m.read(Cycles::new(0));
        let s = m.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.busy_cycles, LINE_SERVICE + 1);
        assert_eq!(s.max_occupancy, 2);
    }

    #[test]
    fn idle_gaps_do_not_accumulate_service() {
        let mut m = mc();
        let a = m.enqueue_write(Cycles::new(0), 64, 1);
        // Much later request starts fresh, not behind stale server_free.
        let b = m.enqueue_write(Cycles::new(10_000), 64, 1);
        assert_eq!(b.admit, Cycles::new(10_000));
        assert_eq!(b.complete, Cycles::new(10_000 + LINE_SERVICE));
        assert!(a.complete < b.admit);
    }

    #[test]
    fn table_ii_service_formula() {
        let cfg = MemCtrlConfig::table_ii();
        assert_eq!(cfg.service_cycles(8, 0), 1);
        assert_eq!(cfg.service_cycles(64, 1), 26);
        assert_eq!(cfg.service_cycles(18, 1), 3 + 18);
        assert_eq!(cfg.service_cycles(64, 4), 8 + 75);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_wpq_rejected() {
        let _ = MemCtrl::new(MemCtrlConfig {
            wpq_entries: 0,
            ..MemCtrlConfig::table_ii()
        });
    }

    #[test]
    fn sustained_overload_backpressure_grows() {
        // Producer issuing faster than drain rate sees growing stalls.
        let mut m = mc();
        let mut now = Cycles::ZERO;
        let mut last_stall = Cycles::ZERO;
        for _ in 0..500 {
            let a = m.enqueue_write(now, 64, 1);
            last_stall = a.stall;
            now = a.admit + Cycles::new(1); // producer retries ~instantly
        }
        assert!(last_stall.as_u64() > 0 || m.stats().stall_cycles > 0);
        // Steady state: producer throughput equals the service rate,
        // minus the 64 requests still in flight.
        assert!(now.as_u64() >= (500 - 64) * LINE_SERVICE, "now = {now}");
    }
}

silo_types::impl_snapshot_via_clone!(MemCtrl);
