//! The deterministic multicore execution engine.

use std::sync::Arc;

use silo_pm::{DrainReport, EventCounters, EventKind, FaultModel};
use silo_probe::{CycleCategory, ProbeEventKind, Signature};
use silo_types::{CoreId, Cycles, FxHashMap, PhysAddr, TxId, TxTag, Word};

use crate::schemes::{EvictAction, SchemeState};
use crate::spec::{SpecMachine, SpecReport};
use crate::stats::LatencyStats;
use crate::trace::ArrivalSchedule;
use crate::{
    ConsistencyReport, LoggingScheme, Machine, MachineState, Op, RecoveryReport, SimConfig,
    SimStats, Transaction, TxOracle, TxRecord, TxStreams,
};
use silo_types::Snapshot;

/// When a [`CrashPlan`] cuts power.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashTrigger {
    /// Power fails at this cycle; cores halt at the preceding op boundary.
    /// This is the legacy sampled trigger: two adjacent cycles usually
    /// land on the same op boundary.
    Cycle(Cycles),
    /// Power fails at the N-th durability event (store, log drain, WPQ
    /// admission, media line program). Every N is a distinct machine
    /// state, so a sweep over N enumerates the crash surface densely.
    Event(u64),
}

/// A full crash scenario: when power fails, what the ADR domain manages to
/// persist afterwards, and whether recovery itself is re-crashed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPlan {
    /// When to cut power.
    pub trigger: CrashTrigger,
    /// What the post-crash drain is allowed to persist.
    pub fault: FaultModel,
    /// If set, power fails again after this many recovery-step writes —
    /// the double-crash scenario. Recovery must be idempotent.
    pub recovery_crash_at: Option<u64>,
}

impl CrashPlan {
    /// A perfect-ADR crash at cycle `c` (the legacy crash model).
    pub fn at_cycle(c: Cycles) -> Self {
        CrashPlan {
            trigger: CrashTrigger::Cycle(c),
            fault: FaultModel::perfect_adr(),
            recovery_crash_at: None,
        }
    }

    /// A perfect-ADR crash at the N-th durability event.
    pub fn at_event(n: u64) -> Self {
        CrashPlan {
            trigger: CrashTrigger::Event(n),
            fault: FaultModel::perfect_adr(),
            recovery_crash_at: None,
        }
    }

    /// Replaces the fault model.
    pub fn with_fault(mut self, fault: FaultModel) -> Self {
        self.fault = fault;
        self
    }

    /// Adds a second power failure after `steps` recovery writes.
    pub fn with_recovery_crash(mut self, steps: u64) -> Self {
        self.recovery_crash_at = Some(steps);
        self
    }
}

/// The result of a crash-injected run.
#[derive(Clone, Debug)]
pub struct CrashOutcome {
    /// The cycle at which power failed.
    pub crash_at: Cycles,
    /// What the scheme's recovery did (the second pass, on a double
    /// crash).
    pub recovery: RecoveryReport,
    /// The oracle's verdict on the recovered PM image.
    pub consistency: ConsistencyReport,
    /// Transactions committed before the crash.
    pub committed_txs: u64,
    /// Transactions in flight (uncommitted) at the crash.
    pub inflight_txs: u64,
    /// Transactions whose commit raced the power failure (either outcome
    /// is legal, checked atomically by the oracle).
    pub ambiguous_txs: u64,
    /// Durability events counted up to the instant of power loss.
    pub events_at_crash: EventCounters,
    /// What the battery-backed ADR drain persisted.
    pub drain: DrainReport,
    /// Whether a second power failure interrupted recovery.
    pub double_crash: bool,
    /// The executable spec's per-word verdict on the recovered image;
    /// `None` unless [`Engine::enable_spec`] was called before the run.
    pub spec: Option<SpecReport>,
}

/// Everything a run returns.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Aggregate statistics.
    pub stats: SimStats,
    /// Present when a crash was injected.
    pub crash: Option<CrashOutcome>,
    /// The final PM device contents (post-recovery when a crash was
    /// injected), for inspection by tests and examples.
    pub pm: silo_pm::PmDevice,
    /// Drained JSONL event-timeline lines plus the count of events the
    /// ring buffer dropped; `None` unless the timeline probe was enabled
    /// on the machine before the run.
    pub timeline: Option<(Vec<String>, u64)>,
    /// The run's probe-event coverage signature; `None` unless the
    /// signature recorder was enabled on the machine's probe hub before
    /// the run.
    pub signature: Option<Signature>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    BetweenTxs,
    InTx,
    Done,
}

/// Captured execution state of one core: everything in `CoreRun` except the
/// shared (immutable) transaction stream, which the resuming caller supplies.
#[derive(Clone, Debug)]
struct CoreState {
    time: Cycles,
    tx_idx: usize,
    op_idx: usize,
    phase: Phase,
    txid: TxId,
    tag: TxTag,
    cur_writes: FxHashMap<u64, Word>,
    committed: u64,
    sojourns: Vec<u64>,
}

/// A full-machine checkpoint taken at an engine loop boundary of a clean
/// (crash-free) run. Positions on both crash axes are recorded so one
/// checkpoint set serves cycle-triggered *and* event-triggered crash plans.
pub struct EngineCheckpoint {
    /// Smallest unfinished core clock at capture. Valid as a resume base
    /// for [`CrashTrigger::Cycle(c)`] iff `cycle_pos < c` — the engine's
    /// minimum clock is non-decreasing and the crash check runs at the
    /// loop top, so no earlier iteration of the crashing run can have
    /// tripped.
    cycle_pos: Cycles,
    /// Total durability events counted at capture. Valid as a resume base
    /// for [`CrashTrigger::Event(n)`] iff `event_pos < n`.
    event_pos: u64,
    machine: MachineState,
    cores: Vec<CoreState>,
    oracle: TxOracle,
    scheme: Box<dyn SchemeState>,
}

impl EngineCheckpoint {
    /// The checkpoint's position on the cycle axis.
    pub fn cycle_pos(&self) -> Cycles {
        self.cycle_pos
    }

    /// The checkpoint's position on the durability-event axis.
    pub fn event_pos(&self) -> u64 {
        self.event_pos
    }
}

impl std::fmt::Debug for EngineCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineCheckpoint")
            .field("cycle_pos", &self.cycle_pos)
            .field("event_pos", &self.event_pos)
            .field("cores", &self.cores.len())
            .finish_non_exhaustive()
    }
}

/// How often a recording run captures checkpoints.
///
/// Both cadences are active at once: a checkpoint is taken whenever either
/// axis has advanced past its interval since the last capture, so sparse
/// regions of one axis still get coverage from the other. When the set
/// exceeds `max`, every other checkpoint is dropped and both intervals
/// double — the set stays bounded on arbitrarily long runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Capture after this many durability events since the last capture.
    pub every_events: u64,
    /// Capture after this many cycles of minimum-core-clock advance.
    pub every_cycles: u64,
    /// Soft cap on retained checkpoints (thinning threshold).
    pub max: usize,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            every_events: 64,
            every_cycles: 4096,
            max: 32,
        }
    }
}

impl CheckpointPolicy {
    /// A policy capturing every `n` durability events (cycle cadence
    /// scaled proportionally from the default).
    pub fn every(n: u64) -> Self {
        let d = CheckpointPolicy::default();
        CheckpointPolicy {
            every_events: n.max(1),
            every_cycles: (n.max(1))
                .saturating_mul(d.every_cycles / d.every_events)
                .max(1),
            max: d.max,
        }
    }
}

/// The checkpoints captured by one recording run, shareable across the
/// crash points (and worker threads) of a sweep.
#[derive(Debug, Default)]
pub struct CheckpointSet {
    cps: Vec<EngineCheckpoint>,
}

impl CheckpointSet {
    /// Number of retained checkpoints.
    pub fn len(&self) -> usize {
        self.cps.len()
    }

    /// Whether no checkpoint was captured.
    pub fn is_empty(&self) -> bool {
        self.cps.is_empty()
    }

    /// The retained checkpoints, in capture order.
    pub fn iter(&self) -> impl Iterator<Item = &EngineCheckpoint> {
        self.cps.iter()
    }

    /// The latest checkpoint strictly before `trigger` on the trigger's
    /// own axis, or `None` (resimulate from t=0).
    pub fn nearest(&self, trigger: CrashTrigger) -> Option<&EngineCheckpoint> {
        match trigger {
            CrashTrigger::Cycle(c) => self
                .cps
                .iter()
                .filter(|cp| cp.cycle_pos < c)
                .max_by_key(|cp| (cp.cycle_pos, cp.event_pos)),
            CrashTrigger::Event(n) => self
                .cps
                .iter()
                .filter(|cp| cp.event_pos < n)
                .max_by_key(|cp| cp.event_pos),
        }
    }
}

struct CoreRun {
    id: CoreId,
    time: Cycles,
    // Shared, not owned: many engines (schemes × crash points × workers)
    // can run the same stream concurrently without cloning any ops.
    txs: Arc<[Transaction]>,
    tx_idx: usize,
    op_idx: usize,
    phase: Phase,
    txid: TxId,
    tag: TxTag,
    // Reused across transactions (cleared at tx_begin, never dropped), so
    // the steady-state hot loop allocates nothing per transaction.
    cur_writes: FxHashMap<u64, Word>,
    committed: u64,
    // Open-system admission: a transaction may not begin before
    // `arrivals.arrivals[tx_idx]`; `None` runs the classic closed loop.
    arrivals: Option<ArrivalSchedule>,
    // Per-commit sojourn (arrival → commit) times for measured
    // transactions, in commit order. Empty on closed-loop runs.
    sojourns: Vec<u64>,
}

impl CoreRun {
    fn record(&self, committed: bool) -> TxRecord {
        let mut writes: Vec<(PhysAddr, Word)> = self
            .cur_writes
            .iter()
            .map(|(&a, &w)| (PhysAddr::new(a), w))
            .collect();
        writes.sort_by_key(|(a, _)| a.as_u64());
        TxRecord {
            tag: self.tag,
            writes,
            committed,
        }
    }
}

/// Executes per-core transaction streams under a logging scheme.
///
/// The engine always steps the core with the smallest local clock
/// (ties broken by core id), so runs are fully deterministic and
/// cross-core memory-controller contention is modelled faithfully.
///
/// See the crate docs for an end-to-end example.
pub struct Engine<'a> {
    machine: Machine,
    scheme: &'a mut dyn LoggingScheme,
    oracle: TxOracle,
    spec: Option<SpecMachine>,
}

impl<'a> Engine<'a> {
    /// Builds an engine over a fresh machine.
    pub fn new(config: &SimConfig, scheme: &'a mut dyn LoggingScheme) -> Self {
        Engine {
            machine: Machine::new(config),
            scheme,
            oracle: TxOracle::default(),
            spec: None,
        }
    }

    /// Gives the scheme and tests access to the machine before a run (e.g.
    /// to pre-populate PM state).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Attaches the executable crash-consistency spec
    /// ([`SpecMachine`]): every durability event feeds the per-word
    /// legal-value model, and a crash outcome carries the spec's
    /// localized verdict alongside the oracle's. Off by default; not
    /// supported on checkpoint-resumed runs (the checkpoint does not
    /// carry spec state).
    pub fn enable_spec(&mut self) {
        self.spec = Some(SpecMachine::new());
    }

    /// Runs `streams[i]` on core `i`. With `crash_at = Some(c)`, power
    /// fails at cycle `c` with a perfect ADR drain — shorthand for
    /// [`run_with_plan`](Self::run_with_plan) with
    /// [`CrashPlan::at_cycle`].
    ///
    /// Accepts anything convertible to [`TxStreams`]: an owned
    /// `Vec<Vec<Transaction>>`, a [`crate::TraceSet`] (by value or
    /// reference — pointer bumps, no op copies), or pre-shared
    /// `Vec<Arc<[Transaction]>>`.
    ///
    /// # Panics
    ///
    /// Panics if the stream count differs from the configured core count.
    pub fn run(self, streams: impl Into<TxStreams>, crash_at: Option<Cycles>) -> RunOutcome {
        self.run_with_plan(streams, crash_at.map(CrashPlan::at_cycle))
    }

    /// Runs `streams[i]` on core `i`, optionally crashing per `plan`:
    /// power fails at the planned trigger, the ADR drain persists what the
    /// plan's fault model allows, the scheme recovers (possibly re-crashed
    /// mid-recovery), and the outcome carries the oracle's verdict on the
    /// recovered image.
    ///
    /// On crash runs, traffic statistics freeze at the instant of power
    /// loss and [`RunOutcome::pm`] is snapshotted right after the oracle
    /// verdict — the image the oracle certified is the image returned.
    ///
    /// # Panics
    ///
    /// Panics if the stream count differs from the configured core count.
    pub fn run_with_plan(
        self,
        streams: impl Into<TxStreams>,
        plan: Option<CrashPlan>,
    ) -> RunOutcome {
        self.run_inner(streams.into(), plan, None, None).0
    }

    /// Runs a clean (crash-free) reference run while capturing periodic
    /// full-machine checkpoints per `policy`. The returned set feeds
    /// [`Engine::run_resumed`]; it is empty if the scheme does not support
    /// state snapshotting ([`LoggingScheme::snapshot_state`] returns
    /// `None`).
    ///
    /// # Panics
    ///
    /// Panics if the stream count differs from the configured core count.
    pub fn run_recording(
        self,
        streams: impl Into<TxStreams>,
        policy: CheckpointPolicy,
    ) -> (RunOutcome, CheckpointSet) {
        self.run_inner(streams.into(), None, Some(policy), None)
    }

    /// Runs a crash plan starting from `checkpoint` instead of t=0. The
    /// streams must be the same ones the recording run executed, and the
    /// checkpoint must satisfy the trigger-axis validity rule
    /// ([`CheckpointSet::nearest`] guarantees it); the outcome is then
    /// byte-identical to running the plan from scratch.
    ///
    /// # Panics
    ///
    /// Panics if the stream count differs from the configured core count
    /// or from the checkpoint's core count, or if the checkpoint lies at
    /// or past the plan's trigger.
    pub fn run_resumed(
        self,
        streams: impl Into<TxStreams>,
        plan: CrashPlan,
        checkpoint: &EngineCheckpoint,
    ) -> RunOutcome {
        match plan.trigger {
            CrashTrigger::Cycle(c) => assert!(
                checkpoint.cycle_pos < c,
                "checkpoint at cycle {} is not before the crash cycle {}",
                checkpoint.cycle_pos.as_u64(),
                c.as_u64()
            ),
            CrashTrigger::Event(n) => assert!(
                checkpoint.event_pos < n,
                "checkpoint at event {} is not before the crash event {n}",
                checkpoint.event_pos
            ),
        }
        self.run_inner(streams.into(), Some(plan), None, Some(checkpoint))
            .0
    }

    fn run_inner(
        mut self,
        streams: TxStreams,
        plan: Option<CrashPlan>,
        policy: Option<CheckpointPolicy>,
        resume: Option<&EngineCheckpoint>,
    ) -> (RunOutcome, CheckpointSet) {
        assert_eq!(
            streams.len(),
            self.machine.config.cores,
            "one transaction stream per core required"
        );
        let mut scheds: Vec<Option<ArrivalSchedule>> = match streams.arrivals {
            Some(a) => {
                assert_eq!(
                    a.len(),
                    streams.streams.len(),
                    "one arrival schedule per stream required"
                );
                a.into_iter().map(Some).collect()
            }
            None => vec![None; streams.streams.len()],
        };
        let mut cores: Vec<CoreRun> = streams
            .streams
            .into_iter()
            .enumerate()
            .map(|(i, txs)| {
                let arrivals = scheds[i].take();
                if let Some(sched) = &arrivals {
                    assert_eq!(
                        sched.arrivals.len(),
                        txs.len(),
                        "core {i} arrival schedule length must match its stream"
                    );
                }
                CoreRun {
                    id: CoreId::new(i),
                    time: Cycles::ZERO,
                    txs,
                    tx_idx: 0,
                    op_idx: 0,
                    phase: Phase::BetweenTxs,
                    txid: TxId::new(0),
                    tag: TxTag::default(),
                    cur_writes: FxHashMap::default(),
                    committed: 0,
                    arrivals,
                    sojourns: Vec::new(),
                }
            })
            .collect();

        if let Some(cp) = resume {
            assert!(
                self.spec.is_none(),
                "the spec machine requires a from-scratch run (checkpoints do not carry spec state)"
            );
            assert_eq!(
                cp.cores.len(),
                cores.len(),
                "checkpoint core count must match the streams"
            );
            self.machine.restore(&cp.machine);
            for (core, s) in cores.iter_mut().zip(&cp.cores) {
                core.time = s.time;
                core.tx_idx = s.tx_idx;
                core.op_idx = s.op_idx;
                core.phase = s.phase;
                core.txid = s.txid;
                core.tag = s.tag;
                core.cur_writes.clone_from(&s.cur_writes);
                core.committed = s.committed;
                core.sojourns.clone_from(&s.sojourns);
            }
            self.oracle = cp.oracle.clone();
            self.scheme.restore_state(&*cp.scheme);
        }

        // Arming happens *after* a restore: the clean recording run counts
        // events unarmed, and its prefix is byte-identical to an armed
        // run's (arming only sets the trip threshold), so the same
        // checkpoints serve every fault model. The checkpoint's
        // `event_pos < n` guarantees arming here cannot trip immediately.
        if let Some(CrashPlan {
            trigger: CrashTrigger::Event(n),
            ..
        }) = plan
        {
            self.machine.pm.arm_crash_at_event(n);
        }

        // Checkpoints record only on clean runs with snapshot-capable
        // schemes; capturing mid-crash-plan states would be useless (the
        // suffix differs per plan) and is not requested by any caller.
        let mut recording = policy.filter(|_| plan.is_none());
        if recording.is_some() && self.scheme.snapshot_state().is_none() {
            recording = None;
        }
        let mut set = CheckpointSet::default();
        let (mut next_event_due, mut next_cycle_due) = recording
            .map(|p| (p.every_events, p.every_cycles))
            .unwrap_or((u64::MAX, u64::MAX));

        // Pick the unfinished core with the smallest clock, ties broken by
        // core id — the keys `(time, i)` are unique, so the minimum is
        // unambiguous. A full scan is O(cores) per step; since `step` only
        // advances the stepped core's clock, cache the winner alongside the
        // runner-up's key and rescan only when the stepped core finishes or
        // its clock passes the runner-up. The sentinel key compares above
        // every real key, so a lone core never rescans.
        const NO_KEY: (Cycles, usize) = (Cycles::new(u64::MAX), usize::MAX);
        let mut cached: Option<(usize, (Cycles, usize))> = None;
        loop {
            let ci = match cached {
                Some((i, runner_up))
                    if cores[i].phase != Phase::Done && (cores[i].time, i) < runner_up =>
                {
                    i
                }
                _ => {
                    let mut best: Option<(Cycles, usize)> = None;
                    let mut runner_up = NO_KEY;
                    for (i, c) in cores.iter().enumerate() {
                        if c.phase == Phase::Done {
                            continue;
                        }
                        let key = (c.time, i);
                        match best {
                            None => best = Some(key),
                            Some(b) if key < b => {
                                runner_up = b;
                                best = Some(key);
                            }
                            Some(_) if key < runner_up => runner_up = key,
                            Some(_) => {}
                        }
                    }
                    let Some((_, i)) = best else { break };
                    cached = Some((i, runner_up));
                    i
                }
            };
            if let Some(pol) = &mut recording {
                // The winner's clock is the minimum unfinished clock, so
                // this loop boundary *is* a position on the cycle axis.
                let min_time = cores[ci].time;
                let events_total = self.machine.pm.events().total();
                if events_total >= next_event_due || min_time.as_u64() >= next_cycle_due {
                    let scheme = self
                        .scheme
                        .snapshot_state()
                        .expect("snapshot capability checked before the loop");
                    set.cps.push(EngineCheckpoint {
                        cycle_pos: min_time,
                        event_pos: events_total,
                        machine: self.machine.snapshot(),
                        cores: cores
                            .iter()
                            .map(|c| CoreState {
                                time: c.time,
                                tx_idx: c.tx_idx,
                                op_idx: c.op_idx,
                                phase: c.phase,
                                txid: c.txid,
                                tag: c.tag,
                                cur_writes: c.cur_writes.clone(),
                                committed: c.committed,
                                sojourns: c.sojourns.clone(),
                            })
                            .collect(),
                        oracle: self.oracle.clone(),
                        scheme,
                    });
                    if set.cps.len() >= pol.max {
                        // Thin to every other checkpoint and slow both
                        // cadences, keeping the set bounded on long runs.
                        let mut keep = false;
                        set.cps.retain(|_| {
                            keep = !keep;
                            keep
                        });
                        pol.every_events = pol.every_events.saturating_mul(2);
                        pol.every_cycles = pol.every_cycles.saturating_mul(2);
                    }
                    next_event_due = events_total.saturating_add(pol.every_events);
                    next_cycle_due = min_time.as_u64().saturating_add(pol.every_cycles);
                }
            }
            match plan.map(|p| p.trigger) {
                Some(CrashTrigger::Cycle(crash)) if cores[ci].time >= crash => {
                    break; // power failed before this core's next op
                }
                Some(CrashTrigger::Event(_)) if self.machine.pm.power_tripped() => {
                    break; // the armed event count was reached
                }
                _ => {}
            }
            self.step(&mut cores[ci]);
            let now = cores[ci].time;
            self.scheme.on_tick(&mut self.machine, now);
        }

        let sim_cycles = cores.iter().map(|c| c.time).max().unwrap_or(Cycles::ZERO);

        let (crash, pm_stats, pm_image) = match plan {
            Some(plan) => {
                let crash_cycle = match plan.trigger {
                    CrashTrigger::Cycle(c) => c,
                    CrashTrigger::Event(_) => sim_cycles,
                };
                let (outcome, pm_stats, pm_image) =
                    self.crash_sequence(&mut cores, &plan, crash_cycle);
                (Some(outcome), pm_stats, pm_image)
            }
            None => {
                // Clean end of run: let the scheme finish lazy background
                // work (e.g. Silo's post-commit data-region updates), then
                // drain the ADR on-PM buffer so traffic stats cover all
                // writes.
                self.scheme.on_run_end(&mut self.machine, sim_cycles);
                let (pm, probe) = (&mut self.machine.pm, &mut self.machine.probe);
                pm.flush_all_probed(probe, sim_cycles.as_u64());
                (None, self.machine.pm.stats(), self.machine.pm.clone())
            }
        };

        let breakdown = self.machine.probe.take_breakdown();
        if let Some(b) = &breakdown {
            // The accounting invariant: every cycle of every core's clock
            // is attributed to exactly one category. Violations are
            // engine/scheme attribution bugs; `evaluate check` re-validates
            // this on the emitted reports (assertions are compiled out in
            // release builds).
            for (i, c) in cores.iter().enumerate() {
                debug_assert_eq!(
                    b.core_total(i),
                    c.time.as_u64(),
                    "cycle breakdown must sum to core {i}'s clock"
                );
            }
        }
        // Open-system runs summarise the full sojourn multiset exactly:
        // merge every core's commit-ordered samples, sort once, take
        // nearest-rank percentiles. Closed-loop runs carry no schedules and
        // report `None`, keeping their output byte-identical.
        let latency = if cores.iter().any(|c| c.arrivals.is_some()) {
            let mut all: Vec<u64> = cores
                .iter()
                .flat_map(|c| c.sojourns.iter().copied())
                .collect();
            all.sort_unstable();
            Some(LatencyStats::from_sorted(&all))
        } else {
            None
        };
        let stats = SimStats {
            scheme: self.scheme.name(),
            cores: cores.len(),
            per_core: cores
                .iter()
                .map(|c| crate::CoreStats {
                    cycles: c.time,
                    txs_committed: c.committed,
                })
                .collect(),
            sim_cycles,
            txs_committed: cores.iter().map(|c| c.committed).sum(),
            pm: pm_stats,
            mc: self.machine.mc_stats_total(),
            cache: self.machine.caches.stats(),
            scheme_stats: self.scheme.stats(),
            breakdown,
            latency,
        };
        let outcome = RunOutcome {
            stats,
            crash,
            pm: pm_image,
            timeline: self.machine.probe.drain_timeline(),
            signature: self.machine.probe.take_signature(),
        };
        (outcome, set)
    }

    /// Executes one step (transaction boundary or single op) on `core`.
    fn step(&mut self, core: &mut CoreRun) {
        match core.phase {
            Phase::Done => {}
            Phase::BetweenTxs => {
                if core.tx_idx >= core.txs.len() {
                    core.phase = Phase::Done;
                    return;
                }
                // Open-system admission: the next transaction is not
                // eligible before its arrival cycle. The idle wait is
                // charged to Execute — the core is architecturally free
                // (no scheme stall), so the charge is scheme-independent
                // and the closed category set stays closed.
                if let Some(sched) = &core.arrivals {
                    let arrival = sched.arrivals[core.tx_idx];
                    if core.time.as_u64() < arrival {
                        let idle = arrival - core.time.as_u64();
                        core.time = Cycles::new(arrival);
                        self.machine
                            .probe
                            .charge(core.id.as_usize(), CycleCategory::Execute, idle);
                    }
                }
                // Tx_begin: the log generator latches (tid, txid), §III-B.
                core.txid = core.txid.next();
                core.tag = TxTag::new(core.id.thread(), core.txid);
                core.cur_writes.clear();
                let before = core.time;
                self.machine.probe.begin_claim_window();
                core.time =
                    self.scheme
                        .on_tx_begin(&mut self.machine, core.id, core.tag, core.time);
                self.machine.probe.charge_window(
                    core.id.as_usize(),
                    CycleCategory::CommitStall,
                    (core.time - before).as_u64(),
                );
                self.machine.probe.emit(
                    ProbeEventKind::TxBegin,
                    Some(core.id.as_usize() as u32),
                    core.time.as_u64(),
                    core.txid.as_u16() as u64,
                );
                core.phase = Phase::InTx;
                core.op_idx = 0;
            }
            Phase::InTx => {
                let tx = &core.txs[core.tx_idx];
                if core.op_idx < tx.ops().len() {
                    let op = tx.ops()[core.op_idx];
                    core.op_idx += 1;
                    self.exec_op(core, op);
                } else {
                    // Tx_end.
                    let before = core.time;
                    self.machine.probe.begin_claim_window();
                    core.time =
                        self.scheme
                            .on_tx_end(&mut self.machine, core.id, core.tag, core.time);
                    self.machine.probe.charge_window(
                        core.id.as_usize(),
                        CycleCategory::CommitStall,
                        (core.time - before).as_u64(),
                    );
                    if self.machine.pm.power_tripped() {
                        // Power died inside the commit sequence: whether
                        // the scheme persisted the commit marker before
                        // the cut is its own business. Either outcome is
                        // legal — atomically.
                        self.oracle.observe_ambiguous(core.record(false));
                        if let Some(spec) = &mut self.spec {
                            let event = self.machine.pm.events().total();
                            spec.on_ambiguous(core.id.as_usize(), core.tag, event);
                        }
                        core.phase = Phase::Done;
                        return;
                    }
                    self.oracle.observe(core.record(true));
                    if let Some(spec) = &mut self.spec {
                        let event = self.machine.pm.events().total();
                        spec.on_commit(core.id.as_usize(), core.tag, event);
                    }
                    core.committed += 1;
                    if let Some(sched) = &core.arrivals {
                        // Sojourn = queue wait + service: commit minus
                        // arrival. Setup transactions (below measure_from)
                        // are admitted but not user requests, so they are
                        // not recorded.
                        if core.tx_idx >= sched.measure_from {
                            core.sojourns
                                .push(core.time.as_u64() - sched.arrivals[core.tx_idx]);
                        }
                    }
                    self.machine.probe.emit(
                        ProbeEventKind::TxCommit,
                        Some(core.id.as_usize() as u32),
                        core.time.as_u64(),
                        core.txid.as_u16() as u64,
                    );
                    core.tx_idx += 1;
                    core.phase = Phase::BetweenTxs;
                }
            }
        }
    }

    fn exec_op(&mut self, core: &mut CoreRun, op: Op) {
        let issue = Cycles::new(self.machine.config.op_issue_cycles);
        let ci = core.id.as_usize();
        match op {
            Op::Compute(cycles) => {
                let delta = issue + Cycles::new(cycles as u64);
                core.time += delta;
                self.machine
                    .probe
                    .charge(ci, CycleCategory::Execute, delta.as_u64());
            }
            Op::Read(addr) => {
                let before = core.time;
                let acc = self.machine.caches.access(core.id, addr.line(), false);
                core.time += issue + acc.latency;
                if acc.filled_from_memory {
                    core.time = self.machine.pm_read_at(core.time, addr);
                }
                self.machine.probe.charge(
                    ci,
                    CycleCategory::Execute,
                    (core.time - before).as_u64(),
                );
                self.handle_evictions(core, &acc.pm_writebacks);
            }
            Op::Write(addr, new) => {
                self.machine.pm.note_event(EventKind::Store);
                let before = core.time;
                let acc = self.machine.caches.access(core.id, addr.line(), true);
                core.time += issue + acc.latency;
                if acc.filled_from_memory {
                    // Write-allocate: fetch the line before merging the store.
                    core.time = self.machine.pm_read_at(core.time, addr);
                }
                self.machine.probe.charge(
                    ci,
                    CycleCategory::Execute,
                    (core.time - before).as_u64(),
                );
                self.handle_evictions(core, &acc.pm_writebacks);
                let old = self.machine.shadow.load(addr, &self.machine.pm);
                self.machine.shadow.store(addr, new);
                core.cur_writes.insert(addr.word_aligned().as_u64(), new);
                if let Some(spec) = &mut self.spec {
                    let event = self.machine.pm.events().total();
                    spec.on_store(core.id.as_usize(), core.tag, addr, new, event);
                }
                let before = core.time;
                self.machine.probe.begin_claim_window();
                core.time =
                    self.machine
                        .shadow_store_hook(self.scheme, core.id, addr, old, new, core.time);
                self.machine.probe.charge_window(
                    ci,
                    CycleCategory::LogBufferFull,
                    (core.time - before).as_u64(),
                );
            }
        }
    }

    fn handle_evictions(&mut self, core: &mut CoreRun, lines: &[silo_types::LineAddr]) {
        let ci = core.id.as_usize();
        for &line in lines {
            let before = core.time;
            self.machine.probe.begin_claim_window();
            let (action, t) = self
                .scheme
                .on_evict(&mut self.machine, core.id, line, core.time);
            core.time = t;
            self.machine.probe.charge_window(
                ci,
                CycleCategory::WpqFull,
                (core.time - before).as_u64(),
            );
            if action == EvictAction::WriteBack {
                let coalesced = self.scheme.coalesces_pm_writes();
                let adm = self.machine.writeback_line(core.time, line, coalesced);
                // Evictions leave via write-back buffers; only WPQ
                // back-pressure reaches the core.
                self.machine.probe.charge(
                    ci,
                    CycleCategory::WpqFull,
                    (adm.admit - core.time).as_u64(),
                );
                core.time = adm.admit;
            }
        }
    }

    /// The full crash/recovery sequence. Returns the outcome together
    /// with the traffic-counter snapshot taken at the instant of power
    /// loss and the PM image exactly as the oracle verified it.
    fn crash_sequence(
        &mut self,
        cores: &mut [CoreRun],
        plan: &CrashPlan,
        crash_at: Cycles,
    ) -> (CrashOutcome, silo_pm::PmStats, silo_pm::PmDevice) {
        let mut inflight = 0;
        let event_at_cut = self.machine.pm.events().total();
        for core in cores.iter_mut() {
            if core.phase == Phase::InTx {
                self.oracle.observe(core.record(false));
                if let Some(spec) = &mut self.spec {
                    spec.on_crash_inflight(core.id.as_usize(), core.tag, event_at_cut);
                }
                inflight += 1;
            }
            core.phase = Phase::Done;
        }
        // Volatile state dies with the power.
        self.machine.caches.invalidate_all();
        self.machine.shadow.clear();
        // Traffic counters freeze at the instant of power loss: the
        // battery drain and recovery are not part of the run's traffic.
        let pm_stats = self.machine.pm.stats();
        let events_at_crash = self.machine.pm.events();
        self.machine.probe.emit(
            ProbeEventKind::Crash,
            None,
            crash_at.as_u64(),
            events_at_crash.total(),
        );
        // Battery-backed flush under the plan's fault model, then the
        // final ADR drain on residual energy.
        self.machine.pm.begin_battery(&plan.fault);
        self.scheme.on_crash(&mut self.machine);
        let drain = self.machine.pm.battery_drain();
        // Power restored: recover, possibly re-crashed mid-way.
        self.machine.pm.begin_recovery(plan.recovery_crash_at);
        let mut recovery = self.scheme.recover(&mut self.machine);
        let mut double_crash = false;
        if self.machine.pm.power_tripped() {
            // Power failed again inside recovery. The scheme's
            // battery-backed structures were consumed by the first
            // `on_crash` (re-flushing would write an empty crash header
            // over the intact one), so only the ADR buffer drains before
            // the second — this time uninterrupted — recovery.
            double_crash = true;
            self.machine.pm.begin_battery(&FaultModel::perfect_adr());
            let _ = self.machine.pm.battery_drain();
            self.machine.pm.begin_recovery(None);
            recovery = self.scheme.recover(&mut self.machine);
        }
        self.machine.pm.end_recovery();
        self.machine.probe.emit(
            ProbeEventKind::Recovery,
            None,
            crash_at.as_u64(),
            recovery.replayed_words + recovery.revoked_words,
        );
        let consistency = self.oracle.verify(&self.machine.pm);
        let spec = self.spec.as_ref().map(|s| s.verify(&self.machine.pm));
        let outcome = CrashOutcome {
            crash_at,
            recovery,
            consistency,
            committed_txs: self.oracle.tx_counts().0,
            inflight_txs: inflight,
            ambiguous_txs: self.oracle.ambiguous_txs(),
            events_at_crash,
            drain,
            double_crash,
            spec,
        };
        // `RunOutcome::pm` is cloned here, immediately after the verdict:
        // the image the oracle certified is the image callers see.
        (outcome, pm_stats, self.machine.pm.clone())
    }
}

impl Machine {
    /// Routes a store notification to the scheme. Separate method so the
    /// borrow of the scheme and the machine stay disjoint at the call site.
    fn shadow_store_hook(
        &mut self,
        scheme: &mut dyn LoggingScheme,
        core: CoreId,
        addr: PhysAddr,
        old: Word,
        new: Word,
        now: Cycles,
    ) -> Cycles {
        scheme.on_store(self, core, addr, old, new, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::NullScheme;

    fn tx_writing(addrs: &[(u64, u64)]) -> Transaction {
        let mut b = Transaction::builder();
        for &(a, v) in addrs {
            b = b.write(PhysAddr::new(a), Word::new(v));
        }
        b.build()
    }

    #[test]
    fn single_core_commits_all_transactions() {
        let cfg = SimConfig::table_ii(1);
        let txs = vec![
            tx_writing(&[(0, 1)]),
            tx_writing(&[(8, 2)]),
            tx_writing(&[(16, 3)]),
        ];
        let mut scheme = NullScheme::default();
        let out = Engine::new(&cfg, &mut scheme).run(vec![txs], None);
        assert_eq!(out.stats.txs_committed, 3);
        assert!(out.crash.is_none());
        assert!(out.stats.sim_cycles > Cycles::ZERO);
    }

    #[test]
    fn multicore_runs_all_streams() {
        let cfg = SimConfig::table_ii(4);
        let streams: Vec<Vec<Transaction>> = (0..4)
            .map(|c| {
                (0..5)
                    .map(|i| tx_writing(&[((c * 4096 + i * 8) as u64, i as u64)]))
                    .collect()
            })
            .collect();
        let mut scheme = NullScheme::default();
        let out = Engine::new(&cfg, &mut scheme).run(streams, None);
        assert_eq!(out.stats.txs_committed, 20);
    }

    #[test]
    fn admission_delays_transactions_to_their_arrival_cycle() {
        let cfg = SimConfig::table_ii(1);
        let txs = vec![
            tx_writing(&[(0, 1)]),
            tx_writing(&[(8, 2)]),
            tx_writing(&[(16, 3)]),
        ];
        // Closed-loop reference: no schedule, no latency summary.
        let mut s = NullScheme::default();
        let closed = Engine::new(&cfg, &mut s).run(vec![txs.clone()], None);
        assert!(closed.stats.latency.is_none());

        // A far-future arrival stalls the core until the arrival cycle, so
        // the run takes at least that long and every sojourn is bounded by
        // the service time alone (the queue is empty at admission).
        let trace = crate::TraceSet::new("t", 1, 2, 0, vec![txs])
            .with_arrivals(vec![ArrivalSchedule::new(vec![0, 50_000, 50_000], 1)]);
        let mut s = NullScheme::default();
        let open = Engine::new(&cfg, &mut s).run(&trace, None);
        assert_eq!(open.stats.txs_committed, 3);
        assert!(open.stats.sim_cycles.as_u64() >= 50_000);
        let l = open.stats.latency.expect("open-system run records latency");
        // Setup (index 0) is excluded by measure_from=1.
        assert_eq!(l.samples, 2);
        // Both measured txs arrive at 50k into an idle machine; their
        // sojourn is pure service time plus tx 2's queueing behind tx 1,
        // far below the 50k stall a from-arrival=0 accounting would show.
        assert!(
            l.max < 50_000,
            "sojourn should not include pre-arrival idle"
        );
        assert!(l.p50 > 0);
        assert!(l.p50 <= l.p99 && l.p99 <= l.p999 && l.p999 <= l.max);
    }

    #[test]
    fn admission_is_deterministic_and_checkpoint_safe() {
        let cfg = SimConfig::table_ii(2);
        let mk = || {
            let streams: Vec<Vec<Transaction>> = (0..2)
                .map(|c| {
                    (0..6)
                        .map(|i| tx_writing(&[((c * 4096 + i * 8) as u64, i as u64)]))
                        .collect()
                })
                .collect();
            crate::TraceSet::new("t", 2, 5, 0, streams).with_arrivals(
                (0..2)
                    .map(|c| {
                        ArrivalSchedule::new(
                            (0..6).map(|i| i as u64 * (400 + c as u64 * 37)).collect(),
                            1,
                        )
                    })
                    .collect(),
            )
        };
        let mut s1 = NullScheme::default();
        let a = Engine::new(&cfg, &mut s1).run(mk(), None);
        let mut s2 = NullScheme::default();
        let b = Engine::new(&cfg, &mut s2).run(mk(), None);
        assert_eq!(a.stats.latency, b.stats.latency);
        assert!(a.stats.latency.expect("latency").samples == 10);
    }

    #[test]
    #[should_panic(expected = "one transaction stream per core")]
    fn stream_count_must_match_cores() {
        let cfg = SimConfig::table_ii(2);
        let mut scheme = NullScheme::default();
        let streams: Vec<Vec<Transaction>> = vec![vec![]];
        let _ = Engine::new(&cfg, &mut scheme).run(streams, None);
    }

    #[test]
    fn determinism_same_input_same_stats() {
        let cfg = SimConfig::table_ii(2);
        let streams = || {
            vec![
                vec![tx_writing(&[(0, 1), (64, 2)]), tx_writing(&[(128, 3)])],
                vec![
                    tx_writing(&[(4096, 4)]),
                    tx_writing(&[(8192, 5), (8200, 6)]),
                ],
            ]
        };
        let mut s1 = NullScheme::default();
        let a = Engine::new(&cfg, &mut s1).run(streams(), None);
        let mut s2 = NullScheme::default();
        let b = Engine::new(&cfg, &mut s2).run(streams(), None);
        assert_eq!(a.stats.sim_cycles, b.stats.sim_cycles);
        assert_eq!(a.stats.pm, b.stats.pm);
        assert_eq!(a.stats.mc.busy_cycles, b.stats.mc.busy_cycles);
    }

    #[test]
    fn crash_with_null_scheme_loses_committed_data() {
        // NullScheme never persists anything (no flushes, tiny footprint
        // stays cached), so committed writes are lost — the oracle must
        // catch that.
        let cfg = SimConfig::table_ii(1);
        let txs = vec![tx_writing(&[(0, 7)])];
        let mut scheme = NullScheme::default();
        let out = Engine::new(&cfg, &mut scheme).run(vec![txs], Some(Cycles::new(1_000_000)));
        let crash = out.crash.expect("crash requested");
        assert_eq!(crash.committed_txs, 1);
        assert!(!crash.consistency.is_consistent());
        assert_eq!(
            crash.consistency.violations[0].kind,
            "committed write lost or corrupted"
        );
    }

    #[test]
    fn per_core_stats_track_each_core() {
        let cfg = SimConfig::table_ii(2);
        let streams = vec![
            vec![tx_writing(&[(0, 1)]), tx_writing(&[(8, 2)])],
            vec![tx_writing(&[(1 << 20, 3)])],
        ];
        let mut scheme = NullScheme::default();
        let out = Engine::new(&cfg, &mut scheme).run(streams, None);
        assert_eq!(out.stats.per_core.len(), 2);
        assert_eq!(out.stats.per_core[0].txs_committed, 2);
        assert_eq!(out.stats.per_core[1].txs_committed, 1);
        assert_eq!(
            out.stats
                .per_core
                .iter()
                .map(|c| c.txs_committed)
                .sum::<u64>(),
            out.stats.txs_committed
        );
        assert!(out.stats.fairness().expect("both cores ran") >= 1.0);
    }

    #[test]
    fn crash_at_cycle_zero_runs_nothing() {
        let cfg = SimConfig::table_ii(1);
        let txs = vec![tx_writing(&[(0, 7)])];
        let mut scheme = NullScheme::default();
        let out = Engine::new(&cfg, &mut scheme).run(vec![txs], Some(Cycles::ZERO));
        assert_eq!(out.stats.txs_committed, 0);
        let crash = out.crash.expect("crash requested");
        assert!(
            crash.consistency.is_consistent(),
            "nothing ran, PM all-zero"
        );
    }

    #[test]
    fn reads_and_compute_advance_time_without_pm_writes() {
        let cfg = SimConfig::table_ii(1);
        let tx = Transaction::builder()
            .read(PhysAddr::new(0))
            .compute(100)
            .read(PhysAddr::new(0))
            .build();
        let mut scheme = NullScheme::default();
        let out = Engine::new(&cfg, &mut scheme).run(vec![vec![tx]], None);
        assert_eq!(out.stats.pm.accepted_writes, 0);
        // 1 cold miss (100 cyc PM read) + compute(100) + hit.
        assert!(out.stats.sim_cycles >= Cycles::new(200));
        assert_eq!(out.stats.pm.reads, 0, "timing-only read path");
        assert_eq!(out.stats.mc.reads, 1);
    }

    #[test]
    fn cold_store_pays_write_allocate_fetch() {
        let cfg = SimConfig::table_ii(1);
        let tx = tx_writing(&[(0, 1)]);
        let mut scheme = NullScheme::default();
        let out = Engine::new(&cfg, &mut scheme).run(vec![vec![tx]], None);
        // L1+L2+L3 lookups (44) + PM read (100) + issue cycles.
        assert!(out.stats.sim_cycles >= Cycles::new(144));
    }

    /// A minimal scheme for crash-path tests: optionally bypass-writes a
    /// marker at commit (so commits produce durability events), stages
    /// `crash_bytes` at `crash_addr` in `on_crash`, and replays a fixed
    /// word in `recover`.
    struct ProbeScheme {
        commit_addr: Option<PhysAddr>,
        crash_addr: PhysAddr,
        crash_bytes: usize,
        recover_words: Vec<(PhysAddr, Word)>,
        recover_calls: u64,
    }

    impl ProbeScheme {
        fn quiet() -> Self {
            ProbeScheme {
                commit_addr: None,
                crash_addr: PhysAddr::new(1 << 16),
                crash_bytes: 0,
                recover_words: Vec::new(),
                recover_calls: 0,
            }
        }
    }

    impl LoggingScheme for ProbeScheme {
        fn name(&self) -> &'static str {
            "Probe"
        }
        fn on_tx_begin(
            &mut self,
            _m: &mut Machine,
            _core: CoreId,
            _tag: TxTag,
            now: Cycles,
        ) -> Cycles {
            now
        }
        fn on_store(
            &mut self,
            _m: &mut Machine,
            _core: CoreId,
            _addr: PhysAddr,
            _old: Word,
            _new: Word,
            now: Cycles,
        ) -> Cycles {
            now
        }
        fn on_evict(
            &mut self,
            _m: &mut Machine,
            _core: CoreId,
            _line: silo_types::LineAddr,
            now: Cycles,
        ) -> (EvictAction, Cycles) {
            (EvictAction::WriteBack, now)
        }
        fn on_tx_end(
            &mut self,
            m: &mut Machine,
            _core: CoreId,
            _tag: TxTag,
            now: Cycles,
        ) -> Cycles {
            if let Some(addr) = self.commit_addr {
                m.pm_write_through(now, addr, &[0xCC; 8]);
            }
            now
        }
        fn on_crash(&mut self, m: &mut Machine) {
            if self.crash_bytes > 0 {
                m.pm.write(self.crash_addr, &vec![0xAB; self.crash_bytes]);
            }
        }
        fn recover(&mut self, m: &mut Machine) -> crate::RecoveryReport {
            self.recover_calls += 1;
            for &(addr, w) in &self.recover_words {
                m.pm.write(addr, &w.to_le_bytes());
            }
            crate::RecoveryReport::default()
        }
        fn stats(&self) -> crate::SchemeStats {
            crate::SchemeStats::default()
        }
    }

    #[test]
    fn crash_run_stats_freeze_at_power_loss() {
        // The headline regression: `on_crash` traffic (the battery drain)
        // must not count toward the run's traffic statistics, but it must
        // be present in the returned (oracle-verified) image.
        let cfg = SimConfig::table_ii(1);
        let mut scheme = ProbeScheme::quiet();
        scheme.crash_bytes = 64;
        let crash_addr = scheme.crash_addr;
        let out = Engine::new(&cfg, &mut scheme).run(
            vec![vec![tx_writing(&[(0, 7)])]],
            Some(Cycles::new(1_000_000)),
        );
        assert!(out.crash.is_some());
        // The run itself issued no PM writes (the tiny store stays
        // cached); the 64-byte on_crash write landed after the freeze.
        assert_eq!(out.stats.pm.accepted_writes, 0);
        assert_eq!(out.stats.pm.accepted_bytes, 0);
        // ...but the image the oracle verified carries it.
        assert_eq!(out.pm.peek(crash_addr, 64), vec![0xAB; 64]);
        assert!(
            out.pm.stats().accepted_writes > out.stats.pm.accepted_writes,
            "returned device counted the post-crash write"
        );
    }

    #[test]
    fn clean_run_traffic_still_includes_final_drain() {
        // Clean runs keep the old behavior: flush_all before stats.
        let cfg = SimConfig::table_ii(1);
        let mut scheme = ProbeScheme::quiet();
        scheme.commit_addr = Some(PhysAddr::new(1 << 18));
        let out = Engine::new(&cfg, &mut scheme).run(vec![vec![tx_writing(&[(0, 7)])]], None);
        assert!(out.crash.is_none());
        assert_eq!(out.stats.pm, out.pm.stats(), "snapshot == device counters");
        assert!(out.stats.pm.accepted_writes > 0);
    }

    #[test]
    fn event_indexed_crash_trips_at_exact_event() {
        let cfg = SimConfig::table_ii(1);
        let streams = || -> Vec<Vec<Transaction>> {
            vec![(0..20).map(|i| tx_writing(&[(i * 64, i + 1)])).collect()]
        };
        let mut clean_scheme = ProbeScheme::quiet();
        clean_scheme.commit_addr = Some(PhysAddr::new(1 << 18));
        let clean = Engine::new(&cfg, &mut clean_scheme).run(streams(), None);
        let total = clean.pm.events().total();
        assert!(total > 20, "stores + commit writes produce events");

        let mut committed_at = Vec::new();
        for n in [1, total / 3, total / 2, total - 1] {
            let mut scheme = ProbeScheme::quiet();
            scheme.commit_addr = Some(PhysAddr::new(1 << 18));
            let out = Engine::new(&cfg, &mut scheme)
                .run_with_plan(streams(), Some(CrashPlan::at_event(n)));
            let crash = out.crash.expect("crash injected");
            assert_eq!(
                crash.events_at_crash.total(),
                n,
                "power fails exactly at event {n}"
            );
            committed_at.push(crash.committed_txs);
        }
        assert!(
            committed_at.windows(2).all(|w| w[0] <= w[1]),
            "later crash points commit at least as much: {committed_at:?}"
        );
    }

    #[test]
    fn event_crash_runs_are_deterministic() {
        let cfg = SimConfig::table_ii(2);
        let streams = || {
            vec![
                vec![tx_writing(&[(0, 1), (64, 2)]), tx_writing(&[(128, 3)])],
                vec![tx_writing(&[(4096, 4)]), tx_writing(&[(8192, 5)])],
            ]
        };
        let run = || {
            let mut s = ProbeScheme::quiet();
            s.commit_addr = Some(PhysAddr::new(1 << 18));
            Engine::new(&cfg, &mut s).run_with_plan(streams(), Some(CrashPlan::at_event(5)))
        };
        let (a, b) = (run(), run());
        let (ca, cb) = (a.crash.unwrap(), b.crash.unwrap());
        assert_eq!(ca.events_at_crash, cb.events_at_crash);
        assert_eq!(ca.committed_txs, cb.committed_txs);
        assert_eq!(a.stats.pm, b.stats.pm);
    }

    #[test]
    fn commit_racing_power_failure_is_ambiguous_not_committed() {
        // Sweep the first few events; with a scheme that bypass-writes at
        // commit, some crash point lands inside `on_tx_end`.
        let cfg = SimConfig::table_ii(1);
        let mut saw_ambiguous = false;
        for n in 1..=8 {
            let mut scheme = ProbeScheme::quiet();
            scheme.commit_addr = Some(PhysAddr::new(1 << 18));
            let out = Engine::new(&cfg, &mut scheme).run_with_plan(
                vec![vec![tx_writing(&[(0, 7)])]],
                Some(CrashPlan::at_event(n)),
            );
            let crash = out.crash.expect("crash injected");
            if crash.ambiguous_txs > 0 {
                saw_ambiguous = true;
                assert_eq!(crash.committed_txs, 0, "ambiguous != committed");
                assert_eq!(crash.inflight_txs, 0, "ambiguous != inflight");
            }
        }
        assert!(saw_ambiguous, "some event index lands inside the commit");
    }

    #[test]
    fn double_crash_reruns_recovery_idempotently() {
        let cfg = SimConfig::table_ii(1);
        let mut scheme = ProbeScheme::quiet();
        scheme.recover_words = vec![
            (PhysAddr::new(1 << 16), Word::new(11)),
            (PhysAddr::new((1 << 16) + 8), Word::new(22)),
            (PhysAddr::new((1 << 16) + 16), Word::new(33)),
        ];
        let plan = CrashPlan::at_cycle(Cycles::new(1_000_000)).with_recovery_crash(1);
        let out = Engine::new(&cfg, &mut scheme)
            .run_with_plan(vec![vec![tx_writing(&[(0, 7)])]], Some(plan));
        let crash = out.crash.expect("crash injected");
        assert!(crash.double_crash, "recovery was re-crashed");
        assert_eq!(scheme.recover_calls, 2, "recovery ran twice");
        // The second, uninterrupted recovery applied all three words.
        assert_eq!(out.pm.peek_word(PhysAddr::new(1 << 16)), Word::new(11));
        assert_eq!(
            out.pm.peek_word(PhysAddr::new((1 << 16) + 16)),
            Word::new(33)
        );
    }

    #[test]
    fn bounded_battery_discards_staged_commits() {
        // A committed transaction whose data sits in the on-PM buffer is
        // lost when the residual-energy budget cannot drain it — the
        // oracle must catch the violation.
        let cfg = SimConfig::table_ii(1);
        let mut scheme = ProbeScheme::quiet();
        scheme.crash_bytes = 256; // staged ahead of nothing else
        let plan =
            CrashPlan::at_cycle(Cycles::new(1_000_000)).with_fault(FaultModel::bounded_battery(0));
        let out = Engine::new(&cfg, &mut scheme)
            .run_with_plan(vec![vec![tx_writing(&[(0, 7)])]], Some(plan));
        let crash = out.crash.expect("crash injected");
        assert!(crash.drain.discarded_lines > 0 || crash.drain.discarded_bytes > 0);
        assert_eq!(
            out.pm.peek(scheme.crash_addr, 8),
            vec![0; 8],
            "zero budget persists nothing from on_crash"
        );
    }

    #[test]
    fn spec_machine_agrees_with_oracle_and_localizes() {
        // NullScheme loses the committed write; both the digest oracle and
        // the spec must flag it, and the spec names the exact word with
        // its history.
        let cfg = SimConfig::table_ii(1);
        let txs = vec![tx_writing(&[(0, 7), (64, 8)])];
        let mut scheme = NullScheme::default();
        let mut engine = Engine::new(&cfg, &mut scheme);
        engine.enable_spec();
        engine.machine_mut().probe.enable_signature();
        let out = engine.run(vec![txs], Some(Cycles::new(1_000_000)));
        let crash = out.crash.expect("crash requested");
        let spec = crash.spec.expect("spec enabled");
        assert_eq!(
            spec.is_consistent(),
            crash.consistency.is_consistent(),
            "spec and oracle must agree"
        );
        assert!(!spec.is_consistent());
        let v = spec.first_offender().expect("violation");
        assert_eq!(v.addr, PhysAddr::new(0), "lowest offending word first");
        assert_eq!(v.legal, vec![Word::new(7)]);
        assert!(v.event > 0, "history carries the durability-event index");
        assert!(!v.history.is_empty());
        let sig = out.signature.expect("signature recorder enabled");
        assert!(sig.count() > 0, "tx/crash events produce coverage bits");
    }

    #[test]
    fn spec_disabled_runs_report_none() {
        let cfg = SimConfig::table_ii(1);
        let txs = vec![tx_writing(&[(0, 7)])];
        let mut scheme = NullScheme::default();
        let out = Engine::new(&cfg, &mut scheme).run(vec![txs], Some(Cycles::new(1_000_000)));
        assert!(out.crash.expect("crash requested").spec.is_none());
        assert!(out.signature.is_none());
    }

    #[test]
    fn capacity_pressure_reaches_pm_through_evictions() {
        // Write far more distinct lines than the tiny-est real hierarchy
        // can hold... Table II L3 is 8 MB, too big to overflow cheaply, so
        // shrink the hierarchy.
        let mut cfg = SimConfig::table_ii(1);
        cfg.hierarchy.l1 = silo_cache::CacheConfig::new(2 * 64, 1);
        cfg.hierarchy.l2 = silo_cache::CacheConfig::new(2 * 64, 1);
        cfg.hierarchy.l3 = silo_cache::CacheConfig::new(4 * 64, 1);
        let txs: Vec<Transaction> = (0..64).map(|i| tx_writing(&[(i * 64, i + 1)])).collect();
        let mut scheme = NullScheme::default();
        let out = Engine::new(&cfg, &mut scheme).run(vec![txs], None);
        assert!(out.stats.cache.pm_writebacks > 0);
        assert!(out.stats.pm.accepted_writes > 0);
    }
}
