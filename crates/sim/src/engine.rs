//! The deterministic multicore execution engine.

use std::collections::HashMap;

use silo_types::{CoreId, Cycles, PhysAddr, TxId, TxTag, Word};

use crate::schemes::EvictAction;
use crate::{
    ConsistencyReport, LoggingScheme, Machine, Op, RecoveryReport, SimConfig, SimStats,
    Transaction, TxOracle, TxRecord,
};

/// The result of a crash-injected run.
#[derive(Clone, Debug)]
pub struct CrashOutcome {
    /// The cycle at which power failed.
    pub crash_at: Cycles,
    /// What the scheme's recovery did.
    pub recovery: RecoveryReport,
    /// The oracle's verdict on the recovered PM image.
    pub consistency: ConsistencyReport,
    /// Transactions committed before the crash.
    pub committed_txs: u64,
    /// Transactions in flight (uncommitted) at the crash.
    pub inflight_txs: u64,
}

/// Everything a run returns.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Aggregate statistics.
    pub stats: SimStats,
    /// Present when a crash was injected.
    pub crash: Option<CrashOutcome>,
    /// The final PM device contents (post-recovery when a crash was
    /// injected), for inspection by tests and examples.
    pub pm: silo_pm::PmDevice,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    BetweenTxs,
    InTx,
    Done,
}

struct CoreRun {
    id: CoreId,
    time: Cycles,
    txs: Vec<Transaction>,
    tx_idx: usize,
    op_idx: usize,
    phase: Phase,
    txid: TxId,
    tag: TxTag,
    cur_writes: HashMap<u64, Word>,
    committed: u64,
}

impl CoreRun {
    fn record(&self, committed: bool) -> TxRecord {
        let mut writes: Vec<(PhysAddr, Word)> = self
            .cur_writes
            .iter()
            .map(|(&a, &w)| (PhysAddr::new(a), w))
            .collect();
        writes.sort_by_key(|(a, _)| a.as_u64());
        TxRecord {
            tag: self.tag,
            writes,
            committed,
        }
    }
}

/// Executes per-core transaction streams under a logging scheme.
///
/// The engine always steps the core with the smallest local clock
/// (ties broken by core id), so runs are fully deterministic and
/// cross-core memory-controller contention is modelled faithfully.
///
/// See the crate docs for an end-to-end example.
pub struct Engine<'a> {
    machine: Machine,
    scheme: &'a mut dyn LoggingScheme,
    oracle: TxOracle,
}

impl<'a> Engine<'a> {
    /// Builds an engine over a fresh machine.
    pub fn new(config: &SimConfig, scheme: &'a mut dyn LoggingScheme) -> Self {
        Engine {
            machine: Machine::new(config),
            scheme,
            oracle: TxOracle::default(),
        }
    }

    /// Gives the scheme and tests access to the machine before a run (e.g.
    /// to pre-populate PM state).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Runs `streams[i]` on core `i`. With `crash_at = Some(c)`, power
    /// fails at cycle `c`: cores halt at the preceding op boundary, the
    /// crash/recovery sequence executes, and the outcome carries the
    /// oracle's consistency verdict.
    ///
    /// # Panics
    ///
    /// Panics if `streams.len()` differs from the configured core count.
    pub fn run(mut self, streams: Vec<Vec<Transaction>>, crash_at: Option<Cycles>) -> RunOutcome {
        assert_eq!(
            streams.len(),
            self.machine.config.cores,
            "one transaction stream per core required"
        );
        let mut cores: Vec<CoreRun> = streams
            .into_iter()
            .enumerate()
            .map(|(i, txs)| CoreRun {
                id: CoreId::new(i),
                time: Cycles::ZERO,
                txs,
                tx_idx: 0,
                op_idx: 0,
                phase: Phase::BetweenTxs,
                txid: TxId::new(0),
                tag: TxTag::default(),
                cur_writes: HashMap::new(),
                committed: 0,
            })
            .collect();

        loop {
            // Pick the unfinished core with the smallest clock.
            let next = cores
                .iter()
                .enumerate()
                .filter(|(_, c)| c.phase != Phase::Done)
                .min_by_key(|(i, c)| (c.time, *i))
                .map(|(i, _)| i);
            let Some(ci) = next else { break };
            if let Some(crash) = crash_at {
                if cores[ci].time >= crash {
                    break; // power failed before this core's next op
                }
            }
            self.step(&mut cores[ci]);
            let now = cores[ci].time;
            self.scheme.on_tick(&mut self.machine, now);
        }

        let sim_cycles = cores.iter().map(|c| c.time).max().unwrap_or(Cycles::ZERO);

        let crash = match crash_at {
            Some(crash_cycle) => Some(self.crash_sequence(&mut cores, crash_cycle)),
            None => {
                // Clean end of run: let the scheme finish lazy background
                // work (e.g. Silo's post-commit data-region updates).
                self.scheme.on_run_end(&mut self.machine, sim_cycles);
                None
            }
        };

        // Drain the ADR on-PM buffer so traffic stats cover all writes.
        self.machine.pm.flush_all();
        let stats = SimStats {
            scheme: self.scheme.name(),
            cores: cores.len(),
            per_core: cores
                .iter()
                .map(|c| crate::CoreStats {
                    cycles: c.time,
                    txs_committed: c.committed,
                })
                .collect(),
            sim_cycles,
            txs_committed: cores.iter().map(|c| c.committed).sum(),
            pm: self.machine.pm.stats(),
            mc: self.machine.mc_stats_total(),
            cache: self.machine.caches.stats(),
            scheme_stats: self.scheme.stats(),
        };
        RunOutcome {
            stats,
            crash,
            pm: self.machine.pm.clone(),
        }
    }

    /// Executes one step (transaction boundary or single op) on `core`.
    fn step(&mut self, core: &mut CoreRun) {
        match core.phase {
            Phase::Done => {}
            Phase::BetweenTxs => {
                if core.tx_idx >= core.txs.len() {
                    core.phase = Phase::Done;
                    return;
                }
                // Tx_begin: the log generator latches (tid, txid), §III-B.
                core.txid = core.txid.next();
                core.tag = TxTag::new(core.id.thread(), core.txid);
                core.cur_writes.clear();
                core.time =
                    self.scheme
                        .on_tx_begin(&mut self.machine, core.id, core.tag, core.time);
                core.phase = Phase::InTx;
                core.op_idx = 0;
            }
            Phase::InTx => {
                let tx = &core.txs[core.tx_idx];
                if core.op_idx < tx.ops().len() {
                    let op = tx.ops()[core.op_idx];
                    core.op_idx += 1;
                    self.exec_op(core, op);
                } else {
                    // Tx_end.
                    core.time =
                        self.scheme
                            .on_tx_end(&mut self.machine, core.id, core.tag, core.time);
                    self.oracle.observe(core.record(true));
                    core.committed += 1;
                    core.tx_idx += 1;
                    core.phase = Phase::BetweenTxs;
                }
            }
        }
    }

    fn exec_op(&mut self, core: &mut CoreRun, op: Op) {
        let issue = Cycles::new(self.machine.config.op_issue_cycles);
        match op {
            Op::Compute(cycles) => {
                core.time += issue + Cycles::new(cycles as u64);
            }
            Op::Read(addr) => {
                let acc = self.machine.caches.access(core.id, addr.line(), false);
                core.time += issue + acc.latency;
                if acc.filled_from_memory {
                    core.time = self.machine.pm_read_at(core.time, addr);
                }
                self.handle_evictions(core, &acc.pm_writebacks);
            }
            Op::Write(addr, new) => {
                let acc = self.machine.caches.access(core.id, addr.line(), true);
                core.time += issue + acc.latency;
                if acc.filled_from_memory {
                    // Write-allocate: fetch the line before merging the store.
                    core.time = self.machine.pm_read_at(core.time, addr);
                }
                self.handle_evictions(core, &acc.pm_writebacks);
                let old = self.machine.shadow.load(addr, &self.machine.pm);
                self.machine.shadow.store(addr, new);
                core.cur_writes.insert(addr.word_aligned().as_u64(), new);
                core.time =
                    self.machine
                        .shadow_store_hook(self.scheme, core.id, addr, old, new, core.time);
            }
        }
    }

    fn handle_evictions(&mut self, core: &mut CoreRun, lines: &[silo_types::LineAddr]) {
        for &line in lines {
            let (action, t) = self
                .scheme
                .on_evict(&mut self.machine, core.id, line, core.time);
            core.time = t;
            if action == EvictAction::WriteBack {
                let coalesced = self.scheme.coalesces_pm_writes();
                let adm = self.machine.writeback_line(core.time, line, coalesced);
                // Evictions leave via write-back buffers; only WPQ
                // back-pressure reaches the core.
                core.time = adm.admit;
            }
        }
    }

    fn crash_sequence(&mut self, cores: &mut [CoreRun], crash_at: Cycles) -> CrashOutcome {
        let mut inflight = 0;
        for core in cores.iter_mut() {
            if core.phase == Phase::InTx {
                self.oracle.observe(core.record(false));
                inflight += 1;
            }
            core.phase = Phase::Done;
        }
        // Volatile state dies with the power.
        self.machine.caches.invalidate_all();
        self.machine.shadow.clear();
        // Battery-backed flush, then recovery.
        self.scheme.on_crash(&mut self.machine);
        let recovery = self.scheme.recover(&mut self.machine);
        let consistency = self.oracle.verify(&self.machine.pm);
        CrashOutcome {
            crash_at,
            recovery,
            consistency,
            committed_txs: self.oracle.tx_counts().0,
            inflight_txs: inflight,
        }
    }
}

impl Machine {
    /// Routes a store notification to the scheme. Separate method so the
    /// borrow of the scheme and the machine stay disjoint at the call site.
    fn shadow_store_hook(
        &mut self,
        scheme: &mut dyn LoggingScheme,
        core: CoreId,
        addr: PhysAddr,
        old: Word,
        new: Word,
        now: Cycles,
    ) -> Cycles {
        scheme.on_store(self, core, addr, old, new, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::NullScheme;

    fn tx_writing(addrs: &[(u64, u64)]) -> Transaction {
        let mut b = Transaction::builder();
        for &(a, v) in addrs {
            b = b.write(PhysAddr::new(a), Word::new(v));
        }
        b.build()
    }

    #[test]
    fn single_core_commits_all_transactions() {
        let cfg = SimConfig::table_ii(1);
        let txs = vec![
            tx_writing(&[(0, 1)]),
            tx_writing(&[(8, 2)]),
            tx_writing(&[(16, 3)]),
        ];
        let mut scheme = NullScheme::default();
        let out = Engine::new(&cfg, &mut scheme).run(vec![txs], None);
        assert_eq!(out.stats.txs_committed, 3);
        assert!(out.crash.is_none());
        assert!(out.stats.sim_cycles > Cycles::ZERO);
    }

    #[test]
    fn multicore_runs_all_streams() {
        let cfg = SimConfig::table_ii(4);
        let streams: Vec<Vec<Transaction>> = (0..4)
            .map(|c| {
                (0..5)
                    .map(|i| tx_writing(&[((c * 4096 + i * 8) as u64, i as u64)]))
                    .collect()
            })
            .collect();
        let mut scheme = NullScheme::default();
        let out = Engine::new(&cfg, &mut scheme).run(streams, None);
        assert_eq!(out.stats.txs_committed, 20);
    }

    #[test]
    #[should_panic(expected = "one transaction stream per core")]
    fn stream_count_must_match_cores() {
        let cfg = SimConfig::table_ii(2);
        let mut scheme = NullScheme::default();
        let _ = Engine::new(&cfg, &mut scheme).run(vec![vec![]], None);
    }

    #[test]
    fn determinism_same_input_same_stats() {
        let cfg = SimConfig::table_ii(2);
        let streams = || {
            vec![
                vec![tx_writing(&[(0, 1), (64, 2)]), tx_writing(&[(128, 3)])],
                vec![
                    tx_writing(&[(4096, 4)]),
                    tx_writing(&[(8192, 5), (8200, 6)]),
                ],
            ]
        };
        let mut s1 = NullScheme::default();
        let a = Engine::new(&cfg, &mut s1).run(streams(), None);
        let mut s2 = NullScheme::default();
        let b = Engine::new(&cfg, &mut s2).run(streams(), None);
        assert_eq!(a.stats.sim_cycles, b.stats.sim_cycles);
        assert_eq!(a.stats.pm, b.stats.pm);
        assert_eq!(a.stats.mc.busy_cycles, b.stats.mc.busy_cycles);
    }

    #[test]
    fn crash_with_null_scheme_loses_committed_data() {
        // NullScheme never persists anything (no flushes, tiny footprint
        // stays cached), so committed writes are lost — the oracle must
        // catch that.
        let cfg = SimConfig::table_ii(1);
        let txs = vec![tx_writing(&[(0, 7)])];
        let mut scheme = NullScheme::default();
        let out = Engine::new(&cfg, &mut scheme).run(vec![txs], Some(Cycles::new(1_000_000)));
        let crash = out.crash.expect("crash requested");
        assert_eq!(crash.committed_txs, 1);
        assert!(!crash.consistency.is_consistent());
        assert_eq!(
            crash.consistency.violations[0].kind,
            "committed write lost or corrupted"
        );
    }

    #[test]
    fn per_core_stats_track_each_core() {
        let cfg = SimConfig::table_ii(2);
        let streams = vec![
            vec![tx_writing(&[(0, 1)]), tx_writing(&[(8, 2)])],
            vec![tx_writing(&[(1 << 20, 3)])],
        ];
        let mut scheme = NullScheme::default();
        let out = Engine::new(&cfg, &mut scheme).run(streams, None);
        assert_eq!(out.stats.per_core.len(), 2);
        assert_eq!(out.stats.per_core[0].txs_committed, 2);
        assert_eq!(out.stats.per_core[1].txs_committed, 1);
        assert_eq!(
            out.stats
                .per_core
                .iter()
                .map(|c| c.txs_committed)
                .sum::<u64>(),
            out.stats.txs_committed
        );
        assert!(out.stats.fairness().expect("both cores ran") >= 1.0);
    }

    #[test]
    fn crash_at_cycle_zero_runs_nothing() {
        let cfg = SimConfig::table_ii(1);
        let txs = vec![tx_writing(&[(0, 7)])];
        let mut scheme = NullScheme::default();
        let out = Engine::new(&cfg, &mut scheme).run(vec![txs], Some(Cycles::ZERO));
        assert_eq!(out.stats.txs_committed, 0);
        let crash = out.crash.expect("crash requested");
        assert!(
            crash.consistency.is_consistent(),
            "nothing ran, PM all-zero"
        );
    }

    #[test]
    fn reads_and_compute_advance_time_without_pm_writes() {
        let cfg = SimConfig::table_ii(1);
        let tx = Transaction::builder()
            .read(PhysAddr::new(0))
            .compute(100)
            .read(PhysAddr::new(0))
            .build();
        let mut scheme = NullScheme::default();
        let out = Engine::new(&cfg, &mut scheme).run(vec![vec![tx]], None);
        assert_eq!(out.stats.pm.accepted_writes, 0);
        // 1 cold miss (100 cyc PM read) + compute(100) + hit.
        assert!(out.stats.sim_cycles >= Cycles::new(200));
        assert_eq!(out.stats.pm.reads, 0, "timing-only read path");
        assert_eq!(out.stats.mc.reads, 1);
    }

    #[test]
    fn cold_store_pays_write_allocate_fetch() {
        let cfg = SimConfig::table_ii(1);
        let tx = tx_writing(&[(0, 1)]);
        let mut scheme = NullScheme::default();
        let out = Engine::new(&cfg, &mut scheme).run(vec![vec![tx]], None);
        // L1+L2+L3 lookups (44) + PM read (100) + issue cycles.
        assert!(out.stats.sim_cycles >= Cycles::new(144));
    }

    #[test]
    fn capacity_pressure_reaches_pm_through_evictions() {
        // Write far more distinct lines than the tiny-est real hierarchy
        // can hold... Table II L3 is 8 MB, too big to overflow cheaply, so
        // shrink the hierarchy.
        let mut cfg = SimConfig::table_ii(1);
        cfg.hierarchy.l1 = silo_cache::CacheConfig::new(2 * 64, 1);
        cfg.hierarchy.l2 = silo_cache::CacheConfig::new(2 * 64, 1);
        cfg.hierarchy.l3 = silo_cache::CacheConfig::new(4 * 64, 1);
        let txs: Vec<Transaction> = (0..64).map(|i| tx_writing(&[(i * 64, i + 1)])).collect();
        let mut scheme = NullScheme::default();
        let out = Engine::new(&cfg, &mut scheme).run(vec![txs], None);
        assert!(out.stats.cache.pm_writebacks > 0);
        assert!(out.stats.pm.accepted_writes > 0);
    }
}
