//! Immutable, shareable workload trace artifacts.
//!
//! A [`TraceSet`] is the first-class form of "the input to a simulation
//! run": one operation stream per core, frozen behind `Arc`s, plus the
//! provenance that produced it (workload identity, core count,
//! transactions per core, RNG seed) and a content hash over every op.
//! Cloning a `TraceSet` — or converting it into the [`TxStreams`] the
//! [`Engine`](crate::Engine) consumes — is a handful of pointer bumps, so
//! one generated trace can be swept across many schemes, crash points, and
//! worker threads without re-running the generator or copying ops.

use std::sync::Arc;

use crate::ops::{Op, Transaction};

/// Per-core open-system arrival schedule: one absolute arrival cycle per
/// transaction in the core's stream.
///
/// A transaction is not eligible to begin before its arrival cycle; the
/// engine records its **sojourn** (queue + service) time from arrival to
/// commit. `measure_from` excludes leading setup transactions from latency
/// recording — they arrive at cycle 0 and are not user requests.
///
/// Schedules are frozen behind an `Arc` so cloning a trace or fanning it
/// out across workers stays a pointer bump.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrivalSchedule {
    /// Absolute, nondecreasing arrival cycle per transaction (setup
    /// transactions included, at cycle 0).
    pub arrivals: Arc<[u64]>,
    /// Index of the first transaction whose sojourn is measured; earlier
    /// transactions (setup) are admitted but not recorded.
    pub measure_from: usize,
}

impl ArrivalSchedule {
    /// Freezes a per-core schedule.
    ///
    /// # Panics
    ///
    /// Panics if the arrival cycles are not nondecreasing — an out-of-order
    /// schedule would let a later transaction be admitted before an earlier
    /// one and break the in-stream ordering the oracle assumes.
    pub fn new(arrivals: Vec<u64>, measure_from: usize) -> Self {
        assert!(
            arrivals.windows(2).all(|w| w[0] <= w[1]),
            "arrival schedule must be nondecreasing"
        );
        ArrivalSchedule {
            arrivals: arrivals.into(),
            measure_from,
        }
    }
}

/// Where a [`TraceSet`] came from: the full generation key plus a content
/// hash of the resulting streams.
///
/// Two traces built from the same `(workload, cores, txs_per_core, seed)`
/// must have equal `content_hash` — generation is deterministic — and the
/// hash gives consumers (caches, reports, tests) a cheap identity check
/// that does not require walking the ops again.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceProvenance {
    /// Workload identity, including any generation-affecting parameters
    /// (e.g. `"Hash/buckets=1024,setup=4096,mix=ReadHeavy"`), not just the
    /// display name — two configurations of one workload type must not
    /// alias.
    pub workload: String,
    /// Number of per-core streams.
    pub cores: usize,
    /// Measured transactions generated per core (setup transactions are
    /// part of the stream but counted by the generator, not here).
    pub txs_per_core: usize,
    /// RNG seed the generator was invoked with.
    pub seed: u64,
    /// FNV-1a hash over every op of every transaction of every stream.
    pub content_hash: u64,
}

/// An immutable set of per-core transaction streams with provenance.
///
/// Construction freezes the streams behind `Arc<[Transaction]>`; all reads
/// go through shared slices and every clone is a pointer bump.
#[derive(Clone, Debug)]
pub struct TraceSet {
    streams: Arc<[Arc<[Transaction]>]>,
    arrivals: Option<Arc<[ArrivalSchedule]>>,
    provenance: TraceProvenance,
}

impl TraceSet {
    /// Freezes freshly generated streams into a trace artifact.
    ///
    /// # Panics
    ///
    /// Panics if `streams.len() != cores` — a trace that does not match
    /// its own provenance would poison every downstream cache key.
    pub fn new(
        workload: impl Into<String>,
        cores: usize,
        txs_per_core: usize,
        seed: u64,
        streams: Vec<Vec<Transaction>>,
    ) -> Self {
        assert_eq!(
            streams.len(),
            cores,
            "trace stream count must match its provenance core count"
        );
        let content_hash = hash_streams(&streams);
        let streams: Arc<[Arc<[Transaction]>]> = streams
            .into_iter()
            .map(Arc::from)
            .collect::<Vec<_>>()
            .into();
        TraceSet {
            streams,
            arrivals: None,
            provenance: TraceProvenance {
                workload: workload.into(),
                cores,
                txs_per_core,
                seed,
                content_hash,
            },
        }
    }

    /// Attaches per-core arrival schedules to a closed-loop trace, turning
    /// it into an open-system trace. The schedules are folded into the
    /// content hash so open and closed variants of one trace never alias
    /// in a content-addressed cache.
    ///
    /// # Panics
    ///
    /// Panics if the schedule count does not match the core count, or any
    /// schedule's length does not match its stream's transaction count.
    pub fn with_arrivals(mut self, arrivals: Vec<ArrivalSchedule>) -> Self {
        assert_eq!(
            arrivals.len(),
            self.streams.len(),
            "arrival schedule count must match the trace core count"
        );
        for (core, (sched, stream)) in arrivals.iter().zip(self.streams.iter()).enumerate() {
            assert_eq!(
                sched.arrivals.len(),
                stream.len(),
                "core {core} arrival schedule length must match its stream"
            );
        }
        self.provenance.content_hash = hash_arrivals(self.provenance.content_hash, &arrivals);
        self.arrivals = Some(arrivals.into());
        self
    }

    /// The per-core arrival schedules, if this is an open-system trace.
    pub fn arrivals(&self) -> Option<&[ArrivalSchedule]> {
        self.arrivals.as_deref()
    }

    /// The per-core streams, one shared slice per core.
    pub fn streams(&self) -> &[Arc<[Transaction]>] {
        &self.streams
    }

    /// The generation key and content hash.
    pub fn provenance(&self) -> &TraceProvenance {
        &self.provenance
    }

    /// FNV-1a hash over the full op content (see [`TraceProvenance`]).
    pub fn content_hash(&self) -> u64 {
        self.provenance.content_hash
    }

    /// Number of per-core streams.
    pub fn cores(&self) -> usize {
        self.streams.len()
    }

    /// Total transactions across all streams (setup included).
    pub fn total_transactions(&self) -> usize {
        self.streams.iter().map(|s| s.len()).sum()
    }

    /// Materialises owned `Vec`s for legacy callers. Transactions
    /// themselves still share their ops, so this clones pointers, not op
    /// buffers.
    pub fn to_vecs(&self) -> Vec<Vec<Transaction>> {
        self.streams.iter().map(|s| s.to_vec()).collect()
    }
}

/// The engine's input form: one shared transaction stream per core.
///
/// Everything stream-shaped converts into this — owned
/// `Vec<Vec<Transaction>>` (freezing each stream), a [`TraceSet`] (pointer
/// bumps), or pre-shared `Vec<Arc<[Transaction]>>` — so
/// [`Engine::run`](crate::Engine::run) accepts all of them without the
/// caller cloning ops.
#[derive(Clone, Debug)]
pub struct TxStreams {
    pub(crate) streams: Vec<Arc<[Transaction]>>,
    /// Per-core arrival schedules; `None` runs the classic closed loop.
    pub(crate) arrivals: Option<Vec<ArrivalSchedule>>,
}

impl TxStreams {
    /// Number of per-core streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether there are no streams at all.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Whether the streams carry an open-system arrival schedule.
    pub fn is_open(&self) -> bool {
        self.arrivals.is_some()
    }
}

impl From<Vec<Vec<Transaction>>> for TxStreams {
    fn from(streams: Vec<Vec<Transaction>>) -> Self {
        TxStreams {
            streams: streams.into_iter().map(Arc::from).collect(),
            arrivals: None,
        }
    }
}

impl From<Vec<Arc<[Transaction]>>> for TxStreams {
    fn from(streams: Vec<Arc<[Transaction]>>) -> Self {
        TxStreams {
            streams,
            arrivals: None,
        }
    }
}

impl From<&TraceSet> for TxStreams {
    fn from(trace: &TraceSet) -> Self {
        TxStreams {
            streams: trace.streams.to_vec(),
            arrivals: trace.arrivals.as_ref().map(|a| a.to_vec()),
        }
    }
}

impl From<TraceSet> for TxStreams {
    fn from(trace: TraceSet) -> Self {
        (&trace).into()
    }
}

/// FNV-1a over a canonical little-endian encoding of every op, with
/// per-stream and per-transaction length separators so `[[a],[b]]` and
/// `[[a,b]]` hash differently.
fn hash_streams(streams: &[Vec<Transaction>]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(streams.len() as u64);
    for stream in streams {
        h.write_u64(stream.len() as u64);
        for tx in stream {
            h.write_u64(tx.ops().len() as u64);
            for op in tx.ops() {
                match op {
                    Op::Read(addr) => {
                        h.write_u64(0);
                        h.write_u64(addr.as_u64());
                    }
                    Op::Write(addr, value) => {
                        h.write_u64(1);
                        h.write_u64(addr.as_u64());
                        h.write_u64(value.as_u64());
                    }
                    Op::Compute(cycles) => {
                        h.write_u64(2);
                        h.write_u64(u64::from(*cycles));
                    }
                }
            }
        }
    }
    h.finish()
}

/// Folds per-core arrival schedules into an existing stream content hash.
/// A marker word separates the op content from the schedule so a trace
/// with arrivals can never collide with a closed-loop trace whose op
/// content happens to continue with the same words.
fn hash_arrivals(stream_hash: u64, arrivals: &[ArrivalSchedule]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(stream_hash);
    h.write_u64(0x6172_7269_7661_6c73); // "arrivals"
    h.write_u64(arrivals.len() as u64);
    for sched in arrivals {
        h.write_u64(sched.measure_from as u64);
        h.write_u64(sched.arrivals.len() as u64);
        for &cycle in sched.arrivals.iter() {
            h.write_u64(cycle);
        }
    }
    h.finish()
}

/// Dependency-free 64-bit FNV-1a.
struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv1a {
            state: Self::OFFSET_BASIS,
        }
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.state = (self.state ^ u64::from(byte)).wrapping_mul(Self::PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_types::{PhysAddr, Word};

    fn tx(writes: &[(u64, u64)]) -> Transaction {
        let mut b = Transaction::builder();
        for &(a, v) in writes {
            b = b.write(PhysAddr::new(a), Word::new(v));
        }
        b.build()
    }

    #[test]
    fn identical_streams_hash_identically() {
        let mk = || vec![vec![tx(&[(0, 1), (8, 2)])], vec![tx(&[(64, 3)])]];
        let a = TraceSet::new("w", 2, 1, 7, mk());
        let b = TraceSet::new("w", 2, 1, 7, mk());
        assert_eq!(a.content_hash(), b.content_hash());
        assert_eq!(a.provenance(), b.provenance());
    }

    #[test]
    fn different_content_hashes_differently() {
        let a = TraceSet::new("w", 1, 1, 7, vec![vec![tx(&[(0, 1)])]]);
        let b = TraceSet::new("w", 1, 1, 7, vec![vec![tx(&[(0, 2)])]]);
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn stream_boundaries_affect_the_hash() {
        let one = TraceSet::new("w", 1, 2, 7, vec![vec![tx(&[(0, 1)]), tx(&[(8, 2)])]]);
        let two = TraceSet::new("w", 2, 1, 7, vec![vec![tx(&[(0, 1)])], vec![tx(&[(8, 2)])]]);
        assert_ne!(one.content_hash(), two.content_hash());
    }

    #[test]
    fn clone_shares_streams() {
        let a = TraceSet::new("w", 1, 1, 7, vec![vec![tx(&[(0, 1)])]]);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.streams, &b.streams));
        let s: TxStreams = (&a).into();
        assert!(Arc::ptr_eq(&s.streams[0], &a.streams()[0]));
    }

    #[test]
    #[should_panic(expected = "core count")]
    fn mismatched_core_count_rejected() {
        let _ = TraceSet::new("w", 2, 1, 7, vec![vec![tx(&[(0, 1)])]]);
    }

    #[test]
    fn arrivals_change_the_hash_and_flow_into_streams() {
        let closed = TraceSet::new("w", 1, 1, 7, vec![vec![tx(&[(0, 1)]), tx(&[(8, 2)])]]);
        let open = closed
            .clone()
            .with_arrivals(vec![ArrivalSchedule::new(vec![0, 100], 1)]);
        assert_ne!(closed.content_hash(), open.content_hash());
        let s: TxStreams = (&open).into();
        assert!(s.is_open());
        assert_eq!(s.arrivals.as_ref().unwrap()[0].arrivals.as_ref(), &[0, 100]);
        let c: TxStreams = (&closed).into();
        assert!(!c.is_open());
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn out_of_order_arrivals_rejected() {
        let _ = ArrivalSchedule::new(vec![10, 5], 0);
    }

    #[test]
    #[should_panic(expected = "match its stream")]
    fn arrival_length_mismatch_rejected() {
        let t = TraceSet::new("w", 1, 1, 7, vec![vec![tx(&[(0, 1)])]]);
        let _ = t.with_arrivals(vec![ArrivalSchedule::new(vec![0, 1], 0)]);
    }

    #[test]
    fn to_vecs_round_trips_content() {
        let a = TraceSet::new("w", 1, 1, 7, vec![vec![tx(&[(0, 1), (8, 2)])]]);
        let b = TraceSet::new("w", 1, 1, 7, a.to_vecs());
        assert_eq!(a.content_hash(), b.content_hash());
    }
}
