//! Transactions and the operations they contain.

use std::collections::BTreeSet;
use std::sync::Arc;

use silo_types::{PhysAddr, Word, WORD_BYTES};

/// One operation inside a transaction.
///
/// Workload generators emit traces of these; the engine executes them
/// against the simulated machine. Writes carry only the *new* value — the
/// old value (needed for undo logging and log ignorance) is read from the
/// architectural state at execution time, which keeps traces valid across
/// crash/recovery replays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Load one word.
    Read(PhysAddr),
    /// Store one word (address must be word-aligned).
    Write(PhysAddr, Word),
    /// Pure computation for the given number of cycles.
    Compute(u32),
}

/// A transaction: the unit of atomic durability (paper §II-A), bracketed by
/// `Tx_begin` / `Tx_end` in the hardware interface.
///
/// # Examples
///
/// ```
/// use silo_sim::Transaction;
/// use silo_types::{PhysAddr, Word};
///
/// let tx = Transaction::builder()
///     .read(PhysAddr::new(64))
///     .write(PhysAddr::new(0), Word::new(7))
///     .write(PhysAddr::new(0), Word::new(9)) // same word: merges on chip
///     .compute(20)
///     .build();
/// assert_eq!(tx.ops().len(), 4);
/// assert_eq!(tx.write_set_words(), 1);
/// assert_eq!(tx.write_set_bytes(), 8);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transaction {
    // `Arc<[Op]>` rather than `Vec<Op>`: traces are immutable once built,
    // and sharing one stream across schemes/crash-points must clone
    // transactions by pointer bump, not by copying ops.
    ops: Arc<[Op]>,
}

impl Default for Transaction {
    fn default() -> Self {
        Transaction {
            ops: Arc::from(Vec::new()),
        }
    }
}

impl Transaction {
    /// Creates a transaction from raw operations.
    ///
    /// # Panics
    ///
    /// Panics if any write address is not word-aligned.
    pub fn new(ops: Vec<Op>) -> Self {
        for op in &ops {
            if let Op::Write(addr, _) = op {
                assert!(addr.is_word_aligned(), "store to unaligned address {addr}");
            }
        }
        Transaction { ops: ops.into() }
    }

    /// Starts building a transaction.
    pub fn builder() -> TransactionBuilder {
        TransactionBuilder::default()
    }

    /// The operations, in program order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of store operations (before any on-chip reduction).
    pub fn store_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Write(..)))
            .count()
    }

    /// Number of *distinct* words written.
    pub fn write_set_words(&self) -> usize {
        self.ops
            .iter()
            .filter_map(|op| match op {
                Op::Write(addr, _) => Some(addr.word_aligned().as_u64()),
                _ => None,
            })
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Size of the write set in bytes (distinct words × 8) — the Fig 4
    /// metric.
    pub fn write_set_bytes(&self) -> usize {
        self.write_set_words() * WORD_BYTES
    }

    /// The final value written to each distinct word, in address order.
    pub fn final_writes(&self) -> Vec<(PhysAddr, Word)> {
        let mut map = std::collections::BTreeMap::new();
        for op in self.ops.iter() {
            if let Op::Write(addr, w) = op {
                map.insert(addr.word_aligned().as_u64(), *w);
            }
        }
        map.into_iter()
            .map(|(a, w)| (PhysAddr::new(a), w))
            .collect()
    }

    /// Whether the transaction writes nothing.
    pub fn is_read_only(&self) -> bool {
        self.store_count() == 0
    }
}

/// Incremental builder for [`Transaction`] (see its example).
#[derive(Clone, Debug, Default)]
pub struct TransactionBuilder {
    ops: Vec<Op>,
}

impl TransactionBuilder {
    /// Appends a word load.
    pub fn read(mut self, addr: PhysAddr) -> Self {
        self.ops.push(Op::Read(addr));
        self
    }

    /// Appends a word store.
    pub fn write(mut self, addr: PhysAddr, value: Word) -> Self {
        self.ops.push(Op::Write(addr, value));
        self
    }

    /// Appends pure compute time.
    pub fn compute(mut self, cycles: u32) -> Self {
        self.ops.push(Op::Compute(cycles));
        self
    }

    /// Finishes the transaction.
    ///
    /// # Panics
    ///
    /// Panics if any write address is not word-aligned.
    pub fn build(self) -> Transaction {
        Transaction::new(self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_preserves_program_order() {
        let tx = Transaction::builder()
            .write(PhysAddr::new(8), Word::new(1))
            .read(PhysAddr::new(16))
            .compute(5)
            .build();
        assert_eq!(
            tx.ops(),
            &[
                Op::Write(PhysAddr::new(8), Word::new(1)),
                Op::Read(PhysAddr::new(16)),
                Op::Compute(5),
            ]
        );
    }

    #[test]
    fn write_set_deduplicates_words() {
        let tx = Transaction::builder()
            .write(PhysAddr::new(0), Word::new(1))
            .write(PhysAddr::new(0), Word::new(2))
            .write(PhysAddr::new(8), Word::new(3))
            .build();
        assert_eq!(tx.store_count(), 3);
        assert_eq!(tx.write_set_words(), 2);
        assert_eq!(tx.write_set_bytes(), 16);
    }

    #[test]
    fn final_writes_keep_last_value_per_word() {
        let tx = Transaction::builder()
            .write(PhysAddr::new(8), Word::new(1))
            .write(PhysAddr::new(0), Word::new(2))
            .write(PhysAddr::new(8), Word::new(9))
            .build();
        assert_eq!(
            tx.final_writes(),
            vec![
                (PhysAddr::new(0), Word::new(2)),
                (PhysAddr::new(8), Word::new(9)),
            ]
        );
    }

    #[test]
    fn read_only_detection() {
        let tx = Transaction::builder()
            .read(PhysAddr::new(0))
            .compute(1)
            .build();
        assert!(tx.is_read_only());
        assert_eq!(tx.write_set_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_store_rejected() {
        let _ = Transaction::builder()
            .write(PhysAddr::new(3), Word::new(1))
            .build();
    }
}
